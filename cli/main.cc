/** The stfm binary: `stfm run spec.json`, `stfm list ...`, `stfm fig09`. */

#include "harness/cli.hh"

int
main(int argc, char **argv)
{
    return stfm::cliMain(argc, argv);
}
