#!/usr/bin/env python3
"""Perf-trajectory regression gate (see EXPERIMENTS.md, "Performance
methodology").

Usage: check_perf.py <trajectory.json> [--max-regression FRAC]

The trajectory file is a `stfm-perf-trajectory-v1` document whose last
entry is the one the current CI run just appended (via `stfm bench`).
The gate:

  * the new entry must be bit_exact (a non-bit-exact timing is
    meaningless, and the bench already exited non-zero);
  * the new entry's optimized.dram_cycles_per_host_second must not
    fall more than --max-regression (default 0.10) below the previous
    entry's — the last *committed* trajectory point.

The first entry of a fresh trajectory passes trivially (nothing to
compare against). Exit codes: 0 pass, 1 regression or malformed input.
"""

import argparse
import json
import re
import sys


def fail(message):
    print(f"check_perf: FAIL: {message}", file=sys.stderr)
    return 1


def note_label_gaps(entries):
    """Report (never fail on) non-contiguous 'PR N' labels.

    The trajectory is append-only but not every PR appends an entry
    (docs-only PRs don't re-bench; PR 7 never landed a point), so
    'PR 6' -> 'PR 8' is legal. Surface the gap instead of silently
    pretending the sequence is dense — the compared baseline is always
    simply the previous *committed* entry, whatever its label.
    """
    numbered = [(e.get("label", ""), m)
                for e in entries
                for m in [re.fullmatch(r"PR (\d+)",
                                       e.get("label", ""))]
                if m]
    for (prev_label, prev), (label, cur) in zip(numbered, numbered[1:]):
        if int(cur.group(1)) != int(prev.group(1)) + 1:
            print(f"check_perf: note: non-contiguous trajectory labels "
                  f"({prev_label!r} -> {label!r}); gap entries never "
                  "re-benched, comparing against the last committed "
                  "point")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed fractional drop in optimized "
                             "dram_cycles_per_host_second (default 0.10)")
    args = parser.parse_args()

    with open(args.trajectory) as f:
        doc = json.load(f)
    if doc.get("schema") != "stfm-perf-trajectory-v1":
        return fail(f"unexpected schema {doc.get('schema')!r}")
    entries = doc.get("entries", [])
    if not entries:
        return fail("trajectory has no entries")
    note_label_gaps(entries)

    new = entries[-1]
    label = new.get("label", "<unlabeled>")
    if not new.get("bit_exact"):
        return fail(f"entry {label!r} is not bit_exact — "
                    "timings are meaningless")
    new_tp = new["optimized"]["dram_cycles_per_host_second"]

    if len(entries) == 1:
        print(f"check_perf: OK: first trajectory entry {label!r} "
              f"({new_tp:.0f} DRAM cycles/s optimized), nothing to "
              "compare against")
        return 0

    base = entries[-2]
    base_tp = base["optimized"]["dram_cycles_per_host_second"]
    floor = (1.0 - args.max_regression) * base_tp
    verdict = (f"optimized {new_tp:.0f} DRAM cycles/s vs "
               f"{base_tp:.0f} in {base.get('label', '<unlabeled>')!r} "
               f"(floor {floor:.0f}, -{args.max_regression:.0%} allowed)")
    if new_tp < floor:
        return fail(f"entry {label!r} regressed: {verdict}")
    print(f"check_perf: OK: entry {label!r}: {verdict}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
