#!/usr/bin/env python3
"""Docs-contract checks for CI (stdlib only).

Three subcommands:

  links                 every relative markdown link in the repo's .md
                        files points at a file that exists
  catalog CATALOG.TXT   `stfm list telemetry` output and docs/METRICS.md
                        list exactly the same series patterns
  artifacts DIR         telemetry/trace JSON artifacts in DIR match the
                        schemas documented in docs/METRICS.md and
                        docs/TRACING.md, and every emitted series name
                        is documented
  devices DEVICES.TXT   `stfm list devices` output and the README's
                        device-catalog table name exactly the same
                        presets, and every preset has its JSON spec
                        file under specs/devices/
  report FILE [DIFF]    a live stfm-report-v1 artifact (and optionally
                        a stfm-reportdiff-v1 document) matches the
                        schema documented in docs/REPORTING.md,
                        field-for-field, plus that page's numeric
                        invariants
"""

import glob
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)

def normalize(name):
    """Mirror normalizeSeriesName(): digit runs -> <n>."""
    return re.sub(r"\d+", "<n>", name)

def markdown_files():
    files = glob.glob(os.path.join(REPO, "*.md"))
    files += glob.glob(os.path.join(REPO, "docs", "*.md"))
    return sorted(files)

def check_links():
    link = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    bad = []
    for path in markdown_files():
        text = open(path, encoding="utf-8").read()
        # Ignore links inside fenced code blocks.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in link.findall(text):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            target = target.split("#")[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                bad.append(f"{os.path.relpath(path, REPO)} -> {target}")
    if bad:
        fail("broken markdown links:\n  " + "\n  ".join(bad))
    print(f"links OK ({len(markdown_files())} markdown files)")

def check_catalog(catalog_path):
    catalog = set()
    for line in open(catalog_path, encoding="utf-8"):
        if line.strip():
            catalog.add(line.split()[0])
    if not catalog:
        fail(f"no catalog entries parsed from {catalog_path}")

    metrics_md = open(os.path.join(REPO, "docs", "METRICS.md"),
                      encoding="utf-8").read()
    # Documented series: backticked names in table rows.
    documented = set(
        m for m in re.findall(r"\|\s*`([a-z][\w.<>]*)`\s*\|", metrics_md))

    missing = catalog - documented
    stale = documented - catalog
    if missing:
        fail("series in `stfm list telemetry` but not docs/METRICS.md: "
             + ", ".join(sorted(missing)))
    if stale:
        fail("series documented in docs/METRICS.md but not in the "
             "catalog: " + ", ".join(sorted(stale)))
    print(f"catalog OK ({len(catalog)} patterns, docs in sync)")

def check_telemetry_doc(path, documented):
    doc = json.load(open(path, encoding="utf-8"))
    if doc.get("schema") != "stfm-telemetry-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if not isinstance(doc.get("epochCycles"), int) or doc["epochCycles"] <= 0:
        fail(f"{path}: bad epochCycles")
    series = doc.get("series")
    if not series:
        fail(f"{path}: empty series list")
    cycles = doc["samples"]["cycles"]
    if cycles != sorted(set(cycles)):
        fail(f"{path}: samples.cycles not strictly increasing")
    values = doc["samples"]["values"]
    for s in series:
        name, kind = s["name"], s["kind"]
        if kind not in ("counter", "gauge"):
            fail(f"{path}: {name} has kind {kind!r}")
        column = values.get(name)
        if column is None or len(column) != len(cycles):
            fail(f"{path}: {name} column missing or misaligned")
        if name not in doc["final"]:
            fail(f"{path}: {name} missing from final")
        if normalize(name) not in documented:
            fail(f"{path}: series {name} ({normalize(name)}) is not "
                 "documented in docs/METRICS.md")
    for h in doc.get("histograms", []):
        if normalize(h["name"]) not in documented:
            fail(f"{path}: histogram {h['name']} is not documented")
    return len(series), len(cycles)

def check_trace_doc(path):
    doc = json.load(open(path, encoding="utf-8"))
    if doc.get("otherData", {}).get("schema") != "stfm-trace-v1":
        fail(f"{path}: otherData.schema missing or wrong")
    events = doc.get("traceEvents")
    if not events:
        fail(f"{path}: no traceEvents")
    last_ts = {}
    open_spans = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        lane = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            fail(f"{path}: ts regressed on lane {lane}")
        last_ts[lane] = ts
        if ph == "B":
            open_spans[lane] = open_spans.get(lane, 0) + 1
        elif ph == "E":
            open_spans[lane] = open_spans.get(lane, 0) - 1
            if open_spans[lane] < 0:
                fail(f"{path}: E without B on lane {lane}")
        elif ph == "X":
            if "dur" not in ev:
                fail(f"{path}: X event without dur")
        elif ph != "i":
            fail(f"{path}: unexpected phase {ph!r}")
    unbalanced = {k: v for k, v in open_spans.items() if v}
    if unbalanced:
        fail(f"{path}: unclosed spans {unbalanced}")
    return len(events)

def check_devices(devices_path):
    # `stfm list devices`: a header line starting with "name", then one
    # row per preset whose first column is the catalog name.
    catalog = set()
    for line in open(devices_path, encoding="utf-8"):
        token = line.split()[0] if line.split() else ""
        if token and token != "name":
            catalog.add(token)
    if not catalog:
        fail(f"no device rows parsed from {devices_path}")

    readme = open(os.path.join(REPO, "README.md"), encoding="utf-8").read()
    match = re.search(r"### Device catalog\n(.*?)(?:\n#|\Z)", readme,
                      flags=re.S)
    if not match:
        fail("README.md has no '### Device catalog' section")
    documented = set(
        re.findall(r"\|\s*`([A-Za-z][\w-]*)`\s*\|", match.group(1)))

    missing = catalog - documented
    stale = documented - catalog
    if missing:
        fail("devices in `stfm list devices` but not the README "
             "catalog: " + ", ".join(sorted(missing)))
    if stale:
        fail("devices documented in the README catalog but not in "
             "`stfm list devices`: " + ", ".join(sorted(stale)))
    for name in sorted(catalog):
        spec = os.path.join(REPO, "specs", "devices", f"{name}.json")
        if not os.path.exists(spec):
            fail(f"built-in device {name} has no spec file at "
                 f"specs/devices/{name}.json")
    print(f"devices OK ({len(catalog)} presets, README and "
          "specs/devices/ in sync)")

def check_artifacts(directory):
    metrics_md = open(os.path.join(REPO, "docs", "METRICS.md"),
                      encoding="utf-8").read()
    documented = set(
        re.findall(r"\|\s*`([a-z][\w.<>]*)`\s*\|", metrics_md))

    telemetry = sorted(glob.glob(os.path.join(directory,
                                              "*_telemetry*.json")))
    traces = sorted(glob.glob(os.path.join(directory, "*.trace.*.json")))
    traces += sorted(p for p in
                     glob.glob(os.path.join(directory, "*.trace.json"))
                     if p not in traces)
    if not telemetry:
        fail(f"no telemetry artifacts found in {directory}")
    if not traces:
        fail(f"no trace artifacts found in {directory}")
    for path in telemetry:
        nseries, nsamples = check_telemetry_doc(path, documented)
        print(f"telemetry OK: {os.path.basename(path)} "
              f"({nseries} series, {nsamples} samples)")
    for path in traces:
        nevents = check_trace_doc(path)
        print(f"trace OK: {os.path.basename(path)} ({nevents} events)")

DIFF_KINDS = {
    "workload-unfairness", "group-unfairness-p95",
    "group-unfairness-p99", "group-slowdown-p99", "group-failures",
    "missing-group", "missing-workload",
}

def reporting_md_fields():
    """Parse docs/REPORTING.md's field tables.

    Returns (report_fields, diff_fields): each a dict of documented
    field path -> {"type": ..., "optional": ...}. Distribution-typed
    rows ("groups[].unfairness" et al.) are expanded with the fields
    of the shared distribution-block table.
    """
    text = open(os.path.join(REPO, "docs", "REPORTING.md"),
                encoding="utf-8").read()
    row = re.compile(r"^\|\s*`([A-Za-z][\w.\[\]]*)`\s*\|"
                     r"\s*([^|]+?)\s*\|(.*)$", re.M)

    sections = {}
    for chunk in text.split("\n## "):
        title = chunk.split("\n", 1)[0]
        sections[title] = chunk
    report_text = sections.get("The `stfm-report-v1` document")
    diff_text = sections.get("The `stfm-reportdiff-v1` document")
    if not report_text or not diff_text:
        fail("docs/REPORTING.md is missing a schema section")

    def parse(section):
        fields = {}
        for path, ftype, rest in row.findall(section):
            fields[path] = {"type": ftype,
                            "optional": "optional" in rest}
        return fields

    report = parse(report_text)
    diff = parse(diff_text)

    # The distribution-block table documents bare field names shared
    # by every row whose type column says "distribution"; expand them
    # onto those paths. `samples`/`buckets` are phase alternatives —
    # presence-optional each, "exactly one" enforced separately.
    dist_fields = {p: meta for p, meta in report.items() if "." not in p
                   and "[" not in p and p not in ("schema", "name")}
    dist_parents = [p for p, meta in report.items()
                    if meta["type"] == "distribution"]
    if not dist_parents or "samples" not in dist_fields:
        fail("docs/REPORTING.md: distribution table not found")
    for bare in dist_fields:
        del report[bare]
    for parent in dist_parents:
        del report[parent]  # Structural: implied by the expansion.
        for bare, meta in dist_fields.items():
            optional = meta["optional"] or bare in ("samples", "buckets")
            report[f"{parent}.{bare}"] = {"type": meta["type"],
                                          "optional": optional}
    return report, diff

def leaf_paths(node, documented, prefix=""):
    """The artifact's leaf field paths, array hops normalized to []
    and documented object-typed maps (sparse bucket dicts) kept
    opaque."""
    if prefix and documented.get(prefix, {}).get("type") == "object":
        return {prefix}
    paths = set()
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{prefix}.{key}" if prefix else key
            paths |= leaf_paths(value, documented, child)
    elif isinstance(node, list):
        scalars = [x for x in node
                   if not isinstance(x, (dict, list))]
        if len(scalars) == len(node):
            paths.add(prefix)  # Array of scalars: the field is the leaf.
        else:
            for item in node:
                paths |= leaf_paths(item, documented, prefix + "[]")
    else:
        paths.add(prefix)
    return paths

def check_distribution(where, dist):
    count = dist["count"]
    if ("samples" in dist) == ("buckets" in dist):
        fail(f"{where}: needs exactly one of samples/buckets")
    if "samples" in dist:
        if len(dist["samples"]) != count:
            fail(f"{where}: count != len(samples)")
        if dist["samples"] != sorted(dist["samples"]):
            fail(f"{where}: samples not ascending")
    elif sum(dist["buckets"].values()) != count:
        fail(f"{where}: count != sum(buckets)")
    if count and not (dist["min"] <= dist["p50"] <= dist["p95"]
                      <= dist["p99"] <= dist["max"]):
        fail(f"{where}: percentiles not monotone")

def check_report_doc(path, documented):
    doc = json.load(open(path, encoding="utf-8"))
    if doc.get("schema") != "stfm-report-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")

    present = leaf_paths(doc, documented)
    undocumented = present - set(documented)
    if undocumented:
        fail(f"{path}: fields not documented in docs/REPORTING.md: "
             + ", ".join(sorted(undocumented)))
    # Required fields must appear — structural array rows (path ends
    # in []) are implied by their children and may be empty.
    missing = {p for p, meta in documented.items()
               if not meta["optional"] and not p.endswith("[]")
               and p not in present}
    if missing:
        fail(f"{path}: documented fields missing from the artifact: "
             + ", ".join(sorted(missing)))

    totals = doc["totals"]
    groups = doc["groups"]
    for agg, per_group in (
            ("runs", "runs"), ("failed", "failed")):
        if totals[agg] != sum(g[per_group] for g in groups):
            fail(f"{path}: totals.{agg} != sum over groups")
    for key in ("unfairness", "slowdown"):
        if totals["sloViolations"][key] != sum(
                g["sloViolations"][key] for g in groups):
            fail(f"{path}: totals.sloViolations.{key} != sum over groups")
    if totals["groups"] != len(groups):
        fail(f"{path}: totals.groups != len(groups)")
    for g in groups:
        where = f"{path}: group {g['scheduler']}/{g['device'] or '-'}"
        for metric in ("unfairness", "slowdown", "weightedSpeedup"):
            check_distribution(f"{where} {metric}", g[metric])
        for field in ("runs", "failed"):
            if g[field] != sum(w[field] for w in g["workloads"]):
                fail(f"{where}: {field} != sum over workloads")
    latency = doc.get("readLatency")
    if latency is not None:
        if len(latency["buckets"]) != 32:
            fail(f"{path}: readLatency.buckets must have 32 entries")
        if sum(latency["buckets"]) != latency["count"]:
            fail(f"{path}: readLatency count != sum(buckets)")
    print(f"report OK: {os.path.basename(path)} ({totals['runs']} runs, "
          f"{totals['groups']} groups, {len(present)} leaf fields)")

def check_diff_doc(path, documented):
    doc = json.load(open(path, encoding="utf-8"))
    if doc.get("schema") != "stfm-reportdiff-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    present = leaf_paths(doc, documented)
    undocumented = present - set(documented)
    if undocumented:
        fail(f"{path}: fields not documented in docs/REPORTING.md: "
             + ", ".join(sorted(undocumented)))
    missing = {p for p, meta in documented.items()
               if not meta["optional"] and not p.endswith("[]")
               and p not in present and not p.startswith("regressions[]")}
    # Regression-entry fields are only observable when regressions
    # exist; require them in that case.
    if doc["regressions"]:
        missing |= {p for p, meta in documented.items()
                    if p.startswith("regressions[]")
                    and not meta["optional"] and p not in present}
    if missing:
        fail(f"{path}: documented fields missing from the artifact: "
             + ", ".join(sorted(missing)))
    if doc["regressed"] != bool(doc["regressions"]):
        fail(f"{path}: regressed flag disagrees with regressions list")
    for entry in doc["regressions"]:
        if entry["kind"] not in DIFF_KINDS:
            fail(f"{path}: unknown regression kind {entry['kind']!r}")
    print(f"diff OK: {os.path.basename(path)} "
          f"({len(doc['regressions'])} regressions, "
          f"{doc['comparedGroups']} groups compared)")

def check_report(report_path, diff_path=None):
    report_fields, diff_fields = reporting_md_fields()
    check_report_doc(report_path, report_fields)
    if diff_path:
        check_diff_doc(diff_path, diff_fields)

def main():
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} "
             "links|catalog FILE|artifacts DIR|devices FILE|"
             "report FILE [DIFF]")
    cmd = sys.argv[1]
    if cmd == "links":
        check_links()
    elif cmd == "catalog" and len(sys.argv) == 3:
        check_catalog(sys.argv[2])
    elif cmd == "artifacts" and len(sys.argv) == 3:
        check_artifacts(sys.argv[2])
    elif cmd == "devices" and len(sys.argv) == 3:
        check_devices(sys.argv[2])
    elif cmd == "report" and len(sys.argv) in (3, 4):
        check_report(sys.argv[2], sys.argv[3] if len(sys.argv) == 4
                     else None)
    else:
        fail(f"unknown command {cmd!r}")

if __name__ == "__main__":
    main()
