#!/usr/bin/env python3
"""Docs-contract checks for CI (stdlib only).

Three subcommands:

  links                 every relative markdown link in the repo's .md
                        files points at a file that exists
  catalog CATALOG.TXT   `stfm list telemetry` output and docs/METRICS.md
                        list exactly the same series patterns
  artifacts DIR         telemetry/trace JSON artifacts in DIR match the
                        schemas documented in docs/METRICS.md and
                        docs/TRACING.md, and every emitted series name
                        is documented
  devices DEVICES.TXT   `stfm list devices` output and the README's
                        device-catalog table name exactly the same
                        presets, and every preset has its JSON spec
                        file under specs/devices/
"""

import glob
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)

def normalize(name):
    """Mirror normalizeSeriesName(): digit runs -> <n>."""
    return re.sub(r"\d+", "<n>", name)

def markdown_files():
    files = glob.glob(os.path.join(REPO, "*.md"))
    files += glob.glob(os.path.join(REPO, "docs", "*.md"))
    return sorted(files)

def check_links():
    link = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    bad = []
    for path in markdown_files():
        text = open(path, encoding="utf-8").read()
        # Ignore links inside fenced code blocks.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in link.findall(text):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            target = target.split("#")[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                bad.append(f"{os.path.relpath(path, REPO)} -> {target}")
    if bad:
        fail("broken markdown links:\n  " + "\n  ".join(bad))
    print(f"links OK ({len(markdown_files())} markdown files)")

def check_catalog(catalog_path):
    catalog = set()
    for line in open(catalog_path, encoding="utf-8"):
        if line.strip():
            catalog.add(line.split()[0])
    if not catalog:
        fail(f"no catalog entries parsed from {catalog_path}")

    metrics_md = open(os.path.join(REPO, "docs", "METRICS.md"),
                      encoding="utf-8").read()
    # Documented series: backticked names in table rows.
    documented = set(
        m for m in re.findall(r"\|\s*`([a-z][\w.<>]*)`\s*\|", metrics_md))

    missing = catalog - documented
    stale = documented - catalog
    if missing:
        fail("series in `stfm list telemetry` but not docs/METRICS.md: "
             + ", ".join(sorted(missing)))
    if stale:
        fail("series documented in docs/METRICS.md but not in the "
             "catalog: " + ", ".join(sorted(stale)))
    print(f"catalog OK ({len(catalog)} patterns, docs in sync)")

def check_telemetry_doc(path, documented):
    doc = json.load(open(path, encoding="utf-8"))
    if doc.get("schema") != "stfm-telemetry-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if not isinstance(doc.get("epochCycles"), int) or doc["epochCycles"] <= 0:
        fail(f"{path}: bad epochCycles")
    series = doc.get("series")
    if not series:
        fail(f"{path}: empty series list")
    cycles = doc["samples"]["cycles"]
    if cycles != sorted(set(cycles)):
        fail(f"{path}: samples.cycles not strictly increasing")
    values = doc["samples"]["values"]
    for s in series:
        name, kind = s["name"], s["kind"]
        if kind not in ("counter", "gauge"):
            fail(f"{path}: {name} has kind {kind!r}")
        column = values.get(name)
        if column is None or len(column) != len(cycles):
            fail(f"{path}: {name} column missing or misaligned")
        if name not in doc["final"]:
            fail(f"{path}: {name} missing from final")
        if normalize(name) not in documented:
            fail(f"{path}: series {name} ({normalize(name)}) is not "
                 "documented in docs/METRICS.md")
    for h in doc.get("histograms", []):
        if normalize(h["name"]) not in documented:
            fail(f"{path}: histogram {h['name']} is not documented")
    return len(series), len(cycles)

def check_trace_doc(path):
    doc = json.load(open(path, encoding="utf-8"))
    if doc.get("otherData", {}).get("schema") != "stfm-trace-v1":
        fail(f"{path}: otherData.schema missing or wrong")
    events = doc.get("traceEvents")
    if not events:
        fail(f"{path}: no traceEvents")
    last_ts = {}
    open_spans = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        lane = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            fail(f"{path}: ts regressed on lane {lane}")
        last_ts[lane] = ts
        if ph == "B":
            open_spans[lane] = open_spans.get(lane, 0) + 1
        elif ph == "E":
            open_spans[lane] = open_spans.get(lane, 0) - 1
            if open_spans[lane] < 0:
                fail(f"{path}: E without B on lane {lane}")
        elif ph == "X":
            if "dur" not in ev:
                fail(f"{path}: X event without dur")
        elif ph != "i":
            fail(f"{path}: unexpected phase {ph!r}")
    unbalanced = {k: v for k, v in open_spans.items() if v}
    if unbalanced:
        fail(f"{path}: unclosed spans {unbalanced}")
    return len(events)

def check_devices(devices_path):
    # `stfm list devices`: a header line starting with "name", then one
    # row per preset whose first column is the catalog name.
    catalog = set()
    for line in open(devices_path, encoding="utf-8"):
        token = line.split()[0] if line.split() else ""
        if token and token != "name":
            catalog.add(token)
    if not catalog:
        fail(f"no device rows parsed from {devices_path}")

    readme = open(os.path.join(REPO, "README.md"), encoding="utf-8").read()
    match = re.search(r"### Device catalog\n(.*?)(?:\n#|\Z)", readme,
                      flags=re.S)
    if not match:
        fail("README.md has no '### Device catalog' section")
    documented = set(
        re.findall(r"\|\s*`([A-Za-z][\w-]*)`\s*\|", match.group(1)))

    missing = catalog - documented
    stale = documented - catalog
    if missing:
        fail("devices in `stfm list devices` but not the README "
             "catalog: " + ", ".join(sorted(missing)))
    if stale:
        fail("devices documented in the README catalog but not in "
             "`stfm list devices`: " + ", ".join(sorted(stale)))
    for name in sorted(catalog):
        spec = os.path.join(REPO, "specs", "devices", f"{name}.json")
        if not os.path.exists(spec):
            fail(f"built-in device {name} has no spec file at "
                 f"specs/devices/{name}.json")
    print(f"devices OK ({len(catalog)} presets, README and "
          "specs/devices/ in sync)")

def check_artifacts(directory):
    metrics_md = open(os.path.join(REPO, "docs", "METRICS.md"),
                      encoding="utf-8").read()
    documented = set(
        re.findall(r"\|\s*`([a-z][\w.<>]*)`\s*\|", metrics_md))

    telemetry = sorted(glob.glob(os.path.join(directory,
                                              "*_telemetry*.json")))
    traces = sorted(glob.glob(os.path.join(directory, "*.trace.*.json")))
    traces += sorted(p for p in
                     glob.glob(os.path.join(directory, "*.trace.json"))
                     if p not in traces)
    if not telemetry:
        fail(f"no telemetry artifacts found in {directory}")
    if not traces:
        fail(f"no trace artifacts found in {directory}")
    for path in telemetry:
        nseries, nsamples = check_telemetry_doc(path, documented)
        print(f"telemetry OK: {os.path.basename(path)} "
              f"({nseries} series, {nsamples} samples)")
    for path in traces:
        nevents = check_trace_doc(path)
        print(f"trace OK: {os.path.basename(path)} ({nevents} events)")

def main():
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} "
             "links|catalog FILE|artifacts DIR|devices FILE")
    cmd = sys.argv[1]
    if cmd == "links":
        check_links()
    elif cmd == "catalog" and len(sys.argv) == 3:
        check_catalog(sys.argv[2])
    elif cmd == "artifacts" and len(sys.argv) == 3:
        check_artifacts(sys.argv[2])
    elif cmd == "devices" and len(sys.argv) == 3:
        check_devices(sys.argv[2])
    else:
        fail(f"unknown command {cmd!r}")

if __name__ == "__main__":
    main()
