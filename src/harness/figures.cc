#include "harness/figures.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "harness/experiment.hh"

namespace stfm
{

namespace
{

// Spec builders -------------------------------------------------------
//
// Budgets and sample seeds are the historical bench values; the specs
// must reproduce the legacy binaries' reports bit-for-bit (the seed,
// budget and workload order feed the deterministic trace generator and
// the GMEAN accumulation order).

ExperimentSpec
caseStudySpec(const char *name, const char *title,
              const char *workload, std::uint64_t budget)
{
    ExperimentSpec spec;
    spec.name = name;
    spec.title = title;
    spec.workloads = namedWorkloads(workload);
    spec.budget = budget;
    return spec;
}

ExperimentSpec
fig06Spec(bool)
{
    return caseStudySpec("fig06",
                         "Figure 6: memory-intensive 4-core workload",
                         "case_intensive", 60000);
}

ExperimentSpec
fig07Spec(bool)
{
    return caseStudySpec("fig07",
                         "Figure 7: mixed-behavior 4-core workload",
                         "case_mixed", 60000);
}

ExperimentSpec
fig08Spec(bool)
{
    return caseStudySpec(
        "fig08", "Figure 8: non-memory-intensive 4-core workload",
        "case_non_intensive", 60000);
}

ExperimentSpec
fig09Spec(bool full)
{
    ExperimentSpec spec;
    spec.name = "fig09";
    spec.title = "Figure 9: 4-core category-balanced workload sweep";
    spec.sample = WorkloadSample{4, full ? 256u : 32u, 0x5174f09};
    spec.labelRows = 10;
    spec.budget = 50000;
    return spec;
}

ExperimentSpec
fig10Spec(bool)
{
    return caseStudySpec("fig10",
                         "Figure 10: non-intensive 8-core workload",
                         "eight_core_case", 50000);
}

ExperimentSpec
fig11Spec(bool full)
{
    ExperimentSpec spec;
    spec.name = "fig11";
    spec.title = "Figure 11: 8-core workload sweep";
    spec.workloads = namedWorkloads("eight_core_samples");
    spec.sample = WorkloadSample{8, full ? 22u : 6u, 0x8c03e5};
    spec.labelRows = 10;
    spec.budget = 40000;
    return spec;
}

ExperimentSpec
fig12Spec(bool)
{
    ExperimentSpec spec;
    spec.name = "fig12";
    spec.title =
        "Figure 12: 16-core workloads (high16, high8+low8, low16)";
    spec.workloads = namedWorkloads("sixteen_core");
    spec.labelRows = 3;
    spec.budget = 30000;
    return spec;
}

ExperimentSpec
fig13Spec(bool)
{
    return caseStudySpec(
        "fig13", "Figure 13: desktop-application 4-core workload",
        "desktop", 60000);
}

} // namespace

const std::vector<Figure> &
figureRegistry()
{
    static const std::vector<Figure> registry = {
        {"fig01", "motivation: slowdown variance under FR-FCFS",
         nullptr, figures::motivation},
        {"fig03", "the NFQ idleness problem, quantified", nullptr,
         figures::idleness},
        {"fig05", "2-core: mcf paired with every other benchmark",
         nullptr, figures::twoCore},
        {"fig06", "case study I: memory-intensive 4-core workload",
         fig06Spec, nullptr},
        {"fig07", "case study II: mixed-behavior 4-core workload",
         fig07Spec, nullptr},
        {"fig08", "case study III: non-intensive 4-core workload",
         fig08Spec, nullptr},
        {"fig09", "4-core category-balanced sweep (GMEAN aggregates)",
         fig09Spec, nullptr},
        {"fig10", "8-core case study: mcf vs seven non-intensive",
         fig10Spec, nullptr},
        {"fig11", "8-core workload sweep", fig11Spec, nullptr},
        {"fig12", "16-core workloads (high16, high8+low8, low16)",
         fig12Spec, nullptr},
        {"fig13", "desktop-application 4-core workload", fig13Spec,
         nullptr},
        {"fig14", "system-software support: thread weights", nullptr,
         figures::threadWeights},
        {"fig15", "sensitivity to the alpha threshold", nullptr,
         figures::alphaSweep},
        {"table3", "benchmark characteristics measured alone", nullptr,
         figures::table3Characteristics},
        {"table5", "sensitivity to banks and row-buffer size", nullptr,
         figures::table5Sensitivity},
        {"ablation_stfm", "STFM design-choice ablations", nullptr,
         figures::ablationStfm},
        {"ablation_controller", "controller substrate ablations",
         nullptr, figures::ablationController},
    };
    return registry;
}

const Figure *
findFigure(const std::string &name)
{
    for (const Figure &figure : figureRegistry()) {
        if (figure.name == name)
            return &figure;
    }
    return nullptr;
}

int
runFigure(const std::string &name, int argc, char **argv)
{
    const Figure *figure = findFigure(name);
    if (!figure) {
        std::fprintf(stderr, "unknown figure '%s'; known figures:\n",
                     name.c_str());
        for (const Figure &f : figureRegistry())
            std::fprintf(stderr, "  %-20s %s\n", f.name.c_str(),
                         f.description.c_str());
        return 1;
    }

    FigureFlags flags;
    flags.full = std::getenv("STFM_FULL_SWEEP") != nullptr;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
            setenv("STFM_CHECK", "1", 1);
        } else if (arg == "--reference") {
            setenv("STFM_REFERENCE", "1", 1);
        } else if (arg == "--full") {
            flags.full = true;
            // Custom figures read the historical env knob.
            setenv("STFM_FULL_SWEEP", "1", 1);
        } else if (arg == "--json" && i + 1 < argc) {
            flags.jsonPath = argv[++i];
        } else if (arg == "--telemetry") {
            setenv("STFM_TELEMETRY", "1", 1);
        } else if (arg == "--trace" && i + 1 < argc) {
            setenv("STFM_TRACE", argv[++i], 1);
        }
        // Unknown arguments are ignored, as the legacy benches did.
    }

    try {
        if (figure->specDriven()) {
            const ExperimentResult result =
                runExperiment(figure->spec(flags.full));
            printExperiment(result);
            if (!flags.jsonPath.empty())
                writeResultsJson(result, flags.jsonPath);
            for (const std::string &path : writeObsArtifacts(result))
                std::printf("observability artifact written to %s\n",
                            path.c_str());
            return 0;
        }
        return figure->custom(flags);
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

} // namespace stfm
