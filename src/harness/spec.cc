#include "harness/spec.hh"

#include "common/logging.hh"
#include "sim/config_io.hh"

namespace stfm
{

namespace
{

/** Key check: throw on any member of @p json not in @p known. */
void
rejectUnknownKeys(const Json &json, const std::string &context,
                  std::initializer_list<const char *> known)
{
    for (const auto &[key, value] : json.asObject(context)) {
        (void)value;
        bool found = false;
        for (const char *k : known)
            found = found || key == k;
        if (!found) {
            throw SimError(formatMessage("%s: unknown key '%s'",
                                         context.c_str(), key.c_str()));
        }
    }
}

TraceProfile
traceProfileFromJson(const Json &json, const std::string &context)
{
    rejectUnknownKeys(json, context,
                      {"mpki", "rowBufferHitRate", "burstDuty",
                       "burstLength", "streamCount", "bankSpread",
                       "storeFraction", "streamingStores",
                       "dependentFraction", "hitAccessesPer1k"});
    TraceProfile profile;
    const auto num = [&](const char *key, double &out) {
        if (const Json *v = json.find(key))
            out = v->asDouble(context + "." + key);
    };
    const auto u32 = [&](const char *key, unsigned &out) {
        if (const Json *v = json.find(key))
            out = static_cast<unsigned>(v->asUint(context + "." + key));
    };
    num("mpki", profile.mpki);
    num("rowBufferHitRate", profile.rowBufferHitRate);
    num("burstDuty", profile.burstDuty);
    u32("burstLength", profile.burstLength);
    u32("streamCount", profile.streamCount);
    u32("bankSpread", profile.bankSpread);
    num("storeFraction", profile.storeFraction);
    if (const Json *v = json.find("streamingStores"))
        profile.streamingStores = v->asBool(context + ".streamingStores");
    num("dependentFraction", profile.dependentFraction);
    num("hitAccessesPer1k", profile.hitAccessesPer1k);
    return profile;
}

Json
toJson(const TraceProfile &profile)
{
    Json out = Json::object();
    out.set("mpki", profile.mpki);
    out.set("rowBufferHitRate", profile.rowBufferHitRate);
    out.set("burstDuty", profile.burstDuty);
    out.set("burstLength", profile.burstLength);
    out.set("streamCount", profile.streamCount);
    out.set("bankSpread", profile.bankSpread);
    out.set("storeFraction", profile.storeFraction);
    out.set("streamingStores", profile.streamingStores);
    out.set("dependentFraction", profile.dependentFraction);
    out.set("hitAccessesPer1k", profile.hitAccessesPer1k);
    return out;
}

SchedulerEntry
schedulerEntryFromJson(const Json &json, const std::string &context)
{
    SchedulerEntry entry;
    if (json.type() == Json::Type::String) {
        entry.config.kind =
            policyKindFromName(json.asString(context));
        entry.label = toString(entry.config.kind);
        return entry;
    }
    // Object form: "label"/"device" are ours; everything else is
    // SchedulerConfig.
    Json params = Json::object();
    for (const auto &[key, value] : json.asObject(context)) {
        if (key == "label")
            entry.label = value.asString(context + ".label");
        else if (key == "device")
            entry.device = value.asString(context + ".device");
        else
            params.set(key, value);
    }
    applyJson(params, entry.config, context);
    if (entry.label.empty())
        entry.label = toString(entry.config.kind);
    return entry;
}

WorkloadSample
sampleFromJson(const Json &json, const std::string &context)
{
    rejectUnknownKeys(json, context, {"cores", "count", "seed"});
    WorkloadSample sample;
    if (const Json *v = json.find("cores"))
        sample.cores = static_cast<unsigned>(v->asUint(context + ".cores"));
    if (const Json *v = json.find("count"))
        sample.count = static_cast<unsigned>(v->asUint(context + ".count"));
    if (const Json *v = json.find("seed"))
        sample.seed = v->asUint(context + ".seed");
    return sample;
}

} // namespace

std::vector<std::string>
namedWorkloadCatalog()
{
    return {"fig1_four_core",  "fig1_eight_core",    "case_intensive",
            "case_mixed",      "case_non_intensive", "eight_core_case",
            "desktop",         "weighted",           "sixteen_core",
            "eight_core_samples"};
}

std::vector<Workload>
namedWorkloads(const std::string &name)
{
    if (name == "fig1_four_core")
        return {workloads::fig1FourCore()};
    if (name == "fig1_eight_core")
        return {workloads::fig1EightCore()};
    if (name == "case_intensive")
        return {workloads::caseIntensive()};
    if (name == "case_mixed")
        return {workloads::caseMixed()};
    if (name == "case_non_intensive")
        return {workloads::caseNonIntensive()};
    if (name == "eight_core_case")
        return {workloads::eightCoreCase()};
    if (name == "desktop")
        return {workloads::desktop()};
    if (name == "weighted")
        return {workloads::weighted()};
    if (name == "sixteen_core")
        return workloads::sixteenCore();
    if (name == "eight_core_samples")
        return workloads::eightCoreSamples();

    std::string known;
    for (const std::string &n : namedWorkloadCatalog()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    throw SimError(formatMessage("unknown workload name '%s' (known: %s)",
                                 name.c_str(), known.c_str()));
}

ExperimentSpec
specFromJson(const Json &json)
{
    rejectUnknownKeys(json, "spec",
                      {"name", "title", "workloads", "sample",
                       "schedulers", "devices", "config", "telemetry",
                       "budget", "labelRows", "repeat", "seed", "jobs",
                       "attempts", "benchmarks"});

    ExperimentSpec spec;
    spec.name = json.at("name", "spec").asString("spec.name");
    if (const Json *v = json.find("title"))
        spec.title = v->asString("spec.title");

    if (const Json *v = json.find("workloads")) {
        const Json::Array &items = v->asArray("spec.workloads");
        for (std::size_t i = 0; i < items.size(); ++i) {
            const std::string context =
                formatMessage("spec.workloads[%zu]", i);
            const Json &item = items[i];
            if (item.type() == Json::Type::String) {
                for (Workload &w :
                     namedWorkloads(item.asString(context)))
                    spec.workloads.push_back(std::move(w));
                continue;
            }
            Workload mix;
            for (const Json &bench : item.asArray(context))
                mix.push_back(bench.asString(context + "[]"));
            if (mix.empty()) {
                throw SimError(context +
                               ": inline workload mix is empty");
            }
            spec.workloads.push_back(std::move(mix));
        }
    }

    if (const Json *v = json.find("sample"))
        spec.sample = sampleFromJson(*v, "spec.sample");

    if (const Json *v = json.find("schedulers")) {
        if (v->type() == Json::Type::String) {
            const std::string shorthand =
                v->asString("spec.schedulers");
            if (shorthand != "paper") {
                throw SimError(formatMessage(
                    "spec.schedulers: unknown shorthand '%s' (only "
                    "\"paper\", or a list of entries)",
                    shorthand.c_str()));
            }
            // Empty = paper schedulers (resolved by the engine).
        } else {
            const Json::Array &items = v->asArray("spec.schedulers");
            for (std::size_t i = 0; i < items.size(); ++i) {
                spec.schedulers.push_back(schedulerEntryFromJson(
                    items[i],
                    formatMessage("spec.schedulers[%zu]", i)));
            }
            if (spec.schedulers.empty())
                throw SimError("spec.schedulers: empty scheduler list");
        }
    }

    if (const Json *v = json.find("devices")) {
        const Json::Array &items = v->asArray("spec.devices");
        for (std::size_t i = 0; i < items.size(); ++i) {
            spec.devices.push_back(items[i].asString(
                formatMessage("spec.devices[%zu]", i)));
        }
        if (spec.devices.empty())
            throw SimError("spec.devices: empty device list");
    }

    if (const Json *v = json.find("config"))
        spec.config = *v;

    if (const Json *v = json.find("telemetry")) {
        // Validate eagerly so `stfm validate` reports telemetry.* key
        // errors without having to resolve the whole experiment.
        TelemetryConfig probe;
        applyJson(*v, probe, "telemetry");
        spec.telemetry = *v;
    }

    if (const Json *v = json.find("budget"))
        spec.budget = v->asUint("spec.budget");
    if (const Json *v = json.find("labelRows")) {
        spec.labelRows =
            static_cast<std::size_t>(v->asUint("spec.labelRows"));
    }
    if (const Json *v = json.find("repeat")) {
        spec.repeat = static_cast<unsigned>(v->asUint("spec.repeat"));
        if (spec.repeat == 0)
            throw SimError("spec.repeat: must be at least 1");
    }
    if (const Json *v = json.find("seed"))
        spec.seed = v->asUint("spec.seed");
    if (const Json *v = json.find("jobs"))
        spec.jobs = static_cast<unsigned>(v->asUint("spec.jobs"));
    if (const Json *v = json.find("attempts")) {
        spec.attempts =
            static_cast<unsigned>(v->asUint("spec.attempts"));
        if (spec.attempts == 0)
            throw SimError("spec.attempts: must be at least 1");
    }

    if (const Json *v = json.find("benchmarks")) {
        for (const auto &[name, profile] :
             v->asObject("spec.benchmarks")) {
            BenchmarkProfile bench;
            bench.name = name;
            bench.trace = traceProfileFromJson(
                profile, "spec.benchmarks." + name);
            bench.paperMpki = bench.trace.mpki;
            bench.paperRowHit = bench.trace.rowBufferHitRate;
            spec.benchmarks.emplace_back(name, bench);
        }
    }

    if (spec.workloads.empty() && !spec.sample) {
        throw SimError("spec: zero-thread experiment — give 'workloads' "
                       "and/or 'sample'");
    }
    return spec;
}

ExperimentSpec
specFromText(const std::string &text)
{
    return specFromJson(Json::parse(text));
}

Json
toJson(const SchedulerEntry &entry)
{
    Json out = Json::object();
    out.set("label", entry.label);
    if (!entry.device.empty())
        out.set("device", entry.device);
    // Keep the serialized config alive past the loop: a range-for over
    // the temporary's Object would dangle (no lifetime extension
    // through asObject's reference return).
    const Json config = toJson(entry.config);
    for (const auto &[key, value] : config.asObject("scheduler"))
        out.set(key, value);
    return out;
}

Json
toJson(const ExperimentSpec &spec)
{
    Json out = Json::object();
    out.set("name", spec.name);
    if (!spec.title.empty())
        out.set("title", spec.title);

    if (!spec.workloads.empty()) {
        Json list = Json::array();
        for (const Workload &w : spec.workloads) {
            Json mix = Json::array();
            for (const std::string &bench : w)
                mix.push(Json(bench));
            list.push(std::move(mix));
        }
        out.set("workloads", std::move(list));
    }
    if (spec.sample) {
        Json sample = Json::object();
        sample.set("cores", spec.sample->cores);
        sample.set("count", spec.sample->count);
        sample.set("seed", spec.sample->seed);
        out.set("sample", std::move(sample));
    }

    if (spec.schedulers.empty()) {
        out.set("schedulers", "paper");
    } else {
        Json list = Json::array();
        for (const SchedulerEntry &entry : spec.schedulers)
            list.push(toJson(entry));
        out.set("schedulers", std::move(list));
    }
    if (!spec.devices.empty()) {
        Json list = Json::array();
        for (const std::string &device : spec.devices)
            list.push(Json(device));
        out.set("devices", std::move(list));
    }

    if (!spec.config.asObject("config").empty())
        out.set("config", spec.config);
    if (!spec.telemetry.asObject("telemetry").empty())
        out.set("telemetry", spec.telemetry);
    if (spec.budget)
        out.set("budget", spec.budget);
    if (spec.labelRows != static_cast<std::size_t>(-1))
        out.set("labelRows", static_cast<std::uint64_t>(spec.labelRows));
    if (spec.repeat != 1)
        out.set("repeat", spec.repeat);
    if (spec.seed)
        out.set("seed", spec.seed);
    if (spec.jobs)
        out.set("jobs", spec.jobs);
    if (spec.attempts != 1)
        out.set("attempts", spec.attempts);

    if (!spec.benchmarks.empty()) {
        Json benches = Json::object();
        for (const auto &[name, bench] : spec.benchmarks)
            benches.set(name, toJson(bench.trace));
        out.set("benchmarks", std::move(benches));
    }
    return out;
}

} // namespace stfm
