#include "harness/table.hh"

#include <algorithm>
#include <cstdio>

namespace stfm
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

} // namespace stfm
