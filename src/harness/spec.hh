/**
 * @file
 * ExperimentSpec: the declarative description of one experiment.
 *
 * A spec names what to run — workloads (by case-study catalog name or
 * as inline benchmark mixes), a scheduler list with per-policy
 * parameters, configuration overrides over SimConfig::baseline, budgets
 * and repeat/seed controls — and the experiment engine
 * (harness/experiment.hh) turns it into RunJobs for
 * ExperimentRunner::runMany. The JSON form is the CLI's input
 * (`stfm run spec.json`); every registered figure is a named spec or a
 * custom function over the same machinery (harness/figures.hh).
 *
 * Spec JSON schema (all fields optional unless noted):
 *
 *   {
 *     "name":      "fig09",                 // identifier (required)
 *     "title":     "Figure 9: ...",         // report heading
 *     "workloads": ["case_intensive",       // catalog name, or
 *                   ["mcf", "libquantum", "GemsFDTD", "astar"]],
 *                                           // inline benchmark mix
 *     "sample":    {"cores": 4, "count": 32, "seed": 85262089},
 *                                           // category-balanced sampling
 *     "schedulers": "paper"                 // the five paper policies
 *               | [ "STFM",                 // policy name with defaults
 *                   {"label": "STFM a=2",   // or full per-policy params
 *                    "policy": "STFM", "alpha": 2.0,
 *                    "device": "DDR4-2400"} ],  // per-entry device
 *     "devices":   ["DDR2-800", "DDR4-2400"],
 *                                           // cross-device axis: every
 *                                           // scheduler runs once per
 *                                           // device (labels gain
 *                                           // "@<device>")
 *     "config":    { ... },                 // SimConfig overrides layered
 *                                           // onto baseline(cores)
 *     "telemetry": {"enabled": true,        // observability block
 *                   "epochCycles": 10000,   // (docs/METRICS.md):
 *                   "output": "t.json",     // sampled telemetry doc
 *                   "trace": "t.trace.json"},  // Chrome trace export
 *     "budget":    50000,                   // per-thread instructions
 *     "labelRows": 10,                      // per-workload report rows
 *     "repeat":    1,                       // trace-reseeded repetitions
 *     "seed":      0,                       // base trace salt
 *     "jobs":      0,                       // workers (0 = default pool)
 *     "attempts":  1,                       // retries per run
 *     "benchmarks": {"hog": {"mpki": 300, ...}}  // inline TraceProfiles
 *   }
 *
 * Unknown keys anywhere are structured SimErrors, not silently ignored.
 */

#ifndef STFM_HARNESS_SPEC_HH
#define STFM_HARNESS_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "harness/workloads.hh"
#include "sched/policy.hh"
#include "trace/catalog.hh"

namespace stfm
{

/** One scheduler under test: display label + full policy parameters. */
struct SchedulerEntry
{
    std::string label; ///< Report label (defaults to the policy name).
    SchedulerConfig config;
    /** Device spec name/path this entry runs on; "" = the config's
     *  own memory settings (the DDR2-800 baseline by default). */
    std::string device;
};

/** Category-balanced workload sampling (the averaged sweeps). */
struct WorkloadSample
{
    unsigned cores = 4;
    unsigned count = 32;
    std::uint64_t seed = 0;
};

struct ExperimentSpec
{
    std::string name;
    /** Report heading; empty falls back to name. */
    std::string title;

    /**
     * Explicit workloads, in spec order. Catalog names expand here at
     * parse time (a name like "sixteen_core" may contribute several
     * workloads). Sampled workloads (if any) append after these.
     */
    std::vector<Workload> workloads;
    std::optional<WorkloadSample> sample;

    /** Schedulers to run; empty means the five paper schedulers. */
    std::vector<SchedulerEntry> schedulers;

    /**
     * Cross-device axis: when non-empty, the experiment plan expands to
     * every (device, scheduler) pair — device-major, so all schedulers
     * run on one device before the next — with entry labels suffixed
     * "@<device>". Entries carrying their own "device" are exempt from
     * the expansion.
     */
    std::vector<std::string> devices;

    /** SimConfig overrides (JSON object), layered onto baseline(cores). */
    Json config = Json::object();

    /**
     * Telemetry overrides (JSON object, TelemetryConfig fields).
     * Layered after "config" so a spec-level telemetry block wins over
     * "config.telemetry"; environment overrides win over both.
     */
    Json telemetry = Json::object();

    /** Per-thread instruction budget; 0 keeps the config's value. */
    std::uint64_t budget = 0;

    /** Per-workload unfairness rows to print (sweep reports). */
    std::size_t labelRows = static_cast<std::size_t>(-1);

    /** Trace-reseeded repetitions of every workload (>= 1). */
    unsigned repeat = 1;
    /** Base trace-RNG salt; repetition r runs with seed + r. */
    std::uint64_t seed = 0;

    /** Worker-pool width; 0 = ExperimentRunner::defaultJobs(). */
    unsigned jobs = 0;
    /** Attempts per run (retries reseed the trace RNG). */
    unsigned attempts = 1;

    /** Inline synthetic benchmarks, registered under their names. */
    std::vector<std::pair<std::string, BenchmarkProfile>> benchmarks;

    /** Heading to print. */
    const std::string &heading() const { return title.empty() ? name : title; }
};

/** The case-study workload catalog names a spec may reference. */
std::vector<std::string> namedWorkloadCatalog();

/**
 * Expand one catalog name ("case_intensive", "sixteen_core", ...) into
 * its workloads. @throws SimError on an unknown name, listing the
 * catalog.
 */
std::vector<Workload> namedWorkloads(const std::string &name);

/** Parse a spec from its JSON form. @throws SimError with field paths. */
ExperimentSpec specFromJson(const Json &json);

/** Parse a spec from JSON text (file contents). */
ExperimentSpec specFromText(const std::string &text);

/** Serialize back to canonical JSON (the results-file spec echo). */
Json toJson(const ExperimentSpec &spec);

/** Serialize one scheduler entry ({"label": ..., policy knobs...}). */
Json toJson(const SchedulerEntry &entry);

} // namespace stfm

#endif // STFM_HARNESS_SPEC_HH
