/**
 * @file
 * The wall-clock throughput benchmark behind the perf trajectory.
 *
 * One implementation serves two front ends — the `micro_scheduler_cost`
 * bench binary's default mode and the `stfm bench` CLI subcommand —
 * so both append to the same trajectory artifact with the same
 * methodology: run the Figure 9 sweep once on the cycle-by-cycle
 * reference path and once with fast-forwarding enabled, verify the two
 * produce bit-identical SimResults, and append the timings as a new
 * entry in `BENCH_perf.json` (schema `stfm-perf-trajectory-v1`, an
 * array of per-PR entries rather than a single overwritten snapshot).
 * EXPERIMENTS.md documents how to read the file.
 */

#ifndef STFM_HARNESS_PERFBENCH_HH
#define STFM_HARNESS_PERFBENCH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stfm
{

/** Knobs for one benchmark invocation (see perfBenchOptionsFromEnv). */
struct PerfBenchOptions
{
    /** Sweep width in 4-core workloads (fig09's sample is 32). */
    unsigned workloads = 32;
    /** Per-thread instruction budget. */
    std::uint64_t budget = 50000;
    /** Worker-pool width for the main sweeps; 0 = defaultJobs(). */
    unsigned jobs = 0;
    /**
     * Extra optimized-path sweeps at these worker counts, recorded as
     * the entry's thread-scaling points. Empty = skip (each point
     * costs a full sweep).
     */
    std::vector<unsigned> scalingJobs;
    /** Trajectory label for the appended entry ("PR 7", "local"...). */
    std::string label = "local";
    /** Trajectory file path; read-modify-append, never overwritten. */
    std::string outPath = "BENCH_perf.json";
    /** Workload sampling seed (fixed: entries must be comparable). */
    std::uint64_t sampleSeed = 0x5174f09;
};

/**
 * Options from the environment: STFM_BENCH_WORKLOADS,
 * STFM_INSTRUCTIONS (via ExperimentRunner::budgetFromEnv),
 * STFM_BENCH_LABEL, STFM_BENCH_OUT, and STFM_BENCH_SCALING (a
 * comma-separated worker-count list, e.g. "1,2,4").
 */
PerfBenchOptions perfBenchOptionsFromEnv();

/**
 * Run the benchmark and append the result entry to the trajectory
 * file. A pre-trajectory single-snapshot file at outPath is converted
 * in place into a trajectory whose first entry is labeled "PR 2" (the
 * PR that introduced the snapshot). Prints progress to stdout.
 * Returns 0 when the two paths were bit-exact, 1 otherwise.
 */
int runPerfBench(const PerfBenchOptions &options);

} // namespace stfm

#endif // STFM_HARNESS_PERFBENCH_HH
