#include "harness/sweep.hh"

#include "common/logging.hh"
#include "harness/experiment.hh"

namespace stfm
{

std::vector<SweepResult>
runSweep(const std::string &title,
         const std::vector<Workload> &workload_list,
         std::size_t label_rows, std::uint64_t default_budget,
         std::ostream &os)
{
    STFM_ASSERT(!workload_list.empty(), "sweep '%s' needs workloads",
                title.c_str());
    // A sweep is one experiment spec: the named workloads under the
    // five paper schedulers on the baseline configuration. The engine
    // reproduces the historical job order and aggregate accumulation
    // exactly (see harness/experiment.hh).
    ExperimentSpec spec;
    spec.name = title;
    spec.title = title;
    spec.workloads = workload_list;
    spec.budget = default_budget;
    spec.labelRows = label_rows;

    const ExperimentResult result = runExperiment(spec);
    printExperiment(result, os, ReportStyle::Sweep);
    return result.aggregates;
}

} // namespace stfm
