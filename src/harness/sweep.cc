#include "harness/sweep.hh"

#include <iostream>

#include "harness/table.hh"

namespace stfm
{

std::vector<SweepResult>
runSweep(const std::string &title,
         const std::vector<Workload> &workload_list,
         std::size_t label_rows, std::uint64_t default_budget)
{
    STFM_ASSERT(!workload_list.empty(), "sweep needs workloads");
    SimConfig base = SimConfig::baseline(
        static_cast<unsigned>(workload_list.front().size()));
    base.instructionBudget =
        ExperimentRunner::budgetFromEnv(default_budget);
    ExperimentRunner runner(base);

    const auto schedulers = ExperimentRunner::paperSchedulers();
    std::vector<SweepResult> results(schedulers.size());

    std::cout << title << " (" << workload_list.size()
              << " workloads)\n\n";

    TextTable unfairness_table({"workload", "FR-FCFS", "FCFS",
                                "FRFCFS+Cap", "NFQ", "STFM"});
    for (std::size_t w = 0; w < workload_list.size(); ++w) {
        const Workload &workload = workload_list[w];
        std::vector<std::string> row{workloadLabel(workload)};
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            const RunOutcome outcome = runner.run(workload,
                                                  schedulers[s]);
            results[s].policyName = outcome.policyName;
            results[s].summary.add(outcome.metrics);
            row.push_back(fmt(outcome.metrics.unfairness));
        }
        if (w < label_rows)
            unfairness_table.addRow(std::move(row));
    }
    unfairness_table.print(std::cout);

    std::cout << "\nGMEAN over all " << workload_list.size()
              << " workloads:\n";
    TextTable summary({"scheduler", "unfairness", "weighted-speedup",
                       "sum-of-IPCs", "hmean-speedup"});
    for (const SweepResult &r : results) {
        summary.addRow({r.policyName, fmt(r.summary.unfairness.value()),
                        fmt(r.summary.weightedSpeedup.value()),
                        fmt(r.summary.sumOfIpcs.value()),
                        fmt(r.summary.hmeanSpeedup.value(), 3)});
    }
    summary.print(std::cout);
    return results;
}

} // namespace stfm
