#include "harness/sweep.hh"

#include "common/logging.hh"
#include "harness/table.hh"

namespace stfm
{

std::vector<SweepResult>
runSweep(const std::string &title,
         const std::vector<Workload> &workload_list,
         std::size_t label_rows, std::uint64_t default_budget,
         std::ostream &os)
{
    STFM_ASSERT(!workload_list.empty(), "sweep '%s' needs workloads",
                title.c_str());
    SimConfig base = SimConfig::baseline(
        static_cast<unsigned>(workload_list.front().size()));
    base.instructionBudget =
        ExperimentRunner::budgetFromEnv(default_budget);
    ExperimentRunner runner(base);

    const auto schedulers = ExperimentRunner::paperSchedulers();
    const std::vector<std::string> scheduler_labels{
        "FR-FCFS", "FCFS", "FRFCFS+Cap", "NFQ", "STFM"};
    std::vector<SweepResult> results(schedulers.size());

    os << title << " (" << workload_list.size() << " workloads)\n\n";

    // One job per (workload, scheduler) cell, executed across the
    // worker pool (STFM_JOBS wide by default). runMany() returns the
    // outcomes in job order, so the report below — and the aggregate
    // accumulation order — is identical to the old sequential loop.
    std::vector<RunJob> jobs;
    jobs.reserve(workload_list.size() * schedulers.size());
    for (const auto &workload : workload_list)
        for (const auto &scheduler : schedulers)
            jobs.push_back({workload, scheduler});
    const std::vector<RunOutcome> outcomes = runner.runMany(jobs);

    TextTable unfairness_table({"workload", "FR-FCFS", "FCFS",
                                "FRFCFS+Cap", "NFQ", "STFM"});
    TextTable failure_table({"workload", "scheduler", "error"});
    unsigned total_failures = 0;
    for (std::size_t w = 0; w < workload_list.size(); ++w) {
        const Workload &workload = workload_list[w];
        std::vector<std::string> row{workloadLabel(workload)};
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            const RunOutcome &outcome =
                outcomes[w * schedulers.size() + s];
            if (outcome.failed) {
                // Isolate the failure: report it, keep sweeping.
                ++results[s].failures;
                ++total_failures;
                failure_table.addRow({workloadLabel(workload),
                                      scheduler_labels[s],
                                      outcome.error});
                row.push_back("FAIL");
                continue;
            }
            results[s].policyName = outcome.policyName;
            results[s].summary.add(outcome.metrics);
            row.push_back(fmt(outcome.metrics.unfairness));
        }
        if (w < label_rows)
            unfairness_table.addRow(std::move(row));
    }
    unfairness_table.print(os);

    if (total_failures > 0) {
        os << "\nFailed runs (excluded from the GMEAN aggregates):\n";
        failure_table.print(os);
    }

    os << "\nGMEAN over all " << workload_list.size()
       << " workloads:\n";
    TextTable summary({"scheduler", "unfairness", "weighted-speedup",
                       "sum-of-IPCs", "hmean-speedup", "failed"});
    for (std::size_t s = 0; s < results.size(); ++s) {
        SweepResult &r = results[s];
        if (r.policyName.empty())
            r.policyName = scheduler_labels[s];
        if (r.summary.unfairness.count() == 0) {
            summary.addRow({r.policyName, "n/a", "n/a", "n/a", "n/a",
                            std::to_string(r.failures)});
            continue;
        }
        summary.addRow({r.policyName, fmt(r.summary.unfairness.value()),
                        fmt(r.summary.weightedSpeedup.value()),
                        fmt(r.summary.sumOfIpcs.value()),
                        fmt(r.summary.hmeanSpeedup.value(), 3),
                        std::to_string(r.failures)});
    }
    summary.print(os);
    return results;
}

} // namespace stfm
