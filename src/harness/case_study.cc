#include "harness/case_study.hh"

#include <iostream>

#include "harness/table.hh"

namespace stfm
{

void
runCaseStudy(const std::string &title, const Workload &workload,
             std::uint64_t default_budget)
{
    SimConfig base =
        SimConfig::baseline(static_cast<unsigned>(workload.size()));
    base.instructionBudget =
        ExperimentRunner::budgetFromEnv(default_budget);
    ExperimentRunner runner(base);

    std::cout << title << " (" << workloadLabel(workload) << ")\n\n";

    std::vector<std::string> headers{"scheduler"};
    for (const auto &name : workload)
        headers.push_back(name);
    headers.push_back("unfairness");
    TextTable slowdowns(std::move(headers));
    TextTable throughput({"scheduler", "weighted-speedup", "sum-of-IPCs",
                          "hmean-speedup"});

    for (const RunOutcome &o :
         runner.runAll(workload, ExperimentRunner::paperSchedulers())) {
        std::vector<std::string> row{o.policyName};
        for (const double s : o.metrics.slowdowns)
            row.push_back(fmt(s));
        row.push_back(fmt(o.metrics.unfairness));
        slowdowns.addRow(std::move(row));
        throughput.addRow({o.policyName, fmt(o.metrics.weightedSpeedup),
                           fmt(o.metrics.sumOfIpcs),
                           fmt(o.metrics.hmeanSpeedup, 3)});
    }

    slowdowns.print(std::cout);
    std::cout << '\n';
    throughput.print(std::cout);
}

} // namespace stfm
