#include "harness/case_study.hh"

#include <iostream>

#include "harness/experiment.hh"

namespace stfm
{

void
runCaseStudy(const std::string &title, const Workload &workload,
             std::uint64_t default_budget)
{
    // One workload under the five paper schedulers — the smallest
    // possible experiment spec.
    ExperimentSpec spec;
    spec.name = title;
    spec.title = title;
    spec.workloads = {workload};
    spec.budget = default_budget;

    printExperiment(runExperiment(spec), std::cout,
                    ReportStyle::CaseStudy);
}

} // namespace stfm
