/**
 * @file
 * The `stfm` command-line driver. One binary fronts the whole
 * experiment layer:
 *
 *   stfm run <spec.json> [flags]   execute a declarative experiment
 *   stfm validate <spec.json>      parse + resolve + validate, no run
 *   stfm list schedulers           scheduling policies and their knobs
 *   stfm list workloads            the named workload catalog
 *   stfm list figures              every registered paper figure
 *   stfm <figure> [flags]          run a registered figure (fig09, ...)
 *
 * Flags for `run` (figures parse the same set via runFigure):
 *   --json PATH       also emit machine-readable results
 *   --check           run under the integrity layer (STFM_CHECK=1)
 *   --reference       pin the cycle-by-cycle path (STFM_REFERENCE=1)
 *   --jobs N          worker-pool width (STFM_JOBS=N)
 *   --instructions N  per-thread budget override (STFM_INSTRUCTIONS=N)
 *   --full            full-size sweep for figures that sample
 */

#ifndef STFM_HARNESS_CLI_HH
#define STFM_HARNESS_CLI_HH

namespace stfm
{

/** Entry point for the stfm binary; returns the process exit code. */
int cliMain(int argc, char **argv);

} // namespace stfm

#endif // STFM_HARNESS_CLI_HH
