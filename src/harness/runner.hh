/**
 * @file
 * Experiment runner: builds CMP systems from workload definitions, runs
 * them under a scheduling policy, and computes the Section 6.2 metrics
 * against memoized alone-run (FR-FCFS) baselines.
 *
 * Runs are fault-isolated: a workload that throws SimError/CheckFailure
 * (bad configuration, integrity violation, cycle-limit overrun) yields
 * a RunOutcome with `failed` set instead of killing the whole sweep,
 * and can optionally be retried with a reseeded trace RNG for
 * transient-configuration cases.
 */

#ifndef STFM_HARNESS_RUNNER_HH
#define STFM_HARNESS_RUNNER_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/workloads.hh"
#include "sim/config.hh"
#include "sim/results.hh"
#include "sim/system.hh"
#include "stats/metrics.hh"
#include "trace/catalog.hh"

namespace stfm
{

/** One (workload, scheduler) pairing queued for execution. */
struct RunJob
{
    Workload workload;
    SchedulerConfig scheduler;
    /**
     * Base trace-RNG salt: 0 reproduces the canonical streams; a spec's
     * repeat > 1 runs the same pairing under distinct salts to expose
     * trace-stream sensitivity. Retries salt on top of this base.
     */
    std::uint64_t seedSalt = 0;
    /**
     * Device spec name/path for this job (sim/device_io.hh); layered
     * onto the base memory configuration before the run. Empty keeps
     * the runner's base device (the DDR2-800 defaults).
     */
    std::string device;
};

/** One workload run under one policy, with its metrics. */
struct RunOutcome
{
    std::string policyName;
    SimResult shared;
    MetricsReport metrics;
    /** The run (and any retries) failed; `metrics` is not valid. */
    bool failed = false;
    /** Failure description (what() of the last error) when failed. */
    std::string error;
    /** Attempts consumed (1 = first try succeeded / no retry). */
    unsigned attempts = 1;
    /** The run's stfm-telemetry-v1 document (Null unless telemetry
     *  sampling was enabled for the run). */
    Json telemetry;
    /** The run's Chrome trace document (Null unless tracing). */
    Json trace;

    bool hasTelemetry() const { return telemetry.type() != Json::Type::Null; }
    bool hasTrace() const { return trace.type() != Json::Type::Null; }
};

class ExperimentRunner
{
  public:
    /**
     * @param base Baseline system configuration; `cores` and the
     *             scheduler field are overridden per run.
     *
     * The environment overrides (EnvOverrides: STFM_INSTRUCTIONS,
     * STFM_REFERENCE, STFM_CHECK) are captured and layered onto the
     * base configuration here, so every run this runner performs
     * honors them.
     */
    explicit ExperimentRunner(SimConfig base);

    /**
     * Run @p workload (one benchmark name per core) under
     * @p scheduler. Alone baselines are computed (and cached) with
     * FR-FCFS on the same memory configuration. Never throws for
     * run-level failures: inspect RunOutcome::failed.
     *
     * @param seed_salt Base trace-RNG salt (see RunJob::seedSalt);
     *                  retry attempts add 1, 2, ... on top of it.
     * @param device    Device spec name/path (see RunJob::device);
     *                  empty keeps the base configuration's device.
     */
    RunOutcome run(const Workload &workload,
                   const SchedulerConfig &scheduler,
                   std::uint64_t seed_salt = 0,
                   const std::string &device = {});

    /**
     * Register a runner-local benchmark under @p name, shadowing any
     * catalog entry of the same name for this runner's workloads and
     * alone baselines. Lets experiment specs define inline synthetic
     * profiles (e.g. the malicious-DoS hog) without touching the global
     * catalog. Thread-safe: registration and lookup share a mutex, so
     * registering mid-runMany() is safe (runs already in flight resolve
     * against the catalog as it was when they looked up each name).
     */
    void addBenchmark(const std::string &name,
                      const BenchmarkProfile &profile);

    /**
     * Alone-run result of one benchmark on the base memory system (or,
     * when @p device is non-empty, the base system retargeted to that
     * device spec — baselines are cached per (benchmark, device)).
     * @throws SimError if the benchmark is unknown or its alone run
     *         cannot complete (callers inside run() convert this into
     *         a failed outcome).
     */
    const ThreadResult &aloneResult(const std::string &benchmark,
                                    const std::string &device = {});

    /**
     * Pre-seed the alone-baseline cache with an already computed
     * result under its exact cache key (see aloneSnapshot()). The
     * fleet tier shares baselines across worker processes through the
     * sweep manifest instead of recomputing them per worker.
     */
    void seedAloneBaseline(const std::string &key,
                           const ThreadResult &result);

    /** Snapshot of the alone cache (key -> baseline), for sharing. */
    std::map<std::string, ThreadResult> aloneSnapshot() const;

    /** Run every scheduler in @p schedulers on @p workload. */
    std::vector<RunOutcome> runAll(
        const Workload &workload,
        const std::vector<SchedulerConfig> &schedulers);

    /**
     * Execute @p jobs across a pool of worker threads and return the
     * outcomes in job order — results are written by job index, so the
     * output is byte-for-byte independent of scheduling interleaving.
     * Each job builds its own traces and CmpSystem (simulations share
     * nothing mutable); the only cross-job state, the alone-baseline
     * cache, is mutex-guarded. Failures stay contained in their
     * RunOutcome exactly as with run().
     *
     * @param threads Worker count; 0 = defaultJobs(). Clamped to the
     *                job count; 1 degenerates to a sequential loop on
     *                the caller's thread.
     */
    std::vector<RunOutcome> runMany(const std::vector<RunJob> &jobs,
                                    unsigned threads = 0);

    /**
     * Worker-pool width when the caller does not choose: the STFM_JOBS
     * environment variable if set to a positive integer, otherwise the
     * hardware concurrency (minimum 1).
     */
    static unsigned defaultJobs();

    const SimConfig &base() const { return base_; }

    /**
     * Total attempts per run (>= 1). Attempts past the first rerun the
     * workload with a reseeded trace RNG, recovering runs whose
     * failure is specific to one synthetic stream (e.g. a starvation
     * bound grazed by one unlucky arrival pattern).
     */
    void setMaxAttempts(unsigned attempts);
    unsigned maxAttempts() const { return maxAttempts_; }

    /**
     * Testing/fault-injection seam: invoked at the top of every run
     * attempt with the workload and the 1-based attempt number. A hook
     * that throws SimError fails that attempt exactly as a simulation
     * failure would, driving the bounded-retry machinery (and its
     * seed-derivation rule, base + attempt - 1) deterministically.
     * Not for production use; see src/fleet/fault.hh.
     */
    void setAttemptHook(
        std::function<void(const Workload &, unsigned attempt)> hook);

    /** The five evaluation policies in the paper's presentation order. */
    static std::vector<SchedulerConfig> paperSchedulers();

    /** Instruction budget override from STFM_INSTRUCTIONS, if set. */
    static std::uint64_t budgetFromEnv(std::uint64_t fallback);

    /**
     * Apply the common bench command-line flags: `--check` enables the
     * full integrity layer (equivalent to STFM_CHECK=1) for every run
     * the bench performs. Unknown arguments are ignored.
     */
    static void applyBenchFlags(int argc, char **argv);

  private:
    SimConfig configFor(const Workload &workload,
                        const SchedulerConfig &scheduler,
                        const std::string &device) const;
    /**
     * Alone-cache key. The device tag is appended only when non-empty,
     * keeping base-device keys byte-identical to the historical form —
     * fleet manifests written before the device layer still seed the
     * cache correctly.
     */
    std::string aloneKey(const std::string &benchmark,
                         const std::string &device) const;
    /** Runner-local benchmark if registered, else the global catalog. */
    const BenchmarkProfile &profileFor(const std::string &name) const;
    /** One attempt; throws SimError/CheckFailure on failure. */
    RunOutcome attemptRun(const Workload &workload,
                          const SchedulerConfig &scheduler,
                          std::uint64_t seed_salt, unsigned attempt,
                          const std::string &device);

    SimConfig base_;
    unsigned maxAttempts_ = 1;
    std::function<void(const Workload &, unsigned)> attemptHook_;
    /**
     * Spec-registered inline benchmarks (see addBenchmark()).
     * catalogMutex_ guards registration against concurrent lookup from
     * runMany() workers; returned references stay valid because
     * std::map nodes are address-stable and entries are overwritten,
     * never erased.
     */
    std::map<std::string, BenchmarkProfile> customBenchmarks_;
    mutable std::mutex catalogMutex_;
    /**
     * Memoized alone-run baselines, shared by concurrent runMany()
     * workers. aloneMutex_ is held for the whole lookup-or-compute:
     * this serializes baseline construction (each key is simulated
     * exactly once, whichever worker gets there first) and makes the
     * returned references safe to read afterwards — std::map node
     * addresses are stable under later insertions, and a published
     * entry is never mutated again.
     */
    std::map<std::string, ThreadResult> aloneCache_;
    mutable std::mutex aloneMutex_;
};

} // namespace stfm

#endif // STFM_HARNESS_RUNNER_HH
