/**
 * @file
 * Experiment runner: builds CMP systems from workload definitions, runs
 * them under a scheduling policy, and computes the Section 6.2 metrics
 * against memoized alone-run (FR-FCFS) baselines.
 */

#ifndef STFM_HARNESS_RUNNER_HH
#define STFM_HARNESS_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "harness/workloads.hh"
#include "sim/config.hh"
#include "sim/results.hh"
#include "sim/system.hh"
#include "stats/metrics.hh"

namespace stfm
{

/** One workload run under one policy, with its metrics. */
struct RunOutcome
{
    std::string policyName;
    SimResult shared;
    MetricsReport metrics;
};

class ExperimentRunner
{
  public:
    /**
     * @param base Baseline system configuration; `cores` and the
     *             scheduler field are overridden per run.
     *
     * The per-thread instruction budget honors the STFM_INSTRUCTIONS
     * environment variable if set (sweeps can be scaled up for tighter
     * convergence at the cost of runtime).
     */
    explicit ExperimentRunner(SimConfig base);

    /**
     * Run @p workload (one benchmark name per core) under
     * @p scheduler. Alone baselines are computed (and cached) with
     * FR-FCFS on the same memory configuration.
     */
    RunOutcome run(const Workload &workload,
                   const SchedulerConfig &scheduler);

    /** Alone-run result of one benchmark on the base memory system. */
    const ThreadResult &aloneResult(const std::string &benchmark);

    /** Run every scheduler in @p schedulers on @p workload. */
    std::vector<RunOutcome> runAll(
        const Workload &workload,
        const std::vector<SchedulerConfig> &schedulers);

    const SimConfig &base() const { return base_; }

    /** The five evaluation policies in the paper's presentation order. */
    static std::vector<SchedulerConfig> paperSchedulers();

    /** Instruction budget override from STFM_INSTRUCTIONS, if set. */
    static std::uint64_t budgetFromEnv(std::uint64_t fallback);

  private:
    SimConfig configFor(const Workload &workload,
                        const SchedulerConfig &scheduler) const;
    std::string aloneKey(const std::string &benchmark) const;

    SimConfig base_;
    std::map<std::string, ThreadResult> aloneCache_;
};

} // namespace stfm

#endif // STFM_HARNESS_RUNNER_HH
