/**
 * @file
 * The generalized experiment engine: executes an ExperimentSpec on
 * ExperimentRunner::runMany and renders the outcome as the classic
 * human-readable report and/or machine-readable JSON.
 *
 * The engine is the single execution path behind the sweep and
 * case-study drivers, the figure registry and the stfm CLI. Resolution
 * is strictly layered:
 *
 *   SimConfig::baseline(cores of the first workload)
 *     + spec "config" overrides (sim/config_io applyJson)
 *     + spec "budget"
 *     + environment overrides (EnvOverrides)
 *     -> validateConfig() -> run.
 *
 * Job order is workload-major, repeat-mid, scheduler-minor — for
 * repeat == 1 exactly the order the legacy runSweep used, so a spec
 * reproducing a figure yields bit-identical aggregates (runMany writes
 * outcomes by job index, and GeoMean accumulation follows job order).
 */

#ifndef STFM_HARNESS_EXPERIMENT_HH
#define STFM_HARNESS_EXPERIMENT_HH

#include <iostream>
#include <string>
#include <vector>

#include "harness/env_overrides.hh"
#include "harness/spec.hh"
#include "harness/sweep.hh"

namespace stfm
{

/** A fully resolved + executed experiment. */
struct ExperimentResult
{
    /** The spec as given (echoed into results files). */
    ExperimentSpec spec;
    /** Resolved workload list: explicit workloads, then samples. */
    std::vector<Workload> workloads;
    /** Resolved scheduler list (spec's, or the five paper policies). */
    std::vector<SchedulerEntry> schedulers;
    /** Fully resolved base configuration every run derived from. */
    SimConfig base;
    /** Environment overrides active during the run. */
    EnvOverrides env;
    /**
     * One outcome per (row, scheduler): row r, scheduler s is
     * outcomes[r * schedulers.size() + s]. A row is one (workload,
     * repetition) pairing: row = workloadIndex * repeat + repetition.
     */
    std::vector<RunOutcome> outcomes;
    /** Per-scheduler aggregates over all rows (failures excluded). */
    std::vector<SweepResult> aggregates;

    std::size_t rows() const { return workloads.size() * spec.repeat; }

    const Workload &
    rowWorkload(std::size_t row) const
    {
        return workloads[row / spec.repeat];
    }

    unsigned
    rowRepetition(std::size_t row) const
    {
        return static_cast<unsigned>(row % spec.repeat);
    }

    const RunOutcome &
    outcome(std::size_t row, std::size_t scheduler) const
    {
        return outcomes[row * schedulers.size() + scheduler];
    }
};

/** Report rendering style. */
enum class ReportStyle
{
    /** Sweep report for > 1 row, case study for a single row. */
    Auto,
    /** Per-workload unfairness rows + GMEAN tables (Figures 9/11/12). */
    Sweep,
    /** Per-thread slowdown + throughput tables (Figures 6/7/8/10/13). */
    CaseStudy,
};

/**
 * The fully resolved execution plan of a spec: everything derived and
 * validated, nothing yet run. The plan is a pure function of the spec
 * plus the captured environment, so two processes resolving the same
 * spec under the same environment derive byte-identical job grids —
 * the contract the fleet tier (src/fleet/) builds on: a supervisor
 * ships only a job *range* and the worker re-derives the grid.
 */
struct ExperimentPlan
{
    ExperimentSpec spec;
    std::vector<Workload> workloads;
    std::vector<SchedulerEntry> schedulers;
    SimConfig base;
    EnvOverrides env;
    /** Workload-major, repeat-mid, scheduler-minor (see above). */
    std::vector<RunJob> jobs;

    std::size_t rows() const { return workloads.size() * spec.repeat; }
    /** Jobs per result row (= scheduler count). */
    std::size_t jobsPerRow() const { return schedulers.size(); }
};

/**
 * Resolve and validate @p spec into its execution plan. @throws
 * SimError on spec-level problems (unknown workloads, invalid
 * configuration, scheduler/core-count mismatches).
 */
ExperimentPlan planExperiment(const ExperimentSpec &spec);

/** An ExperimentResult shell for @p plan (outcomes still empty). */
ExperimentResult resultFromPlan(const ExperimentPlan &plan);

/**
 * Configure @p runner (constructed over plan.base) exactly as
 * runExperiment would: spec attempts and inline benchmarks.
 */
void configureRunner(ExperimentRunner &runner,
                     const ExperimentPlan &plan);

/**
 * (Re)compute @p result.aggregates from its outcomes, in job order
 * with failures excluded — the exact accumulation the legacy sweep
 * performed, shared by the in-process and fleet merge paths.
 */
void aggregateOutcomes(ExperimentResult &result);

/** Expand the spec's workload list (explicit + sampled). */
std::vector<Workload> resolveWorkloads(const ExperimentSpec &spec);

/**
 * Resolve the spec's base configuration (baseline + overrides + budget
 * + @p env) without running anything. @throws SimError (including
 * every validateConfig problem) on an invalid configuration.
 */
SimConfig resolveConfig(const ExperimentSpec &spec,
                        const EnvOverrides &env);

/**
 * Execute @p spec: resolve, validate, fan the (workload x repeat x
 * scheduler) grid out over the worker pool, and aggregate. Run-level
 * failures stay contained in their RunOutcome; spec-level problems
 * (unknown workload names, invalid configuration) throw SimError.
 */
ExperimentResult runExperiment(const ExperimentSpec &spec);

/** Render the human-readable report. */
void printExperiment(const ExperimentResult &result,
                     std::ostream &os = std::cout,
                     ReportStyle style = ReportStyle::Auto);

/**
 * The machine-readable results document ("stfm-results-v1"): spec
 * echo, active env overrides, the full resolved configuration, every
 * run's metrics and per-thread stats, and the per-scheduler aggregates.
 */
Json resultsJson(const ExperimentResult &result);

/** Write resultsJson pretty-printed to @p path. @throws SimError. */
void writeResultsJson(const ExperimentResult &result,
                      const std::string &path);

/**
 * Write every run's observability artifacts (telemetry documents,
 * Chrome traces) to the paths the resolved configuration names,
 * defaulting the telemetry path to "<name>_telemetry.json". Multi-run
 * experiments tag each path with workload + scheduler. Returns the
 * paths written (empty when observability was off). @throws SimError
 * on I/O failure.
 */
std::vector<std::string> writeObsArtifacts(const ExperimentResult &result);

} // namespace stfm

#endif // STFM_HARNESS_EXPERIMENT_HH
