/**
 * @file
 * The harness's environment-variable overrides, captured in one place.
 *
 * Four variables tune every harness entry point (benches, the stfm CLI,
 * tests):
 *
 *   - STFM_INSTRUCTIONS=<n>  per-thread instruction budget;
 *   - STFM_REFERENCE=1       pin the cycle-by-cycle reference path
 *                            (fastForward off) — the oracle for perf
 *                            comparisons;
 *   - STFM_CHECK=1           enable the full integrity layer (shadow
 *                            protocol checker + watchdogs);
 *   - STFM_JOBS=<n>          worker-pool width for runMany();
 *   - STFM_TELEMETRY=1|path  enable epoch telemetry sampling ("1" uses
 *                            the default output path; any other value
 *                            is the output path itself);
 *   - STFM_TRACE=<path>      export a Chrome trace_event file;
 *   - STFM_DEVICE=<name>     run on a DRAM device spec: a built-in
 *                            preset name or a JSON spec file path
 *                            (see sim/device_io.hh).
 *
 * EnvOverrides::capture() snapshots them once, apply() layers them onto
 * a resolved SimConfig at spec-resolution time, and toJson() records
 * exactly which overrides took effect so a results file is
 * self-describing. "0"/empty means unset for the boolean variables,
 * matching the historical behavior of the scattered getenv() calls this
 * helper replaces.
 */

#ifndef STFM_HARNESS_ENV_OVERRIDES_HH
#define STFM_HARNESS_ENV_OVERRIDES_HH

#include <cstdint>
#include <optional>

#include "common/json.hh"
#include "sim/config.hh"

namespace stfm
{

struct EnvOverrides
{
    /** STFM_INSTRUCTIONS, when set to a positive integer. */
    std::optional<std::uint64_t> instructionBudget;
    /** STFM_REFERENCE set (non-"0"): force the reference path. */
    bool reference = false;
    /** STFM_CHECK set (non-"0"): enable the full integrity layer. */
    bool check = false;
    /** STFM_JOBS, when set to a positive integer. */
    std::optional<unsigned> jobs;
    /** STFM_TELEMETRY set (non-"0"): enable telemetry sampling. */
    bool telemetry = false;
    /** STFM_TELEMETRY's value when it names an output path (any value
     *  other than "1"). Empty means "use the configured default". */
    std::string telemetryOutput;
    /** STFM_TRACE: Chrome trace output path (empty = tracing off). */
    std::string tracePath;
    /** STFM_DEVICE: device spec name or path (empty = config's own). */
    std::string device;

    /** Snapshot the process environment. */
    static EnvOverrides capture();

    /** True when at least one override is active. */
    bool any() const
    {
        return instructionBudget.has_value() || reference || check ||
               jobs.has_value() || telemetry || !tracePath.empty() ||
               !device.empty();
    }

    /** Layer the active overrides onto @p config. */
    void apply(SimConfig &config) const;

    /** Worker-pool width: STFM_JOBS, else @p fallback. */
    unsigned jobsOr(unsigned fallback) const
    {
        return jobs.value_or(fallback);
    }

    /**
     * The active overrides as a JSON object (only the variables that
     * are set appear), for the results-file echo.
     */
    Json toJson() const;
};

} // namespace stfm

#endif // STFM_HARNESS_ENV_OVERRIDES_HH
