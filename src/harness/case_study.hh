/**
 * @file
 * Shared driver for the paper's case-study figures: run one workload
 * under all five schedulers and print the per-thread slowdown table,
 * the unfairness, and the three throughput metrics — the two panels of
 * Figures 6, 7, 8, 10 and 13.
 */

#ifndef STFM_HARNESS_CASE_STUDY_HH
#define STFM_HARNESS_CASE_STUDY_HH

#include <cstdint>
#include <string>

#include "harness/runner.hh"

namespace stfm
{

/**
 * Run @p workload on a baseline system sized to it under all five
 * evaluation schedulers and print both panels.
 *
 * @param title          Heading printed above the tables.
 * @param workload       One benchmark name per core.
 * @param default_budget Per-thread instruction budget (honors the
 *                       STFM_INSTRUCTIONS environment override).
 */
void runCaseStudy(const std::string &title, const Workload &workload,
                  std::uint64_t default_budget = 60000);

} // namespace stfm

#endif // STFM_HARNESS_CASE_STUDY_HH
