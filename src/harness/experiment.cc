#include "harness/experiment.hh"

#include <cstdio>
#include <set>

#include "common/logging.hh"
#include "harness/table.hh"
#include "sim/config_io.hh"
#include "sim/device_io.hh"

namespace stfm
{

namespace
{

std::vector<SchedulerEntry>
paperEntries()
{
    std::vector<SchedulerEntry> entries;
    for (const SchedulerConfig &config :
         ExperimentRunner::paperSchedulers())
        entries.push_back({toString(config.kind), config, ""});
    return entries;
}

/**
 * Scheduler name to print for a run. A defaulted label (the policy
 * name from toString) defers to the policy's self-reported name —
 * e.g. "FR-FCFS+Cap" rather than the terse "FRFCFS+Cap" — exactly as
 * the legacy reports did; an explicit spec label always wins.
 */
std::string
displayLabel(const SchedulerEntry &entry, const std::string &policy_name)
{
    if (!policy_name.empty() && entry.label == toString(entry.config.kind))
        return policy_name;
    return entry.label;
}

/** Row label: workload benchmarks, plus the repetition when > 1. */
std::string
rowLabel(const ExperimentResult &result, std::size_t row)
{
    std::string label = workloadLabel(result.rowWorkload(row));
    if (result.spec.repeat > 1) {
        label += formatMessage("#%u", result.rowRepetition(row) + 1);
    }
    return label;
}

void
printSweepReport(const ExperimentResult &result, std::ostream &os)
{
    const std::size_t rows = result.rows();
    os << result.spec.heading() << " (" << rows << " workloads)\n\n";

    std::vector<std::string> headers{"workload"};
    for (const SchedulerEntry &entry : result.schedulers)
        headers.push_back(entry.label);
    TextTable unfairness_table(std::move(headers));
    TextTable failure_table({"workload", "scheduler", "error"});
    unsigned total_failures = 0;

    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<std::string> row{rowLabel(result, r)};
        for (std::size_t s = 0; s < result.schedulers.size(); ++s) {
            const RunOutcome &outcome = result.outcome(r, s);
            if (outcome.failed) {
                ++total_failures;
                failure_table.addRow({rowLabel(result, r),
                                      result.schedulers[s].label,
                                      outcome.error});
                row.push_back("FAIL");
                continue;
            }
            row.push_back(fmt(outcome.metrics.unfairness));
        }
        if (r < result.spec.labelRows)
            unfairness_table.addRow(std::move(row));
    }
    unfairness_table.print(os);

    if (total_failures > 0) {
        os << "\nFailed runs (excluded from the GMEAN aggregates):\n";
        failure_table.print(os);
    }

    os << "\nGMEAN over all " << rows << " workloads:\n";
    TextTable summary({"scheduler", "unfairness", "weighted-speedup",
                       "sum-of-IPCs", "hmean-speedup", "failed"});
    for (const SweepResult &r : result.aggregates) {
        if (r.summary.unfairness.count() == 0) {
            summary.addRow({r.policyName, "n/a", "n/a", "n/a", "n/a",
                            std::to_string(r.failures)});
            continue;
        }
        summary.addRow({r.policyName, fmt(r.summary.unfairness.value()),
                        fmt(r.summary.weightedSpeedup.value()),
                        fmt(r.summary.sumOfIpcs.value()),
                        fmt(r.summary.hmeanSpeedup.value(), 3),
                        std::to_string(r.failures)});
    }
    summary.print(os);
}

void
printCaseStudyReport(const ExperimentResult &result, std::ostream &os)
{
    const Workload &workload = result.workloads.front();
    os << result.spec.heading() << " (" << workloadLabel(workload)
       << ")\n\n";

    std::vector<std::string> headers{"scheduler"};
    for (const std::string &name : workload)
        headers.push_back(name);
    headers.push_back("unfairness");
    TextTable slowdowns(std::move(headers));
    TextTable throughput({"scheduler", "weighted-speedup", "sum-of-IPCs",
                          "hmean-speedup"});

    for (std::size_t s = 0; s < result.schedulers.size(); ++s) {
        const RunOutcome &o = result.outcome(0, s);
        const std::string label =
            displayLabel(result.schedulers[s], o.policyName);
        if (o.failed) {
            std::vector<std::string> row{label};
            for (std::size_t t = 0; t < workload.size() + 1; ++t)
                row.push_back("FAIL");
            slowdowns.addRow(std::move(row));
            throughput.addRow({label, "FAIL", "FAIL", "FAIL"});
            continue;
        }
        std::vector<std::string> row{label};
        for (const double slowdown : o.metrics.slowdowns)
            row.push_back(fmt(slowdown));
        row.push_back(fmt(o.metrics.unfairness));
        slowdowns.addRow(std::move(row));
        throughput.addRow({label, fmt(o.metrics.weightedSpeedup),
                           fmt(o.metrics.sumOfIpcs),
                           fmt(o.metrics.hmeanSpeedup, 3)});
    }

    slowdowns.print(os);
    os << '\n';
    throughput.print(os);
}

Json
toJson(const ThreadResult &thread)
{
    Json out = Json::object();
    out.set("instructions", thread.instructions);
    out.set("cycles", thread.cycles);
    out.set("ipc", thread.ipc());
    out.set("mcpi", thread.mcpi());
    out.set("mpki", thread.mpki());
    out.set("rowHitRate", thread.rowHitRate());
    out.set("memStallCycles", thread.memStallCycles);
    out.set("dramReads", thread.dramReads);
    out.set("dramWrites", thread.dramWrites);
    return out;
}

} // namespace

std::vector<Workload>
resolveWorkloads(const ExperimentSpec &spec)
{
    std::vector<Workload> workloads = spec.workloads;
    if (spec.sample) {
        for (Workload &w :
             sampleWorkloads(spec.sample->cores, spec.sample->count,
                             spec.sample->seed))
            workloads.push_back(std::move(w));
    }
    if (workloads.empty())
        throw SimError("spec resolves to zero workloads");
    return workloads;
}

SimConfig
resolveConfig(const ExperimentSpec &spec, const EnvOverrides &env)
{
    const std::vector<Workload> workloads = resolveWorkloads(spec);
    SimConfig base = simConfigFromJson(
        spec.config, static_cast<unsigned>(workloads.front().size()));
    if (spec.budget)
        base.instructionBudget = spec.budget;
    // Spec-level telemetry block wins over "config.telemetry"; the
    // environment (STFM_TELEMETRY / STFM_TRACE) wins over both.
    if (!spec.telemetry.asObject("telemetry").empty())
        applyJson(spec.telemetry, base.telemetry, "telemetry");
    env.apply(base);
    validateOrThrow(base);
    return base;
}

ExperimentPlan
planExperiment(const ExperimentSpec &spec)
{
    ExperimentPlan plan;
    plan.spec = spec;
    plan.env = EnvOverrides::capture();
    plan.workloads = resolveWorkloads(spec);
    plan.schedulers =
        spec.schedulers.empty() ? paperEntries() : spec.schedulers;
    plan.base = resolveConfig(spec, plan.env);

    // Cross-device axis: expand to every (device, scheduler) pair,
    // device-major so a report groups one device's columns together.
    // Entries pinned to their own device run once, after the grid.
    if (!spec.devices.empty()) {
        std::vector<SchedulerEntry> expanded;
        std::vector<SchedulerEntry> pinned;
        for (const SchedulerEntry &entry : plan.schedulers) {
            if (!entry.device.empty())
                pinned.push_back(entry);
        }
        for (const std::string &device : spec.devices) {
            for (const SchedulerEntry &entry : plan.schedulers) {
                if (!entry.device.empty())
                    continue;
                SchedulerEntry e = entry;
                e.device = device;
                e.label += "@" + device;
                expanded.push_back(std::move(e));
            }
        }
        expanded.insert(expanded.end(), pinned.begin(), pinned.end());
        if (expanded.empty()) {
            throw SimError("spec.devices: every scheduler entry pins "
                           "its own device, leaving nothing to expand");
        }
        plan.schedulers = std::move(expanded);
    }

    // Validate every (workload size, scheduler) pairing the grid will
    // produce — per-thread weight/share lists must fit each core count.
    std::set<std::size_t> sizes;
    for (const Workload &w : plan.workloads) {
        if (w.empty())
            throw SimError("spec contains an empty workload");
        sizes.insert(w.size());
    }
    for (const std::size_t size : sizes) {
        for (const SchedulerEntry &entry : plan.schedulers) {
            SimConfig probe = plan.base;
            probe.cores = static_cast<unsigned>(size);
            probe.scheduler = entry.config;
            // Resolve the device here too, so an unknown device name
            // or a spec inconsistent with the overrides fails the plan
            // rather than each run.
            if (!entry.device.empty())
                applyDevice(probe.memory, entry.device);
            const std::vector<std::string> problems =
                validateConfig(probe);
            if (!problems.empty()) {
                throw SimError(formatMessage(
                    "scheduler '%s' invalid for %zu-core workloads: %s",
                    entry.label.c_str(), size, problems.front().c_str()));
            }
        }
    }

    plan.jobs.reserve(plan.rows() * plan.schedulers.size());
    for (const Workload &workload : plan.workloads) {
        for (unsigned rep = 0; rep < spec.repeat; ++rep) {
            for (const SchedulerEntry &entry : plan.schedulers)
                plan.jobs.push_back({workload, entry.config,
                                     spec.seed + rep, entry.device});
        }
    }
    return plan;
}

ExperimentResult
resultFromPlan(const ExperimentPlan &plan)
{
    ExperimentResult result;
    result.spec = plan.spec;
    result.env = plan.env;
    result.workloads = plan.workloads;
    result.schedulers = plan.schedulers;
    result.base = plan.base;
    return result;
}

void
configureRunner(ExperimentRunner &runner, const ExperimentPlan &plan)
{
    runner.setMaxAttempts(plan.spec.attempts);
    for (const auto &[name, profile] : plan.spec.benchmarks)
        runner.addBenchmark(name, profile);
}

void
aggregateOutcomes(ExperimentResult &result)
{
    result.aggregates.assign(result.schedulers.size(), SweepResult{});
    for (std::size_t s = 0; s < result.schedulers.size(); ++s)
        result.aggregates[s].policyName = result.schedulers[s].label;
    for (std::size_t r = 0; r < result.rows(); ++r) {
        for (std::size_t s = 0; s < result.schedulers.size(); ++s) {
            const RunOutcome &outcome = result.outcome(r, s);
            if (outcome.failed) {
                ++result.aggregates[s].failures;
                continue;
            }
            result.aggregates[s].policyName =
                displayLabel(result.schedulers[s], outcome.policyName);
            result.aggregates[s].summary.add(outcome.metrics);
        }
    }
}

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    const ExperimentPlan plan = planExperiment(spec);
    ExperimentResult result = resultFromPlan(plan);

    ExperimentRunner runner(plan.base);
    configureRunner(runner, plan);
    result.outcomes = runner.runMany(plan.jobs, spec.jobs);

    // Per-scheduler aggregates in job order (failures excluded), the
    // exact accumulation the legacy sweep performed.
    aggregateOutcomes(result);
    return result;
}

void
printExperiment(const ExperimentResult &result, std::ostream &os,
                ReportStyle style)
{
    if (style == ReportStyle::Auto) {
        style = result.rows() == 1 ? ReportStyle::CaseStudy
                                   : ReportStyle::Sweep;
    }
    if (style == ReportStyle::CaseStudy)
        printCaseStudyReport(result, os);
    else
        printSweepReport(result, os);
}

Json
resultsJson(const ExperimentResult &result)
{
    Json out = Json::object();
    out.set("schema", "stfm-results-v1");
    out.set("name", result.spec.name);
    out.set("title", result.spec.heading());
    out.set("spec", toJson(result.spec));
    out.set("envOverrides", result.env.toJson());
    out.set("resolvedConfig", toJson(result.base));

    Json schedulers = Json::array();
    for (const SchedulerEntry &entry : result.schedulers)
        schedulers.push(toJson(entry));
    out.set("schedulers", std::move(schedulers));

    Json runs = Json::array();
    for (std::size_t r = 0; r < result.rows(); ++r) {
        for (std::size_t s = 0; s < result.schedulers.size(); ++s) {
            const RunOutcome &o = result.outcome(r, s);
            Json run = Json::object();
            Json workload = Json::array();
            for (const std::string &bench : result.rowWorkload(r))
                workload.push(Json(bench));
            run.set("workload", std::move(workload));
            run.set("repetition", result.rowRepetition(r));
            run.set("scheduler", result.schedulers[s].label);
            if (!result.schedulers[s].device.empty())
                run.set("device", result.schedulers[s].device);
            run.set("failed", o.failed);
            run.set("attempts", o.attempts);
            if (o.failed) {
                run.set("error", o.error);
                runs.push(std::move(run));
                continue;
            }
            Json metrics = Json::object();
            Json slowdowns = Json::array();
            for (const double v : o.metrics.slowdowns)
                slowdowns.push(Json(v));
            metrics.set("slowdowns", std::move(slowdowns));
            metrics.set("unfairness", o.metrics.unfairness);
            metrics.set("weightedSpeedup", o.metrics.weightedSpeedup);
            metrics.set("hmeanSpeedup", o.metrics.hmeanSpeedup);
            metrics.set("sumOfIpcs", o.metrics.sumOfIpcs);
            run.set("metrics", std::move(metrics));
            Json threads = Json::array();
            for (const ThreadResult &thread : o.shared.threads)
                threads.push(toJson(thread));
            run.set("threads", std::move(threads));
            run.set("totalCycles", o.shared.totalCycles);
            runs.push(std::move(run));
        }
    }
    out.set("runs", std::move(runs));

    Json aggregates = Json::array();
    for (const SweepResult &r : result.aggregates) {
        Json agg = Json::object();
        agg.set("scheduler", r.policyName);
        agg.set("failed", r.failures);
        if (r.summary.unfairness.count() > 0) {
            agg.set("unfairness", r.summary.unfairness.value());
            agg.set("weightedSpeedup",
                    r.summary.weightedSpeedup.value());
            agg.set("sumOfIpcs", r.summary.sumOfIpcs.value());
            agg.set("hmeanSpeedup", r.summary.hmeanSpeedup.value());
        }
        aggregates.push(std::move(agg));
    }
    out.set("aggregates", std::move(aggregates));
    return out;
}

void
writeResultsJson(const ExperimentResult &result, const std::string &path)
{
    writeJsonFile(resultsJson(result), path);
}

namespace
{

/** File-name-safe form of a workload/scheduler label. */
std::string
sanitizeTag(const std::string &label)
{
    std::string out;
    for (const char c : label) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
        out += ok ? c : '-';
    }
    return out;
}

/** Insert ".<tag>" before @p path's extension ("a.json" -> "a.t.json"). */
std::string
taggedPath(const std::string &path, const std::string &tag)
{
    if (tag.empty())
        return path;
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.find_last_of("/\\");
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "." + tag;
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

std::string
runTag(const ExperimentResult &result, std::size_t row, std::size_t s)
{
    std::string tag = sanitizeTag(workloadLabel(result.rowWorkload(row)));
    if (result.spec.repeat > 1)
        tag += formatMessage("-r%u", result.rowRepetition(row) + 1);
    tag += "." + sanitizeTag(result.schedulers[s].label);
    return tag;
}

} // namespace

std::vector<std::string>
writeObsArtifacts(const ExperimentResult &result)
{
    std::vector<std::string> written;
    const TelemetryConfig &telemetry = result.base.telemetry;
    if (!telemetry.collecting())
        return written;

    std::string telemetry_path = telemetry.output;
    if (telemetry.enabled && telemetry_path.empty())
        telemetry_path = result.spec.name + "_telemetry.json";

    // With a single document-bearing run the configured paths are used
    // as-is; a grid of runs tags each artifact with its workload and
    // scheduler so the documents don't overwrite each other.
    std::size_t docs = 0;
    for (const RunOutcome &o : result.outcomes) {
        if (o.hasTelemetry() || o.hasTrace())
            ++docs;
    }

    for (std::size_t r = 0; r < result.rows(); ++r) {
        for (std::size_t s = 0; s < result.schedulers.size(); ++s) {
            const RunOutcome &o = result.outcome(r, s);
            const std::string tag = docs > 1 ? runTag(result, r, s) : "";
            if (o.hasTelemetry() && !telemetry_path.empty()) {
                const std::string path = taggedPath(telemetry_path, tag);
                writeJsonFile(o.telemetry, path);
                written.push_back(path);
            }
            if (o.hasTrace() && !telemetry.trace.empty()) {
                const std::string path =
                    taggedPath(telemetry.trace, tag);
                writeJsonFile(o.trace, path);
                written.push_back(path);
            }
        }
    }
    return written;
}

} // namespace stfm
