/**
 * @file
 * Column-aligned plain-text table printer used by the bench binaries to
 * emit the rows/series of the paper's figures and tables.
 */

#ifndef STFM_HARNESS_TABLE_HH
#define STFM_HARNESS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace stfm
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p precision digits after the decimal point. */
std::string fmt(double value, int precision = 2);

} // namespace stfm

#endif // STFM_HARNESS_TABLE_HH
