/**
 * @file
 * Workload definitions: the specific multiprogrammed mixes of the
 * paper's case studies plus category-balanced random sampling for the
 * averaged sweeps (Figures 9, 11 and 12; Table 5).
 */

#ifndef STFM_HARNESS_WORKLOADS_HH
#define STFM_HARNESS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stfm
{

/** A multiprogrammed workload: one benchmark name per core. */
using Workload = std::vector<std::string>;

/** The named case-study workloads of the evaluation section. */
namespace workloads
{

/** Figure 1 left: 4-core motivation workload. */
Workload fig1FourCore();
/** Figure 1 right: 8-core motivation workload. */
Workload fig1EightCore();
/** Figure 6: memory-intensive 4-core case study. */
Workload caseIntensive();
/** Figure 7: mixed-behavior 4-core case study. */
Workload caseMixed();
/** Figure 8: non-memory-intensive 4-core case study. */
Workload caseNonIntensive();
/** Figure 10: 8-core non-intensive case study. */
Workload eightCoreCase();
/** Figure 13: desktop-application workload. */
Workload desktop();
/** Figure 14: the thread-weight evaluation workload. */
Workload weighted();

/** Figure 12: the three 16-core workloads (high16, high8+low8, low16). */
std::vector<Workload> sixteenCore();

/** The 10 sample 8-core workloads shown individually in Figure 11. */
std::vector<Workload> eightCoreSamples();

} // namespace workloads

/**
 * Sample @p count category-balanced workloads of @p cores benchmarks
 * each, mirroring the paper's "combinations of benchmarks from
 * different categories". Deterministic in @p seed.
 */
std::vector<Workload> sampleWorkloads(unsigned cores, unsigned count,
                                      std::uint64_t seed);

/** Render "a+b+c" for report labels. */
std::string workloadLabel(const Workload &workload);

} // namespace stfm

#endif // STFM_HARNESS_WORKLOADS_HH
