/**
 * @file
 * Shared driver for the averaged sweeps (Figures 9, 11 and 12): run a
 * set of workloads under all five schedulers and print each workload's
 * unfairness plus the GMEAN unfairness and throughput metrics.
 *
 * Sweeps degrade gracefully: a workload whose run fails (SimError or
 * an integrity CheckFailure) is reported as FAIL in the table — with
 * the error listed below it — and excluded from the aggregates, while
 * every remaining workload still runs.
 */

#ifndef STFM_HARNESS_SWEEP_HH
#define STFM_HARNESS_SWEEP_HH

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "stats/summary.hh"

namespace stfm
{

/** Aggregates of one scheduler over a sweep. */
struct SweepResult
{
    std::string policyName;
    SweepSummary summary;
    /** Workload runs that failed under this scheduler. */
    unsigned failures = 0;
};

/**
 * Run @p workload_list under all five evaluation schedulers.
 *
 * @param title           Heading.
 * @param label_rows      Print a per-workload unfairness row for the
 *                        first this-many workloads (the "sample
 *                        workloads" panels of Figures 9 and 11).
 * @param default_budget  Per-thread instruction budget (honors
 *                        STFM_INSTRUCTIONS).
 * @param os              Report sink (default std::cout).
 * @return one aggregate per scheduler, in paperSchedulers() order.
 */
std::vector<SweepResult>
runSweep(const std::string &title,
         const std::vector<Workload> &workload_list,
         std::size_t label_rows, std::uint64_t default_budget,
         std::ostream &os = std::cout);

} // namespace stfm

#endif // STFM_HARNESS_SWEEP_HH
