#include "harness/workloads.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/catalog.hh"

namespace stfm
{

namespace
{

/** Benchmark name by its 1-based Table 3 index (intensity order). */
std::string
byIndex(unsigned index)
{
    const auto &catalog = benchmarkCatalog();
    STFM_ASSERT(index >= 1 && index <= catalog.size(),
                "benchmark index out of range");
    return catalog[index - 1].name;
}

Workload
fromIndices(std::initializer_list<unsigned> indices)
{
    Workload out;
    for (const unsigned i : indices)
        out.push_back(byIndex(i));
    return out;
}

} // namespace

namespace workloads
{

Workload
fig1FourCore()
{
    return {"hmmer", "libquantum", "h264ref", "omnetpp"};
}

Workload
fig1EightCore()
{
    return {"mcf",     "hmmer", "GemsFDTD", "libquantum",
            "omnetpp", "astar", "sphinx3",  "dealII"};
}

Workload
caseIntensive()
{
    return {"mcf", "libquantum", "GemsFDTD", "astar"};
}

Workload
caseMixed()
{
    return {"mcf", "leslie3d", "h264ref", "bzip2"};
}

Workload
caseNonIntensive()
{
    return {"libquantum", "omnetpp", "hmmer", "h264ref"};
}

Workload
eightCoreCase()
{
    return {"mcf",   "h264ref", "bzip2", "gromacs",
            "gobmk", "dealII",  "wrf",   "namd"};
}

Workload
desktop()
{
    return {"xml-parser", "matlab", "iexplorer", "instant-messenger"};
}

Workload
weighted()
{
    return {"libquantum", "cactusADM", "astar", "omnetpp"};
}

std::vector<Workload>
sixteenCore()
{
    // Figure 12: (1) the 16 most intensive benchmarks, (2) the 8 most
    // intensive with the 8 least intensive, (3) the 16 least intensive.
    Workload high16, high8_low8, low16;
    for (unsigned i = 1; i <= 16; ++i)
        high16.push_back(byIndex(i));
    for (unsigned i = 1; i <= 8; ++i)
        high8_low8.push_back(byIndex(i));
    for (unsigned i = 19; i <= 26; ++i)
        high8_low8.push_back(byIndex(i));
    for (unsigned i = 11; i <= 26; ++i)
        low16.push_back(byIndex(i));
    return {high16, high8_low8, low16};
}

std::vector<Workload>
eightCoreSamples()
{
    // The ten individually plotted 8-core mixes of Figure 11,
    // reconstructed from the figure's benchmark-index labels.
    return {
        fromIndices({5, 1, 6, 2, 7, 3, 9, 4}),
        fromIndices({11, 1, 2, 4, 13, 7, 9, 14}),
        fromIndices({11, 12, 8, 2, 9, 13, 10, 4}),
        fromIndices({13, 1, 9, 14, 16, 10, 18, 11}),
        fromIndices({8, 1, 9, 2, 10, 3, 11, 4}),
        fromIndices({14, 9, 16, 10, 18, 11, 19, 13}),
        fromIndices({16, 1, 17, 2, 18, 14, 19, 15}),
        fromIndices({23, 19, 24, 20, 25, 21, 26, 22}),
        fromIndices({17, 2, 18, 14, 19, 15, 21, 16}),
        fromIndices({16, 9, 17, 11, 18, 14, 19, 15}),
    };
}

} // namespace workloads

std::vector<Workload>
sampleWorkloads(unsigned cores, unsigned count, std::uint64_t seed)
{
    // Partition the catalog by category, then fill each workload by
    // cycling through the categories so every mix is diverse — the
    // paper's "combinations of benchmarks from different categories".
    std::vector<std::vector<std::string>> by_category(4);
    for (const auto &profile : benchmarkCatalog())
        by_category[profile.category].push_back(profile.name);

    Rng rng(seed);
    std::vector<Workload> out;
    out.reserve(count);
    for (unsigned w = 0; w < count; ++w) {
        Workload workload;
        // Start the category rotation at a different point each time so
        // intensive and non-intensive slots move around the cores.
        const unsigned start = static_cast<unsigned>(rng.nextBelow(4));
        for (unsigned c = 0; c < cores; ++c) {
            const auto &bucket = by_category[(start + c) % 4];
            workload.push_back(
                bucket[rng.nextBelow(bucket.size())]);
        }
        out.push_back(std::move(workload));
    }
    return out;
}

std::string
workloadLabel(const Workload &workload)
{
    std::string label;
    for (const auto &name : workload) {
        if (!label.empty())
            label += '+';
        label += name;
    }
    return label;
}

} // namespace stfm
