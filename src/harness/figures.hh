/**
 * @file
 * The figure registry: every paper figure/table the repo reproduces,
 * addressable by name from the stfm CLI (`stfm fig09`, `stfm list
 * figures`) and from the thin bench/ wrapper binaries.
 *
 * Two kinds of figures:
 *  - spec-driven: the figure is a named ExperimentSpec (workloads x
 *    the five paper schedulers) executed by the experiment engine —
 *    these support `--json <path>` structured results emission;
 *  - custom: figures whose harness does not fit the (workload x
 *    scheduler) grid (the fig03 idleness schedule, the fig05 pairing
 *    sweep, table5's geometry grid, the ablations) — plain functions
 *    over the runner.
 *
 * Common flags parsed by runFigure for every figure:
 *   --check       run under the integrity layer (STFM_CHECK=1)
 *   --reference   pin the cycle-by-cycle path (STFM_REFERENCE=1)
 *   --full        full-size sweeps (STFM_FULL_SWEEP semantics)
 *   --json PATH   also write machine-readable results (spec-driven)
 */

#ifndef STFM_HARNESS_FIGURES_HH
#define STFM_HARNESS_FIGURES_HH

#include <string>
#include <vector>

#include "harness/spec.hh"

namespace stfm
{

/** Flags shared by every figure run. */
struct FigureFlags
{
    /** Full-size sweep (--full or STFM_FULL_SWEEP). */
    bool full = false;
    /** Results-JSON output path (empty = table report only). */
    std::string jsonPath;
};

/** One registered figure. */
struct Figure
{
    std::string name;        ///< Registry key ("fig09", "table5", ...).
    std::string description; ///< One line for `stfm list figures`.
    /** Spec builder (spec-driven figures); null for custom figures. */
    ExperimentSpec (*spec)(bool full) = nullptr;
    /** Custom harness; null for spec-driven figures. */
    int (*custom)(const FigureFlags &flags) = nullptr;

    bool specDriven() const { return spec != nullptr; }
};

/** All figures, in paper order. */
const std::vector<Figure> &figureRegistry();

/** Lookup by name; nullptr when unknown. */
const Figure *findFigure(const std::string &name);

/**
 * Run figure @p name with bench-style command-line flags. Prints the
 * report to stdout; errors (unknown figure, invalid config) go to
 * stderr. Returns a process exit code.
 */
int runFigure(const std::string &name, int argc, char **argv);

/** The custom figure harnesses (bodies in figures_custom.cc). */
namespace figures
{

int motivation(const FigureFlags &);         ///< Figure 1.
int idleness(const FigureFlags &);           ///< Figure 3.
int twoCore(const FigureFlags &);            ///< Figure 5.
int threadWeights(const FigureFlags &);      ///< Figure 14.
int alphaSweep(const FigureFlags &);         ///< Figure 15.
int table3Characteristics(const FigureFlags &);
int table5Sensitivity(const FigureFlags &);
int ablationStfm(const FigureFlags &);
int ablationController(const FigureFlags &);

} // namespace figures

} // namespace stfm

#endif // STFM_HARNESS_FIGURES_HH
