#include "harness/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fleet/supervisor.hh"
#include "fleet/worker.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/perfbench.hh"
#include "harness/spec.hh"
#include "dram/device_spec.hh"
#include "obs/telemetry.hh"
#include "report/diff.hh"
#include "report/html.hh"
#include "report/rollup.hh"
#include "sim/config_io.hh"

namespace stfm
{

namespace
{

void
printUsage(std::ostream &os)
{
    os << "usage: stfm <command> [arguments]\n"
          "\n"
          "commands:\n"
          "  run <spec.json> [flags]   execute a declarative experiment\n"
          "  validate <spec.json>      parse, resolve and validate only\n"
          "  worker                    shard executor (fleet-internal;\n"
          "                            speaks frames on stdin/stdout)\n"
          "  list schedulers           scheduling policies and knobs\n"
          "  list workloads            the named workload catalog\n"
          "  list figures              registered paper figures\n"
          "  list telemetry            the telemetry series catalog\n"
          "  list devices              built-in DRAM device presets\n"
          "  bench [flags]             time the fig09 sweep on both\n"
          "                            paths, append a perf-trajectory\n"
          "                            entry to BENCH_perf.json\n"
          "  report <paths...> [flags] fold sweep artifacts (results\n"
          "                            JSON, manifest.jsonl, telemetry)\n"
          "                            into a stfm-report-v1 rollup\n"
          "                            (docs/REPORTING.md)\n"
          "  <figure> [flags]          run a figure (fig09, table5, ...)\n"
          "  help                      this message\n"
          "\n"
          "flags (report):\n"
          "  --out PATH        write the stfm-report-v1 JSON there\n"
          "                    (default: stdout)\n"
          "  --html PATH       also write a self-contained HTML summary\n"
          "  --spec PATH       the spec a manifest.jsonl input was run\n"
          "                    with (required to ingest manifests)\n"
          "  --name NAME       report name (default: spec name, or\n"
          "                    'fleet')\n"
          "  --slo-unfairness X / --slo-slowdown X\n"
          "                    SLO thresholds (defaults 2.0 / 4.0)\n"
          "  --diff BASELINE   compare against a baseline report; exit\n"
          "                    3 when any metric regressed\n"
          "  --diff-out PATH   write the stfm-reportdiff-v1 document\n"
          "  --threshold X     relative diff slack (default 0.02 = 2%)\n"
          "  --quiet           suppress progress notes on stderr\n"
          "\n"
          "flags (run and figures):\n"
          "  --json PATH       also write machine-readable results\n"
          "  --check           run under the integrity layer\n"
          "  --reference       pin the cycle-by-cycle reference path\n"
          "  --jobs N          worker-pool width\n"
          "  --instructions N  per-thread instruction-budget override\n"
          "  --telemetry       sample epoch telemetry (docs/METRICS.md)\n"
          "  --trace PATH      export a Chrome trace (docs/TRACING.md)\n"
          "  --device NAME     run on a DRAM device preset or spec file\n"
          "                    (see `stfm list devices`)\n"
          "  --full            full-size sweep (sampled figures)\n"
          "\n"
          "flags (bench; docs/EXPERIMENTS.md, perf methodology):\n"
          "  --label NAME      trajectory entry label (default: local)\n"
          "  --out PATH        trajectory file (default: BENCH_perf.json)\n"
          "  --workloads N     sweep width (default 32 = fig09 sample)\n"
          "  --scaling LIST    thread-scaling points, e.g. 1,2,4\n"
          "  --jobs N          worker-pool width for the main sweeps\n"
          "  --instructions N  per-thread instruction-budget override\n"
          "\n"
          "fleet flags (run only; any of them engages the supervised\n"
          "worker-process pool, see docs/ARCHITECTURE.md):\n"
          "  --shards N        shard count (default: one per result row)\n"
          "  --workers N       concurrent worker processes\n"
          "  --retries N       process-level retries per shard (default 2)\n"
          "  --timeout SEC     per-shard wall-clock timeout (default 600)\n"
          "  --checkpoint DIR  append completed shards to DIR/manifest.jsonl\n"
          "  --resume          replay checkpointed shards, run the rest\n"
          "  --strict          exit 2 when any shard is merged as FAILED\n"
          "  --quiet           suppress per-shard progress/ETA on stderr\n"
          "  --nodes FILE      node registry (stfm-nodes-v1) of placement\n"
          "                    targets; engages remote executors and\n"
          "                    node fault domains (docs/FLEET.md)\n"
          "  --node NAME[:SLOTS]\n"
          "                    add one node (repeatable; loopback\n"
          "                    launcher unless the registry names one)\n"
          "  --node-backoff SEC\n"
          "                    base node backoff after a charged\n"
          "                    failure, doubling per consecutive\n"
          "                    failure (default 0.25)\n"
          "  --node-quarantine-after N\n"
          "                    consecutive node failures before\n"
          "                    quarantine (default 3)\n";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SimError("cannot open spec file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Shared flag parsing for `run` and `validate`. */
struct RunFlags
{
    std::string specPath;
    std::string jsonPath;
    /** Any fleet flag was given: run through the worker pool. */
    bool fleetMode = false;
    /** FAILED shards make the exit code nonzero. */
    bool strict = false;
    fleet::FleetOptions fleetOptions;
};

unsigned
parseUnsignedFlag(const std::string &flag, const char *value)
{
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0') {
        throw SimError("flag " + flag + " needs an unsigned integer, "
                       "got '" + value + "'");
    }
    return static_cast<unsigned>(parsed);
}

double
parseSecondsFlag(const std::string &flag, const char *value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || parsed < 0) {
        throw SimError("flag " + flag + " needs a non-negative number "
                       "of seconds, got '" + value + "'");
    }
    return parsed;
}

double
parseDoubleFlag(const std::string &flag, const char *value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || parsed < 0) {
        throw SimError("flag " + flag + " needs a non-negative number, "
                       "got '" + value + "'");
    }
    return parsed;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

RunFlags
parseRunFlags(const char *command, int argc, char **argv, int first)
{
    RunFlags flags;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            flags.jsonPath = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            flags.fleetOptions.shards =
                parseUnsignedFlag(arg, argv[++i]);
            flags.fleetMode = true;
        } else if (arg == "--workers" && i + 1 < argc) {
            flags.fleetOptions.workers =
                parseUnsignedFlag(arg, argv[++i]);
            flags.fleetMode = true;
        } else if (arg == "--retries" && i + 1 < argc) {
            flags.fleetOptions.retries =
                parseUnsignedFlag(arg, argv[++i]);
            flags.fleetMode = true;
        } else if (arg == "--timeout" && i + 1 < argc) {
            flags.fleetOptions.timeoutSec =
                parseSecondsFlag(arg, argv[++i]);
            flags.fleetMode = true;
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            flags.fleetOptions.checkpoint = argv[++i];
            flags.fleetMode = true;
        } else if (arg == "--resume") {
            flags.fleetOptions.resume = true;
            flags.fleetMode = true;
        } else if (arg == "--nodes" && i + 1 < argc) {
            flags.fleetOptions.nodesFile = argv[++i];
            flags.fleetMode = true;
        } else if (arg == "--node" && i + 1 < argc) {
            flags.fleetOptions.nodeSpecs.push_back(
                fleet::parseNodeFlag(argv[++i]));
            flags.fleetMode = true;
        } else if (arg == "--node-backoff" && i + 1 < argc) {
            flags.fleetOptions.nodeBackoffSec =
                parseSecondsFlag(arg, argv[++i]);
            flags.fleetMode = true;
        } else if (arg == "--node-quarantine-after" && i + 1 < argc) {
            flags.fleetOptions.nodeQuarantineAfter =
                parseUnsignedFlag(arg, argv[++i]);
            flags.fleetMode = true;
        } else if (arg == "--strict") {
            flags.strict = true;
            flags.fleetMode = true;
        } else if (arg == "--quiet") {
            flags.fleetOptions.quiet = true;
        } else if (arg == "--check") {
            setenv("STFM_CHECK", "1", 1);
        } else if (arg == "--reference") {
            setenv("STFM_REFERENCE", "1", 1);
        } else if (arg == "--jobs" && i + 1 < argc) {
            setenv("STFM_JOBS", argv[++i], 1);
        } else if (arg == "--instructions" && i + 1 < argc) {
            setenv("STFM_INSTRUCTIONS", argv[++i], 1);
        } else if (arg == "--telemetry") {
            setenv("STFM_TELEMETRY", "1", 1);
        } else if (arg == "--trace" && i + 1 < argc) {
            setenv("STFM_TRACE", argv[++i], 1);
        } else if (arg == "--device" && i + 1 < argc) {
            setenv("STFM_DEVICE", argv[++i], 1);
        } else if (!arg.empty() && arg[0] == '-') {
            throw SimError(std::string("unknown flag '") + arg +
                           "' for stfm " + command);
        } else if (flags.specPath.empty()) {
            flags.specPath = arg;
        } else {
            throw SimError(std::string("stfm ") + command +
                           " takes one spec file (got '" + arg + "')");
        }
    }
    if (flags.specPath.empty())
        throw SimError(std::string("stfm ") + command +
                       " needs a spec file argument");
    return flags;
}

int
finishRun(const ExperimentResult &result, const RunFlags &flags)
{
    printExperiment(result);
    if (!flags.jsonPath.empty()) {
        writeResultsJson(result, flags.jsonPath);
        std::cout << "\nresults written to " << flags.jsonPath << "\n";
    }
    for (const std::string &path : writeObsArtifacts(result))
        std::cout << "observability artifact written to " << path << "\n";
    return 0;
}

int
commandRun(int argc, char **argv)
{
    const RunFlags flags = parseRunFlags("run", argc, argv, 2);
    const ExperimentSpec spec = specFromText(readFile(flags.specPath));
    if (!flags.fleetMode) {
        const ExperimentResult result = runExperiment(spec);
        return finishRun(result, flags);
    }

    const fleet::FleetOutcome outcome =
        fleet::runShardedExperiment(spec, flags.fleetOptions);
    if (outcome.interrupted) {
        std::cerr << "stfm run: interrupted before the sweep completed"
                  << (flags.fleetOptions.checkpoint.empty()
                          ? ""
                          : "; completed shards are checkpointed — "
                            "rerun with --resume")
                  << "\n";
        return 130;
    }
    const int code = finishRun(outcome.result, flags);
    if (outcome.anyFailed()) {
        std::cerr << "stfm run: " << outcome.failedShards.size()
                  << " shard(s) FAILED after retries; their rows are "
                     "marked failed in the report"
                  << (flags.strict ? "" : " (pass --strict to make "
                                          "this exit nonzero)")
                  << "\n";
        if (flags.strict)
            return 2;
    }
    return code;
}

int
commandBench(int argc, char **argv)
{
    // Environment first (STFM_BENCH_*), explicit flags override — the
    // same layering the run/figure commands use for STFM_JOBS et al.
    PerfBenchOptions options = perfBenchOptionsFromEnv();
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--label" && i + 1 < argc) {
            options.label = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            options.outPath = argv[++i];
        } else if (arg == "--workloads" && i + 1 < argc) {
            options.workloads = parseUnsignedFlag(arg, argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            options.jobs = parseUnsignedFlag(arg, argv[++i]);
        } else if (arg == "--instructions" && i + 1 < argc) {
            options.budget = parseUnsignedFlag(arg, argv[++i]);
        } else if (arg == "--scaling" && i + 1 < argc) {
            options.scalingJobs.clear();
            std::istringstream list(argv[++i]);
            std::string item;
            while (std::getline(list, item, ','))
                options.scalingJobs.push_back(
                    parseUnsignedFlag(arg, item.c_str()));
        } else {
            throw SimError("unknown flag '" + arg + "' for stfm bench");
        }
    }
    return runPerfBench(options);
}

int
commandValidate(int argc, char **argv)
{
    const RunFlags flags = parseRunFlags("validate", argc, argv, 2);
    const ExperimentSpec spec = specFromText(readFile(flags.specPath));
    const std::vector<Workload> workloads = resolveWorkloads(spec);
    const SimConfig base =
        resolveConfig(spec, EnvOverrides::capture());

    std::size_t scheduler_count = spec.schedulers.size();
    if (scheduler_count == 0)
        scheduler_count = 5; // The paper's five policies.

    std::cout << flags.specPath << ": OK\n"
              << "  name:       " << spec.name << "\n"
              << "  workloads:  " << workloads.size() << " x "
              << spec.repeat << " repetition(s)\n"
              << "  schedulers: " << scheduler_count << "\n"
              << "  cores:      " << base.cores << "\n"
              << "  budget:     " << base.instructionBudget
              << " instructions/thread\n";
    const TelemetryConfig &telemetry = base.telemetry;
    if (!telemetry.collecting()) {
        std::cout << "  telemetry:  off\n";
    } else {
        if (telemetry.enabled) {
            std::cout << "  telemetry:  every " << telemetry.epochCycles
                      << " DRAM cycles -> "
                      << (telemetry.output.empty()
                              ? spec.name + "_telemetry.json"
                              : telemetry.output)
                      << "\n";
        }
        if (telemetry.tracing())
            std::cout << "  trace:      " << telemetry.trace << "\n";
    }
    return 0;
}

int
commandReport(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string out_path;
    std::string html_path;
    std::string spec_path;
    std::string diff_path;
    std::string diff_out;
    std::string name;
    report::SloConfig slo;
    report::DiffOptions diff_options;
    bool quiet = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--html" && i + 1 < argc) {
            html_path = argv[++i];
        } else if (arg == "--spec" && i + 1 < argc) {
            spec_path = argv[++i];
        } else if (arg == "--name" && i + 1 < argc) {
            name = argv[++i];
        } else if (arg == "--diff" && i + 1 < argc) {
            diff_path = argv[++i];
        } else if (arg == "--diff-out" && i + 1 < argc) {
            diff_out = argv[++i];
        } else if (arg == "--slo-unfairness" && i + 1 < argc) {
            slo.unfairness = parseDoubleFlag(arg, argv[++i]);
        } else if (arg == "--slo-slowdown" && i + 1 < argc) {
            slo.slowdown = parseDoubleFlag(arg, argv[++i]);
        } else if (arg == "--threshold" && i + 1 < argc) {
            diff_options.threshold = parseDoubleFlag(arg, argv[++i]);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            throw SimError("unknown flag '" + arg +
                           "' for stfm report");
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        throw SimError("stfm report needs at least one artifact file "
                       "or directory");
    }

    // Manifest inputs need the sweep's job grid; re-derive it from the
    // spec exactly as the supervisor and workers did.
    bool have_plan = false;
    ExperimentPlan plan;
    if (!spec_path.empty()) {
        plan = planExperiment(specFromText(readFile(spec_path)));
        have_plan = true;
    }
    if (name.empty())
        name = have_plan ? plan.spec.name : "fleet";
    report::ReportBuilder builder(name, slo);

    std::vector<std::string> files;
    for (const std::string &input : inputs) {
        if (report::isDirectory(input)) {
            for (std::string &file : report::listDirectoryFiles(input))
                files.push_back(std::move(file));
        } else if (!report::pathExists(input)) {
            // A typo'd path must not roll up into a clean-looking
            // empty report.
            throw SimError("report: input '" + input +
                           "' does not exist");
        } else {
            files.push_back(input);
        }
    }
    if (files.empty()) {
        throw SimError("report: the given director" +
                       std::string(inputs.size() == 1 ? "y contains"
                                                      : "ies contain") +
                       " no artifact files");
    }
    std::size_t ingested = 0;
    for (const std::string &file : files) {
        if (endsWith(file, ".jsonl")) {
            if (!have_plan) {
                throw SimError(
                    "report: " + file + " is a manifest checkpoint; "
                    "pass --spec <spec.json> (the spec the sweep ran) "
                    "so the job grid can be re-derived");
            }
            builder.addManifest(file, plan);
            ++ingested;
            continue;
        }
        if (!endsWith(file, ".json")) {
            if (!quiet) {
                std::fprintf(stderr, "[report] skipping %s\n",
                             file.c_str());
            }
            continue;
        }
        const Json doc = Json::parse(readFile(file));
        const Json *schema = doc.find("schema");
        const std::string kind =
            schema && schema->isString() ? schema->asString() : "";
        if (kind == "stfm-results-v1") {
            builder.addResultsDoc(doc, file);
            ++ingested;
        } else if (kind == "stfm-telemetry-v1") {
            builder.addTelemetryDoc(doc, file);
            ++ingested;
        } else if (!quiet) {
            std::fprintf(stderr,
                         "[report] skipping %s (schema '%s')\n",
                         file.c_str(), kind.c_str());
        }
    }
    if (ingested == 0) {
        throw SimError(
            "report: none of the given inputs carried a sweep "
            "artifact (stfm-results-v1, stfm-telemetry-v1, or a "
            "manifest.jsonl)");
    }

    const Json doc = builder.toJson();
    if (!quiet) {
        std::fprintf(stderr,
                     "[report] folded %llu runs from %zu file(s)\n",
                     static_cast<unsigned long long>(builder.runs()),
                     files.size());
    }
    if (out_path.empty()) {
        std::cout << doc.dump(2) << "\n";
    } else {
        writeJsonFile(doc, out_path);
        if (!quiet) {
            std::fprintf(stderr, "[report] rollup written to %s\n",
                         out_path.c_str());
        }
    }
    if (!html_path.empty()) {
        report::writeReportHtml(doc, html_path);
        if (!quiet) {
            std::fprintf(stderr, "[report] HTML written to %s\n",
                         html_path.c_str());
        }
    }

    if (!diff_path.empty()) {
        const Json baseline = Json::parse(readFile(diff_path));
        const report::ReportDiff diff =
            report::diffReports(doc, baseline, diff_options);
        if (!diff_out.empty())
            writeJsonFile(report::diffJson(diff, diff_options),
                          diff_out);
        report::printDiff(diff, diff_options, std::cout);
        if (diff.regressed())
            return 3; // The CI gate (docs/REPORTING.md, exit codes).
    }
    return 0;
}

int
commandList(int argc, char **argv)
{
    const std::string what = argc > 2 ? argv[2] : "";
    if (what == "schedulers") {
        std::cout
            << "FR-FCFS     row-hit-first, oldest-first (baseline)\n"
            << "FCFS        strict arrival order\n"
            << "FRFCFS+Cap  FR-FCFS with a column-over-row cap "
               "(knob: cap)\n"
            << "NFQ         network-fair-queueing virtual finish times "
               "(knobs: shares, inversionThreshold)\n"
            << "STFM        stall-time fair scheduling (knobs: alpha, "
               "intervalLength, gamma, quantizeSlowdowns,\n"
            << "            busInterference, requestLevelEstimator, "
               "weights)\n";
        return 0;
    }
    if (what == "workloads") {
        for (const std::string &name : namedWorkloadCatalog()) {
            const std::vector<Workload> expanded = namedWorkloads(name);
            std::cout << name << " (" << expanded.size()
                      << (expanded.size() == 1 ? " workload)"
                                               : " workloads)")
                      << "\n";
            for (const Workload &w : expanded)
                std::cout << "  " << workloadLabel(w) << "\n";
        }
        return 0;
    }
    if (what == "figures") {
        for (const Figure &figure : figureRegistry()) {
            std::printf("%-20s %s%s\n", figure.name.c_str(),
                        figure.description.c_str(),
                        figure.specDriven() ? "" : " [custom]");
        }
        return 0;
    }
    if (what == "devices") {
        // One row per built-in preset. ci/check_docs.py parses this
        // output to keep the README device catalog in sync; the first
        // two columns (name, standard) are the contract.
        std::printf("%-14s %-8s %9s %6s %7s %11s %9s\n", "name",
                    "standard", "tCK(ns)", "banks", "groups",
                    "CL-RCD-RP", "bus(MHz)");
        for (const DeviceSpec &device : builtinDevices()) {
            const std::string clrcdrp =
                std::to_string(device.timing.tCL) + "-" +
                std::to_string(device.timing.tRCD) + "-" +
                std::to_string(device.timing.tRP);
            std::printf("%-14s %-8s %9.3f %6u %7u %11s %9u\n",
                        device.name.c_str(), device.standard.c_str(),
                        device.tCKns, device.banks, device.bankGroups,
                        clrcdrp.c_str(), device.busMHz());
        }
        return 0;
    }
    if (what == "telemetry") {
        // The machine-checkable metrics contract: every registered
        // series matches one of these patterns (docs/METRICS.md).
        for (const TelemetryCatalogEntry &entry : telemetryCatalog()) {
            std::printf("%-32s %-9s %-12s %-6s %s\n", entry.pattern,
                        entry.kind, entry.unit, entry.subsystem,
                        entry.description);
        }
        return 0;
    }
    std::cerr << "usage: stfm list "
                 "{schedulers|workloads|figures|telemetry|devices}\n";
    return 1;
}

} // namespace

int
cliMain(int argc, char **argv)
{
    if (argc < 2) {
        printUsage(std::cerr);
        return 1;
    }
    const std::string command = argv[1];
    if (command == "help" || command == "--help" || command == "-h") {
        printUsage(std::cout);
        return 0;
    }

    try {
        if (command == "run")
            return commandRun(argc, argv);
        if (command == "worker")
            return fleet::workerMain();
        if (command == "validate")
            return commandValidate(argc, argv);
        if (command == "bench")
            return commandBench(argc, argv);
        if (command == "report")
            return commandReport(argc, argv);
        if (command == "list")
            return commandList(argc, argv);
        if (findFigure(command)) {
            // Forward the remaining arguments as the figure's argv.
            return runFigure(command, argc - 1, argv + 1);
        }
    } catch (const SimError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    std::cerr << "stfm: unknown command '" << command << "'\n\n";
    printUsage(std::cerr);
    return 1;
}

} // namespace stfm
