#include "harness/env_overrides.hh"

#include <cstdlib>

#include "sim/device_io.hh"

namespace stfm
{

namespace
{

/** Boolean env convention: set and not exactly "0". */
bool
flagSet(const char *name)
{
    const char *env = std::getenv(name);
    return env && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

/** Positive-integer env value, or nullopt when unset/unparsable. */
std::optional<long long>
positiveValue(const char *name)
{
    if (const char *env = std::getenv(name)) {
        const long long parsed = std::atoll(env);
        if (parsed > 0)
            return parsed;
    }
    return std::nullopt;
}

} // namespace

EnvOverrides
EnvOverrides::capture()
{
    EnvOverrides env;
    if (const auto v = positiveValue("STFM_INSTRUCTIONS"))
        env.instructionBudget = static_cast<std::uint64_t>(*v);
    env.reference = flagSet("STFM_REFERENCE");
    env.check = flagSet("STFM_CHECK");
    if (const auto v = positiveValue("STFM_JOBS"))
        env.jobs = static_cast<unsigned>(*v);
    env.telemetry = flagSet("STFM_TELEMETRY");
    if (env.telemetry) {
        const char *value = std::getenv("STFM_TELEMETRY");
        if (value && !(value[0] == '1' && value[1] == '\0'))
            env.telemetryOutput = value;
    }
    if (const char *trace = std::getenv("STFM_TRACE")) {
        if (trace[0] != '\0')
            env.tracePath = trace;
    }
    if (const char *device = std::getenv("STFM_DEVICE")) {
        if (device[0] != '\0')
            env.device = device;
    }
    return env;
}

void
EnvOverrides::apply(SimConfig &config) const
{
    if (instructionBudget)
        config.instructionBudget = *instructionBudget;
    if (reference)
        config.fastForward = false;
    if (check) {
        config.memory.controller.integrity.protocolCheck = true;
        config.memory.controller.integrity.watchdog = true;
    }
    if (telemetry) {
        config.telemetry.enabled = true;
        if (!telemetryOutput.empty())
            config.telemetry.output = telemetryOutput;
    }
    if (!tracePath.empty())
        config.telemetry.trace = tracePath;
    if (!device.empty())
        applyDevice(config.memory, device);
}

Json
EnvOverrides::toJson() const
{
    Json out = Json::object();
    if (instructionBudget)
        out.set("STFM_INSTRUCTIONS", *instructionBudget);
    if (reference)
        out.set("STFM_REFERENCE", true);
    if (check)
        out.set("STFM_CHECK", true);
    if (jobs)
        out.set("STFM_JOBS", *jobs);
    if (telemetry) {
        out.set("STFM_TELEMETRY",
                telemetryOutput.empty() ? std::string("1")
                                        : telemetryOutput);
    }
    if (!tracePath.empty())
        out.set("STFM_TRACE", tracePath);
    if (!device.empty())
        out.set("STFM_DEVICE", device);
    return out;
}

} // namespace stfm
