#include "harness/runner.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "trace/catalog.hh"

namespace stfm
{

ExperimentRunner::ExperimentRunner(SimConfig base) : base_(std::move(base))
{
    base_.instructionBudget = budgetFromEnv(base_.instructionBudget);
}

std::uint64_t
ExperimentRunner::budgetFromEnv(std::uint64_t fallback)
{
    if (const char *env = std::getenv("STFM_INSTRUCTIONS")) {
        const long long parsed = std::atoll(env);
        if (parsed > 0)
            return static_cast<std::uint64_t>(parsed);
    }
    return fallback;
}

SimConfig
ExperimentRunner::configFor(const Workload &workload,
                            const SchedulerConfig &scheduler) const
{
    SimConfig config = base_;
    config.cores = static_cast<unsigned>(workload.size());
    config.scheduler = scheduler;
    return config;
}

std::string
ExperimentRunner::aloneKey(const std::string &benchmark) const
{
    return benchmark + "#" + std::to_string(base_.memory.channels) + "x" +
           std::to_string(base_.memory.banksPerChannel) + "x" +
           std::to_string(base_.memory.rowBytes) + "@" +
           std::to_string(base_.instructionBudget);
}

const ThreadResult &
ExperimentRunner::aloneResult(const std::string &benchmark)
{
    const std::string key = aloneKey(benchmark);
    const auto it = aloneCache_.find(key);
    if (it != aloneCache_.end())
        return it->second;

    // Alone baseline: the benchmark runs by itself on the same memory
    // system with FR-FCFS (Section 6.2).
    SimConfig config = base_;
    config.cores = 1;
    config.scheduler = SchedulerConfig{}; // FR-FCFS, no knobs.

    const BenchmarkProfile &profile = findBenchmark(benchmark);
    AddressMapping mapping(config.memory.channels,
                           config.memory.banksPerChannel,
                           config.memory.rowBytes, config.memory.lineBytes,
                           config.memory.rowsPerBank,
                           config.memory.xorBankMapping);
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(makeBenchmarkTrace(profile, mapping, 0, 1));

    CmpSystem system(config, std::move(traces));
    const SimResult result = system.run();
    STFM_ASSERT(!result.hitCycleLimit, "alone run hit the cycle limit");
    return aloneCache_.emplace(key, result.threads[0]).first->second;
}

RunOutcome
ExperimentRunner::run(const Workload &workload,
                      const SchedulerConfig &scheduler)
{
    const SimConfig config = configFor(workload, scheduler);

    AddressMapping mapping(config.memory.channels,
                           config.memory.banksPerChannel,
                           config.memory.rowBytes, config.memory.lineBytes,
                           config.memory.rowsPerBank,
                           config.memory.xorBankMapping);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (unsigned t = 0; t < workload.size(); ++t) {
        traces.push_back(makeBenchmarkTrace(findBenchmark(workload[t]),
                                            mapping, t, config.cores));
    }

    CmpSystem system(config, std::move(traces));

    RunOutcome outcome;
    outcome.policyName = system.memory().policy().name();
    outcome.shared = system.run();

    std::vector<ThreadResult> alone;
    alone.reserve(workload.size());
    for (const auto &name : workload)
        alone.push_back(aloneResult(name));
    outcome.metrics = computeMetrics(outcome.shared, alone);
    return outcome;
}

std::vector<RunOutcome>
ExperimentRunner::runAll(const Workload &workload,
                         const std::vector<SchedulerConfig> &schedulers)
{
    std::vector<RunOutcome> out;
    out.reserve(schedulers.size());
    for (const auto &scheduler : schedulers)
        out.push_back(run(workload, scheduler));
    return out;
}

std::vector<SchedulerConfig>
ExperimentRunner::paperSchedulers()
{
    std::vector<SchedulerConfig> out(5);
    out[0].kind = PolicyKind::FrFcfs;
    out[1].kind = PolicyKind::Fcfs;
    out[2].kind = PolicyKind::FrFcfsCap;
    out[2].cap = 4;
    out[3].kind = PolicyKind::Nfq;
    out[4].kind = PolicyKind::Stfm;
    out[4].alpha = 1.10;
    return out;
}

} // namespace stfm
