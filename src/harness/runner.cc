#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"
#include "harness/env_overrides.hh"
#include "sim/device_io.hh"

namespace stfm
{

ExperimentRunner::ExperimentRunner(SimConfig base) : base_(std::move(base))
{
    EnvOverrides::capture().apply(base_);
}

std::uint64_t
ExperimentRunner::budgetFromEnv(std::uint64_t fallback)
{
    return EnvOverrides::capture().instructionBudget.value_or(fallback);
}

void
ExperimentRunner::applyBenchFlags(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--check")
            setenv("STFM_CHECK", "1", 1);
        if (std::string(argv[i]) == "--reference")
            setenv("STFM_REFERENCE", "1", 1);
        if (std::string(argv[i]) == "--telemetry")
            setenv("STFM_TELEMETRY", "1", 1);
        if (std::string(argv[i]) == "--trace" && i + 1 < argc)
            setenv("STFM_TRACE", argv[++i], 1);
    }
}

void
ExperimentRunner::setMaxAttempts(unsigned attempts)
{
    maxAttempts_ = attempts > 0 ? attempts : 1;
}

SimConfig
ExperimentRunner::configFor(const Workload &workload,
                            const SchedulerConfig &scheduler,
                            const std::string &device) const
{
    SimConfig config = base_;
    config.cores = static_cast<unsigned>(workload.size());
    config.scheduler = scheduler;
    if (!device.empty())
        applyDevice(config.memory, device);
    return config;
}

void
ExperimentRunner::addBenchmark(const std::string &name,
                               const BenchmarkProfile &profile)
{
    // Same-mutex rule as the alone cache: registration and lookup are
    // serialized, so concurrent runMany() workers can never observe a
    // half-inserted map node (runner.hh's catalog contract).
    std::lock_guard<std::mutex> guard(catalogMutex_);
    customBenchmarks_[name] = profile;
}

const BenchmarkProfile &
ExperimentRunner::profileFor(const std::string &name) const
{
    {
        std::lock_guard<std::mutex> guard(catalogMutex_);
        const auto it = customBenchmarks_.find(name);
        if (it != customBenchmarks_.end())
            return it->second;
    }
    return findBenchmark(name);
}

std::string
ExperimentRunner::aloneKey(const std::string &benchmark,
                           const std::string &device) const
{
    std::string key = benchmark + "#" +
                      std::to_string(base_.memory.channels) + "x" +
                      std::to_string(base_.memory.banksPerChannel) + "x" +
                      std::to_string(base_.memory.rowBytes) + "@" +
                      std::to_string(base_.instructionBudget);
    if (!device.empty())
        key += "+" + device;
    return key;
}

const ThreadResult &
ExperimentRunner::aloneResult(const std::string &benchmark,
                              const std::string &device)
{
    const std::string key = aloneKey(benchmark, device);
    // Held across the miss-path simulation: see aloneCache_'s comment.
    std::lock_guard<std::mutex> guard(aloneMutex_);
    const auto it = aloneCache_.find(key);
    if (it != aloneCache_.end())
        return it->second;

    // Alone baseline: the benchmark runs by itself on the same memory
    // system with FR-FCFS (Section 6.2). Observability stays off for
    // baselines — their documents would shadow the shared run's, and
    // the baseline is memoized across runs with different settings.
    SimConfig config = base_;
    config.cores = 1;
    config.scheduler = SchedulerConfig{}; // FR-FCFS, no knobs.
    config.telemetry = TelemetryConfig{};
    if (!device.empty())
        applyDevice(config.memory, device);

    const BenchmarkProfile &profile = profileFor(benchmark);
    AddressMapping mapping(config.memory.channels,
                           config.memory.banksPerChannel,
                           config.memory.rowBytes, config.memory.lineBytes,
                           config.memory.rowsPerBank,
                           config.memory.xorBankMapping,
                           config.memory.bankGroups);
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(makeBenchmarkTrace(profile, mapping, 0, 1));

    CmpSystem system(config, std::move(traces));
    const SimResult result = system.run();
    if (result.hitCycleLimit) {
        throw SimError(formatMessage(
            "alone run of '%s' hit the cycle limit", benchmark.c_str()));
    }
    return aloneCache_.emplace(key, result.threads[0]).first->second;
}

void
ExperimentRunner::seedAloneBaseline(const std::string &key,
                                    const ThreadResult &result)
{
    std::lock_guard<std::mutex> guard(aloneMutex_);
    aloneCache_.emplace(key, result);
}

std::map<std::string, ThreadResult>
ExperimentRunner::aloneSnapshot() const
{
    std::lock_guard<std::mutex> guard(aloneMutex_);
    return aloneCache_;
}

void
ExperimentRunner::setAttemptHook(
    std::function<void(const Workload &, unsigned)> hook)
{
    attemptHook_ = std::move(hook);
}

RunOutcome
ExperimentRunner::attemptRun(const Workload &workload,
                             const SchedulerConfig &scheduler,
                             std::uint64_t seed_salt, unsigned attempt,
                             const std::string &device)
{
    if (attemptHook_)
        attemptHook_(workload, attempt);
    const SimConfig config = configFor(workload, scheduler, device);

    AddressMapping mapping(config.memory.channels,
                           config.memory.banksPerChannel,
                           config.memory.rowBytes, config.memory.lineBytes,
                           config.memory.rowsPerBank,
                           config.memory.xorBankMapping,
                           config.memory.bankGroups);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (unsigned t = 0; t < workload.size(); ++t) {
        traces.push_back(makeBenchmarkTrace(profileFor(workload[t]),
                                            mapping, t, config.cores,
                                            seed_salt));
    }

    CmpSystem system(config, std::move(traces));

    RunOutcome outcome;
    outcome.policyName = system.memory().policy().name();
    outcome.shared = system.run();
    if (const ObsSession *obs = system.obs()) {
        if (obs->hasTelemetryDoc())
            outcome.telemetry = obs->telemetryJson();
        if (obs->hasTraceDoc())
            outcome.trace = obs->traceJson();
    }

    std::vector<ThreadResult> alone;
    alone.reserve(workload.size());
    for (const auto &name : workload)
        alone.push_back(aloneResult(name, device));
    outcome.metrics = computeMetrics(outcome.shared, alone);
    return outcome;
}

RunOutcome
ExperimentRunner::run(const Workload &workload,
                      const SchedulerConfig &scheduler,
                      std::uint64_t seed_salt, const std::string &device)
{
    RunOutcome outcome;
    for (unsigned attempt = 1; attempt <= maxAttempts_; ++attempt) {
        try {
            // The base salt on the first attempt (0 = the canonical
            // trace streams); retries reseed on top of it.
            outcome = attemptRun(workload, scheduler,
                                 seed_salt + (attempt - 1), attempt,
                                 device);
            outcome.attempts = attempt;
            return outcome;
        } catch (const SimError &e) {
            outcome.failed = true;
            outcome.error = e.what();
        } catch (const std::exception &e) {
            outcome.failed = true;
            outcome.error = e.what();
        }
        outcome.attempts = attempt;
    }
    // All attempts failed; name the policy for report rows anyway.
    outcome.policyName = toString(scheduler.kind);
    return outcome;
}

std::vector<RunOutcome>
ExperimentRunner::runAll(const Workload &workload,
                         const std::vector<SchedulerConfig> &schedulers)
{
    std::vector<RunJob> jobs;
    jobs.reserve(schedulers.size());
    for (const auto &scheduler : schedulers)
        jobs.push_back({workload, scheduler, 0, ""});
    return runMany(jobs);
}

unsigned
ExperimentRunner::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return EnvOverrides::capture().jobsOr(hw > 0 ? hw : 1);
}

std::vector<RunOutcome>
ExperimentRunner::runMany(const std::vector<RunJob> &jobs,
                          unsigned threads)
{
    std::vector<RunOutcome> out(jobs.size());
    if (jobs.empty())
        return out;
    if (threads == 0)
        threads = defaultJobs();
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, jobs.size()));

    // Self-scheduling work queue: workers claim the next unclaimed job
    // index and write its outcome into the matching output slot, so
    // results always land in job order no matter which worker ran
    // what, or in what order they finished. run() never throws for
    // run-level failures, so a worker can only stop early on
    // std::bad_alloc-class catastrophes — not worth a recovery path.
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
            out[i] = run(jobs[i].workload, jobs[i].scheduler,
                         jobs[i].seedSalt, jobs[i].device);
        }
    };

    if (threads == 1) {
        worker();
        return out;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return out;
}

std::vector<SchedulerConfig>
ExperimentRunner::paperSchedulers()
{
    std::vector<SchedulerConfig> out(5);
    out[0].kind = PolicyKind::FrFcfs;
    out[1].kind = PolicyKind::Fcfs;
    out[2].kind = PolicyKind::FrFcfsCap;
    out[2].cap = 4;
    out[3].kind = PolicyKind::Nfq;
    out[4].kind = PolicyKind::Stfm;
    out[4].alpha = 1.10;
    return out;
}

} // namespace stfm
