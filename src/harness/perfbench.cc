#include "harness/perfbench.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"

namespace stfm
{

namespace
{

/** One timed pass over the sweep. */
struct SweepTiming
{
    double aloneSeconds = 0;  ///< Alone-baseline prewarm (shared work).
    double sweepSeconds = 0;  ///< The 5-scheduler sweep proper.
    std::uint64_t dramCycles = 0; ///< Simulated DRAM cycles in the sweep.
    std::vector<RunOutcome> outcomes;
};

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

SweepTiming
timedSweep(const std::vector<Workload> &workload_list,
           std::uint64_t budget, bool fast_forward, unsigned jobs)
{
    SimConfig base;
    base.instructionBudget = budget;
    base.fastForward = fast_forward;
    ExperimentRunner runner(base);

    std::vector<RunJob> run_jobs;
    for (const Workload &w : workload_list)
        for (const SchedulerConfig &s : ExperimentRunner::paperSchedulers())
            run_jobs.push_back({w, s, 0, ""});

    // Prewarm the alone-baseline cache outside the sweep timing so
    // cycles-per-second relates wall time to exactly the runs whose
    // cycles are counted; the prewarm is reported separately (it is
    // part of a figure run's wall time).
    std::set<std::string> benchmarks;
    for (const Workload &w : workload_list)
        benchmarks.insert(w.begin(), w.end());
    const auto t0 = std::chrono::steady_clock::now();
    for (const std::string &b : benchmarks)
        runner.aloneResult(b);
    const auto t1 = std::chrono::steady_clock::now();
    SweepTiming timing;
    timing.outcomes = runner.runMany(run_jobs, jobs);
    const auto t2 = std::chrono::steady_clock::now();

    timing.aloneSeconds = seconds(t0, t1);
    timing.sweepSeconds = seconds(t1, t2);
    const Cycles per = base.memory.cpuPerDram();
    for (const RunOutcome &o : timing.outcomes)
        if (!o.failed)
            timing.dramCycles += o.shared.totalCycles / per;
    return timing;
}

bool
sameResult(const SimResult &a, const SimResult &b)
{
    if (a.totalCycles != b.totalCycles ||
        a.hitCycleLimit != b.hitCycleLimit ||
        a.threads.size() != b.threads.size())
        return false;
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        const ThreadResult &x = a.threads[t];
        const ThreadResult &y = b.threads[t];
        if (x.instructions != y.instructions || x.cycles != y.cycles ||
            x.memStallCycles != y.memStallCycles ||
            x.l2Misses != y.l2Misses || x.dramReads != y.dramReads ||
            x.dramWrites != y.dramWrites || x.rowHits != y.rowHits ||
            x.rowClosed != y.rowClosed ||
            x.rowConflicts != y.rowConflicts ||
            x.readLatencyMean != y.readLatencyMean ||
            x.readLatencyP50 != y.readLatencyP50 ||
            x.readLatencyP99 != y.readLatencyP99 ||
            x.readLatencyMax != y.readLatencyMax)
            return false;
    }
    return true;
}

/** Round for presentation: timings don't carry 17 digits of signal. */
double
rounded(double value, double scale)
{
    return std::round(value * scale) / scale;
}

Json
timingJson(const SweepTiming &t)
{
    Json out = Json::object();
    out.set("figure_host_seconds",
            rounded(t.aloneSeconds + t.sweepSeconds, 1000));
    out.set("sweep_host_seconds", rounded(t.sweepSeconds, 1000));
    out.set("alone_baseline_host_seconds",
            rounded(t.aloneSeconds, 1000));
    out.set("sweep_dram_cycles", t.dramCycles);
    out.set("dram_cycles_per_host_second",
            std::round(static_cast<double>(t.dramCycles) /
                       t.sweepSeconds));
    return out;
}

/** One trajectory entry (the legacy snapshot layout + label/scaling). */
Json
entryJson(const PerfBenchOptions &options, unsigned jobs,
          const SweepTiming &ref, const SweepTiming &opt, bool bit_exact,
          const Json &scaling)
{
    Json out = Json::object();
    out.set("label", options.label);
    out.set("benchmark",
            formatMessage("fig09_four_core_avg sweep (4 cores x %u "
                          "workloads x 5 schedulers)",
                          options.workloads));
    out.set("instruction_budget", options.budget);
    out.set("worker_threads", jobs);
    out.set("reference", timingJson(ref));
    out.set("optimized", timingJson(opt));
    out.set("speedup_wall_clock",
            rounded((ref.aloneSeconds + ref.sweepSeconds) /
                        (opt.aloneSeconds + opt.sweepSeconds),
                    100));
    out.set("bit_exact", bit_exact);
    out.set("thread_scaling", scaling);
    return out;
}

/**
 * Load the trajectory entries already at @p path. Three shapes are
 * accepted: no file (fresh trajectory), a trajectory object
 * ({"schema": "stfm-perf-trajectory-v1", "entries": [...]}), and the
 * pre-trajectory single snapshot this format replaced — recognized by
 * its top-level "speedup_wall_clock" — which becomes the first entry,
 * labeled with the PR that committed it so history isn't lost.
 */
Json
loadEntries(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Json::array();
    std::ostringstream text;
    text << in.rdbuf();
    Json existing = Json::parse(text.str());
    if (const Json *schema = existing.find("schema")) {
        if (schema->asString("schema") != "stfm-perf-trajectory-v1") {
            throw SimError("'" + path + "' has unknown schema '" +
                           schema->asString("schema") +
                           "' — refusing to append");
        }
        return existing.at("entries", path);
    }
    if (existing.has("speedup_wall_clock")) {
        // Legacy single-snapshot BENCH_perf.json (committed by the PR
        // that built the fast-forward path).
        Json legacy = Json::object();
        legacy.set("label", "PR 2");
        for (const auto &kv : existing.asObject(path))
            legacy.set(kv.first, kv.second);
        legacy.set("thread_scaling", Json::array());
        Json entries = Json::array();
        entries.push(std::move(legacy));
        return entries;
    }
    throw SimError("'" + path + "' is neither a perf trajectory nor a "
                   "legacy snapshot — refusing to append");
}

} // namespace

PerfBenchOptions
perfBenchOptionsFromEnv()
{
    PerfBenchOptions options;
    if (const char *env = std::getenv("STFM_BENCH_WORKLOADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            options.workloads = static_cast<unsigned>(v);
    }
    options.budget = ExperimentRunner::budgetFromEnv(options.budget);
    if (const char *env = std::getenv("STFM_BENCH_LABEL"))
        options.label = env;
    if (const char *env = std::getenv("STFM_BENCH_OUT"))
        options.outPath = env;
    if (const char *env = std::getenv("STFM_BENCH_SCALING")) {
        std::istringstream list(env);
        std::string item;
        while (std::getline(list, item, ',')) {
            const long v = std::strtol(item.c_str(), nullptr, 10);
            if (v > 0)
                options.scalingJobs.push_back(static_cast<unsigned>(v));
        }
    }
    return options;
}

int
runPerfBench(const PerfBenchOptions &options)
{
    const unsigned jobs = options.jobs ? options.jobs
                                       : ExperimentRunner::defaultJobs();
    const std::vector<Workload> workload_list =
        sampleWorkloads(4, options.workloads, options.sampleSeed);

    std::printf("throughput benchmark: fig09 sweep, %u workloads x 5 "
                "schedulers, budget %llu, %u worker thread(s)\n",
                options.workloads,
                static_cast<unsigned long long>(options.budget), jobs);

    std::printf("reference path (STFM_REFERENCE-equivalent)...\n");
    const SweepTiming ref = timedSweep(workload_list, options.budget,
                                       /*fast_forward=*/false, jobs);
    std::printf("  %.3f s (%.3f s alone baselines + %.3f s sweep)\n",
                ref.aloneSeconds + ref.sweepSeconds, ref.aloneSeconds,
                ref.sweepSeconds);
    std::printf("optimized path (fast-forwarding on)...\n");
    const SweepTiming opt = timedSweep(workload_list, options.budget,
                                       /*fast_forward=*/true, jobs);
    std::printf("  %.3f s (%.3f s alone baselines + %.3f s sweep)\n",
                opt.aloneSeconds + opt.sweepSeconds, opt.aloneSeconds,
                opt.sweepSeconds);

    bool bit_exact = ref.outcomes.size() == opt.outcomes.size();
    for (std::size_t i = 0; bit_exact && i < ref.outcomes.size(); ++i) {
        const RunOutcome &a = ref.outcomes[i];
        const RunOutcome &b = opt.outcomes[i];
        bit_exact = a.failed == b.failed &&
                    (a.failed || sameResult(a.shared, b.shared));
    }

    // Thread-scaling points: re-time the optimized sweep at each
    // requested worker count. Optimized path only — the scaling curve
    // characterizes the harness's parallel efficiency, which is
    // path-independent, and the optimized sweeps are the cheap ones.
    Json scaling = Json::array();
    for (unsigned n : options.scalingJobs) {
        std::printf("thread-scaling point: %u worker thread(s)...\n", n);
        const SweepTiming point = timedSweep(
            workload_list, options.budget, /*fast_forward=*/true, n);
        std::printf("  %.3f s sweep\n", point.sweepSeconds);
        Json p = Json::object();
        p.set("jobs", n);
        p.set("sweep_host_seconds", rounded(point.sweepSeconds, 1000));
        p.set("dram_cycles_per_host_second",
              std::round(static_cast<double>(point.dramCycles) /
                         point.sweepSeconds));
        scaling.push(std::move(p));
    }

    try {
        Json entries = loadEntries(options.outPath);
        entries.push(
            entryJson(options, jobs, ref, opt, bit_exact, scaling));
        Json trajectory = Json::object();
        trajectory.set("schema", "stfm-perf-trajectory-v1");
        trajectory.set("entries", std::move(entries));
        writeJsonFile(trajectory, options.outPath);
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    std::printf("speedup %.2fx, bit_exact %s -> %s (entry '%s')\n",
                (ref.aloneSeconds + ref.sweepSeconds) /
                    (opt.aloneSeconds + opt.sweepSeconds),
                bit_exact ? "true" : "false", options.outPath.c_str(),
                options.label.c_str());
    return bit_exact ? 0 : 1;
}

} // namespace stfm
