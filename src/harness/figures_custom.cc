/**
 * @file
 * The custom figure harnesses — figures whose structure does not fit
 * the declarative (workload x scheduler) experiment grid: the fig03
 * idleness schedule (hand-built staggered traces), the fig05 pairing
 * sweep, fig14's per-assignment weight tables, fig15's alpha series,
 * the calibration tables and the design-choice ablations. Bodies moved
 * verbatim from the historical bench/ binaries; bench/ keeps one thin
 * wrapper per figure.
 */

#include "harness/figures.hh"

#include <algorithm>
#include <iostream>
#include <memory>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "sim/system.hh"
#include "stats/summary.hh"
#include "trace/catalog.hh"
#include "trace/generator.hh"

namespace stfm
{
namespace figures
{

// --------------------------------------------------------------------
// Figure 1 — motivation: slowdown variance under FR-FCFS.

namespace
{

void
motivationCase(unsigned cores, const Workload &workload)
{
    SimConfig base = SimConfig::baseline(cores);
    base.instructionBudget = ExperimentRunner::budgetFromEnv(60000);
    ExperimentRunner runner(base);

    SchedulerConfig fr_fcfs; // Default-constructed = FR-FCFS.
    const RunOutcome outcome = runner.run(workload, fr_fcfs);

    std::cout << cores << "-core workload under FR-FCFS\n";
    TextTable table({"core", "benchmark", "memory slowdown"});
    for (unsigned t = 0; t < workload.size(); ++t) {
        table.addRow({std::to_string(t + 1), workload[t],
                      fmt(outcome.metrics.slowdowns[t])});
    }
    table.print(std::cout);
    std::cout << "unfairness (max/min): "
              << fmt(outcome.metrics.unfairness) << "\n\n";
}

} // namespace

int
motivation(const FigureFlags &)
{
    std::cout << "Figure 1: memory slowdown of programs under the "
                 "thread-unaware FR-FCFS baseline\n\n";
    motivationCase(4, workloads::fig1FourCore());
    motivationCase(8, workloads::fig1EightCore());
    return 0;
}

// --------------------------------------------------------------------
// Figure 3 — the NFQ idleness problem, demonstrated quantitatively.

namespace
{

/** Prepends an idle (pure-compute) phase to another trace. */
class DelayedTrace : public TraceSource
{
  public:
    DelayedTrace(std::unique_ptr<TraceSource> inner,
                 std::uint64_t idle_instructions)
        : inner_(std::move(inner)), remaining_(idle_instructions)
    {}

    TraceOp
    next() override
    {
        if (remaining_ > 0) {
            TraceOp idle;
            idle.kind = TraceOp::Kind::None;
            idle.aluBefore = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(remaining_, 100000));
            remaining_ -= idle.aluBefore;
            return idle;
        }
        return inner_->next();
    }

    void
    warmupFootprint(std::size_t lines, std::vector<WarmLine> &out) override
    {
        inner_->warmupFootprint(lines, out);
    }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t remaining_;
};

TraceProfile
continuousProfile()
{
    TraceProfile p;
    p.mpki = 40;
    p.rowBufferHitRate = 0.9;
    p.burstDuty = 1.0; // Thread 1: never idle.
    p.streamCount = 8;
    p.storeFraction = 0.3;
    return p;
}

TraceProfile
burstyProfile()
{
    TraceProfile p = continuousProfile();
    p.burstDuty = 0.4; // Threads 2-4: bursts with idle gaps.
    p.burstLength = 64;
    return p;
}

SimResult
idlenessRun(PolicyKind kind, double *alone_mcpi)
{
    SimConfig config = SimConfig::baseline(4);
    config.instructionBudget = 40000;
    config.scheduler.kind = kind;
    AddressMapping mapping(config.memory.channels,
                           config.memory.banksPerChannel,
                           config.memory.rowBytes, config.memory.lineBytes,
                           config.memory.rowsPerBank,
                           config.memory.xorBankMapping);

    // Alone baselines (FR-FCFS, no initial delays).
    for (unsigned t = 0; t < 4; ++t) {
        SimConfig alone = config;
        alone.cores = 1;
        alone.scheduler = SchedulerConfig{};
        std::vector<std::unique_ptr<TraceSource>> solo;
        solo.push_back(std::make_unique<SyntheticTraceGenerator>(
            t == 0 ? continuousProfile() : burstyProfile(), mapping, 0,
            1, 100 + t));
        CmpSystem system(alone, std::move(solo));
        alone_mcpi[t] = system.run().threads[0].mcpi();
    }

    // Shared run: Thread 1 starts immediately; Threads 2-4 join at
    // staggered times t1 < t2 < t3 (Figure 3's schedule).
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(std::make_unique<SyntheticTraceGenerator>(
        continuousProfile(), mapping, 0, 4, 100));
    for (unsigned t = 1; t < 4; ++t) {
        traces.push_back(std::make_unique<DelayedTrace>(
            std::make_unique<SyntheticTraceGenerator>(burstyProfile(),
                                                      mapping, t, 4,
                                                      100 + t),
            /*idle_instructions=*/8000u * t));
    }
    CmpSystem system(config, std::move(traces));
    return system.run();
}

} // namespace

int
idleness(const FigureFlags &)
{
    std::cout << "Figure 3: the idleness problem — one continuous "
                 "thread vs three staggered bursty threads\n\n";
    TextTable table({"scheduler", "T1 (continuous)", "T2 (bursty)",
                     "T3 (bursty)", "T4 (bursty)",
                     "T1 vs bursty-max"});
    for (const PolicyKind kind :
         {PolicyKind::FrFcfs, PolicyKind::Nfq, PolicyKind::Stfm}) {
        double alone[4] = {};
        const SimResult result = idlenessRun(kind, alone);
        double slowdown[4];
        for (unsigned t = 0; t < 4; ++t)
            slowdown[t] = result.threads[t].mcpi() / alone[t];
        const double bursty_max =
            std::max({slowdown[1], slowdown[2], slowdown[3]});
        const char *name = kind == PolicyKind::FrFcfs ? "FR-FCFS"
                           : kind == PolicyKind::Nfq  ? "NFQ"
                                                      : "STFM";
        table.addRow({name, fmt(slowdown[0]), fmt(slowdown[1]),
                      fmt(slowdown[2]), fmt(slowdown[3]),
                      fmt(slowdown[0] / bursty_max)});
    }
    table.print(std::cout);
    std::cout << "\nT1-vs-bursty-max > 1 means the continuous thread is "
                 "treated worse than the bursty ones; the paper "
                 "predicts NFQ shows the largest such bias.\n";
    return 0;
}

// --------------------------------------------------------------------
// Figure 5 — 2-core: mcf runs against every other SPEC benchmark.

namespace
{

/**
 * Per-run observability artifacts for a custom (non-spec-driven)
 * figure: the configured paths get a "<figure>.<tag>" suffix before
 * the extension because the pairing sweep produces one document per
 * (workload, scheduler) run.
 */
void
writeOutcomeArtifacts(const TelemetryConfig &telemetry,
                      const std::string &figure, const RunOutcome &o,
                      const std::string &tag)
{
    const auto tagged = [&](const std::string &path) {
        const std::size_t dot = path.rfind('.');
        const std::string suffix = "." + tag;
        if (dot == std::string::npos)
            return path + suffix;
        return path.substr(0, dot) + suffix + path.substr(dot);
    };
    if (o.hasTelemetry()) {
        const std::string base_path = telemetry.output.empty()
                                          ? figure + "_telemetry.json"
                                          : telemetry.output;
        const std::string path = tagged(base_path);
        writeJsonFile(o.telemetry, path);
        std::cout << "observability artifact written to " << path
                  << "\n";
    }
    if (o.hasTrace() && !telemetry.trace.empty()) {
        const std::string path = tagged(telemetry.trace);
        writeJsonFile(o.trace, path);
        std::cout << "observability artifact written to " << path
                  << "\n";
    }
}

} // namespace

int
twoCore(const FigureFlags &)
{
    SimConfig base = SimConfig::baseline(2);
    base.instructionBudget = ExperimentRunner::budgetFromEnv(50000);
    ExperimentRunner runner(base);

    SchedulerConfig fr_fcfs;
    SchedulerConfig stfm_cfg;
    stfm_cfg.kind = PolicyKind::Stfm;

    std::cout << "Figure 5: mcf paired with every other benchmark "
                 "(2-core)\n\n";

    TextTable table({"other benchmark", "mcf(FR-FCFS)", "other(FR-FCFS)",
                     "unfair(FR)", "mcf(STFM)", "other(STFM)",
                     "unfair(STFM)"});
    GeoMean unfair_fr, unfair_stfm;
    SweepSummary sum_fr, sum_stfm;
    double max_unfair_stfm = 0.0;

    for (const auto &profile : benchmarkCatalog()) {
        if (profile.name == "mcf")
            continue;
        const Workload workload = {"mcf", profile.name};
        const RunOutcome fr = runner.run(workload, fr_fcfs);
        const RunOutcome st = runner.run(workload, stfm_cfg);
        const TelemetryConfig &telemetry = runner.base().telemetry;
        if (telemetry.collecting()) {
            writeOutcomeArtifacts(telemetry, "fig05", fr,
                                  "mcf-" + profile.name + ".FR-FCFS");
            writeOutcomeArtifacts(telemetry, "fig05", st,
                                  "mcf-" + profile.name + ".STFM");
        }
        table.addRow({profile.name, fmt(fr.metrics.slowdowns[0]),
                      fmt(fr.metrics.slowdowns[1]),
                      fmt(fr.metrics.unfairness),
                      fmt(st.metrics.slowdowns[0]),
                      fmt(st.metrics.slowdowns[1]),
                      fmt(st.metrics.unfairness)});
        unfair_fr.add(fr.metrics.unfairness);
        unfair_stfm.add(st.metrics.unfairness);
        sum_fr.add(fr.metrics);
        sum_stfm.add(st.metrics);
        max_unfair_stfm =
            std::max(max_unfair_stfm, st.metrics.unfairness);
    }
    table.print(std::cout);

    std::cout << "\nGMEAN unfairness:      FR-FCFS "
              << fmt(unfair_fr.value()) << "  STFM "
              << fmt(unfair_stfm.value()) << "\n";
    std::cout << "max STFM unfairness:   " << fmt(max_unfair_stfm)
              << "\n";
    std::cout << "GMEAN weighted speedup: FR-FCFS "
              << fmt(sum_fr.weightedSpeedup.value()) << "  STFM "
              << fmt(sum_stfm.weightedSpeedup.value()) << "\n";
    std::cout << "GMEAN hmean speedup:    FR-FCFS "
              << fmt(sum_fr.hmeanSpeedup.value(), 3) << "  STFM "
              << fmt(sum_stfm.hmeanSpeedup.value(), 3) << "\n";
    std::cout << "GMEAN sum-of-IPCs:      FR-FCFS "
              << fmt(sum_fr.sumOfIpcs.value()) << "  STFM "
              << fmt(sum_stfm.sumOfIpcs.value()) << "\n";
    return 0;
}

// --------------------------------------------------------------------
// Figure 14 — system-software support: thread weights.

namespace
{

void
runWeights(ExperimentRunner &runner, const Workload &workload,
           const std::vector<double> &weights)
{
    std::cout << "weights:";
    for (const double w : weights)
        std::cout << ' ' << static_cast<int>(w);
    std::cout << '\n';

    SchedulerConfig fr_fcfs;
    SchedulerConfig nfq;
    nfq.kind = PolicyKind::Nfq;
    nfq.shares = weights; // NFQ: bandwidth share proportional to weight.
    SchedulerConfig stfm_cfg;
    stfm_cfg.kind = PolicyKind::Stfm;
    stfm_cfg.weights = weights;

    std::vector<std::string> headers{"scheduler"};
    for (std::size_t i = 0; i < workload.size(); ++i) {
        headers.push_back(workload[i] + "(w" +
                          std::to_string(static_cast<int>(weights[i])) +
                          ")");
    }
    headers.push_back("equal-pri unfairness");
    TextTable table(std::move(headers));

    for (const auto &sched : {fr_fcfs, nfq, stfm_cfg}) {
        const RunOutcome o = runner.run(workload, sched);
        // Unfairness among the weight-1 threads only.
        double max_s = 0.0, min_s = 1e30;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (weights[i] == 1.0) {
                max_s = std::max(max_s, o.metrics.slowdowns[i]);
                min_s = std::min(min_s, o.metrics.slowdowns[i]);
            }
        }
        std::vector<std::string> row{o.policyName};
        for (const double s : o.metrics.slowdowns)
            row.push_back(fmt(s));
        row.push_back(fmt(max_s / min_s));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
threadWeights(const FigureFlags &)
{
    SimConfig base = SimConfig::baseline(4);
    base.instructionBudget = ExperimentRunner::budgetFromEnv(60000);
    ExperimentRunner runner(base);
    const Workload workload = workloads::weighted();

    std::cout << "Figure 14: thread weights (" << workloadLabel(workload)
              << ")\n\n";
    runWeights(runner, workload, {1, 16, 1, 1});
    runWeights(runner, workload, {1, 4, 8, 1});
    return 0;
}

// --------------------------------------------------------------------
// Figure 15 — sensitivity to the alpha threshold.

int
alphaSweep(const FigureFlags &)
{
    SimConfig base = SimConfig::baseline(4);
    base.instructionBudget = ExperimentRunner::budgetFromEnv(60000);
    ExperimentRunner runner(base);
    const Workload workload = workloads::caseIntensive();

    std::cout << "Figure 15: effect of alpha ("
              << workloadLabel(workload) << ")\n\n";

    TextTable table({"config", "unfairness", "weighted-speedup",
                     "sum-of-IPCs", "hmean-speedup"});
    for (const double alpha : {1.0, 1.05, 1.1, 1.2, 2.0, 5.0, 20.0}) {
        SchedulerConfig sched;
        sched.kind = PolicyKind::Stfm;
        sched.alpha = alpha;
        const RunOutcome o = runner.run(workload, sched);
        table.addRow({"Alpha=" + fmt(alpha, 2),
                      fmt(o.metrics.unfairness),
                      fmt(o.metrics.weightedSpeedup),
                      fmt(o.metrics.sumOfIpcs),
                      fmt(o.metrics.hmeanSpeedup, 3)});
    }
    const RunOutcome fr = runner.run(workload, SchedulerConfig{});
    table.addRow({"FR-FCFS", fmt(fr.metrics.unfairness),
                  fmt(fr.metrics.weightedSpeedup),
                  fmt(fr.metrics.sumOfIpcs),
                  fmt(fr.metrics.hmeanSpeedup, 3)});
    table.print(std::cout);
    return 0;
}

// --------------------------------------------------------------------
// Table 3 (and Table 4) — benchmark characteristics measured alone.

namespace
{

void
characteristicsReport(ExperimentRunner &runner,
                      const std::vector<BenchmarkProfile> &catalog,
                      const char *title)
{
    std::cout << title << "\n";
    TextTable table({"#", "benchmark", "type", "MCPI", "(paper)",
                     "L2 MPKI", "(paper)", "RBhit%", "(paper)", "cat"});
    unsigned index = 1;
    for (const auto &profile : catalog) {
        const ThreadResult &r = runner.aloneResult(profile.name);
        table.addRow({std::to_string(index++), profile.name, profile.type,
                      fmt(r.mcpi()), fmt(profile.paperMcpi),
                      fmt(r.mpki(), 1), fmt(profile.paperMpki, 1),
                      fmt(100.0 * r.rowHitRate(), 1),
                      fmt(100.0 * profile.paperRowHit, 1),
                      std::to_string(profile.category)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
table3Characteristics(const FigureFlags &)
{
    SimConfig base = SimConfig::baseline(4);
    base.instructionBudget = ExperimentRunner::budgetFromEnv(60000);
    ExperimentRunner runner(base);

    characteristicsReport(runner, benchmarkCatalog(),
                          "Table 3: SPEC CPU2006 benchmark "
                          "characteristics (measured alone, FR-FCFS)");
    characteristicsReport(runner, desktopCatalog(),
                          "Table 4: Windows desktop application "
                          "characteristics (measured alone, FR-FCFS)");
    return 0;
}

// --------------------------------------------------------------------
// Table 5 — sensitivity to DRAM banks and row-buffer size.

namespace
{

struct SensitivityCell
{
    double unfairnessFr = 0.0, wsFr = 0.0;
    double unfairnessStfm = 0.0, wsStfm = 0.0;
};

SensitivityCell
measureSensitivity(unsigned banks, std::uint64_t row_bytes,
                   const std::vector<Workload> &workload_list,
                   std::uint64_t budget)
{
    SimConfig base = SimConfig::baseline(8);
    base.memory.banksPerChannel = banks;
    base.memory.rowBytes = row_bytes;
    base.instructionBudget = budget;
    ExperimentRunner runner(base);

    SchedulerConfig fr_fcfs;
    SchedulerConfig stfm_cfg;
    stfm_cfg.kind = PolicyKind::Stfm;

    SweepSummary fr, stfm_summary;
    for (const Workload &w : workload_list) {
        fr.add(runner.run(w, fr_fcfs).metrics);
        stfm_summary.add(runner.run(w, stfm_cfg).metrics);
    }
    return {fr.unfairness.value(), fr.weightedSpeedup.value(),
            stfm_summary.unfairness.value(),
            stfm_summary.weightedSpeedup.value()};
}

void
sensitivityReport(const char *dimension, const std::string &label,
                  const SensitivityCell &c)
{
    std::cout << dimension << "=" << label << ": FR-FCFS unfairness "
              << fmt(c.unfairnessFr) << " WS " << fmt(c.wsFr)
              << " | STFM unfairness " << fmt(c.unfairnessStfm) << " WS "
              << fmt(c.wsStfm) << " | improvement "
              << fmt(c.unfairnessFr / c.unfairnessStfm) << "X / "
              << fmt(100.0 * (c.wsStfm / c.wsFr - 1.0), 1) << "%\n";
}

} // namespace

int
table5Sensitivity(const FigureFlags &flags)
{
    const auto workload_list =
        sampleWorkloads(8, flags.full ? 32 : 8, /*seed=*/0x7ab1e5);
    const std::uint64_t budget =
        ExperimentRunner::budgetFromEnv(40000);

    std::cout << "Table 5: sensitivity to DRAM banks and row-buffer "
                 "size (8-core sweep, "
              << workload_list.size() << " workloads)\n\n";

    std::cout << "-- DRAM banks (16 KB effective rows) --\n";
    for (const unsigned banks : {4u, 8u, 16u}) {
        sensitivityReport(
            "banks", std::to_string(banks),
            measureSensitivity(banks, 16 * 1024, workload_list, budget));
    }
    std::cout << "\n-- Row-buffer size (8 banks) --\n";
    for (const std::uint64_t row : {8u * 1024, 16u * 1024, 32u * 1024}) {
        sensitivityReport(
            "row", std::to_string(row / 1024) + "KB",
            measureSensitivity(8, row, workload_list, budget));
    }
    return 0;
}

// --------------------------------------------------------------------
// STFM design-choice ablations.

namespace
{

void
ablationRow(ExperimentRunner &runner, const Workload &workload,
            TextTable &table, const std::string &label,
            const SchedulerConfig &sched)
{
    const RunOutcome o = runner.run(workload, sched);
    table.addRow({label, fmt(o.metrics.unfairness),
                  fmt(o.metrics.weightedSpeedup),
                  fmt(o.metrics.hmeanSpeedup, 3)});
}

} // namespace

int
ablationStfm(const FigureFlags &)
{
    SimConfig base = SimConfig::baseline(4);
    base.instructionBudget = ExperimentRunner::budgetFromEnv(60000);
    ExperimentRunner runner(base);
    const Workload workload = workloads::caseIntensive();

    std::cout << "STFM ablations (" << workloadLabel(workload) << ")\n\n";
    TextTable table({"variant", "unfairness", "weighted-speedup",
                     "hmean-speedup"});

    SchedulerConfig stfm_cfg;
    stfm_cfg.kind = PolicyKind::Stfm;
    ablationRow(runner, workload, table,
                "baseline (gamma=0.5, 2^24, quantized)", stfm_cfg);

    for (const double gamma : {0.25, 1.0, 2.0}) {
        SchedulerConfig s = stfm_cfg;
        s.gamma = gamma;
        ablationRow(runner, workload, table, "gamma=" + fmt(gamma, 2), s);
    }
    for (const unsigned shift : {14u, 18u, 28u}) {
        SchedulerConfig s = stfm_cfg;
        s.intervalLength = 1ULL << shift;
        ablationRow(runner, workload, table,
                    "interval=2^" + std::to_string(shift), s);
    }
    {
        SchedulerConfig s = stfm_cfg;
        s.quantizeSlowdowns = false;
        ablationRow(runner, workload, table, "exact slowdown registers",
                    s);
    }
    {
        SchedulerConfig s = stfm_cfg;
        s.busInterference = true;
        ablationRow(runner, workload, table, "with per-event bus term",
                    s);
    }
    {
        SchedulerConfig s = stfm_cfg;
        s.requestLevelEstimator = true;
        ablationRow(runner, workload, table, "request-level estimator",
                    s);
    }
    table.print(std::cout);
    return 0;
}

// --------------------------------------------------------------------
// Controller/substrate design-choice ablations.

namespace
{

void
controllerRow(TextTable &table, const std::string &label,
              const SimConfig &base, const Workload &workload)
{
    ExperimentRunner runner(base);
    const RunOutcome o = runner.run(workload, SchedulerConfig{});
    table.addRow({label, fmt(o.metrics.unfairness),
                  fmt(o.metrics.weightedSpeedup),
                  fmt(o.metrics.hmeanSpeedup, 3)});
}

} // namespace

int
ablationController(const FigureFlags &)
{
    SimConfig base = SimConfig::baseline(4);
    base.instructionBudget = ExperimentRunner::budgetFromEnv(50000);
    const Workload workload = workloads::caseNonIntensive();

    std::cout << "Controller design ablations under FR-FCFS ("
              << workloadLabel(workload) << ")\n\n";
    TextTable table({"variant", "unfairness", "weighted-speedup",
                     "hmean-speedup"});

    controllerRow(table, "baseline", base, workload);
    {
        SimConfig c = base;
        c.memory.controller.rowProtection = false;
        controllerRow(table, "no row protection", c, workload);
    }
    {
        SimConfig c = base;
        c.memory.xorBankMapping = false;
        controllerRow(table, "linear bank mapping", c, workload);
    }
    {
        SimConfig c = base;
        c.memory.controller.refreshEnabled = true;
        controllerRow(table, "with auto-refresh", c, workload);
    }
    for (const unsigned banks : {4u, 16u}) {
        SimConfig c = base;
        c.memory.banksPerChannel = banks;
        controllerRow(table, std::to_string(banks) + " banks", c,
                      workload);
    }
    table.print(std::cout);
    return 0;
}

} // namespace figures
} // namespace stfm
