/**
 * @file
 * The controller's request buffer: per-bank queues of outstanding
 * requests with separate capacity accounting for reads (the 128-entry
 * request buffer of Table 2) and writes (the 32-entry write data
 * buffer).
 */

#ifndef STFM_MEM_REQUEST_BUFFER_HH
#define STFM_MEM_REQUEST_BUFFER_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"

namespace stfm
{

class RequestBuffer
{
  public:
    RequestBuffer(unsigned banks, unsigned read_capacity,
                  unsigned write_capacity, unsigned threads = 32);

    bool canAcceptRead() const { return readCount_ < readCapacity_; }
    bool canAcceptWrite() const { return writeCount_ < writeCapacity_; }

    /** Insert a request; returns a stable pointer to the stored copy. */
    Request *add(const Request &req);

    /** Remove @p req from its bank queue and return ownership. */
    std::unique_ptr<Request> extract(Request *req);

    /** Un-issued requests queued for @p bank, in arrival order. */
    const std::vector<std::unique_ptr<Request>> &queue(BankId bank) const
    {
        return queues_[bank];
    }

    /** Youngest queued write to @p addr (for coalescing/forwarding). */
    Request *findWrite(Addr addr) const;

    unsigned readCount() const { return readCount_; }
    /** Queued reads belonging to @p thread. */
    unsigned readCount(ThreadId thread) const
    {
        return threadReads_[thread];
    }
    unsigned writeCount() const { return writeCount_; }
    /** Queued writes destined for @p bank. */
    unsigned writeCount(BankId bank) const { return bankWrites_[bank]; }
    /** Bank with the most queued writes (ties to the lowest id). */
    BankId busiestWriteBank() const;
    /** Bank holding the oldest queued write (FIFO-fair drain target). */
    BankId oldestWriteBank() const;
    bool empty() const { return readCount_ + writeCount_ == 0; }

    unsigned readCapacity() const { return readCapacity_; }
    unsigned writeCapacity() const { return writeCapacity_; }

  private:
    unsigned readCapacity_;
    unsigned writeCapacity_;
    unsigned readCount_ = 0;
    unsigned writeCount_ = 0;
    std::vector<unsigned> bankWrites_;
    std::vector<unsigned> threadReads_;
    std::vector<std::vector<std::unique_ptr<Request>>> queues_;
};

} // namespace stfm

#endif // STFM_MEM_REQUEST_BUFFER_HH
