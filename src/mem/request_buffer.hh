/**
 * @file
 * The controller's request buffer: per-bank queues of outstanding
 * requests with separate capacity accounting for reads (the 128-entry
 * request buffer of Table 2) and writes (the 32-entry write data
 * buffer).
 */

#ifndef STFM_MEM_REQUEST_BUFFER_HH
#define STFM_MEM_REQUEST_BUFFER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"

namespace stfm
{

class RequestBuffer
{
  public:
    RequestBuffer(unsigned banks, unsigned read_capacity,
                  unsigned write_capacity, unsigned threads = 32);

    bool canAcceptRead() const { return readCount_ < readCapacity_; }
    bool canAcceptWrite() const { return writeCount_ < writeCapacity_; }

    /** Insert a request; returns a stable pointer to the stored copy. */
    Request *add(const Request &req);

    /** Remove @p req from its bank queue and return ownership. */
    std::unique_ptr<Request> extract(Request *req);

    /** Un-issued requests queued for @p bank, in arrival order. */
    const std::vector<std::unique_ptr<Request>> &queue(BankId bank) const
    {
        return queues_[bank];
    }

    /** Youngest queued write to @p addr (for coalescing/forwarding). */
    Request *findWrite(Addr addr) const;

    /** Reads/writes queued for one (bank, row) pair. */
    struct RowMix
    {
        unsigned reads = 0;
        unsigned writes = 0;
        /** Threads with >= 1 blocking read queued for this row — the
         *  threads a data burst that bypasses the row actually delays.
         *  Maintained with the per-thread counts below so the last
         *  extract clears the bit. */
        std::uint32_t blockingReadMask = 0;
        std::array<std::uint16_t, 32> blockingReads{};
        unsigned total() const { return reads + writes; }
    };

    /**
     * Requests queued for (bank, row), maintained incrementally on
     * add/extract. Lets the controller classify a bank's demand against
     * its open row — row hits vs. conflicts — without scanning the
     * queue. Null when no request targets the row. Stored as a flat
     * per-bank array scanned linearly: a bank queue holds only a
     * handful of distinct rows at a time, where the scan beats a hash
     * lookup and the entries stay cache-resident. Lookup only — no
     * caller iterates the index, so its internal order is free.
     */
    const RowMix *rowMix(BankId bank, RowId row) const
    {
        for (const RowEntry &e : rowIndex_[bank]) {
            if (e.row == row)
                return &e.mix;
        }
        return nullptr;
    }

    /** Number of requests (reads + writes) queued for @p bank. */
    unsigned queueSize(BankId bank) const
    {
        return static_cast<unsigned>(queues_[bank].size());
    }

    unsigned readCount() const { return readCount_; }
    /** Queued reads belonging to @p thread. */
    unsigned readCount(ThreadId thread) const
    {
        return threadReads_[thread];
    }
    unsigned writeCount() const { return writeCount_; }
    /** Queued writes destined for @p bank. */
    unsigned writeCount(BankId bank) const { return bankWrites_[bank]; }
    /** Bank with the most queued writes (ties to the lowest id).
     *  Memoized: the drain controller polls this every tick, while the
     *  per-bank write counts only move on a write add/extract. */
    BankId busiestWriteBank() const;
    /** Bank holding the oldest queued write (FIFO-fair drain target). */
    BankId oldestWriteBank() const;
    bool empty() const { return readCount_ + writeCount_ == 0; }

    unsigned readCapacity() const { return readCapacity_; }
    unsigned writeCapacity() const { return writeCapacity_; }

  private:
    unsigned readCapacity_;
    unsigned writeCapacity_;
    unsigned readCount_ = 0;
    unsigned writeCount_ = 0;
    std::vector<unsigned> bankWrites_;
    mutable BankId busiestWrite_ = 0;
    mutable bool busiestWriteDirty_ = false;
    std::vector<unsigned> threadReads_;
    std::vector<std::vector<std::unique_ptr<Request>>> queues_;
    struct RowEntry
    {
        RowId row;
        RowMix mix;
    };
    std::vector<std::vector<RowEntry>> rowIndex_;
    /** Queued write per line address (enqueue coalescing guarantees at
     *  most one); constant-time findWrite for forwarding/coalescing. */
    std::unordered_map<Addr, Request *> writeByAddr_;
};

} // namespace stfm

#endif // STFM_MEM_REQUEST_BUFFER_HH
