#include "mem/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/session.hh"

namespace stfm
{

MemorySystem::MemorySystem(const MemoryConfig &config,
                           const SchedulerConfig &sched_config,
                           unsigned num_threads)
    : config_(config), numThreads_(num_threads),
      mapping_(config.channels, config.banksPerChannel, config.rowBytes,
               config.lineBytes, config.rowsPerBank,
               config.xorBankMapping, config.bankGroups),
      occupancy_(num_threads, config.channels * config.banksPerChannel),
      policy_(makeSchedulingPolicy(sched_config, num_threads,
                                   config.channels *
                                       config.banksPerChannel))
{
    STFM_ASSERT(num_threads <= 32,
                "thread bitmasks limit the system to 32 threads "
                "(requested %u)",
                num_threads);
    for (ChannelId c = 0; c < config.channels; ++c) {
        controllers_.push_back(std::make_unique<MemoryController>(
            c, config.banksPerChannel, config.timing, config.controller,
            *policy_, occupancy_, num_threads, config.bankGroups));
    }
}

bool
MemorySystem::canAcceptRead(Addr addr) const
{
    return controllers_[mapping_.decode(addr).channel]->canAcceptRead();
}

bool
MemorySystem::canAcceptWrite(Addr addr) const
{
    return controllers_[mapping_.decode(addr).channel]->canAcceptWrite();
}

void
MemorySystem::issueRead(Addr addr, ThreadId thread, bool blocking)
{
    const AddrDecode coords = mapping_.decode(addr);
    controllers_[coords.channel]->enqueueRead(addr, coords, thread,
                                              blocking, cpuNow_,
                                              dramNow_);
}

void
MemorySystem::issueWrite(Addr addr, ThreadId thread)
{
    const AddrDecode coords = mapping_.decode(addr);
    controllers_[coords.channel]->enqueueWrite(addr, coords, thread,
                                               cpuNow_, dramNow_);
}

void
MemorySystem::noteEnqueueBlocked(Addr addr, ThreadId thread)
{
    const ChannelId channel = mapping_.decode(addr).channel;
    const RequestBuffer &buffer = controllers_[channel]->buffer();
    const unsigned total = buffer.readCount();
    if (total == 0)
        return;
    const double foreign =
        static_cast<double>(total - buffer.readCount(thread)) / total;
    policy_->onEnqueueBlocked(thread, foreign,
                              makeContext(channel, cpuNow_));
}

void
MemorySystem::setReadCallback(ReadCallback cb)
{
    for (auto &controller : controllers_)
        controller->setReadCallback(cb);
}

SchedContext
MemorySystem::makeContext(ChannelId channel, Cycles cpu_now) const
{
    SchedContext ctx;
    ctx.cpuNow = cpu_now;
    ctx.dramNow = dramNow_;
    ctx.channel = channel;
    ctx.numThreads = numThreads_;
    ctx.banksPerChannel = config_.banksPerChannel;
    ctx.cpuPerDram = config_.cpuPerDram();
    ctx.timing = &config_.timing;
    ctx.occupancy = &occupancy_;
    ctx.stallCycles = stallCycles_;
    return ctx;
}

void
MemorySystem::tick(Cycles cpu_now)
{
    cpuNow_ = cpu_now;
    if (cpu_now % config_.cpuPerDram() != 0)
        return;
    boundaryTick(cpu_now);
}

void
MemorySystem::boundaryTick(Cycles cpu_now)
{
    cpuNow_ = cpu_now;
    ++dramNow_;
    SchedContext ctx = makeContext(0, cpu_now);
    policy_->beginCycle(ctx);
    for (ChannelId c = 0; c < controllers_.size(); ++c) {
        ctx.channel = c;
        controllers_[c]->tick(ctx);
    }
}

void
MemorySystem::quiescentDramTick(Cycles cpu_now)
{
    cpuNow_ = cpu_now;
    ++dramNow_;
    policy_->beginCycle(makeContext(0, cpu_now));
}

void
MemorySystem::refreshWakeCache() const
{
    std::uint64_t gen = 0;
    for (const auto &controller : controllers_)
        gen += controller->stateGen();
    // Re-sweep when a scheduler-visible event occurred, or once the
    // cached bound's own cycle has executed (that tick either bumped
    // the generation by doing work, or proved itself a spurious wake —
    // in which case the fresh sweep lands strictly later).
    if (!wakeValid_ || gen != wakeGen_ ||
        (wakeDram_ != MemoryController::kNeverDram &&
         wakeDram_ <= dramNow_)) {
        DramCycles wake = MemoryController::kNeverDram;
        for (const auto &controller : controllers_) {
            wake = std::min(wake,
                            controller->nextInterestingCycle(dramNow_));
        }
        wakeDram_ = wake;
        wakeGen_ = gen;
        wakeValid_ = true;
    }
}

Cycles
MemorySystem::nextInterestingCpuCycle(Cycles now) const
{
    refreshWakeCache();
    // DRAM cycle W (> dramNow_) is reached at the (W - dramNow_)'th
    // DRAM boundary after the most recent one at or before `now`.
    if (wakeDram_ == MemoryController::kNeverDram)
        return kNever;
    const Cycles per = config_.cpuPerDram();
    const Cycles last_boundary = now / per * per;
    const DramCycles ahead = wakeDram_ - dramNow_;
    return ahead > (kNever - last_boundary) / per
               ? kNever // Saturate instead of overflowing.
               : last_boundary + ahead * per;
}

Cycles
MemorySystem::nextCompletionEffectCpuCycle(ThreadId t,
                                           Cycles first_boundary) const
{
    DramCycles finish = MemoryController::kNeverDram;
    bool queued = false;
    for (const auto &controller : controllers_) {
        finish = std::min(finish, controller->readCompletionMin(t));
        queued |= controller->queuedReads(t) != 0;
    }
    const Cycles per = config_.cpuPerDram();
    // Queued reads: earliest issue is the tick at first_boundary, and
    // finishAt strictly exceeds the issuing tick's DRAM cycle, so the
    // delivery boundary is at least the one after it.
    Cycles bound = queued ? first_boundary + per + 1 : kNever;
    if (finish != MemoryController::kNeverDram) {
        STFM_ASSERT(finish > dramNow_,
                    "pending completion overdue (finishAt %llu <= "
                    "dramNow %llu)",
                    static_cast<unsigned long long>(finish),
                    static_cast<unsigned long long>(dramNow_));
        const DramCycles ahead = finish - dramNow_ - 1;
        const Cycles delivery =
            ahead > (kNever - first_boundary) / per
                ? kNever // Saturate instead of overflowing.
                : first_boundary + ahead * per;
        if (delivery != kNever)
            bound = std::min(bound, delivery + 1);
    }
    return bound;
}

ControllerThreadStats
MemorySystem::threadStats(ThreadId thread) const
{
    ControllerThreadStats out;
    for (const auto &controller : controllers_) {
        const ControllerThreadStats &s = controller->threadStats(thread);
        out.readsServiced += s.readsServiced;
        out.writesServiced += s.writesServiced;
        out.rowHits += s.rowHits;
        out.rowClosed += s.rowClosed;
        out.rowConflicts += s.rowConflicts;
        out.writeRowHits += s.writeRowHits;
    }
    return out;
}

LatencyHistogram
MemorySystem::readLatency(ThreadId thread) const
{
    LatencyHistogram merged;
    for (const auto &controller : controllers_)
        merged.merge(controller->readLatency(thread));
    return merged;
}

void
MemorySystem::registerObservability(ObsSession &obs)
{
    for (ChannelId c = 0; c < controllers_.size(); ++c) {
        controllers_[c]->registerTelemetry(obs.registry(), &dramNow_);
        if (ChromeTraceWriter *trace = obs.trace()) {
            controllers_[c]->addChannelObserver(trace->channelTap(c));
            controllers_[c]->setDrainTap(trace->drainTap(c));
        }
    }
    policy_->registerTelemetry(obs.registry());
    if (ChromeTraceWriter *trace = obs.trace())
        policy_->setFairnessTap(trace->fairnessTap());
}

void
MemorySystem::auditDrained()
{
    for (auto &controller : controllers_)
        controller->auditDrained(dramNow_);
}

bool
MemorySystem::idle() const
{
    for (const auto &controller : controllers_) {
        if (!controller->idle())
            return false;
    }
    return true;
}

} // namespace stfm
