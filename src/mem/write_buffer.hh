/**
 * @file
 * Write-drain control.
 *
 * The baseline controller (Table 2) prioritizes reads over writes, so
 * writebacks are only scheduled when the write buffer is nearly full or
 * there is no read work. Drains are bank-batched: an episode starts
 * when occupancy reaches the high watermark, drains the single bank
 * holding the most writes, and ends when that bank is empty. One
 * episode therefore disturbs one bank's open row instead of closing
 * rows across the whole channel — essential for preserving the read
 * streams' row-buffer locality. If the buffer nevertheless fills to
 * the brim, an emergency mode opens all banks to writes.
 */

#ifndef STFM_MEM_WRITE_BUFFER_HH
#define STFM_MEM_WRITE_BUFFER_HH

#include "common/types.hh"

namespace stfm
{

class RequestBuffer;

class WriteDrainControl
{
  public:
    /**
     * @param high     Start a drain episode at this occupancy.
     * @param capacity Total write-buffer entries (emergency threshold).
     */
    WriteDrainControl(unsigned high, unsigned capacity);

    /**
     * Advance the drain state machine for this cycle. Free bandwidth
     * (no queued reads) starts an episode early, but writes still go
     * out one bank at a time so their row disturbance stays contained.
     */
    void update(const RequestBuffer &buffer);

    /**
     * Would update() change any state given the current buffer
     * contents? update() is a deterministic, idempotent function of
     * (machine state, buffer contents), so while this is false and the
     * buffer does not change, every skipped update() call is provably a
     * no-op. Skip-ahead predictors use this to decide whether the next
     * cycle's update() is interesting instead of conservatively waking
     * after every buffer event: a pending transition (an episode
     * starting, re-targeting, or the emergency flag flipping) makes the
     * next cycle interesting; otherwise the machine holds until the
     * next enqueue/issue, which invalidates the predictor anyway.
     */
    bool wouldTransition(const RequestBuffer &buffer) const;

    /** Is a drain episode active? */
    bool draining() const { return draining_; }
    /** Bank being drained (valid while draining). */
    BankId drainBank() const { return drainBank_; }
    /** Buffer is critically full: writes allowed in every bank. */
    bool emergency() const { return emergency_; }

    /** Drain episodes started (bank-batch handoffs count as new
     *  episodes: each targets a fresh victim bank). */
    std::uint64_t drainEpisodes() const { return drainEpisodes_; }
    /** Entries into the emergency (buffer-nearly-full) state. */
    std::uint64_t emergencyEntries() const { return emergencyEntries_; }

  private:
    bool pickDrainBank(const RequestBuffer &buffer);

    unsigned high_;
    unsigned capacity_;
    /** Per-bank batch size that triggers an eager drain episode. */
    unsigned bankBatch_;
    bool draining_ = false;
    bool emergency_ = false;
    BankId drainBank_ = 0;
    std::uint64_t drainEpisodes_ = 0;
    std::uint64_t emergencyEntries_ = 0;
};

} // namespace stfm

#endif // STFM_MEM_WRITE_BUFFER_HH
