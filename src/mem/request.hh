/**
 * @file
 * Memory request record held in the controller's request buffer.
 *
 * Each entry mirrors the paper's request-buffer state: address, type,
 * thread identifier, age, readiness and completion status. The
 * thread-ID tag is the hook every fairness-aware policy keys on.
 */

#ifndef STFM_MEM_REQUEST_HH
#define STFM_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/address_mapping.hh"
#include "dram/command.hh"

namespace stfm
{

/** One outstanding memory request. */
struct Request
{
    /** Globally unique request identifier (assigned by the controller). */
    std::uint64_t id = 0;
    /** Line-aligned physical address. */
    Addr addr = 0;
    /** Decoded DRAM coordinates. */
    AddrDecode coords;
    /** True for a writeback, false for a demand read / fill. */
    bool isWrite = false;
    /**
     * A load is stalled on this read (it contributes to memory stall
     * time). Store fills and other background reads are non-blocking:
     * delaying them produces no extra stall, so fairness accounting
     * ignores them.
     */
    bool blocking = true;
    /** Originating hardware thread. */
    ThreadId thread = kInvalidThread;
    /** CPU cycle the request entered the controller. */
    Cycles arrivalCpu = 0;
    /** DRAM cycle the request entered the controller. */
    DramCycles arrivalDram = 0;
    /** Arrival order within the controller (FCFS age). */
    std::uint64_t seq = 0;

    /** Set once the column (read/write) command has issued. */
    bool columnIssued = false;
    /** A precharge was issued with this request as the winner. */
    bool sawPrecharge = false;
    /** An activate was issued with this request as the winner. */
    bool sawActivate = false;
    /** Row-buffer category observed when the column command issued. */
    RowBufferState serviceState = RowBufferState::Closed;
    /** DRAM cycle at which the data burst completes (valid once issued). */
    DramCycles finishAt = 0;
    /** Row-buffer category seen at arrival (for row-hit-rate stats). */
    RowBufferState arrivalState = RowBufferState::Closed;
};

/**
 * The next DRAM command a request needs, given the current row-buffer
 * state of its bank.
 */
inline DramCommand
nextCommandFor(const Request &req, RowBufferState state)
{
    switch (state) {
      case RowBufferState::Hit:
        return req.isWrite ? DramCommand::Write : DramCommand::Read;
      case RowBufferState::Closed:
        return DramCommand::Activate;
      case RowBufferState::Conflict:
        return DramCommand::Precharge;
    }
    return DramCommand::Activate;
}

/** A schedulable (request, command) pair offered to the policy. */
struct Candidate
{
    const Request *req = nullptr;
    DramCommand cmd = DramCommand::Activate;

    bool valid() const { return req != nullptr; }
};

} // namespace stfm

#endif // STFM_MEM_REQUEST_HH
