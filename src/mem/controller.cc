#include "mem/controller.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace stfm
{

MemoryController::MemoryController(ChannelId channel_id, unsigned num_banks,
                                   const DramTiming &timing,
                                   const ControllerParams &params,
                                   SchedulingPolicy &policy,
                                   ThreadBankOccupancy &occupancy,
                                   unsigned num_threads)
    : channelId_(channel_id), channel_(num_banks, timing), params_(params),
      policy_(policy), occupancy_(occupancy),
      buffer_(num_banks, params.requestBufferEntries,
              params.writeBufferEntries),
      drain_(std::min(params.writeDrainHigh, params.writeBufferEntries),
             params.writeBufferEntries),
      threadStats_(num_threads), readLatency_(num_threads)
{
    const IntegrityConfig &integrity = params.integrity;
    if (integrity.protocolCheck) {
        checker_ = std::make_unique<ProtocolChecker>(
            channel_id, num_banks, timing, integrity.throwOnViolation);
        channel_.setObserver(checker_.get());
    }
    if (integrity.watchdog) {
        auditor_ = std::make_unique<RequestAuditor>(
            channel_id, integrity.starvationBound,
            integrity.throwOnViolation);
    }
}

void
MemoryController::auditDrained(DramCycles now)
{
    if (auditor_)
        auditor_->checkDrained(now);
}

void
MemoryController::enqueueRead(Addr addr, const AddrDecode &coords,
                              ThreadId thread, bool blocking,
                              Cycles cpu_now, DramCycles dram_now)
{
    STFM_ASSERT(canAcceptRead(),
                "enqueueRead on a full request buffer (%u/%u entries, "
                "thread %u, cycle %llu)",
                buffer_.readCount(), buffer_.readCapacity(), thread,
                static_cast<unsigned long long>(dram_now));

    // Write-to-read forwarding: the freshest copy of the line is in the
    // write buffer; no DRAM access is needed.
    if (Request *write = buffer_.findWrite(addr)) {
        (void)write;
        auto req = std::make_unique<Request>();
        req->id = nextId_++;
        req->addr = addr;
        req->coords = coords;
        req->thread = thread;
        req->arrivalCpu = cpu_now;
        req->arrivalDram = dram_now;
        req->finishAt = dram_now + 1;
        if (auditor_)
            auditor_->onForward(req->id, thread, coords.bank, dram_now);
        forwarded_.push_back(std::move(req));
        return;
    }

    Request req;
    req.id = nextId_++;
    req.addr = addr;
    req.coords = coords;
    req.isWrite = false;
    req.blocking = blocking;
    req.thread = thread;
    req.arrivalCpu = cpu_now;
    req.arrivalDram = dram_now;
    req.seq = nextSeq_++;
    req.arrivalState = channel_.rowState(coords.bank, coords.row);
    if (auditor_)
        auditor_->onEnqueue(req.id, thread, coords.bank, false, dram_now);
    buffer_.add(req);
    occupancy_.onArrive(thread,
                        channelId_ * channel_.numBanks() + coords.bank,
                        blocking);
}

void
MemoryController::enqueueWrite(Addr addr, const AddrDecode &coords,
                               ThreadId thread, Cycles cpu_now,
                               DramCycles dram_now)
{
    // Coalesce with an already-queued write to the same line.
    if (buffer_.findWrite(addr) != nullptr)
        return;
    STFM_ASSERT(canAcceptWrite(),
                "enqueueWrite on a full write buffer (%u/%u entries, "
                "thread %u, cycle %llu)",
                buffer_.writeCount(), buffer_.writeCapacity(), thread,
                static_cast<unsigned long long>(dram_now));
    Request req;
    req.id = nextId_++;
    req.addr = addr;
    req.coords = coords;
    req.isWrite = true;
    req.thread = thread;
    req.arrivalCpu = cpu_now;
    req.arrivalDram = dram_now;
    req.seq = nextSeq_++;
    req.arrivalState = channel_.rowState(coords.bank, coords.row);
    if (auditor_)
        auditor_->onEnqueue(req.id, thread, coords.bank, true, dram_now);
    buffer_.add(req);
}

Candidate
MemoryController::pickBankCandidate(BankId bank, bool allow_writes,
                                    bool allow_reads,
                                    const SchedContext &ctx,
                                    std::uint64_t &oldest_row_seq) const
{
    oldest_row_seq = std::numeric_limits<std::uint64_t>::max();
    Candidate best;
    // Highest-priority column access that is merely blocked by bus or
    // CAS timing (its row is open). Issuing a precharge past such a
    // request would let a lower-priority thread close a row a
    // higher-priority request is about to hit — real per-bank
    // schedulers hold the row instead, which is exactly the row-hit
    // monopolization behavior Section 2.5 analyzes.
    Candidate best_pending_column;
    for (const auto &owned : buffer_.queue(bank)) {
        const Request *req = owned.get();
        const RowBufferState state =
            channel_.rowState(bank, req->coords.row);
        const DramCommand cmd = nextCommandFor(*req, state);
        const Candidate cand{req, cmd};
        const bool allowed = req->isWrite ? allow_writes : allow_reads;
        // Row protection considers currently schedulable requests only:
        // a request held back by the read/write gating (e.g. a write
        // below the drain threshold) must not pin its row, or requests
        // needing a precharge in that bank would deadlock behind it.
        if (isColumnCommand(cmd) && allowed &&
            (!best_pending_column.valid() ||
             policy_.higherPriority(cand, best_pending_column, ctx))) {
            best_pending_column = cand;
        }
        if (!allowed)
            continue;
        if (isRowCommand(cmd))
            oldest_row_seq = std::min(oldest_row_seq, req->seq);
        if (!channel_.canIssue(cmd, bank, req->coords.row, ctx.dramNow))
            continue;
        if (!best.valid() || policy_.higherPriority(cand, best, ctx))
            best = cand;
    }
    if (params_.rowProtection && best.valid() &&
        best.cmd == DramCommand::Precharge &&
        best_pending_column.valid() &&
        policy_.higherPriority(best_pending_column, best, ctx)) {
        // Hold the open row for the pending column access; any other
        // ready command in this bank is an equivalent precharge.
        return {};
    }
    return best;
}

std::uint32_t
MemoryController::readyColumnThreadMask(DramCycles now) const
{
    // Threads with at least one *ready* column command in this channel
    // (evaluated pre-issue): these are the threads the scheduled data
    // burst actually delays on the bus. Requests queued behind their
    // own thread's traffic are not ready and thus not charged — they
    // would have waited just the same running alone.
    std::uint32_t mask = 0;
    for (BankId b = 0; b < channel_.numBanks(); ++b) {
        for (const auto &owned : buffer_.queue(b)) {
            const Request *req = owned.get();
            if (channel_.rowState(b, req->coords.row) !=
                RowBufferState::Hit) {
                continue;
            }
            if (req->isWrite || !req->blocking)
                continue; // Delaying these produces no stall.
            if (channel_.canIssue(DramCommand::Read, b, req->coords.row,
                                  now)) {
                mask |= 1u << req->thread;
            }
        }
    }
    return mask;
}

void
MemoryController::issueCommand(const Candidate &winner,
                               bool bypassed_older_row,
                               const SchedContext &ctx)
{
    // The buffer owns the request; candidates are const views handed to
    // the policy. Recover the mutable record to update its state.
    Request *req = const_cast<Request *>(winner.req);
    const BankId bank = req->coords.bank;

    if (checker_)
        checker_->noteRequest(req->id, req->thread);

    if (winner.cmd == DramCommand::Precharge ||
        winner.cmd == DramCommand::Activate) {
        channel_.issue(winner.cmd, bank, req->coords.row, ctx.dramNow);
        if (winner.cmd == DramCommand::Precharge)
            req->sawPrecharge = true;
        else
            req->sawActivate = true;
        policy_.onRowCommand({req, winner.cmd, bank}, ctx);
        return;
    }

    // Column command: the request enters service.
    const RowBufferState service_state =
        req->sawPrecharge ? RowBufferState::Conflict
        : req->sawActivate ? RowBufferState::Closed
                           : RowBufferState::Hit;
    const DramTiming &timing = channel_.timing();
    DramCycles bank_latency = timing.rowHitLatency();
    if (service_state == RowBufferState::Closed)
        bank_latency = timing.rowClosedLatency();
    else if (service_state == RowBufferState::Conflict)
        bank_latency = timing.rowConflictLatency();

    const std::uint32_t ready_mask = readyColumnThreadMask(ctx.dramNow);

    // Threads with a ready command to this bank that lost arbitration
    // to the winner (evaluated pre-issue).
    std::uint32_t ready_bank_mask = 0;
    for (const auto &owned : buffer_.queue(bank)) {
        const Request *other = owned.get();
        if (other == req || other->isWrite)
            continue;
        const RowBufferState st = channel_.rowState(bank,
                                                    other->coords.row);
        const DramCommand other_cmd = nextCommandFor(*other, st);
        if (channel_.canIssue(other_cmd, bank, other->coords.row,
                              ctx.dramNow)) {
            ready_bank_mask |= 1u << other->thread;
        }
    }

    const DramCycles finish =
        channel_.issue(winner.cmd, bank, req->coords.row, ctx.dramNow);
    if (auditor_)
        auditor_->onIssue(req->id, ctx.dramNow);
    req->columnIssued = true;
    req->finishAt = finish;
    req->serviceState = service_state;

    ControllerThreadStats &stats = threadStats_[req->thread];
    if (req->isWrite) {
        ++stats.writesServiced;
        if (service_state == RowBufferState::Hit)
            ++stats.writeRowHits;
    } else {
        // Row-buffer locality is reported for demand reads only, the
        // way the paper characterizes a benchmark's accesses.
        ++stats.readsServiced;
        switch (service_state) {
          case RowBufferState::Hit: ++stats.rowHits; break;
          case RowBufferState::Closed: ++stats.rowClosed; break;
          case RowBufferState::Conflict: ++stats.rowConflicts; break;
        }
    }

    if (!req->isWrite) {
        occupancy_.onColumnIssue(req->thread,
                                 channelId_ * channel_.numBanks() + bank,
                                 req->blocking);
    }

    ColumnIssueEvent ev;
    ev.req = req;
    ev.serviceState = service_state;
    ev.bankLatency = bank_latency;
    ev.busBusyUntil = finish;
    ev.readyColumnThreads = ready_mask & ~(1u << req->thread);
    ev.readyBankThreads = ready_bank_mask & ~(1u << req->thread);
    ev.bypassedOlderRowAccess = bypassed_older_row;
    policy_.onColumnCommand(ev, ctx);

    inFlight_.push_back(buffer_.extract(req));
}

void
MemoryController::deliverCompletions(const SchedContext &ctx)
{
    for (std::size_t i = 0; i < inFlight_.size();) {
        if (inFlight_[i]->finishAt <= ctx.dramNow) {
            std::unique_ptr<Request> req = std::move(inFlight_[i]);
            inFlight_[i] = std::move(inFlight_.back());
            inFlight_.pop_back();
            if (auditor_)
                auditor_->onComplete(req->id, ctx.dramNow);
            if (!req->isWrite) {
                occupancy_.onComplete(req->thread,
                                      channelId_ * channel_.numBanks() +
                                          req->coords.bank);
                readLatency_[req->thread].add(req->finishAt -
                                              req->arrivalDram);
                policy_.onRequestCompleted(*req, ctx);
                if (readCallback_)
                    readCallback_(*req);
            } else {
                policy_.onRequestCompleted(*req, ctx);
            }
        } else {
            ++i;
        }
    }
    for (std::size_t i = 0; i < forwarded_.size();) {
        if (forwarded_[i]->finishAt <= ctx.dramNow) {
            std::unique_ptr<Request> req = std::move(forwarded_[i]);
            forwarded_[i] = std::move(forwarded_.back());
            forwarded_.pop_back();
            if (auditor_)
                auditor_->onComplete(req->id, ctx.dramNow);
            if (readCallback_)
                readCallback_(*req);
        } else {
            ++i;
        }
    }
}

bool
MemoryController::handleRefresh(const SchedContext &ctx)
{
    if (!params_.refreshEnabled)
        return false;
    if (!refreshPending_) {
        if (ctx.dramNow < nextRefreshAt_)
            return false;
        refreshPending_ = true;
    }
    // Close any open banks first (maintenance precharges bypass the
    // request scheduler and are not attributed to any thread).
    if (channel_.allBanksClosed()) {
        channel_.refreshAll(ctx.dramNow);
        refreshPending_ = false;
        nextRefreshAt_ =
            std::max(nextRefreshAt_ + channel_.timing().tREFI,
                     ctx.dramNow + 1);
        return true;
    }
    for (BankId b = 0; b < channel_.numBanks(); ++b) {
        const RowId open = channel_.bank(b).openRow();
        if (open == kInvalidRow)
            continue;
        if (channel_.canIssue(DramCommand::Precharge, b, open,
                              ctx.dramNow)) {
            channel_.issue(DramCommand::Precharge, b, open, ctx.dramNow);
            return true; // One command per cycle.
        }
    }
    return true; // Waiting on bank timing; hold off normal work.
}

void
MemoryController::tick(const SchedContext &ctx)
{
    deliverCompletions(ctx);

    if (auditor_ && params_.integrity.progressCheckStride > 0 &&
        ctx.dramNow % params_.integrity.progressCheckStride == 0) {
        auditor_->checkProgress(ctx.dramNow);
    }

    if (handleRefresh(ctx))
        return;

    if (buffer_.empty())
        return;

    // Reads are prioritized over writes (Table 2): writes are only
    // schedulable during a drain episode (see WriteDrainControl), which
    // also starts early when the read queues are empty. All write
    // service is bank-batched so row disturbance stays contained.
    drain_.update(buffer_);

    Candidate best;
    std::uint64_t best_oldest_row_seq = 0;
    for (BankId b = 0; b < channel_.numBanks(); ++b) {
        const bool draining_this_bank =
            drain_.emergency() ||
            (drain_.draining() && b == drain_.drainBank());
        const bool allow_writes = draining_this_bank;
        const bool allow_reads =
            !(draining_this_bank && buffer_.writeCount(b) > 0);
        std::uint64_t oldest_row_seq = 0;
        const Candidate cand = pickBankCandidate(
            b, allow_writes, allow_reads, ctx, oldest_row_seq);
        if (!cand.valid())
            continue;
        if (!best.valid() || policy_.higherPriority(cand, best, ctx)) {
            best = cand;
            best_oldest_row_seq = oldest_row_seq;
        }
    }
    if (!best.valid())
        return;

    const bool bypassed = isColumnCommand(best.cmd) &&
                          best_oldest_row_seq < best.req->seq;
    issueCommand(best, bypassed, ctx);
}

} // namespace stfm
