#include "mem/controller.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "obs/telemetry.hh"

namespace stfm
{

MemoryController::MemoryController(ChannelId channel_id, unsigned num_banks,
                                   const DramTiming &timing,
                                   const ControllerParams &params,
                                   SchedulingPolicy &policy,
                                   ThreadBankOccupancy &occupancy,
                                   unsigned num_threads,
                                   unsigned bank_groups)
    : channelId_(channel_id), channel_(num_banks, timing, bank_groups),
      params_(params), policy_(policy), occupancy_(occupancy),
      buffer_(num_banks, params.requestBufferEntries,
              params.writeBufferEntries),
      drain_(std::min(params.writeDrainHigh, params.writeBufferEntries),
             params.writeBufferEntries),
      readCompletionMin_(num_threads, kNeverDram),
      queuedReads_(num_threads, 0), threadStats_(num_threads),
      readLatency_(num_threads), bankReadyCache_(num_banks, 0)
{
    STFM_ASSERT(num_banks <= 64,
                "bankReadyDirty_ is a 64-bit mask (%u banks requested)",
                num_banks);
    const IntegrityConfig &integrity = params.integrity;
    if (integrity.protocolCheck) {
        checker_ = std::make_unique<ProtocolChecker>(
            channel_id, num_banks, timing, integrity.throwOnViolation,
            bank_groups);
        channel_.setObserver(checker_.get());
    }
    if (integrity.watchdog) {
        auditor_ = std::make_unique<RequestAuditor>(
            channel_id, integrity.starvationBound,
            integrity.throwOnViolation);
    }
}

void
MemoryController::registerTelemetry(TelemetryRegistry &registry,
                                    const DramCycles *dram_now)
{
    const unsigned c = channelId_;
    const ChannelStats *cs = &channel_.stats();

    // DRAM device model (dram.ch<c>.*).
    registry.counter(formatMessage("dram.ch%u.reads", c), "commands",
                     "dram",
                     [cs] { return static_cast<double>(cs->reads); });
    registry.counter(formatMessage("dram.ch%u.writes", c), "commands",
                     "dram",
                     [cs] { return static_cast<double>(cs->writes); });
    registry.counter(
        formatMessage("dram.ch%u.activates", c), "commands", "dram",
        [cs] { return static_cast<double>(cs->activates); });
    registry.counter(
        formatMessage("dram.ch%u.precharges", c), "commands", "dram",
        [cs] { return static_cast<double>(cs->precharges); });
    registry.counter(
        formatMessage("dram.ch%u.refreshes", c), "commands", "dram",
        [cs] { return static_cast<double>(cs->refreshes); });
    registry.counter(
        formatMessage("dram.ch%u.fawLimitedActs", c), "commands",
        "dram",
        [cs] { return static_cast<double>(cs->fawLimitedActs); });
    registry.gauge(formatMessage("dram.ch%u.busUtilization", c),
                   "fraction", "dram", [cs, dram_now] {
                       const double elapsed = static_cast<double>(
                           *dram_now ? *dram_now : 1);
                       return static_cast<double>(cs->dataBusBusyCycles) /
                              elapsed;
                   });

    // Controller (mem.ch<c>.*).
    const auto sum_stat =
        [this](std::uint64_t ControllerThreadStats::*member) {
            std::uint64_t total = 0;
            for (const ControllerThreadStats &s : threadStats_)
                total += s.*member;
            return static_cast<double>(total);
        };
    registry.counter(formatMessage("mem.ch%u.rowHits", c), "requests",
                     "mem", [sum_stat] {
                         return sum_stat(&ControllerThreadStats::rowHits);
                     });
    registry.counter(
        formatMessage("mem.ch%u.rowClosed", c), "requests", "mem",
        [sum_stat] { return sum_stat(&ControllerThreadStats::rowClosed); });
    registry.counter(formatMessage("mem.ch%u.rowConflicts", c),
                     "requests", "mem", [sum_stat] {
                         return sum_stat(
                             &ControllerThreadStats::rowConflicts);
                     });
    registry.gauge(formatMessage("mem.ch%u.readQueueOccupancy", c),
                   "requests", "mem", [this] {
                       return static_cast<double>(buffer_.readCount());
                   });
    registry.gauge(formatMessage("mem.ch%u.writeQueueOccupancy", c),
                   "requests", "mem", [this] {
                       return static_cast<double>(buffer_.writeCount());
                   });
    registry.counter(formatMessage("mem.ch%u.drainEpisodes", c),
                     "episodes", "mem", [this] {
                         return static_cast<double>(
                             drain_.drainEpisodes());
                     });
    registry.counter(formatMessage("mem.ch%u.emergencyDrains", c),
                     "episodes", "mem", [this] {
                         return static_cast<double>(
                             drain_.emergencyEntries());
                     });
    for (ThreadId t = 0; t < readLatency_.size(); ++t) {
        registry.histogram(
            formatMessage("mem.ch%u.readLatency.t%u", c, t),
            "dram-cycles", "mem", &readLatency_[t]);
    }
}

void
MemoryController::auditDrained(DramCycles now)
{
    if (auditor_)
        auditor_->checkDrained(now);
}

void
MemoryController::enqueueRead(Addr addr, const AddrDecode &coords,
                              ThreadId thread, bool blocking,
                              Cycles cpu_now, DramCycles dram_now)
{
    STFM_ASSERT(canAcceptRead(),
                "enqueueRead on a full request buffer (%u/%u entries, "
                "thread %u, cycle %llu)",
                buffer_.readCount(), buffer_.readCapacity(), thread,
                static_cast<unsigned long long>(dram_now));

    // Write-to-read forwarding: the freshest copy of the line is in the
    // write buffer; no DRAM access is needed.
    if (Request *write = buffer_.findWrite(addr)) {
        (void)write;
        auto req = std::make_unique<Request>();
        req->id = nextId_++;
        req->addr = addr;
        req->coords = coords;
        req->thread = thread;
        req->arrivalCpu = cpu_now;
        req->arrivalDram = dram_now;
        req->finishAt = dram_now + 1;
        if (auditor_)
            auditor_->onForward(req->id, thread, coords.bank, dram_now);
        completionMin_ = std::min(completionMin_, req->finishAt);
        readCompletionMin_[thread] =
            std::min(readCompletionMin_[thread], req->finishAt);
        forwarded_.push_back(std::move(req));
        ++stateGen_;
        quietUntil_ = 0; // The forward completes next tick.
        return;
    }

    Request req;
    req.id = nextId_++;
    req.addr = addr;
    req.coords = coords;
    req.isWrite = false;
    req.blocking = blocking;
    req.thread = thread;
    req.arrivalCpu = cpu_now;
    req.arrivalDram = dram_now;
    req.seq = nextSeq_++;
    req.arrivalState = channel_.rowState(coords.bank, coords.row);
    if (auditor_)
        auditor_->onEnqueue(req.id, thread, coords.bank, false, dram_now);
    bankReadyDirty_ |= std::uint64_t{1} << coords.bank;
    ++stateGen_;
    quietUntil_ = 0;
    ++queuedReads_[thread];
    buffer_.add(req);
    occupancy_.onArrive(thread,
                        channelId_ * channel_.numBanks() + coords.bank,
                        blocking);
}

void
MemoryController::enqueueWrite(Addr addr, const AddrDecode &coords,
                               ThreadId thread, Cycles cpu_now,
                               DramCycles dram_now)
{
    // Coalesce with an already-queued write to the same line.
    if (buffer_.findWrite(addr) != nullptr)
        return;
    STFM_ASSERT(canAcceptWrite(),
                "enqueueWrite on a full write buffer (%u/%u entries, "
                "thread %u, cycle %llu)",
                buffer_.writeCount(), buffer_.writeCapacity(), thread,
                static_cast<unsigned long long>(dram_now));
    Request req;
    req.id = nextId_++;
    req.addr = addr;
    req.coords = coords;
    req.isWrite = true;
    req.thread = thread;
    req.arrivalCpu = cpu_now;
    req.arrivalDram = dram_now;
    req.seq = nextSeq_++;
    req.arrivalState = channel_.rowState(coords.bank, coords.row);
    if (auditor_)
        auditor_->onEnqueue(req.id, thread, coords.bank, true, dram_now);
    bankReadyDirty_ |= std::uint64_t{1} << coords.bank;
    ++stateGen_;
    quietUntil_ = 0;
    buffer_.add(req);
}

Candidate
MemoryController::pickBankCandidate(BankId bank, bool allow_writes,
                                    bool allow_reads,
                                    const SchedContext &ctx,
                                    std::uint64_t &oldest_row_seq,
                                    DramCycles &next_try) const
{
    oldest_row_seq = std::numeric_limits<std::uint64_t>::max();
    Candidate best;
    // Highest-priority column access that is merely blocked by bus or
    // CAS timing (its row is open). Issuing a precharge past such a
    // request would let a lower-priority thread close a row a
    // higher-priority request is about to hit — real per-bank
    // schedulers hold the row instead, which is exactly the row-hit
    // monopolization behavior Section 2.5 analyzes.
    Candidate best_pending_column;
    for (const auto &owned : buffer_.queue(bank)) {
        const Request *req = owned.get();
        const RowBufferState state =
            channel_.rowState(bank, req->coords.row);
        const DramCommand cmd = nextCommandFor(*req, state);
        const Candidate cand{req, cmd};
        const bool allowed = req->isWrite ? allow_writes : allow_reads;
        // Row protection considers currently schedulable requests only:
        // a request held back by the read/write gating (e.g. a write
        // below the drain threshold) must not pin its row, or requests
        // needing a precharge in that bank would deadlock behind it.
        if (isColumnCommand(cmd) && allowed &&
            (!best_pending_column.valid() ||
             policy_.higherPriority(cand, best_pending_column, ctx))) {
            best_pending_column = cand;
        }
        if (!allowed)
            continue;
        if (isRowCommand(cmd))
            oldest_row_seq = std::min(oldest_row_seq, req->seq);
        if (!channel_.canIssue(cmd, bank, req->coords.row, ctx.dramNow)) {
            // canIssue and earliestIssue agree exactly, and the state
            // part of canIssue holds by construction of cmd, so this
            // command becomes issuable precisely at earliestIssue.
            next_try =
                std::min(next_try, channel_.earliestIssue(cmd, bank));
            continue;
        }
        if (!best.valid() || policy_.higherPriority(cand, best, ctx))
            best = cand;
    }
    if (params_.rowProtection && best.valid() &&
        best.cmd == DramCommand::Precharge &&
        best_pending_column.valid() &&
        policy_.higherPriority(best_pending_column, best, ctx)) {
        // Hold the open row for the pending column access; any other
        // ready command in this bank is an equivalent precharge. An
        // event-driven priority cannot lift the protection before the
        // pending column itself becomes issuable (already folded into
        // next_try above); a time-varying one could lift it any cycle.
        if (policy_.timeVaryingPriority())
            next_try = std::min(next_try, ctx.dramNow + 1);
        return {};
    }
    return best;
}

std::uint32_t
MemoryController::readyColumnThreadMask(DramCycles now) const
{
    // Threads with at least one *ready* column command in this channel
    // (evaluated pre-issue): these are the threads the scheduled data
    // burst actually delays on the bus. Requests queued behind their
    // own thread's traffic are not ready and thus not charged — they
    // would have waited just the same running alone.
    std::uint32_t mask = 0;
    for (BankId b = 0; b < channel_.numBanks(); ++b) {
        // Only banks with a blocking read queued against their open row
        // can contribute (delaying writes or non-blocking reads
        // produces no stall); the per-row index holds the exact thread
        // mask, so no queue scan is needed.
        const RowId open = channel_.bank(b).openRow();
        if (open == kInvalidRow)
            continue;
        const RequestBuffer::RowMix *mix = buffer_.rowMix(b, open);
        if (!mix || mix->blockingReadMask == 0)
            continue;
        if (now < channel_.earliestIssue(DramCommand::Read, b))
            continue;
        mask |= mix->blockingReadMask;
    }
    return mask;
}

void
MemoryController::issueCommand(const Candidate &winner,
                               bool bypassed_older_row,
                               const SchedContext &ctx)
{
    // The buffer owns the request; candidates are const views handed to
    // the policy. Recover the mutable record to update its state.
    Request *req = const_cast<Request *>(winner.req);
    const BankId bank = req->coords.bank;
    // A command issue moves the channel's shared timing state (data
    // bus, tRRD/tFAW windows) as well as this bank's, but shared
    // constraints only ever move *later* (see earliestIssue's
    // contract), so the other banks' cached entries become lower
    // bounds: at worst they trigger a scan that finds nothing, never a
    // skipped issuable command. Only the issued bank — whose row state
    // and local timing actually changed — must be re-derived.
    bankReadyDirty_ |= std::uint64_t{1} << bank;
    ++stateGen_;
    quietUntil_ = 0;

    if (checker_)
        checker_->noteRequest(req->id, req->thread);

    if (winner.cmd == DramCommand::Precharge ||
        winner.cmd == DramCommand::Activate) {
        channel_.issue(winner.cmd, bank, req->coords.row, ctx.dramNow);
        if (winner.cmd == DramCommand::Precharge)
            req->sawPrecharge = true;
        else
            req->sawActivate = true;
        policy_.onRowCommand({req, winner.cmd, bank}, ctx);
        return;
    }

    // Column command: the request enters service.
    const RowBufferState service_state =
        req->sawPrecharge ? RowBufferState::Conflict
        : req->sawActivate ? RowBufferState::Closed
                           : RowBufferState::Hit;
    const DramTiming &timing = channel_.timing();
    DramCycles bank_latency = timing.rowHitLatency();
    if (service_state == RowBufferState::Closed)
        bank_latency = timing.rowClosedLatency();
    else if (service_state == RowBufferState::Conflict)
        bank_latency = timing.rowConflictLatency();

    const std::uint32_t ready_mask = readyColumnThreadMask(ctx.dramNow);

    // Threads with a ready command to this bank that lost arbitration
    // to the winner (evaluated pre-issue).
    std::uint32_t ready_bank_mask = 0;
    for (const auto &owned : buffer_.queue(bank)) {
        const Request *other = owned.get();
        if (other == req || other->isWrite)
            continue;
        const RowBufferState st = channel_.rowState(bank,
                                                    other->coords.row);
        const DramCommand other_cmd = nextCommandFor(*other, st);
        if (channel_.canIssue(other_cmd, bank, other->coords.row,
                              ctx.dramNow)) {
            ready_bank_mask |= 1u << other->thread;
        }
    }

    const DramCycles finish =
        channel_.issue(winner.cmd, bank, req->coords.row, ctx.dramNow);
    if (auditor_)
        auditor_->onIssue(req->id, ctx.dramNow);
    req->columnIssued = true;
    req->finishAt = finish;
    req->serviceState = service_state;
    ++columnIssues_;
    completionMin_ = std::min(completionMin_, finish);
    if (!req->isWrite) {
        readCompletionMin_[req->thread] =
            std::min(readCompletionMin_[req->thread], finish);
        --queuedReads_[req->thread];
    }

    ControllerThreadStats &stats = threadStats_[req->thread];
    if (req->isWrite) {
        ++stats.writesServiced;
        if (service_state == RowBufferState::Hit)
            ++stats.writeRowHits;
    } else {
        // Row-buffer locality is reported for demand reads only, the
        // way the paper characterizes a benchmark's accesses.
        ++stats.readsServiced;
        switch (service_state) {
          case RowBufferState::Hit: ++stats.rowHits; break;
          case RowBufferState::Closed: ++stats.rowClosed; break;
          case RowBufferState::Conflict: ++stats.rowConflicts; break;
        }
    }

    if (!req->isWrite) {
        occupancy_.onColumnIssue(req->thread,
                                 channelId_ * channel_.numBanks() + bank,
                                 req->blocking);
    }

    ColumnIssueEvent ev;
    ev.req = req;
    ev.serviceState = service_state;
    ev.bankLatency = bank_latency;
    ev.busBusyUntil = finish;
    ev.readyColumnThreads = ready_mask & ~(1u << req->thread);
    ev.readyBankThreads = ready_bank_mask & ~(1u << req->thread);
    ev.bypassedOlderRowAccess = bypassed_older_row;
    policy_.onColumnCommand(ev, ctx);

    inFlight_.push_back(buffer_.extract(req));
}

void
MemoryController::deliverCompletions(const SchedContext &ctx)
{
    // Nothing can finish yet: completionMin_ is the exact min finishAt
    // over both lists, so skipping the scans loses no delivery.
    if (completionMin_ > ctx.dramNow)
        return;
    ++stateGen_; // At least one entry is due: state will change.
    // Rebuild both mins from the surviving entries as the scans walk
    // them (the callback never enqueues — cores buffer writebacks and
    // retry reads through their own tick — so no entry appears
    // mid-scan).
    completionMin_ = kNeverDram;
    std::fill(readCompletionMin_.begin(), readCompletionMin_.end(),
              kNeverDram);
    for (std::size_t i = 0; i < inFlight_.size();) {
        if (inFlight_[i]->finishAt <= ctx.dramNow) {
            std::unique_ptr<Request> req = std::move(inFlight_[i]);
            inFlight_[i] = std::move(inFlight_.back());
            inFlight_.pop_back();
            if (auditor_)
                auditor_->onComplete(req->id, ctx.dramNow);
            if (!req->isWrite) {
                occupancy_.onComplete(req->thread,
                                      channelId_ * channel_.numBanks() +
                                          req->coords.bank);
                readLatency_[req->thread].add(req->finishAt -
                                              req->arrivalDram);
                policy_.onRequestCompleted(*req, ctx);
                if (readCallback_)
                    readCallback_(*req);
            } else {
                policy_.onRequestCompleted(*req, ctx);
            }
        } else {
            const Request &keep = *inFlight_[i];
            completionMin_ = std::min(completionMin_, keep.finishAt);
            if (!keep.isWrite) {
                readCompletionMin_[keep.thread] = std::min(
                    readCompletionMin_[keep.thread], keep.finishAt);
            }
            ++i;
        }
    }
    for (std::size_t i = 0; i < forwarded_.size();) {
        if (forwarded_[i]->finishAt <= ctx.dramNow) {
            std::unique_ptr<Request> req = std::move(forwarded_[i]);
            forwarded_[i] = std::move(forwarded_.back());
            forwarded_.pop_back();
            if (auditor_)
                auditor_->onComplete(req->id, ctx.dramNow);
            if (readCallback_)
                readCallback_(*req);
        } else {
            const Request &keep = *forwarded_[i];
            completionMin_ = std::min(completionMin_, keep.finishAt);
            readCompletionMin_[keep.thread] = std::min(
                readCompletionMin_[keep.thread], keep.finishAt);
            ++i;
        }
    }
}

bool
MemoryController::handleRefresh(const SchedContext &ctx)
{
    if (!params_.refreshEnabled)
        return false;
    if (!refreshPending_) {
        if (ctx.dramNow < nextRefreshAt_)
            return false;
        refreshPending_ = true;
    }
    // Close any open banks first (maintenance precharges bypass the
    // request scheduler and are not attributed to any thread).
    if (channel_.allBanksClosed()) {
        channel_.refreshAll(ctx.dramNow);
        refreshPending_ = false;
        nextRefreshAt_ =
            std::max(nextRefreshAt_ + channel_.timing().tREFI,
                     ctx.dramNow + 1);
        return true;
    }
    for (BankId b = 0; b < channel_.numBanks(); ++b) {
        const RowId open = channel_.bank(b).openRow();
        if (open == kInvalidRow)
            continue;
        if (channel_.canIssue(DramCommand::Precharge, b, open,
                              ctx.dramNow)) {
            channel_.issue(DramCommand::Precharge, b, open, ctx.dramNow);
            return true; // One command per cycle.
        }
    }
    return true; // Waiting on bank timing; hold off normal work.
}

DramCycles
MemoryController::bankReadyAt(BankId bank) const
{
    if (buffer_.queueSize(bank) == 0)
        return kNeverDram;
    const RowId open = channel_.bank(bank).openRow();
    if (open == kInvalidRow) {
        // Precharged bank: every queued request's next command is an
        // ACTIVATE (to its own row; the issue time is row-independent).
        return channel_.earliestIssue(DramCommand::Activate, bank);
    }
    const RequestBuffer::RowMix *mix = buffer_.rowMix(bank, open);
    const unsigned hits = mix ? mix->total() : 0;
    DramCycles at = kNeverDram;
    if (mix && mix->reads > 0)
        at = std::min(at, channel_.earliestIssue(DramCommand::Read, bank));
    if (mix && mix->writes > 0)
        at = std::min(at,
                      channel_.earliestIssue(DramCommand::Write, bank));
    if (buffer_.queueSize(bank) > hits) {
        // Conflicting rows queued: they want the bank precharged.
        at = std::min(at,
                      channel_.earliestIssue(DramCommand::Precharge, bank));
    }
    return at;
}

DramCycles
MemoryController::nextInterestingCycle(DramCycles now) const
{
    if (!buffer_.empty() && drain_.wouldTransition(buffer_)) {
        // The write-drain state machine owes a transition against the
        // current buffer contents (an episode starting, re-targeting,
        // or the emergency flag flipping); the next tick's update()
        // performs it and can change what is schedulable, so the next
        // cycle is interesting. While this is false, skipped update()
        // calls are provably no-ops until the buffer changes — and any
        // enqueue or issue re-runs this predictor. With an empty buffer
        // a pending transition is deferred identically by the reference
        // path: a cycle-by-cycle run skips update() on empty ticks too.
        return now + 1;
    }
    DramCycles wake = completionMin_;
    if (params_.refreshEnabled) {
        // While refresh housekeeping is active every cycle matters
        // (maintenance precharges bypass the request scheduler).
        if (refreshPending_)
            return now + 1;
        wake = std::min(wake, nextRefreshAt_);
    }
    for (BankId b = 0; b < channel_.numBanks(); ++b)
        wake = std::min(wake, bankReadyCached(b));
    if (auditor_ && params_.integrity.progressCheckStride > 0 &&
        !idle()) {
        // Never skip past a watchdog progress check while requests are
        // outstanding; the auditor must observe the same cycles it
        // would in a cycle-by-cycle run.
        const DramCycles stride = params_.integrity.progressCheckStride;
        wake = std::min(wake, now + stride - now % stride);
    }
    // A command that is ready *now* but lost arbitration (or was held
    // back by gating) keeps the next cycle interesting; never report a
    // wake in the past.
    if (wake != kNeverDram)
        wake = std::max(wake, now + 1);
    // The tick-time predictor is strictly stronger than the per-bank
    // readiness sweep above: it ran the full candidate scan (write
    // gating, row protection, policy arbitration) and proved every
    // cycle before quietUntil_ a no-op. Events that could create
    // earlier work reset it to 0. Without this, a bank whose readiness
    // cycle passed without an issue — its command gated or outvoted —
    // pins the sweep at now + 1 for the rest of its wait.
    return std::max(wake, quietUntil_);
}

DramCycles
MemoryController::quietBound(DramCycles now, DramCycles issue_bound) const
{
    DramCycles q = std::min(issue_bound, completionMin_);
    if (params_.refreshEnabled)
        q = std::min(q, nextRefreshAt_);
    if (auditor_ && params_.integrity.progressCheckStride > 0) {
        const DramCycles stride = params_.integrity.progressCheckStride;
        q = std::min(q, now + stride - now % stride);
    }
    return q;
}

void
MemoryController::tick(const SchedContext &ctx)
{
    // Quiet window: a previous tick proved every cycle before
    // quietUntil_ is a no-op, and no event has arrived since (events
    // reset the window to 0).
    if (ctx.dramNow < quietUntil_)
        return;
    quietUntil_ = 0; // Re-established below only by a no-op outcome.

    deliverCompletions(ctx);

    if (auditor_ && params_.integrity.progressCheckStride > 0 &&
        ctx.dramNow % params_.integrity.progressCheckStride == 0) {
        auditor_->checkProgress(ctx.dramNow);
    }

    if (handleRefresh(ctx)) {
        // Refresh housekeeping may precharge banks or refresh the rank.
        bankReadyDirty_ = ~std::uint64_t{0};
        ++stateGen_;
        return;
    }

    if (buffer_.empty()) {
        quietUntil_ = quietBound(ctx.dramNow, kNeverDram);
        return;
    }

    // Reads are prioritized over writes (Table 2): writes are only
    // schedulable during a drain episode (see WriteDrainControl), which
    // also starts early when the read queues are empty. All write
    // service is bank-batched so row disturbance stays contained.
    {
        const bool was_draining = drain_.draining();
        const bool was_emergency = drain_.emergency();
        const BankId was_bank = drain_.drainBank();
        drain_.update(buffer_);
        if (drain_.draining() != was_draining ||
            drain_.emergency() != was_emergency ||
            (drain_.draining() && drain_.drainBank() != was_bank)) {
            // A drain transition changes what is schedulable: cached
            // readiness bounds may now be too late (a write-only bank
            // caches kNever outside an episode, and becomes issuable
            // the moment one starts).
            bankReadyDirty_ = ~std::uint64_t{0};
            ++stateGen_;
            if (drainTap_) {
                drainTap_->onDrainState(drain_.draining(),
                                        drain_.emergency(),
                                        drain_.drainBank(), ctx.dramNow);
            }
        }
    }

    Candidate best;
    std::uint64_t best_oldest_row_seq = 0;
    DramCycles issue_bound = kNeverDram;
    for (BankId b = 0; b < channel_.numBanks(); ++b) {
        // Skip banks where no queued request's next command is ready:
        // the scan below could only come up empty. bankReadyAt() is
        // exact per command class, so this prunes without changing
        // which candidates exist (the per-bank extras — pending-column
        // row protection and the oldest row seq — only matter when the
        // bank produces a candidate).
        const DramCycles ready = bankReadyCached(b);
        if (ready > ctx.dramNow) {
            issue_bound = std::min(issue_bound, ready);
            continue;
        }
        const bool draining_this_bank =
            drain_.emergency() ||
            (drain_.draining() && b == drain_.drainBank());
        const bool allow_writes = draining_this_bank;
        const bool allow_reads =
            !(draining_this_bank && buffer_.writeCount(b) > 0);
        std::uint64_t oldest_row_seq = 0;
        DramCycles next_try = kNeverDram;
        const Candidate cand = pickBankCandidate(
            b, allow_writes, allow_reads, ctx, oldest_row_seq, next_try);
        if (!cand.valid()) {
            // The scan proved nothing in this bank can issue before
            // next_try under the *current* gating and protection state
            // — a strictly stronger fact than the class-readiness
            // bound, so promote it into the cache. Without this, a
            // bank whose readiness cycle passed while its commands
            // were gated (a write below the drain threshold, a
            // protected precharge) pins every readiness sweep at
            // now + 1 until the bank finally issues. Anything that
            // could create earlier work re-derives it: enqueues dirty
            // the bank, drain transitions dirty all banks, shared
            // timing only ever moves later, and time-varying
            // priorities fold now + 1 into next_try themselves.
            bankReadyCache_[b] = next_try;
            bankReadyDirty_ &= ~(std::uint64_t{1} << b);
            issue_bound = std::min(issue_bound, next_try);
            continue;
        }
        if (!best.valid() || policy_.higherPriority(cand, best, ctx)) {
            best = cand;
            best_oldest_row_seq = oldest_row_seq;
        }
    }
    if (!best.valid()) {
        quietUntil_ = quietBound(ctx.dramNow, issue_bound);
        return;
    }

    const bool bypassed = isColumnCommand(best.cmd) &&
                          best_oldest_row_seq < best.req->seq;
    issueCommand(best, bypassed, ctx);
}

} // namespace stfm
