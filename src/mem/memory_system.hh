/**
 * @file
 * The shared multi-channel DRAM memory system.
 *
 * Owns the address mapping, one controller + channel pair per DRAM
 * channel, the occupancy tracker and the scheduling policy (one policy
 * instance governs all channels; the paper scales channel count with
 * core count: 1, 1, 2, 4 channels for 2, 4, 8, 16 cores).
 */

#ifndef STFM_MEM_MEMORY_SYSTEM_HH
#define STFM_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "cpu/memory_port.hh"
#include "dram/address_mapping.hh"
#include "mem/controller.hh"
#include "mem/occupancy.hh"
#include "sched/policy.hh"

namespace stfm
{

/** Geometry + device + controller configuration of the memory system. */
struct MemoryConfig
{
    unsigned channels = 1;
    unsigned banksPerChannel = 8;
    /** Effective row-buffer bytes across the DIMM (2 KB/chip x 8). */
    std::uint64_t rowBytes = 16 * 1024;
    std::uint64_t lineBytes = 64;
    std::uint64_t rowsPerBank = 16 * 1024;
    bool xorBankMapping = true;
    DramTiming timing;
    ControllerParams controller;
    /** CPU cycles per DRAM cycle (4 GHz / 400 MHz = 10). */
    Cycles cpuPerDram = 10;
};

class MemorySystem : public MemoryPort
{
  public:
    using ReadCallback = std::function<void(const Request &)>;

    MemorySystem(const MemoryConfig &config,
                 const SchedulerConfig &sched_config, unsigned num_threads);

    // MemoryPort interface --------------------------------------------
    bool canAcceptRead(Addr addr) const override;
    bool canAcceptWrite(Addr addr) const override;
    void issueRead(Addr addr, ThreadId thread, bool blocking) override;
    void issueWrite(Addr addr, ThreadId thread) override;
    void noteEnqueueBlocked(Addr addr, ThreadId thread) override;

    /**
     * Advance to CPU cycle @p cpu_now; internally ticks the DRAM domain
     * once every cpuPerDram CPU cycles.
     */
    void tick(Cycles cpu_now);

    /** Completion notifications for demand reads. */
    void setReadCallback(ReadCallback cb);

    /**
     * The cores' cumulative memory-stall counters, refreshed by the
     * simulation loop; consumed by STFM's slowdown estimation.
     */
    void setStallCounters(const std::vector<Cycles> *stalls)
    {
        stallCycles_ = stalls;
    }

    const AddressMapping &mapping() const { return mapping_; }
    SchedulingPolicy &policy() { return *policy_; }
    const SchedulingPolicy &policy() const { return *policy_; }
    unsigned totalBanks() const
    {
        return config_.channels * config_.banksPerChannel;
    }

    /** Service stats for @p thread aggregated over all channels. */
    ControllerThreadStats threadStats(ThreadId thread) const;

    /** Read-latency distribution for @p thread, merged over channels. */
    LatencyHistogram readLatency(ThreadId thread) const;

    /** True when no channel holds queued or in-flight requests. */
    bool idle() const;

    /** Per-channel controller access (integrity inspection, tests). */
    const MemoryController &controller(ChannelId channel) const
    {
        return *controllers_[channel];
    }

    /**
     * Run the lifetime auditors' drain check on every controller
     * (no-op when the watchdog is disabled). Call once idle().
     */
    void auditDrained();

    const MemoryConfig &config() const { return config_; }

  private:
    SchedContext makeContext(ChannelId channel, Cycles cpu_now) const;

    MemoryConfig config_;
    unsigned numThreads_;
    AddressMapping mapping_;
    ThreadBankOccupancy occupancy_;
    std::unique_ptr<SchedulingPolicy> policy_;
    std::vector<std::unique_ptr<MemoryController>> controllers_;
    const std::vector<Cycles> *stallCycles_ = nullptr;
    DramCycles dramNow_ = 0;
    Cycles cpuNow_ = 0;
};

} // namespace stfm

#endif // STFM_MEM_MEMORY_SYSTEM_HH
