/**
 * @file
 * The shared multi-channel DRAM memory system.
 *
 * Owns the address mapping, one controller + channel pair per DRAM
 * channel, the occupancy tracker and the scheduling policy (one policy
 * instance governs all channels; the paper scales channel count with
 * core count: 1, 1, 2, 4 channels for 2, 4, 8, 16 cores).
 */

#ifndef STFM_MEM_MEMORY_SYSTEM_HH
#define STFM_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "cpu/memory_port.hh"
#include "dram/address_mapping.hh"
#include "mem/controller.hh"
#include "mem/occupancy.hh"
#include "sched/policy.hh"

namespace stfm
{

class ObsSession;

/** Geometry + device + controller configuration of the memory system. */
struct MemoryConfig
{
    /**
     * Name of the DeviceSpec this configuration was derived from
     * (reporting; "" = hand-assembled). applyDevice (sim/device_io.hh)
     * sets it along with the geometry/timing fields below.
     */
    std::string device;
    unsigned channels = 1;
    unsigned banksPerChannel = 8;
    /** Bank groups per channel (DDR4 generation; 1 = none). */
    unsigned bankGroups = 1;
    /** Effective row-buffer bytes across the DIMM (2 KB/chip x 8). */
    std::uint64_t rowBytes = 16 * 1024;
    std::uint64_t lineBytes = 64;
    std::uint64_t rowsPerBank = 16 * 1024;
    bool xorBankMapping = true;
    DramTiming timing;
    ControllerParams controller;
    /** Core clock (paper: 4 GHz). The CPU-per-DRAM-cycle ratio is
     *  derived from the two frequencies, never stored separately. */
    unsigned coreFrequencyMHz = kBaselineCoreMHz;
    /** DRAM command-bus clock (paper: DDR2-800 = 400 MHz). */
    unsigned dramBusMHz = kBaselineDramMHz;

    /**
     * CPU cycles per DRAM cycle (baseline: 4000/400 = 10). The clock
     * ratio must be a positive integer — validateConfig rejects
     * non-integer ratios before a system is built.
     */
    Cycles
    cpuPerDram() const
    {
        return dramBusMHz ? coreFrequencyMHz / dramBusMHz : 0;
    }
};

class MemorySystem : public MemoryPort
{
  public:
    using ReadCallback = std::function<void(const Request &)>;

    MemorySystem(const MemoryConfig &config,
                 const SchedulerConfig &sched_config, unsigned num_threads);

    // MemoryPort interface --------------------------------------------
    bool canAcceptRead(Addr addr) const override;
    bool canAcceptWrite(Addr addr) const override;
    void issueRead(Addr addr, ThreadId thread, bool blocking) override;
    void issueWrite(Addr addr, ThreadId thread) override;
    void noteEnqueueBlocked(Addr addr, ThreadId thread) override;

    /**
     * Advance to CPU cycle @p cpu_now; internally ticks the DRAM domain
     * once every cpuPerDram CPU cycles.
     */
    void tick(Cycles cpu_now);

    /**
     * tick() for a @p cpu_now the caller already knows is a DRAM
     * boundary — skips the clock-ratio check. The fast-forward loop
     * tracks boundaries incrementally and calls this on its hot path.
     */
    void boundaryTick(Cycles cpu_now);

    /**
     * Earliest CPU cycle > @p now at which a DRAM-domain tick could
     * perform observable work (deliver data, issue a command, run
     * refresh or watchdog housekeeping). Every DRAM boundary strictly
     * before it is guaranteed to be a no-op controller tick, which the
     * fast-forward path in CmpSystem::run exploits. Returns kNever when
     * all channels are fully idle. The bound may be early, never late.
     */
    Cycles nextInterestingCpuCycle(Cycles now) const;

    /**
     * Earliest CPU cycle at which a read completion could *affect*
     * thread @p t's core — i.e. the first cycle whose core tick can
     * observe data delivered by a boundary memory tick (completions
     * fire at boundary B after the core's own cycle-B tick, so their
     * effect starts at B + 1). @p first_boundary is the CPU cycle of
     * the first DRAM boundary whose memory tick has NOT yet executed
     * (the caller knows tick ordering; this object does not). The
     * bound may be early, never late — it is what caps a run-ahead
     * burst for a core with misses in flight:
     *
     *  - an in-flight or forwarded read finishing at DRAM cycle F is
     *    delivered at the boundary executing F, whose CPU cycle is
     *    first_boundary + (F - dramNow() - 1) * cpuPerDram
     *    (boundary ticks execute DRAM cycles dramNow()+1, +2, ... in
     *    order, and F > dramNow() always: quiet windows and tick skips
     *    never cross a pending finishAt);
     *  - a queued, not-yet-issued read can issue no earlier than the
     *    tick at first_boundary and finishes strictly after it, so its
     *    delivery is at least one full boundary later.
     *
     * Returns kNever when thread @p t has no reads outstanding
     * anywhere (no queued, in-flight, or forwarded read).
     */
    Cycles nextCompletionEffectCpuCycle(ThreadId t,
                                        Cycles first_boundary) const;

    /**
     * True when the policy's beginCycle must run at every DRAM
     * boundary even across quiescent stretches (STFM).
     */
    bool policyNeedsPerCycleAccounting() const
    {
        return policy_->perCycleAccounting();
    }

    /**
     * Advance one DRAM boundary at CPU cycle @p cpu_now known to be
     * controller-quiescent: the DRAM clock advances and the policy's
     * per-cycle accounting runs, but controllers are not ticked (their
     * ticks are proven no-ops by nextInterestingCpuCycle).
     */
    void quiescentDramTick(Cycles cpu_now);

    /**
     * Advance @p count quiescent DRAM boundaries wholesale. Only legal
     * when !policyNeedsPerCycleAccounting() and no skipped boundary is
     * interesting (both enforced by the caller's use of
     * nextInterestingCpuCycle, which also never skips past a watchdog
     * stride cycle).
     */
    void skipDramTicks(std::uint64_t count) { dramNow_ += count; }

    /** Re-align the CPU-domain timestamp after a fast-forward. */
    void syncCpuNow(Cycles cpu_now) { cpuNow_ = cpu_now; }

    /**
     * True when the next boundary tick — the one that will execute
     * DRAM cycle dramNow() + 1 — is provably a no-op for every
     * controller: nothing completes, issues, or transitions. The
     * simulation loop then advances the DRAM clock without building a
     * context or entering the controllers at all (the dominant case:
     * cores are awake nearly every window, but the memory system only
     * does real work in a small fraction of them). Exact complement of
     * work, not a heuristic: derived from the same readiness sweep as
     * nextInterestingCpuCycle.
     */
    bool
    nextBoundaryQuiet() const
    {
        refreshWakeCache();
        return wakeDram_ == MemoryController::kNeverDram ||
               wakeDram_ > dramNow_ + 1;
    }

    /**
     * Change-detection generation for core-visible memory state. The
     * only memory-side events that can unblock a core are a read
     * completing (delivered through the read callback, which the
     * simulation loop hooks directly) and request-buffer capacity being
     * freed — which happens exactly when a column command issues. The
     * generation therefore advances on every column issue; while it is
     * unchanged and no completion fired, a core's cached quiescence
     * window remains valid.
     */
    std::uint64_t coreEventGen() const
    {
        std::uint64_t gen = 0;
        for (const auto &controller : controllers_)
            gen += controller->columnIssues();
        return gen;
    }

    /** Completion notifications for demand reads. */
    void setReadCallback(ReadCallback cb);

    /**
     * The cores' cumulative memory-stall counters, refreshed by the
     * simulation loop; consumed by STFM's slowdown estimation.
     */
    void setStallCounters(const std::vector<Cycles> *stalls)
    {
        stallCycles_ = stalls;
    }

    const AddressMapping &mapping() const { return mapping_; }
    SchedulingPolicy &policy() { return *policy_; }
    const SchedulingPolicy &policy() const { return *policy_; }
    unsigned totalBanks() const
    {
        return config_.channels * config_.banksPerChannel;
    }

    /** Service stats for @p thread aggregated over all channels. */
    ControllerThreadStats threadStats(ThreadId thread) const;

    /** Read-latency distribution for @p thread, merged over channels. */
    LatencyHistogram readLatency(ThreadId thread) const;

    /** True when no channel holds queued or in-flight requests. */
    bool idle() const;

    /** Per-channel controller access (integrity inspection, tests). */
    const MemoryController &controller(ChannelId channel) const
    {
        return *controllers_[channel];
    }

    /**
     * Run the lifetime auditors' drain check on every controller
     * (no-op when the watchdog is disabled). Call once idle().
     */
    void auditDrained();

    const MemoryConfig &config() const { return config_; }

    /** Current DRAM cycle (number of DRAM boundaries advanced). */
    DramCycles dramNow() const { return dramNow_; }

    /**
     * Wire the memory side of an observability session: register every
     * channel's and the policy's telemetry series, and attach the
     * trace exporter's command/drain/fairness taps when tracing is on.
     * Composes with the integrity layer (the protocol checker keeps
     * its observer slot; the tracer is added alongside).
     */
    void registerObservability(ObsSession &obs);

  private:
    SchedContext makeContext(ChannelId channel, Cycles cpu_now) const;

    /** Re-sweep the memoized wake bound if stale (see wakeDram_). */
    void refreshWakeCache() const;

    MemoryConfig config_;
    unsigned numThreads_;
    AddressMapping mapping_;
    ThreadBankOccupancy occupancy_;
    std::unique_ptr<SchedulingPolicy> policy_;
    std::vector<std::unique_ptr<MemoryController>> controllers_;
    const std::vector<Cycles> *stallCycles_ = nullptr;
    DramCycles dramNow_ = 0;
    Cycles cpuNow_ = 0;

    /**
     * Memoized readiness sweep, kept in the DRAM domain and keyed on
     * the controllers' summed stateGen(): quiet boundary ticks change
     * nothing scheduler-visible (the generation holds still), so the
     * cached bound survives whole runs of them and only real events —
     * enqueues, issues, deliveries, refresh work, drain transitions —
     * or the bound's own cycle executing force a re-sweep. The CPU-
     * domain conversion is recomputed per query (it shifts with the
     * caller's clock).
     */
    mutable DramCycles wakeDram_ = 0;
    mutable std::uint64_t wakeGen_ = 0;
    mutable bool wakeValid_ = false;
};

} // namespace stfm

#endif // STFM_MEM_MEMORY_SYSTEM_HH
