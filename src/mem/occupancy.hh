/**
 * @file
 * Per-thread, per-bank occupancy bookkeeping shared by all channels of a
 * memory system.
 *
 * This is the substrate behind two STFM registers from the paper's
 * Table 1:
 *  - BankWaitingParallelism: number of banks with at least one waiting
 *    request from the thread, and
 *  - BankAccessParallelism: number of banks currently servicing a
 *    request from the thread.
 *
 * Demand reads are tracked in two classes: *blocking* reads (a load is
 * stalled on them — they produce memory stall time) and non-blocking
 * fills (store misses / prefetch-like traffic that commits without
 * waiting). Interference accounting charges only blocking reads:
 * delaying a fill that nobody waits for produces no extra stall.
 * Writebacks are not tracked at all.
 */

#ifndef STFM_MEM_OCCUPANCY_HH
#define STFM_MEM_OCCUPANCY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace stfm
{

/** Tracks waiting/in-service read counts per (thread, global bank). */
class ThreadBankOccupancy
{
  public:
    ThreadBankOccupancy(unsigned threads, unsigned total_banks)
        : threads_(threads), banks_(total_banks),
          waiting_(threads * total_banks, 0),
          waitingBlocking_(threads * total_banks, 0),
          inService_(threads * total_banks, 0),
          waitingBanksBlocking_(threads, 0), serviceBanks_(threads, 0),
          waitingTotal_(threads, 0)
    {}

    /** A read from @p t to @p bank entered the request buffer. */
    void
    onArrive(ThreadId t, unsigned bank, bool blocking)
    {
        ++waiting_[idx(t, bank)];
        if (blocking && waitingBlocking_[idx(t, bank)]++ == 0)
            ++waitingBanksBlocking_[t];
        ++waitingTotal_[t];
    }

    /** The read's column command issued: waiting -> in service. */
    void
    onColumnIssue(ThreadId t, unsigned bank, bool blocking)
    {
        STFM_ASSERT(waiting_[idx(t, bank)] > 0,
                    "occupancy underflow: column issue for thread %u bank %u "
                    "with no waiting read",
                    t, bank);
        --waiting_[idx(t, bank)];
        if (blocking && --waitingBlocking_[idx(t, bank)] == 0)
            --waitingBanksBlocking_[t];
        --waitingTotal_[t];
        if (inService_[idx(t, bank)]++ == 0)
            ++serviceBanks_[t];
    }

    /** The read's data burst finished. */
    void
    onComplete(ThreadId t, unsigned bank)
    {
        STFM_ASSERT(inService_[idx(t, bank)] > 0,
                    "occupancy underflow: completion for thread %u bank %u "
                    "with no read in service",
                    t, bank);
        if (--inService_[idx(t, bank)] == 0)
            --serviceBanks_[t];
    }

    /** Banks with >= 1 waiting *blocking* read from @p t
     *  (BankWaitingParallelism). */
    unsigned bankWaitingParallelism(ThreadId t) const
    {
        return waitingBanksBlocking_[t];
    }

    /** Banks servicing a read from @p t (BankAccessParallelism). */
    unsigned bankAccessParallelism(ThreadId t) const
    {
        return serviceBanks_[t];
    }

    /** Waiting reads (any class) from @p t to @p bank. */
    unsigned waiting(ThreadId t, unsigned bank) const
    {
        return waiting_[idx(t, bank)];
    }

    /** Waiting blocking reads from @p t to @p bank. */
    unsigned waitingBlocking(ThreadId t, unsigned bank) const
    {
        return waitingBlocking_[idx(t, bank)];
    }

    /** Reads from @p t currently in service in @p bank. */
    unsigned inService(ThreadId t, unsigned bank) const
    {
        return inService_[idx(t, bank)];
    }

    /** Total waiting reads from @p t across all banks. */
    unsigned waitingTotal(ThreadId t) const { return waitingTotal_[t]; }

    unsigned threads() const { return threads_; }
    unsigned totalBanks() const { return banks_; }

  private:
    std::size_t idx(ThreadId t, unsigned bank) const
    {
        return static_cast<std::size_t>(t) * banks_ + bank;
    }

    unsigned threads_;
    unsigned banks_;
    std::vector<std::uint32_t> waiting_;
    std::vector<std::uint32_t> waitingBlocking_;
    std::vector<std::uint32_t> inService_;
    std::vector<std::uint32_t> waitingBanksBlocking_;
    std::vector<std::uint32_t> serviceBanks_;
    std::vector<std::uint32_t> waitingTotal_;
};

} // namespace stfm

#endif // STFM_MEM_OCCUPANCY_HH
