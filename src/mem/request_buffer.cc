#include "mem/request_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

RequestBuffer::RequestBuffer(unsigned banks, unsigned read_capacity,
                             unsigned write_capacity, unsigned threads)
    : readCapacity_(read_capacity), writeCapacity_(write_capacity),
      bankWrites_(banks, 0), threadReads_(threads, 0), queues_(banks)
{
    STFM_ASSERT(banks > 0, "request buffer needs at least one bank");
}

Request *
RequestBuffer::add(const Request &req)
{
    if (req.isWrite) {
        STFM_ASSERT(canAcceptWrite(),
                    "write buffer overflow: %u/%u entries used",
                    writeCount_, writeCapacity_);
        ++writeCount_;
        ++bankWrites_[req.coords.bank];
    } else {
        STFM_ASSERT(canAcceptRead(),
                    "request buffer overflow: %u/%u entries used",
                    readCount_, readCapacity_);
        ++readCount_;
        ++threadReads_[req.thread];
    }
    auto owned = std::make_unique<Request>(req);
    Request *ptr = owned.get();
    queues_[req.coords.bank].push_back(std::move(owned));
    return ptr;
}

std::unique_ptr<Request>
RequestBuffer::extract(Request *req)
{
    auto &queue = queues_[req->coords.bank];
    const auto it = std::find_if(
        queue.begin(), queue.end(),
        [req](const std::unique_ptr<Request> &p) { return p.get() == req; });
    STFM_ASSERT(it != queue.end(), "extracting unknown request");
    std::unique_ptr<Request> owned = std::move(*it);
    queue.erase(it);
    if (owned->isWrite) {
        --writeCount_;
        --bankWrites_[owned->coords.bank];
    } else {
        --readCount_;
        --threadReads_[owned->thread];
    }
    return owned;
}

BankId
RequestBuffer::busiestWriteBank() const
{
    BankId best = 0;
    for (BankId b = 1; b < static_cast<BankId>(bankWrites_.size()); ++b) {
        if (bankWrites_[b] > bankWrites_[best])
            best = b;
    }
    return best;
}

BankId
RequestBuffer::oldestWriteBank() const
{
    BankId best = 0;
    std::uint64_t best_seq = ~0ULL;
    for (BankId b = 0; b < static_cast<BankId>(queues_.size()); ++b) {
        for (const auto &req : queues_[b]) {
            if (req->isWrite && req->seq < best_seq) {
                best_seq = req->seq;
                best = b;
            }
        }
    }
    return best;
}

Request *
RequestBuffer::findWrite(Addr addr) const
{
    // Queues are short (<= capacity), so a linear scan mirrors the
    // associative lookup real write buffers do.
    for (const auto &queue : queues_) {
        for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
            if ((*it)->isWrite && (*it)->addr == addr)
                return it->get();
        }
    }
    return nullptr;
}

} // namespace stfm
