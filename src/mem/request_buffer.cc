#include "mem/request_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

RequestBuffer::RequestBuffer(unsigned banks, unsigned read_capacity,
                             unsigned write_capacity, unsigned threads)
    : readCapacity_(read_capacity), writeCapacity_(write_capacity),
      bankWrites_(banks, 0), threadReads_(threads, 0), queues_(banks),
      rowIndex_(banks)
{
    STFM_ASSERT(banks > 0, "request buffer needs at least one bank");
}

Request *
RequestBuffer::add(const Request &req)
{
    if (req.isWrite) {
        STFM_ASSERT(canAcceptWrite(),
                    "write buffer overflow: %u/%u entries used",
                    writeCount_, writeCapacity_);
        ++writeCount_;
        ++bankWrites_[req.coords.bank];
        busiestWriteDirty_ = true;
    } else {
        STFM_ASSERT(canAcceptRead(),
                    "request buffer overflow: %u/%u entries used",
                    readCount_, readCapacity_);
        ++readCount_;
        ++threadReads_[req.thread];
    }
    auto owned = std::make_unique<Request>(req);
    Request *ptr = owned.get();
    queues_[req.coords.bank].push_back(std::move(owned));
    auto &index = rowIndex_[req.coords.bank];
    RowMix *found = nullptr;
    for (RowEntry &e : index) {
        if (e.row == req.coords.row) {
            found = &e.mix;
            break;
        }
    }
    if (!found) {
        index.push_back(RowEntry{req.coords.row, RowMix{}});
        found = &index.back().mix;
    }
    RowMix &mix = *found;
    if (req.isWrite) {
        ++mix.writes;
        writeByAddr_[req.addr] = ptr;
    } else {
        ++mix.reads;
        if (req.blocking &&
            mix.blockingReads[req.thread]++ == 0) {
            mix.blockingReadMask |= 1u << req.thread;
        }
    }
    return ptr;
}

std::unique_ptr<Request>
RequestBuffer::extract(Request *req)
{
    auto &queue = queues_[req->coords.bank];
    const auto it = std::find_if(
        queue.begin(), queue.end(),
        [req](const std::unique_ptr<Request> &p) { return p.get() == req; });
    STFM_ASSERT(it != queue.end(), "extracting unknown request");
    std::unique_ptr<Request> owned = std::move(*it);
    queue.erase(it);
    if (owned->isWrite) {
        --writeCount_;
        --bankWrites_[owned->coords.bank];
        busiestWriteDirty_ = true;
    } else {
        --readCount_;
        --threadReads_[owned->thread];
    }
    auto &index = rowIndex_[owned->coords.bank];
    std::size_t mix_pos = index.size();
    for (std::size_t i = 0; i < index.size(); ++i) {
        if (index[i].row == owned->coords.row) {
            mix_pos = i;
            break;
        }
    }
    STFM_ASSERT(mix_pos < index.size(), "row index out of sync");
    RowMix &mix = index[mix_pos].mix;
    if (owned->isWrite) {
        --mix.writes;
        writeByAddr_.erase(owned->addr);
    } else {
        --mix.reads;
        if (owned->blocking &&
            --mix.blockingReads[owned->thread] == 0) {
            mix.blockingReadMask &= ~(1u << owned->thread);
        }
    }
    if (mix.total() == 0) {
        // Swap-remove: the index is lookup-only, order is free.
        index[mix_pos] = index.back();
        index.pop_back();
    }
    return owned;
}

BankId
RequestBuffer::busiestWriteBank() const
{
    if (busiestWriteDirty_) {
        BankId best = 0;
        for (BankId b = 1; b < static_cast<BankId>(bankWrites_.size());
             ++b) {
            if (bankWrites_[b] > bankWrites_[best])
                best = b;
        }
        busiestWrite_ = best;
        busiestWriteDirty_ = false;
    }
    return busiestWrite_;
}

BankId
RequestBuffer::oldestWriteBank() const
{
    BankId best = 0;
    std::uint64_t best_seq = ~0ULL;
    for (BankId b = 0; b < static_cast<BankId>(queues_.size()); ++b) {
        for (const auto &req : queues_[b]) {
            if (req->isWrite && req->seq < best_seq) {
                best_seq = req->seq;
                best = b;
            }
        }
    }
    return best;
}

Request *
RequestBuffer::findWrite(Addr addr) const
{
    // Enqueue-side coalescing keeps at most one queued write per line,
    // so the address index is a complete associative lookup.
    const auto it = writeByAddr_.find(addr);
    return it == writeByAddr_.end() ? nullptr : it->second;
}

} // namespace stfm
