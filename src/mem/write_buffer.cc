#include "mem/write_buffer.hh"

#include "common/logging.hh"
#include "mem/request_buffer.hh"

namespace stfm
{

WriteDrainControl::WriteDrainControl(unsigned high, unsigned capacity)
    : high_(high), capacity_(capacity),
      bankBatch_(std::max(2u, capacity / 4))
{
    STFM_ASSERT(high <= capacity, "drain watermark above capacity");
}

bool
WriteDrainControl::pickDrainBank(const RequestBuffer &buffer)
{
    // Prefer a bank that has accumulated a worthwhile batch: each drain
    // episode costs the victim bank two row re-opens (the write row in,
    // the read row back), so batching writes amortizes that cost.
    const BankId busiest = buffer.busiestWriteBank();
    if (buffer.writeCount(busiest) >= bankBatch_) {
        drainBank_ = busiest;
        return true;
    }
    // No bank has a full batch; drain by age under buffer pressure or
    // when the read queues are empty (free bandwidth).
    if (buffer.writeCount() >= high_ ||
        (buffer.readCount() == 0 && buffer.writeCount() > 0)) {
        drainBank_ = buffer.oldestWriteBank();
        return true;
    }
    return false;
}

bool
WriteDrainControl::wouldTransition(const RequestBuffer &buffer) const
{
    const unsigned total = buffer.writeCount();
    if (emergency_ != (total + 1 >= capacity_))
        return true;
    if (!draining_) {
        // Mirror pickDrainBank()'s start conditions without committing.
        if (buffer.writeCount(buffer.busiestWriteBank()) >= bankBatch_)
            return true;
        return total >= high_ || (buffer.readCount() == 0 && total > 0);
    }
    return buffer.writeCount(drainBank_) == 0;
}

void
WriteDrainControl::update(const RequestBuffer &buffer)
{
    const unsigned total = buffer.writeCount();
    const bool was_emergency = emergency_;
    emergency_ = total + 1 >= capacity_;
    if (emergency_ && !was_emergency)
        ++emergencyEntries_;

    if (!draining_) {
        draining_ = pickDrainBank(buffer);
        if (draining_)
            ++drainEpisodes_;
        return;
    }
    if (buffer.writeCount(drainBank_) == 0) {
        draining_ = pickDrainBank(buffer);
        if (draining_)
            ++drainEpisodes_;
    }
}

} // namespace stfm
