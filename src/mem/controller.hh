/**
 * @file
 * Per-channel DRAM memory controller.
 *
 * Implements the two-level scheduler of Section 2.3: every DRAM cycle,
 * each per-bank scheduler selects the highest-priority *ready* command
 * among the requests queued for its bank (priority order supplied by
 * the pluggable SchedulingPolicy), and the across-bank channel scheduler
 * selects the highest-priority of those, issuing at most one DRAM
 * command per cycle on the channel's command bus.
 *
 * Also implements the baseline controller behaviors of Table 2:
 * open-page row-buffer management, a 128-entry request buffer, a
 * 32-entry write buffer with reads prioritized over writes, and
 * write-to-read forwarding.
 */

#ifndef STFM_MEM_CONTROLLER_HH
#define STFM_MEM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "check/auditor.hh"
#include "check/integrity.hh"
#include "check/protocol_checker.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "mem/occupancy.hh"
#include "mem/request.hh"
#include "mem/request_buffer.hh"
#include "mem/write_buffer.hh"
#include "sched/policy.hh"
#include "stats/histogram.hh"

namespace stfm
{

/** Controller tunables (defaults are the paper's Table 2 values). */
struct ControllerParams
{
    unsigned requestBufferEntries = 128;
    unsigned writeBufferEntries = 32;
    unsigned writeDrainHigh = 28;
    unsigned writeDrainLow = 4;
    /**
     * Model periodic all-bank auto-refresh (tREFI/tRFC). Off by
     * default: the paper does not evaluate refresh and it adds noise
     * to short runs; enable for longer fidelity studies.
     */
    bool refreshEnabled = false;
    /**
     * Hold a bank's open row while a higher-priority schedulable
     * column access is pending instead of letting a precharge close it
     * (the behavior behind FR-FCFS's row-hit monopolization). Ablation
     * knob; on in the baseline.
     */
    bool rowProtection = true;
    /**
     * Integrity-layer toggles: shadow protocol checking and
     * forward-progress watchdogs (observation-only; off by default).
     */
    IntegrityConfig integrity;
};

/** Per-thread service statistics a controller accumulates. */
struct ControllerThreadStats
{
    std::uint64_t readsServiced = 0;
    std::uint64_t writesServiced = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowClosed = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t writeRowHits = 0;

    double
    rowHitRate() const
    {
        const std::uint64_t total = rowHits + rowClosed + rowConflicts;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
};

class MemoryController
{
  public:
    /** Invoked when a read's data is available (at the DRAM tick). */
    using ReadCallback = std::function<void(const Request &)>;

    MemoryController(ChannelId channel_id, unsigned num_banks,
                     const DramTiming &timing, const ControllerParams &params,
                     SchedulingPolicy &policy, ThreadBankOccupancy &occupancy,
                     unsigned num_threads);

    /** Capacity checks callers must pass before enqueueing. */
    bool canAcceptRead() const { return buffer_.canAcceptRead(); }
    bool canAcceptWrite() const { return buffer_.canAcceptWrite(); }

    /**
     * Enqueue a demand read. If the line is sitting in the write buffer
     * it is forwarded and completes on the next tick without touching
     * DRAM.
     */
    void enqueueRead(Addr addr, const AddrDecode &coords, ThreadId thread,
                     bool blocking, Cycles cpu_now, DramCycles dram_now);

    /** Enqueue a writeback; coalesces with a queued write to the line. */
    void enqueueWrite(Addr addr, const AddrDecode &coords, ThreadId thread,
                      Cycles cpu_now, DramCycles dram_now);

    /**
     * Advance one DRAM cycle: deliver finished bursts, then make one
     * scheduling decision. @p ctx must have `channel` set to this
     * controller's channel id.
     */
    void tick(const SchedContext &ctx);

    void setReadCallback(ReadCallback cb) { readCallback_ = std::move(cb); }

    const DramChannel &channel() const { return channel_; }
    const RequestBuffer &buffer() const { return buffer_; }
    const ControllerThreadStats &threadStats(ThreadId t) const
    {
        return threadStats_[t];
    }

    /** Distribution of demand-read service latencies (enqueue to data,
     *  DRAM cycles) for @p t. Covers the whole run including warmup. */
    const LatencyHistogram &readLatency(ThreadId t) const
    {
        return readLatency_[t];
    }

    /** True when no request is queued or in flight. */
    bool idle() const
    {
        return buffer_.empty() && inFlight_.empty() &&
               forwarded_.empty();
    }

    /** Shadow protocol checker, or null when disabled. */
    const ProtocolChecker *protocolChecker() const
    {
        return checker_.get();
    }
    /** Request lifetime auditor, or null when disabled. */
    const RequestAuditor *auditor() const { return auditor_.get(); }

    /**
     * Verify request conservation once the controller has drained:
     * every accepted request must have completed exactly once. No-op
     * when the watchdog is disabled.
     */
    void auditDrained(DramCycles now);

  private:
    Candidate pickBankCandidate(BankId bank, bool allow_writes,
                                bool allow_reads, const SchedContext &ctx,
                                std::uint64_t &oldest_row_seq) const;
    void issueCommand(const Candidate &winner, bool bypassed_older_row,
                      const SchedContext &ctx);
    std::uint32_t readyColumnThreadMask(DramCycles now) const;
    void deliverCompletions(const SchedContext &ctx);

    ChannelId channelId_;
    DramChannel channel_;
    ControllerParams params_;
    SchedulingPolicy &policy_;
    ThreadBankOccupancy &occupancy_;

    RequestBuffer buffer_;
    WriteDrainControl drain_;
    std::vector<std::unique_ptr<Request>> inFlight_;
    std::vector<std::unique_ptr<Request>> forwarded_;
    std::vector<ControllerThreadStats> threadStats_;
    std::vector<LatencyHistogram> readLatency_;
    ReadCallback readCallback_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextId_ = 0;

    /** Refresh state machine (active when params_.refreshEnabled). */
    DramCycles nextRefreshAt_ = 0;
    bool refreshPending_ = false;

    /** Integrity layer (null when the corresponding toggle is off). */
    std::unique_ptr<ProtocolChecker> checker_;
    std::unique_ptr<RequestAuditor> auditor_;

    /** @return true if this cycle was consumed by refresh work. */
    bool handleRefresh(const SchedContext &ctx);
};

} // namespace stfm

#endif // STFM_MEM_CONTROLLER_HH
