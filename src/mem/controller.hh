/**
 * @file
 * Per-channel DRAM memory controller.
 *
 * Implements the two-level scheduler of Section 2.3: every DRAM cycle,
 * each per-bank scheduler selects the highest-priority *ready* command
 * among the requests queued for its bank (priority order supplied by
 * the pluggable SchedulingPolicy), and the across-bank channel scheduler
 * selects the highest-priority of those, issuing at most one DRAM
 * command per cycle on the channel's command bus.
 *
 * Also implements the baseline controller behaviors of Table 2:
 * open-page row-buffer management, a 128-entry request buffer, a
 * 32-entry write buffer with reads prioritized over writes, and
 * write-to-read forwarding.
 */

#ifndef STFM_MEM_CONTROLLER_HH
#define STFM_MEM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "check/auditor.hh"
#include "check/integrity.hh"
#include "check/protocol_checker.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "mem/occupancy.hh"
#include "mem/request.hh"
#include "mem/request_buffer.hh"
#include "mem/write_buffer.hh"
#include "sched/policy.hh"
#include "stats/histogram.hh"

namespace stfm
{

/** Controller tunables (defaults are the paper's Table 2 values). */
struct ControllerParams
{
    unsigned requestBufferEntries = 128;
    unsigned writeBufferEntries = 32;
    unsigned writeDrainHigh = 28;
    unsigned writeDrainLow = 4;
    /**
     * Model periodic all-bank auto-refresh (tREFI/tRFC). Off by
     * default: the paper does not evaluate refresh and it adds noise
     * to short runs; enable for longer fidelity studies.
     */
    bool refreshEnabled = false;
    /**
     * Hold a bank's open row while a higher-priority schedulable
     * column access is pending instead of letting a precharge close it
     * (the behavior behind FR-FCFS's row-hit monopolization). Ablation
     * knob; on in the baseline.
     */
    bool rowProtection = true;
    /**
     * Integrity-layer toggles: shadow protocol checking and
     * forward-progress watchdogs (observation-only; off by default).
     */
    IntegrityConfig integrity;
};

/** Per-thread service statistics a controller accumulates. */
struct ControllerThreadStats
{
    std::uint64_t readsServiced = 0;
    std::uint64_t writesServiced = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowClosed = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t writeRowHits = 0;

    double
    rowHitRate() const
    {
        const std::uint64_t total = rowHits + rowClosed + rowConflicts;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
};

class MemoryController
{
  public:
    /** Invoked when a read's data is available (at the DRAM tick). */
    using ReadCallback = std::function<void(const Request &)>;

    MemoryController(ChannelId channel_id, unsigned num_banks,
                     const DramTiming &timing, const ControllerParams &params,
                     SchedulingPolicy &policy, ThreadBankOccupancy &occupancy,
                     unsigned num_threads, unsigned bank_groups = 1);

    /** Capacity checks callers must pass before enqueueing. */
    bool canAcceptRead() const { return buffer_.canAcceptRead(); }
    bool canAcceptWrite() const { return buffer_.canAcceptWrite(); }

    /**
     * Enqueue a demand read. If the line is sitting in the write buffer
     * it is forwarded and completes on the next tick without touching
     * DRAM.
     */
    void enqueueRead(Addr addr, const AddrDecode &coords, ThreadId thread,
                     bool blocking, Cycles cpu_now, DramCycles dram_now);

    /** Enqueue a writeback; coalesces with a queued write to the line. */
    void enqueueWrite(Addr addr, const AddrDecode &coords, ThreadId thread,
                      Cycles cpu_now, DramCycles dram_now);

    /**
     * Advance one DRAM cycle: deliver finished bursts, then make one
     * scheduling decision. @p ctx must have `channel` set to this
     * controller's channel id.
     */
    void tick(const SchedContext &ctx);

    /**
     * Earliest DRAM cycle >= @p now + 1 at which tick() could perform
     * observable work: a data burst completing, a forwarded read
     * returning, refresh housekeeping, a watchdog progress check, or
     * any queued request's next command becoming issuable. Every cycle
     * strictly before the returned value is guaranteed to be a no-op
     * tick (no state changes), so the simulation loop may skip straight
     * to it. The bound may be early (a spurious wake costs only time),
     * never late. Returns kNeverDram when the controller is fully idle.
     */
    DramCycles nextInterestingCycle(DramCycles now) const;

    /** nextInterestingCycle() sentinel: the controller is fully idle. */
    static constexpr DramCycles kNeverDram =
        static_cast<DramCycles>(-1);

    void setReadCallback(ReadCallback cb) { readCallback_ = std::move(cb); }

    const DramChannel &channel() const { return channel_; }
    const RequestBuffer &buffer() const { return buffer_; }
    const ControllerThreadStats &threadStats(ThreadId t) const
    {
        return threadStats_[t];
    }

    /** Distribution of demand-read service latencies (enqueue to data,
     *  DRAM cycles) for @p t. Covers the whole run including warmup. */
    const LatencyHistogram &readLatency(ThreadId t) const
    {
        return readLatency_[t];
    }

    /** True when no request is queued or in flight. */
    bool idle() const
    {
        return buffer_.empty() && inFlight_.empty() &&
               forwarded_.empty();
    }

    /**
     * Total column commands issued (reads + writes, since reset).
     * Monotone counter the simulation loop uses as a change-detection
     * generation: a column issue is the only controller event that
     * frees request-buffer capacity, i.e. the only memory-side event
     * (besides read completions, which carry their own callback) that
     * can unblock a structurally stalled core.
     */
    std::uint64_t columnIssues() const { return columnIssues_; }

    /**
     * Exact minimum finishAt over thread @p t's in-flight and forwarded
     * reads — the DRAM cycle whose boundary tick will invoke the read
     * callback for this thread next, assuming no earlier-finishing read
     * issues in the meantime. kNeverDram when none is pending.
     * Maintained incrementally (see completionMin_), always exact.
     */
    DramCycles readCompletionMin(ThreadId t) const
    {
        return readCompletionMin_[t];
    }

    /**
     * Demand reads of thread @p t sitting in the request buffer, not
     * yet column-issued. While nonzero, a read for @p t with a
     * currently *unknown* finish time exists: its earliest conceivable
     * completion is bounded only by "issue at the next tick, finish
     * strictly later" (see MemorySystem::nextCompletionEffectCpuCycle).
     */
    unsigned queuedReads(ThreadId t) const { return queuedReads_[t]; }

    /**
     * Generation counter for scheduler-visible controller state: bumps
     * on every event after which a previously computed
     * nextInterestingCycle() bound could move *earlier* — an enqueue, a
     * command issue, a completion delivery, refresh housekeeping, or a
     * write-drain state transition. While it is unchanged, a cached
     * bound stays valid until the bound's own cycle executes (quiet
     * ticks prove no-ops; they never create earlier work), which is
     * what lets the simulation loop cache the readiness sweep across
     * the long runs of quiet boundaries instead of re-sweeping every
     * DRAM window.
     */
    std::uint64_t stateGen() const { return stateGen_; }

    /** Shadow protocol checker, or null when disabled. */
    const ProtocolChecker *protocolChecker() const
    {
        return checker_.get();
    }
    /** Request lifetime auditor, or null when disabled. */
    const RequestAuditor *auditor() const { return auditor_.get(); }

    /**
     * Verify request conservation once the controller has drained:
     * every accepted request must have completed exactly once. No-op
     * when the watchdog is disabled.
     */
    void auditDrained(DramCycles now);

    /**
     * Attach an additional DRAM-command observer (the trace exporter)
     * alongside any already installed (the protocol checker).
     */
    void addChannelObserver(DramCommandObserver *observer)
    {
        channel_.addObserver(observer);
    }

    /** Attach the write-drain span tap (null = disabled, default). */
    void setDrainTap(DrainTap *tap) { drainTap_ = tap; }

    /**
     * Register this channel's telemetry series (dram.ch<c>.* and
     * mem.ch<c>.*). @p dram_now must point at the memory system's DRAM
     * cycle counter (gauges derive utilization from elapsed time).
     */
    void registerTelemetry(TelemetryRegistry &registry,
                           const DramCycles *dram_now);

  private:
    /**
     * Earliest cycle any request queued for @p bank could have its next
     * command issued, derived from the buffer's per-row index and the
     * channel's earliestIssue tables in O(distinct row classes) instead
     * of a queue scan. Exact per command class: if it is in the future,
     * a scan of the bank at the current cycle finds nothing issuable.
     * Returns kNeverDram for an empty bank queue.
     */
    DramCycles bankReadyAt(BankId bank) const;

    /**
     * Memoized bankReadyAt, tracked per bank: an enqueue changes only
     * its own bank's queue (channel timing untouched), so it re-derives
     * one entry; a command issue or refresh work shifts the channel's
     * shared timing state (bus, tRRD, tFAW) and re-derives everything.
     */
    DramCycles bankReadyCached(BankId bank) const
    {
        if (bankReadyDirty_ & (std::uint64_t{1} << bank)) {
            bankReadyCache_[bank] = bankReadyAt(bank);
            bankReadyDirty_ &= ~(std::uint64_t{1} << bank);
        }
        return bankReadyCache_[bank];
    }
    /**
     * Highest-priority issuable command among @p bank's queue, or an
     * invalid candidate. When the scan comes up empty, @p next_try is
     * lowered to the earliest future cycle its outcome could change
     * with no intervening scheduler event: the soonest earliestIssue
     * among schedulable-but-not-yet-issuable commands, capped at the
     * next cycle when a time-varying priority comparison (row
     * protection) suppressed the winner. Requests held back by the
     * read/write gating contribute nothing — the gating only moves on
     * buffer changes, which invalidate the quiet window anyway.
     */
    Candidate pickBankCandidate(BankId bank, bool allow_writes,
                                bool allow_reads, const SchedContext &ctx,
                                std::uint64_t &oldest_row_seq,
                                DramCycles &next_try) const;

    /**
     * Quiet-window bound for a tick that issued nothing: the earliest
     * future cycle at which tick() could do observable work, combining
     * @p issue_bound (per-bank issuability, from the scheduling scan)
     * with burst/forward completions, the refresh deadline, and the
     * watchdog stride. Every component is strictly past @p now by
     * construction (completions due now were just delivered, refresh
     * due now was just handled).
     */
    DramCycles quietBound(DramCycles now, DramCycles issue_bound) const;
    void issueCommand(const Candidate &winner, bool bypassed_older_row,
                      const SchedContext &ctx);
    std::uint32_t readyColumnThreadMask(DramCycles now) const;
    void deliverCompletions(const SchedContext &ctx);

    ChannelId channelId_;
    DramChannel channel_;
    ControllerParams params_;
    SchedulingPolicy &policy_;
    ThreadBankOccupancy &occupancy_;

    RequestBuffer buffer_;
    WriteDrainControl drain_;
    std::vector<std::unique_ptr<Request>> inFlight_;
    std::vector<std::unique_ptr<Request>> forwarded_;
    /**
     * Exact min finishAt over *all* inFlight_ + forwarded_ entries
     * (reads and writes): while completionMin_ > now, deliverCompletions
     * is a provable no-op and skips both list scans. Lowered on insert;
     * recomputed for free inside the delivery scan it gates (the scan
     * visits every surviving entry anyway). readCompletionMin_ is the
     * same min per thread over reads only — the completion events a
     * core's run-ahead burst must end before.
     */
    DramCycles completionMin_ = kNeverDram;
    std::vector<DramCycles> readCompletionMin_;
    /** Per-thread demand reads queued but not yet column-issued. */
    std::vector<unsigned> queuedReads_;
    std::vector<ControllerThreadStats> threadStats_;
    std::vector<LatencyHistogram> readLatency_;
    ReadCallback readCallback_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextId_ = 0;
    std::uint64_t columnIssues_ = 0;
    /** See stateGen(). */
    std::uint64_t stateGen_ = 0;

    /** bankReadyCached() memo; per-bank dirty bits (bit b set = entry b
     *  must be re-derived). Banks are capped at 64 per channel by this
     *  mask width (the paper's systems use 8). */
    mutable std::vector<DramCycles> bankReadyCache_;
    mutable std::uint64_t bankReadyDirty_ = ~std::uint64_t{0};

    /**
     * Quiet-window memo: every tick() strictly before this cycle is a
     * guaranteed no-op (nothing completes, nothing can issue, no
     * refresh or watchdog work is due) and returns in O(1). Set at the
     * end of a tick that issued nothing (see quietBound); reset to 0 —
     * "recompute" — by every event that could create work: a request
     * arriving (enqueueRead/enqueueWrite), a command issuing, or
     * refresh housekeeping touching the banks.
     */
    DramCycles quietUntil_ = 0;

    /** Refresh state machine (active when params_.refreshEnabled). */
    DramCycles nextRefreshAt_ = 0;
    bool refreshPending_ = false;

    /** Integrity layer (null when the corresponding toggle is off). */
    std::unique_ptr<ProtocolChecker> checker_;
    std::unique_ptr<RequestAuditor> auditor_;

    /** Write-drain transition tap (trace exporter); null = off. */
    DrainTap *drainTap_ = nullptr;

    /** @return true if this cycle was consumed by refresh work. */
    bool handleRefresh(const SchedContext &ctx);
};

} // namespace stfm

#endif // STFM_MEM_CONTROLLER_HH
