/**
 * @file
 * The core's view of the memory system (dependency-inversion point
 * between cpu/ and mem/).
 */

#ifndef STFM_CPU_MEMORY_PORT_HH
#define STFM_CPU_MEMORY_PORT_HH

#include "common/types.hh"

namespace stfm
{

/** What a core needs from the shared memory system. */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /** Can a demand read to @p addr be accepted this cycle? */
    virtual bool canAcceptRead(Addr addr) const = 0;
    /** Can a writeback to @p addr be accepted this cycle? */
    virtual bool canAcceptWrite(Addr addr) const = 0;

    /**
     * Issue a demand read; completion arrives via Core::onReadComplete.
     * @param blocking A load waits on this line (false for store fills).
     */
    virtual void issueRead(Addr addr, ThreadId thread, bool blocking) = 0;
    /** Issue a writeback (fire-and-forget). */
    virtual void issueWrite(Addr addr, ThreadId thread) = 0;

    /**
     * The core wanted to issue a blocking read this cycle but the
     * request buffer was full. Fairness-aware schedulers use this to
     * attribute the wait to the threads hogging the buffer.
     */
    virtual void noteEnqueueBlocked(Addr addr, ThreadId thread)
    {
        (void)addr;
        (void)thread;
    }
};

} // namespace stfm

#endif // STFM_CPU_MEMORY_PORT_HH
