/**
 * @file
 * Trace-driven processor core model.
 *
 * Approximates the paper's performance model (Table 2): a 4 GHz core
 * with a 128-entry instruction window, 3-wide fetch/commit with at most
 * one memory operation per cycle, private L1/L2 caches, and 64 MSHRs.
 * Commit is in order; when the oldest instruction is an outstanding L2
 * miss, the core cannot commit and increments its memory stall counter —
 * this counter is exactly the Tshared value STFM consumes.
 *
 * Loads enter the window and complete after their cache/DRAM latency;
 * independent loads overlap (memory-level parallelism), while loads
 * marked address-dependent serialize. Stores commit immediately but
 * trigger store fills and, eventually, dirty writebacks to DRAM.
 */

#ifndef STFM_CPU_CORE_HH
#define STFM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "cpu/cache.hh"
#include "cpu/memory_port.hh"
#include "cpu/mshr.hh"
#include "trace/trace.hh"

namespace stfm
{

class TelemetryRegistry;

/** Core tunables; defaults are the paper's Table 2 values. */
struct CoreParams
{
    unsigned windowSize = 128;
    unsigned fetchWidth = 3;
    unsigned commitWidth = 3;
    unsigned mshrs = 64;
    CacheParams l1{32 * 1024, 4, 64, 2};
    CacheParams l2{512 * 1024, 8, 64, 12};
    /** Fixed controller/interconnect overhead per DRAM access (CPU
     *  cycles); 40 cycles = the 10 ns that completes Table 2's 35 ns
     *  uncontended row-hit round trip. */
    Cycles dramOverhead = 40;
    /** Core-side buffer for writebacks the controller can't yet take. */
    unsigned maxPendingWritebacks = 8;
};

class Core
{
  public:
    Core(ThreadId id, const CoreParams &params, TraceSource &trace,
         MemoryPort &memory);

    /**
     * Pre-install @p lines into the L2 (and drop a subset into the L1),
     * modeling the working set resident before the simulated window.
     */
    void prewarmCaches(const std::vector<WarmLine> &lines);

    /**
     * Advance one CPU cycle: commit, then fetch/issue.
     * @return true if architectural progress was made (an instruction
     * committed, fetched, or a writeback drained) — i.e. anything
     * beyond stall accounting. Used by the simulation loop as a cheap
     * "certainly active next cycle too" hint: on progress it assumes a
     * wake at now + 1 instead of computing nextEventCycle(); the first
     * progress-free tick then computes the exact wake. The assumption
     * is always sound (an early wake is never wrong, only a late one).
     */
    bool tick(Cycles now);

    /** DRAM data for @p line_addr arrived (called by the system). */
    void onReadComplete(Addr line_addr, Cycles now);

    /**
     * Quiescence predictor for the fast-forward path: the earliest
     * cycle >= @p now + 1 at which tick() would do anything beyond the
     * fixed per-cycle bookkeeping (incrementing memStallCycles), given
     * that no external event (a read completing, the memory system
     * freeing capacity) occurs before it. Must be called on post-tick
     * state (after tick(now)). Returns kNever when only an external
     * event can make the core progress. Sets @p stalls to whether every
     * skipped cycle increments the memory-stall counter (apply with
     * skipStalledCycles). Sets @p waits_capacity when the predicted
     * sleep depends on memory-system capacity (request buffer or write
     * path) — such a sleep must be cut short when the controller frees
     * capacity (a column issue), whereas a purely core-local or
     * completion-bound sleep need not be. The prediction errs early,
     * never late: a premature wake costs a spurious tick, a late one
     * would diverge.
     */
    Cycles nextEventCycle(Cycles now, bool &stalls,
                          bool &waits_capacity) const;

    /** Account @p n skipped cycles of pure memory stall. */
    void skipStalledCycles(Cycles n) { memStall_ += n; }

    /**
     * Burst execution ahead of the global clock. A core's cycle-by-cycle
     * behavior is a closed function of its own state as long as no
     * cycle touches the memory system and no external event targets it:
     * cache hits stay core-local, and even in the shadow of outstanding
     * L2 misses, loads and store fills that coalesce into an existing
     * MSHR entry never leave the core. This executes cycles
     * [@p now, ...) in a tight loop — batching steady ALU stretches in
     * closed form and jumping idle (dependence- or latency-blocked)
     * stretches analytically — stopping *before* the first cycle that
     * would touch the memory system (a new L2 miss, a new store fill, a
     * non-temporal store), before the first *stall* cycle (the oldest
     * instruction a blocked L2 miss — the cycle a completion matters
     * and the stall counter must advance), before any cycle that could
     * push the committed-instruction count to @p commit_cap (so the
     * caller's per-cycle snapshot/freeze scan still fires on the exact
     * cycle), and at @p end. A cycle that turns out to touch memory is
     * rolled back untouched and re-executed later through the normal
     * tick() path at the correct global cycle.
     *
     * When mshrInUse() != 0 the caller MUST cap @p end at the earliest
     * cycle a completion for this thread could be *observed*
     * (MemorySystem::nextCompletionEffectCpuCycle): an in-flight miss
     * makes this core a completion target, and a completion becoming
     * visible inside an executed burst would rewrite history. Data
     * delivered at boundary B is observable from B + 1 (the reference
     * ticks the core before the memory at B), so a burst may cover the
     * delivery cycle itself. With no miss in flight no external event
     * can target the core and no merge can occur, so @p end needs no
     * cap.
     *
     * @return the first cycle NOT executed; == @p now when the core is
     * ineligible or the very next cycle needs the memory system. After
     * a return of X > now, the caller must not tick this core again
     * until cycle X (it already ran), and may treat it as quiescent
     * with no stall accrual in between.
     */
    Cycles runAhead(Cycles now, Cycles end, std::uint64_t commit_cap);

    ThreadId threadId() const { return id_; }
    std::uint64_t instructionsCommitted() const { return committed_; }
    /** Cycles in which the oldest instruction was an unfinished L2-miss
     *  load (the Tshared counter of Section 3.2.1). */
    Cycles memStallCycles() const { return memStall_; }
    /** Demand L2 misses (distinct lines; MSHR allocations). */
    std::uint64_t l2Misses() const { return mshr_.allocations(); }
    std::uint64_t l1Hits() const { return l1_.hits(); }
    std::uint64_t l2Hits() const { return l2_.hits(); }
    /** MSHR entries currently allocated (misses in flight). */
    unsigned mshrInUse() const { return mshr_.inUse(); }

    /** Register this core's gauges/counters (core.t<id>.*) into the
     *  telemetry registry. */
    void registerTelemetry(TelemetryRegistry &registry);

  private:
    struct WindowEntry
    {
        Cycles readyAt = 0;
        bool memWait = false; ///< Still waiting on the DRAM data.
        bool l2Miss = false;  ///< Load that missed the L2 (for stall
                              ///< attribution, including the return-path
                              ///< overhead after the data arrives).
    };

    bool windowFull() const { return tail_ - head_ >= params_.windowSize; }
    WindowEntry &at(std::uint64_t pos)
    {
        return window_[pos & windowMask_];
    }
    bool entryDone(std::uint64_t pos, Cycles now) const
    {
        const WindowEntry &e = window_[pos & windowMask_];
        return !e.memWait && e.readyAt <= now;
    }

    /** Fetch-width ceiling for runAhead's per-cycle slot-undo buffer;
     *  wider cores just skip burst execution (correct, slower). */
    static constexpr unsigned kMaxBurstFetch = 8;

    void commit(Cycles now);
    void fetch(Cycles now);
    /** @return false if the memory op must retry next cycle. */
    bool issueMemOp(Cycles now);
    void handleFill(Addr line_addr, bool dirty, Cycles now);
    bool drainWritebacks();

    ThreadId id_;
    CoreParams params_;
    TraceSource &trace_;
    MemoryPort &memory_;

    Cache l1_;
    Cache l2_;
    MshrFile mshr_;

    std::vector<WindowEntry> window_;
    /** window_.size() - 1; the backing store is rounded up to a power
     *  of two so position-to-slot mapping is a mask, not a divide.
     *  Capacity checks still use params_.windowSize exactly. */
    std::uint64_t windowMask_ = 0;
    std::uint64_t head_ = 0; ///< Position of the oldest instruction.
    std::uint64_t tail_ = 0; ///< Position one past the youngest.

    /** Trace decode state. */
    std::uint32_t aluCredit_ = 0;
    bool memPending_ = false;
    TraceOp pendingOp_;

    /** Position of the most recent load (for dependence stalls). */
    std::uint64_t lastLoadPos_ = ~0ULL;
    /** Position of the most recent L2-missing load: dependence chains
     *  serialize misses on each other (pointer chasing), not on
     *  interleaved cache-hitting loads. */
    std::uint64_t lastMissPos_ = ~0ULL;

    std::deque<Addr> pendingWritebacks_;
    std::vector<std::uint64_t> wakeScratch_;

    /** Fetch was blocked by a full MSHR file / request buffer last
     *  cycle; with an empty window this still counts as memory stall
     *  (the machine is drained waiting on outstanding misses). */
    bool fetchBlockedByMemory_ = false;

    std::uint64_t committed_ = 0;
    Cycles memStall_ = 0;
};

} // namespace stfm

#endif // STFM_CPU_CORE_HH
