/**
 * @file
 * Trace-driven processor core model.
 *
 * Approximates the paper's performance model (Table 2): a 4 GHz core
 * with a 128-entry instruction window, 3-wide fetch/commit with at most
 * one memory operation per cycle, private L1/L2 caches, and 64 MSHRs.
 * Commit is in order; when the oldest instruction is an outstanding L2
 * miss, the core cannot commit and increments its memory stall counter —
 * this counter is exactly the Tshared value STFM consumes.
 *
 * Loads enter the window and complete after their cache/DRAM latency;
 * independent loads overlap (memory-level parallelism), while loads
 * marked address-dependent serialize. Stores commit immediately but
 * trigger store fills and, eventually, dirty writebacks to DRAM.
 */

#ifndef STFM_CPU_CORE_HH
#define STFM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "cpu/cache.hh"
#include "cpu/memory_port.hh"
#include "cpu/mshr.hh"
#include "trace/trace.hh"

namespace stfm
{

/** Core tunables; defaults are the paper's Table 2 values. */
struct CoreParams
{
    unsigned windowSize = 128;
    unsigned fetchWidth = 3;
    unsigned commitWidth = 3;
    unsigned mshrs = 64;
    CacheParams l1{32 * 1024, 4, 64, 2};
    CacheParams l2{512 * 1024, 8, 64, 12};
    /** Fixed controller/interconnect overhead per DRAM access (CPU
     *  cycles); 40 cycles = the 10 ns that completes Table 2's 35 ns
     *  uncontended row-hit round trip. */
    Cycles dramOverhead = 40;
    /** Core-side buffer for writebacks the controller can't yet take. */
    unsigned maxPendingWritebacks = 8;
};

class Core
{
  public:
    Core(ThreadId id, const CoreParams &params, TraceSource &trace,
         MemoryPort &memory);

    /**
     * Pre-install @p lines into the L2 (and drop a subset into the L1),
     * modeling the working set resident before the simulated window.
     */
    void prewarmCaches(const std::vector<WarmLine> &lines);

    /** Advance one CPU cycle: commit, then fetch/issue. */
    void tick(Cycles now);

    /** DRAM data for @p line_addr arrived (called by the system). */
    void onReadComplete(Addr line_addr, Cycles now);

    ThreadId threadId() const { return id_; }
    std::uint64_t instructionsCommitted() const { return committed_; }
    /** Cycles in which the oldest instruction was an unfinished L2-miss
     *  load (the Tshared counter of Section 3.2.1). */
    Cycles memStallCycles() const { return memStall_; }
    /** Demand L2 misses (distinct lines; MSHR allocations). */
    std::uint64_t l2Misses() const { return mshr_.allocations(); }
    std::uint64_t l1Hits() const { return l1_.hits(); }
    std::uint64_t l2Hits() const { return l2_.hits(); }

  private:
    struct WindowEntry
    {
        Cycles readyAt = 0;
        bool memWait = false; ///< Still waiting on the DRAM data.
        bool l2Miss = false;  ///< Load that missed the L2 (for stall
                              ///< attribution, including the return-path
                              ///< overhead after the data arrives).
    };

    bool windowFull() const { return tail_ - head_ >= params_.windowSize; }
    WindowEntry &at(std::uint64_t pos)
    {
        return window_[pos % params_.windowSize];
    }
    bool entryDone(std::uint64_t pos, Cycles now) const
    {
        const WindowEntry &e = window_[pos % params_.windowSize];
        return !e.memWait && e.readyAt <= now;
    }

    void commit(Cycles now);
    void fetch(Cycles now);
    /** @return false if the memory op must retry next cycle. */
    bool issueMemOp(Cycles now);
    void handleFill(Addr line_addr, bool dirty, Cycles now);
    void drainWritebacks();

    ThreadId id_;
    CoreParams params_;
    TraceSource &trace_;
    MemoryPort &memory_;

    Cache l1_;
    Cache l2_;
    MshrFile mshr_;

    std::vector<WindowEntry> window_;
    std::uint64_t head_ = 0; ///< Position of the oldest instruction.
    std::uint64_t tail_ = 0; ///< Position one past the youngest.

    /** Trace decode state. */
    std::uint32_t aluCredit_ = 0;
    bool memPending_ = false;
    TraceOp pendingOp_;

    /** Position of the most recent load (for dependence stalls). */
    std::uint64_t lastLoadPos_ = ~0ULL;
    /** Position of the most recent L2-missing load: dependence chains
     *  serialize misses on each other (pointer chasing), not on
     *  interleaved cache-hitting loads. */
    std::uint64_t lastMissPos_ = ~0ULL;

    std::deque<Addr> pendingWritebacks_;
    std::vector<std::uint64_t> wakeScratch_;

    /** Fetch was blocked by a full MSHR file / request buffer last
     *  cycle; with an empty window this still counts as memory stall
     *  (the machine is drained waiting on outstanding misses). */
    bool fetchBlockedByMemory_ = false;

    std::uint64_t committed_ = 0;
    Cycles memStall_ = 0;
};

} // namespace stfm

#endif // STFM_CPU_CORE_HH
