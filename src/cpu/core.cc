#include "cpu/core.hh"

#include "common/logging.hh"

namespace stfm
{

Core::Core(ThreadId id, const CoreParams &params, TraceSource &trace,
           MemoryPort &memory)
    : id_(id), params_(params), trace_(trace), memory_(memory),
      l1_(params.l1), l2_(params.l2), mshr_(params.mshrs),
      window_(params.windowSize)
{
    STFM_ASSERT(params.windowSize > 0, "window size must be positive");
}

void
Core::prewarmCaches(const std::vector<WarmLine> &lines)
{
    for (const WarmLine &line : lines) {
        // Overflowing sets silently drop their LRU victim: the warmup
        // happened "before time zero", so no writeback traffic results.
        l2_.fill(line.addr & ~(params_.l2.lineBytes - 1), line.dirty);
    }
}

void
Core::tick(Cycles now)
{
    drainWritebacks();
    commit(now);
    fetch(now);
}

void
Core::commit(Cycles now)
{
    for (unsigned n = 0; n < params_.commitWidth; ++n) {
        if (head_ == tail_) {
            // Drained window while fetch is blocked on memory
            // structures: the thread is stalled on its misses.
            if (n == 0 && fetchBlockedByMemory_)
                ++memStall_;
            return;
        }
        const WindowEntry &e = window_[head_ % params_.windowSize];
        if (e.memWait || e.readyAt > now) {
            // In-order commit is blocked. Attribute the stall to memory
            // only when the oldest instruction is an L2 miss (the
            // paper's Tshared rule).
            if (n == 0 && e.l2Miss)
                ++memStall_;
            return;
        }
        ++head_;
        ++committed_;
    }
}

void
Core::fetch(Cycles now)
{
    fetchBlockedByMemory_ = false;
    bool mem_op_fetched = false;
    for (unsigned n = 0; n < params_.fetchWidth; ++n) {
        if (windowFull())
            return;
        if (pendingWritebacks_.size() >= params_.maxPendingWritebacks)
            return; // Backpressure from the write path.

        // Refill the decode state from the trace.
        if (aluCredit_ == 0 && !memPending_) {
            pendingOp_ = trace_.next();
            aluCredit_ = pendingOp_.aluBefore;
            memPending_ = pendingOp_.kind != TraceOp::Kind::None;
        }

        if (aluCredit_ > 0) {
            WindowEntry &e = at(tail_);
            e.readyAt = now + 1;
            e.memWait = false;
            e.l2Miss = false;
            ++tail_;
            --aluCredit_;
            continue;
        }

        STFM_ASSERT(memPending_, "decode state exhausted");
        if (mem_op_fetched)
            return; // At most one memory operation per cycle (Table 2).
        if (pendingOp_.dependsOnPrev && lastMissPos_ != ~0ULL &&
            lastMissPos_ >= head_ && !entryDone(lastMissPos_, now)) {
            return; // Address-dependent load: wait for the producer.
        }
        if (!issueMemOp(now)) {
            // Structural stall (MSHRs / request buffer full).
            fetchBlockedByMemory_ = true;
            return;
        }
        mem_op_fetched = true;
        memPending_ = false;
    }
}

bool
Core::issueMemOp(Cycles now)
{
    const Addr line = pendingOp_.addr & ~(params_.l1.lineBytes - 1);
    const bool is_store = pendingOp_.kind == TraceOp::Kind::Store;

    if (is_store && pendingOp_.nonTemporal) {
        // Streaming store: bypass the caches, write straight to DRAM.
        if (pendingWritebacks_.size() >= params_.maxPendingWritebacks)
            return false;
        if (memory_.canAcceptWrite(line))
            memory_.issueWrite(line, id_);
        else
            pendingWritebacks_.push_back(line);
        WindowEntry &e = at(tail_);
        e.readyAt = now + 1;
        e.memWait = false;
        e.l2Miss = false;
        ++tail_;
        return true;
    }

    if (is_store) {
        // Stores commit immediately (write buffering); the cache fill
        // happens in the background.
        if (!l2_.access(line, /*is_store=*/true)) {
            // Store fill: fetch the line, install dirty.
            const bool merged = mshr_.has(line);
            if (!merged) {
                if (mshr_.full() || !memory_.canAcceptRead(line))
                    return false;
                mshr_.allocate(line, MshrFile::kNoWaiter,
                               /*dirty_fill=*/true);
                memory_.issueRead(line, id_, /*blocking=*/false);
            } else {
                mshr_.allocate(line, MshrFile::kNoWaiter,
                               /*dirty_fill=*/true);
            }
        } else {
            l1_.access(line, /*is_store=*/false); // Keep L1 LRU warm.
        }
        WindowEntry &e = at(tail_);
        e.readyAt = now + 1;
        e.memWait = false;
        e.l2Miss = false;
        ++tail_;
        return true;
    }

    // Load path.
    WindowEntry &e = at(tail_);
    e.memWait = false;
    e.l2Miss = false;
    if (l1_.access(line, /*is_store=*/false)) {
        e.readyAt = now + params_.l1.latency;
    } else if (l2_.access(line, /*is_store=*/false)) {
        e.readyAt = now + params_.l1.latency + params_.l2.latency;
        l1_.fill(line, /*dirty=*/false); // L1 is write-through: clean.
    } else {
        // L2 miss: allocate or merge an MSHR and go to DRAM.
        const bool merged = mshr_.has(line);
        if (!merged) {
            if (mshr_.full())
                return false;
            if (!memory_.canAcceptRead(line)) {
                // Request buffer full: a wait the memory system should
                // see (it is usually full of other threads' requests).
                memory_.noteEnqueueBlocked(line, id_);
                return false;
            }
        }
        mshr_.allocate(line, tail_, /*dirty_fill=*/false);
        if (!merged)
            memory_.issueRead(line, id_, /*blocking=*/true);
        e.memWait = true;
        e.l2Miss = true;
        e.readyAt = kNever;
        lastMissPos_ = tail_;
    }
    lastLoadPos_ = tail_;
    ++tail_;
    return true;
}

void
Core::onReadComplete(Addr line_addr, Cycles now)
{
    bool dirty = false;
    wakeScratch_.clear();
    if (!mshr_.complete(line_addr, wakeScratch_, dirty))
        return; // Spurious (e.g. after a reset); ignore.
    handleFill(line_addr, dirty, now);
    for (const std::uint64_t pos : wakeScratch_) {
        if (pos < head_ || pos >= tail_)
            continue; // The waiter is gone (should not happen for loads).
        WindowEntry &e = at(pos);
        e.memWait = false;
        // The fixed controller/interconnect overhead is charged on the
        // return path.
        e.readyAt = now + params_.dramOverhead;
    }
}

void
Core::handleFill(Addr line_addr, bool dirty, Cycles now)
{
    (void)now;
    const Eviction victim = l2_.fill(line_addr, dirty);
    if (victim.valid) {
        l1_.invalidate(victim.addr); // Maintain inclusion.
        if (victim.dirty)
            pendingWritebacks_.push_back(victim.addr);
    }
    l1_.fill(line_addr, /*dirty=*/false);
}

void
Core::drainWritebacks()
{
    while (!pendingWritebacks_.empty() &&
           memory_.canAcceptWrite(pendingWritebacks_.front())) {
        memory_.issueWrite(pendingWritebacks_.front(), id_);
        pendingWritebacks_.pop_front();
    }
}

} // namespace stfm
