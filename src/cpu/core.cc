#include "cpu/core.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "obs/telemetry.hh"

namespace stfm
{

Core::Core(ThreadId id, const CoreParams &params, TraceSource &trace,
           MemoryPort &memory)
    : id_(id), params_(params), trace_(trace), memory_(memory),
      l1_(params.l1), l2_(params.l2), mshr_(params.mshrs),
      window_(std::bit_ceil(std::uint64_t{params.windowSize}))
{
    STFM_ASSERT(params.windowSize > 0, "window size must be positive");
    // The store is a power of two (>= windowSize) purely so slot
    // lookup is a mask; at most windowSize entries are live at once,
    // so every live position still maps to a distinct slot.
    windowMask_ = window_.size() - 1;
}

void
Core::registerTelemetry(TelemetryRegistry &registry)
{
    registry.gauge(formatMessage("core.t%u.mshrOccupancy", id_),
                   "entries", "core",
                   [this] { return static_cast<double>(mshrInUse()); });
    registry.counter(formatMessage("core.t%u.stallCycles", id_),
                     "cpu-cycles", "core", [this] {
                         return static_cast<double>(memStallCycles());
                     });
    registry.counter(
        formatMessage("core.t%u.instructions", id_), "instructions",
        "core", [this] {
            return static_cast<double>(instructionsCommitted());
        });
    // "llc", not "l2": digits in series names are reserved for
    // instance indices (normalizeSeriesName folds them to <n>).
    registry.counter(formatMessage("core.t%u.llcMisses", id_),
                     "requests", "core", [this] {
                         return static_cast<double>(l2Misses());
                     });
}

void
Core::prewarmCaches(const std::vector<WarmLine> &lines)
{
    for (const WarmLine &line : lines) {
        // Overflowing sets silently drop their LRU victim: the warmup
        // happened "before time zero", so no writeback traffic results.
        l2_.fill(line.addr & ~(params_.l2.lineBytes - 1), line.dirty);
    }
}

bool
Core::tick(Cycles now)
{
    const std::uint64_t head_before = head_;
    const std::uint64_t tail_before = tail_;
    const bool drained = drainWritebacks();
    commit(now);
    fetch(now);
    return drained || head_ != head_before || tail_ != tail_before;
}

Cycles
Core::nextEventCycle(Cycles now, bool &stalls,
                     bool &waits_capacity) const
{
    stalls = false;
    waits_capacity = false;

    // Writeback drain would hand a write to the controller.
    if (!pendingWritebacks_.empty()) {
        if (memory_.canAcceptWrite(pendingWritebacks_.front()))
            return now + 1;
        // The blocked drain resumes when the controller frees write
        // capacity — a memory-side event this core must be woken for.
        waits_capacity = true;
    }

    Cycles wake = kNever;

    // Commit side. A blocked oldest instruction accrues stall per
    // cycle exactly when it is an L2 miss (the Tshared rule); one
    // waiting on its cache latency wakes by itself at readyAt.
    if (head_ != tail_) {
        const WindowEntry &e = window_[head_ & windowMask_];
        if (!e.memWait && e.readyAt <= now + 1)
            return now + 1; // Commit progresses next cycle.
        stalls = e.l2Miss;
        if (!e.memWait)
            wake = e.readyAt;
        // memWait: only onReadComplete can wake it (external).
    } else {
        // Drained window: stall is attributed while fetch is blocked
        // on memory structures, mirroring commit().
        stalls = fetchBlockedByMemory_;
    }

    // Fetch side: would the first fetch-loop iteration make progress?
    if (windowFull())
        return wake; // Slots free only via commit (covered by wake).
    if (pendingWritebacks_.size() >= params_.maxPendingWritebacks)
        return wake; // Frees only via the drain (external).
    if (aluCredit_ > 0 || !memPending_)
        return now + 1; // Would fetch an ALU op / refill the trace.

    // A memory op is pending. Address dependence first.
    if (pendingOp_.dependsOnPrev && lastMissPos_ != ~0ULL &&
        lastMissPos_ >= head_) {
        const WindowEntry &p = window_[lastMissPos_ & windowMask_];
        if (p.memWait)
            return wake; // Producer waits on DRAM (external).
        if (p.readyAt > now + 1)
            return std::min(wake, p.readyAt);
        // Producer done by now + 1: issue is attempted.
    }

    // Mirror issueMemOp() without side effects. Any issue attempt that
    // succeeds, hits a cache, or merges an MSHR is progress.
    const Addr line = pendingOp_.addr & ~(params_.l1.lineBytes - 1);
    const bool is_store = pendingOp_.kind == TraceOp::Kind::Store;
    if (is_store && pendingOp_.nonTemporal)
        return now + 1; // Writeback capacity was checked above.
    if (is_store) {
        if (l2_.probe(line) || mshr_.has(line))
            return now + 1;
        if (mshr_.full() || !memory_.canAcceptRead(line)) {
            // Structural stall; frees only externally (a column issue
            // frees buffer capacity, a completion frees an MSHR).
            waits_capacity = true;
            return wake;
        }
        return now + 1;
    }
    // Load path.
    if (l1_.probe(line) || l2_.probe(line) || mshr_.has(line))
        return now + 1;
    if (mshr_.full()) {
        // Frees when own data returns; flagged anyway — a spurious
        // capacity wake is sound, a missed wake would not be.
        waits_capacity = true;
        return wake;
    }
    // A load locked out of a full request buffer retries every cycle
    // *with* a policy side effect (noteEnqueueBlocked); it must not be
    // skipped. A load that can issue is progress outright.
    return now + 1;
}

void
Core::commit(Cycles now)
{
    for (unsigned n = 0; n < params_.commitWidth; ++n) {
        if (head_ == tail_) {
            // Drained window while fetch is blocked on memory
            // structures: the thread is stalled on its misses.
            if (n == 0 && fetchBlockedByMemory_)
                ++memStall_;
            return;
        }
        const WindowEntry &e = window_[head_ & windowMask_];
        if (e.memWait || e.readyAt > now) {
            // In-order commit is blocked. Attribute the stall to memory
            // only when the oldest instruction is an L2 miss (the
            // paper's Tshared rule).
            if (n == 0 && e.l2Miss)
                ++memStall_;
            return;
        }
        ++head_;
        ++committed_;
    }
}

void
Core::fetch(Cycles now)
{
    fetchBlockedByMemory_ = false;
    bool mem_op_fetched = false;
    for (unsigned n = 0; n < params_.fetchWidth; ++n) {
        if (windowFull())
            return;
        if (pendingWritebacks_.size() >= params_.maxPendingWritebacks)
            return; // Backpressure from the write path.

        // Refill the decode state from the trace.
        if (aluCredit_ == 0 && !memPending_) {
            pendingOp_ = trace_.next();
            aluCredit_ = pendingOp_.aluBefore;
            memPending_ = pendingOp_.kind != TraceOp::Kind::None;
        }

        if (aluCredit_ > 0) {
            WindowEntry &e = at(tail_);
            e.readyAt = now + 1;
            e.memWait = false;
            e.l2Miss = false;
            ++tail_;
            --aluCredit_;
            continue;
        }

        STFM_ASSERT(memPending_, "decode state exhausted");
        if (mem_op_fetched)
            return; // At most one memory operation per cycle (Table 2).
        if (pendingOp_.dependsOnPrev && lastMissPos_ != ~0ULL &&
            lastMissPos_ >= head_ && !entryDone(lastMissPos_, now)) {
            return; // Address-dependent load: wait for the producer.
        }
        if (!issueMemOp(now)) {
            // Structural stall (MSHRs / request buffer full).
            fetchBlockedByMemory_ = true;
            return;
        }
        mem_op_fetched = true;
        memPending_ = false;
    }
}

bool
Core::issueMemOp(Cycles now)
{
    const Addr line = pendingOp_.addr & ~(params_.l1.lineBytes - 1);
    const bool is_store = pendingOp_.kind == TraceOp::Kind::Store;

    if (is_store && pendingOp_.nonTemporal) {
        // Streaming store: bypass the caches, write straight to DRAM.
        if (pendingWritebacks_.size() >= params_.maxPendingWritebacks)
            return false;
        if (memory_.canAcceptWrite(line))
            memory_.issueWrite(line, id_);
        else
            pendingWritebacks_.push_back(line);
        WindowEntry &e = at(tail_);
        e.readyAt = now + 1;
        e.memWait = false;
        e.l2Miss = false;
        ++tail_;
        return true;
    }

    if (is_store) {
        // Stores commit immediately (write buffering); the cache fill
        // happens in the background.
        if (!l2_.access(line, /*is_store=*/true)) {
            // Store fill: fetch the line, install dirty.
            const bool merged = mshr_.has(line);
            if (!merged) {
                if (mshr_.full() || !memory_.canAcceptRead(line))
                    return false;
                mshr_.allocate(line, MshrFile::kNoWaiter,
                               /*dirty_fill=*/true);
                memory_.issueRead(line, id_, /*blocking=*/false);
            } else {
                mshr_.allocate(line, MshrFile::kNoWaiter,
                               /*dirty_fill=*/true);
            }
        } else {
            l1_.access(line, /*is_store=*/false); // Keep L1 LRU warm.
        }
        WindowEntry &e = at(tail_);
        e.readyAt = now + 1;
        e.memWait = false;
        e.l2Miss = false;
        ++tail_;
        return true;
    }

    // Load path.
    WindowEntry &e = at(tail_);
    e.memWait = false;
    e.l2Miss = false;
    if (l1_.access(line, /*is_store=*/false)) {
        e.readyAt = now + params_.l1.latency;
    } else if (l2_.access(line, /*is_store=*/false)) {
        e.readyAt = now + params_.l1.latency + params_.l2.latency;
        l1_.fill(line, /*dirty=*/false); // L1 is write-through: clean.
    } else {
        // L2 miss: allocate or merge an MSHR and go to DRAM.
        const bool merged = mshr_.has(line);
        if (!merged) {
            if (mshr_.full())
                return false;
            if (!memory_.canAcceptRead(line)) {
                // Request buffer full: a wait the memory system should
                // see (it is usually full of other threads' requests).
                memory_.noteEnqueueBlocked(line, id_);
                return false;
            }
        }
        mshr_.allocate(line, tail_, /*dirty_fill=*/false);
        if (!merged)
            memory_.issueRead(line, id_, /*blocking=*/true);
        e.memWait = true;
        e.l2Miss = true;
        e.readyAt = kNever;
        lastMissPos_ = tail_;
    }
    lastLoadPos_ = tail_;
    ++tail_;
    return true;
}

void
Core::onReadComplete(Addr line_addr, Cycles now)
{
    bool dirty = false;
    wakeScratch_.clear();
    if (!mshr_.complete(line_addr, wakeScratch_, dirty))
        return; // Spurious (e.g. after a reset); ignore.
    handleFill(line_addr, dirty, now);
    for (const std::uint64_t pos : wakeScratch_) {
        if (pos < head_ || pos >= tail_)
            continue; // The waiter is gone (should not happen for loads).
        WindowEntry &e = at(pos);
        e.memWait = false;
        // The fixed controller/interconnect overhead is charged on the
        // return path.
        e.readyAt = now + params_.dramOverhead;
    }
}

void
Core::handleFill(Addr line_addr, bool dirty, Cycles now)
{
    (void)now;
    const Eviction victim = l2_.fill(line_addr, dirty);
    if (victim.valid) {
        l1_.invalidate(victim.addr); // Maintain inclusion.
        if (victim.dirty)
            pendingWritebacks_.push_back(victim.addr);
    }
    l1_.fill(line_addr, /*dirty=*/false);
}

Cycles
Core::runAhead(Cycles now, Cycles end, std::uint64_t commit_cap)
{
    // Eligibility, all O(1): no buffered writeback (drain traffic
    // interacts with controller write capacity every cycle), no
    // memory-blocked fetch retry (that path has a per-cycle policy
    // side effect, noteEnqueueBlocked), and a fetch width the slot-undo
    // buffer can hold. Outstanding misses do NOT disqualify: executing
    // in their shadow is core-local as long as every burst cycle stays
    // stall-free (checked per cycle below) and no completion can land
    // inside the burst — which the caller guarantees by capping @p end
    // at the memory system's next interesting cycle while
    // mshrInUse() != 0 (see the header contract).
    if (!pendingWritebacks_.empty() || fetchBlockedByMemory_ ||
        params_.fetchWidth > kMaxBurstFetch)
        return now;

    Cycles c = now;
    // `committed_ + commitWidth < commit_cap` keeps every executed
    // cycle strictly below the cap, so the caller's threshold scan can
    // never fire early off run-ahead state; the crossing cycle itself
    // runs through the normal tick() path.
    while (c < end && committed_ + params_.commitWidth < commit_cap) {
        // Stall cycles stay outside bursts: when the oldest instruction
        // is a blocked L2 miss (in flight, merged, or still paying its
        // DRAM return-path overhead), this cycle would increment the
        // memory-stall counter — hand it back to the normal tick()
        // path, whose quiescence machinery accounts it exactly.
        if (head_ != tail_) {
            const WindowEntry &h = window_[head_ & windowMask_];
            if (h.l2Miss && (h.memWait || h.readyAt > c))
                return c;
        }
        // Steady-state ALU stretch: with symmetric widths, a window
        // holding exactly F entries that all commit this cycle, and >= F
        // banked ALU credits, the next n cycles each commit F entries
        // and fetch F ALU slots — a closed-form state update. Only the
        // F slots live at the end survive (everything in between is
        // fetched and committed inside the batch), so the whole stretch
        // reduces to bumping the counters and writing those F slots,
        // exactly as a cycle-by-cycle run would leave them. ALU slots
        // never touch the caches, the trace decode state, lastLoadPos_,
        // or lastMissPos_, and the cap guard below keeps every executed
        // cycle strictly under commit_cap, matching the per-cycle guard.
        const unsigned F = params_.commitWidth;
        if (params_.fetchWidth == F && tail_ - head_ == F &&
            aluCredit_ >= F) {
            bool all_ready = true;
            for (unsigned n = 0; n < F; ++n) {
                if (window_[(head_ + n) & windowMask_].readyAt > c) {
                    all_ready = false;
                    break;
                }
            }
            if (all_ready) {
                std::uint64_t n = std::min<std::uint64_t>(
                    aluCredit_ / F, end - c);
                // Per-cycle guard: committed_ + jF + F < cap for every
                // executed cycle j in [0, n).
                const std::uint64_t cap_room =
                    (commit_cap - committed_ - 1) / F;
                n = std::min(n, cap_room);
                if (n > 0) {
                    head_ += n * F;
                    tail_ += n * F;
                    committed_ += n * F;
                    aluCredit_ -= static_cast<std::uint32_t>(n * F);
                    c += n;
                    // The F live entries were fetched at cycle c - 1.
                    for (unsigned k = 0; k < F; ++k) {
                        WindowEntry &e =
                            window_[(tail_ - F + k) & windowMask_];
                        e.readyAt = c;
                        e.memWait = false;
                        e.l2Miss = false;
                    }
                    continue;
                }
            }
        }
        const std::uint64_t head0 = head_;
        const std::uint64_t tail0 = tail_;
        const std::uint64_t committed0 = committed_;

        // Commit replica. The head is never a blocked L2 miss (checked
        // at the top of the cycle; memWait implies l2Miss), so — unlike
        // commit() — no memory stall can accrue.
        for (unsigned n = 0; n < params_.commitWidth; ++n) {
            if (head_ == tail_ ||
                window_[head_ & windowMask_].readyAt > c)
                break;
            ++head_;
            ++committed_;
        }

        // Fetch replica. Mirrors fetch()/issueMemOp() slot for slot,
        // except the memory operation probes the caches first and the
        // whole cycle is rolled back if it would leave the core (the
        // pre-abort slots are ALU-only, so the rollback just returns
        // their anonymous credits; trace decode state stays put, which
        // is exactly where a cycle-by-cycle rerun would land).
        //
        // Slot writes must be undone too: once the commit replica's
        // head advance is rolled back, a new tail position can alias a
        // still-live slot (pos and pos - windowSize share backing), so
        // each written slot's prior contents are saved. The aborting
        // memory op itself writes nothing before the abort decision,
        // leaving only the ALU slots (at most fetchWidth per cycle).
        bool aborted = false;
        bool mem_op_fetched = false;
        std::uint64_t dep_block = ~0ULL;
        unsigned alu_taken = 0;
        WindowEntry slot_undo[kMaxBurstFetch];
        for (unsigned n = 0; n < params_.fetchWidth; ++n) {
            if (windowFull())
                break;
            if (aluCredit_ == 0 && !memPending_) {
                pendingOp_ = trace_.next();
                aluCredit_ = pendingOp_.aluBefore;
                memPending_ = pendingOp_.kind != TraceOp::Kind::None;
            }
            if (aluCredit_ > 0) {
                WindowEntry &e = window_[tail_ & windowMask_];
                slot_undo[alu_taken] = e;
                e.readyAt = c + 1;
                e.memWait = false;
                e.l2Miss = false;
                ++tail_;
                --aluCredit_;
                ++alu_taken;
                continue;
            }
            if (mem_op_fetched)
                break; // At most one memory operation per cycle.
            if (pendingOp_.dependsOnPrev && lastMissPos_ != ~0ULL &&
                lastMissPos_ >= head_ && !entryDone(lastMissPos_, c)) {
                dep_block = lastMissPos_;
                break; // Wait for the producer (no memory touch).
            }

            const Addr line =
                pendingOp_.addr & ~(params_.l1.lineBytes - 1);
            if (pendingOp_.kind == TraceOp::Kind::Store) {
                if (pendingOp_.nonTemporal) {
                    aborted = true; // Streaming write: leaves the core.
                    break;
                }
                if (l2_.probe(line)) {
                    l2_.access(line, /*is_store=*/true);
                    l1_.access(line, /*is_store=*/false); // LRU warm.
                } else if (mshr_.has(line)) {
                    // Store fill coalescing into an outstanding miss
                    // stays core-local: issueMemOp() sends no request
                    // on a merge, the entry just turns dirty. Replay
                    // its exact access sequence (the L2 miss counts).
                    l2_.access(line, /*is_store=*/true);
                    mshr_.allocate(line, MshrFile::kNoWaiter,
                                   /*dirty_fill=*/true);
                } else {
                    aborted = true; // New store fill: leaves the core.
                    break;
                }
                WindowEntry &e = window_[tail_ & windowMask_];
                e.readyAt = c + 1;
                e.memWait = false;
                e.l2Miss = false;
            } else {
                // Probe first (no counters, no slot writes); once the
                // cycle is known to stay core-local, replay the exact
                // access sequence of issueMemOp() so hit/miss counters
                // match a cycle-by-cycle run. The aborted case bumps
                // nothing here — the rerun through tick() bumps once.
                WindowEntry &e = window_[tail_ & windowMask_];
                if (l1_.probe(line)) {
                    l1_.access(line, /*is_store=*/false);
                    e.readyAt = c + params_.l1.latency;
                    e.memWait = false;
                    e.l2Miss = false;
                } else if (l2_.probe(line)) {
                    l1_.access(line, /*is_store=*/false); // Miss count.
                    l2_.access(line, /*is_store=*/false);
                    e.readyAt =
                        c + params_.l1.latency + params_.l2.latency;
                    e.memWait = false;
                    e.l2Miss = false;
                    l1_.fill(line, /*dirty=*/false);
                } else if (mshr_.has(line)) {
                    // Merged load: coalesces into the outstanding miss
                    // without touching the memory system — exactly
                    // issueMemOp()'s merge path (both cache misses
                    // count; allocate() adds this waiter and bumps no
                    // allocation). Woken by the eventual completion,
                    // which the end cap keeps outside this burst.
                    l1_.access(line, /*is_store=*/false);
                    l2_.access(line, /*is_store=*/false);
                    mshr_.allocate(line, tail_, /*dirty_fill=*/false);
                    e.memWait = true;
                    e.l2Miss = true;
                    e.readyAt = kNever;
                    lastMissPos_ = tail_;
                } else {
                    aborted = true; // New L2 miss: needs DRAM.
                    break;
                }
                lastLoadPos_ = tail_;
            }
            ++tail_;
            mem_op_fetched = true;
            memPending_ = false;
        }

        if (aborted) {
            // Only ALU slots can precede the aborting memory op (a
            // merge never aborts, so no MSHR state needs undoing).
            while (alu_taken > 0) {
                --alu_taken;
                --tail_;
                window_[tail_ & windowMask_] = slot_undo[alu_taken];
                ++aluCredit_;
            }
            head_ = head0;
            tail_ = tail0;
            committed_ = committed0;
            return c;
        }

        if (committed_ == committed0 && tail_ == tail0) {
            // Idle cycle: nothing commits or fetches until some
            // readyAt arrives, and idle cycles in a burst are
            // stall-free no-ops (a stalling head ended the burst
            // above). Jump straight to the earliest unblocking time;
            // if every blocker waits on DRAM, end the burst — only an
            // external completion can revive the core.
            Cycles unblock = kNever;
            if (head_ != tail_) {
                const WindowEntry &h = window_[head_ & windowMask_];
                if (!h.memWait)
                    unblock = h.readyAt;
            }
            if (dep_block != ~0ULL) {
                const WindowEntry &p =
                    window_[dep_block & windowMask_];
                if (!p.memWait)
                    unblock = std::min(unblock, p.readyAt);
            }
            if (unblock == kNever)
                return c;
            c = std::min(unblock, end);
            continue;
        }
        ++c;
    }
    return c;
}

bool
Core::drainWritebacks()
{
    bool drained = false;
    while (!pendingWritebacks_.empty() &&
           memory_.canAcceptWrite(pendingWritebacks_.front())) {
        memory_.issueWrite(pendingWritebacks_.front(), id_);
        pendingWritebacks_.pop_front();
        drained = true;
    }
    return drained;
}

} // namespace stfm
