/**
 * @file
 * Miss-status holding registers (MSHRs).
 *
 * Track outstanding L2 misses per core (64 in the baseline, Table 2).
 * Multiple loads (and store fills) to the same line coalesce into one
 * entry and thus one DRAM request; the waiting instruction-window
 * positions are woken together when the data returns.
 */

#ifndef STFM_CPU_MSHR_HH
#define STFM_CPU_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace stfm
{

class MshrFile
{
  public:
    explicit MshrFile(unsigned entries);

    /** Outcome of a lookup/allocate attempt. */
    enum class Result
    {
        Allocated, ///< New entry created; caller must send a request.
        Merged,    ///< Coalesced with an existing miss to the line.
        Full,      ///< No free entry; the access must retry.
    };

    /**
     * Register a miss to @p line_addr. If @p window_pos is not
     * kNoWaiter, the instruction at that window position waits for the
     * fill. @p dirty_fill marks the line dirty on arrival (store fill).
     */
    Result allocate(Addr line_addr, std::uint64_t window_pos,
                    bool dirty_fill);

    static constexpr std::uint64_t kNoWaiter = ~0ULL;

    /**
     * Data for @p line_addr arrived: releases the entry.
     * @param[out] waiters   Window positions to wake.
     * @param[out] dirty     True if the fill must install dirty.
     * @return false if no entry matches (spurious completion).
     */
    bool complete(Addr line_addr, std::vector<std::uint64_t> &waiters,
                  bool &dirty);

    /** Is there already an outstanding miss for @p line_addr? */
    bool has(Addr line_addr) const;

    bool full() const { return entries_.size() == capacity_; }
    unsigned inUse() const
    {
        return static_cast<unsigned>(entries_.size());
    }
    /** Number of distinct misses allocated (DRAM demand requests). */
    std::uint64_t allocations() const { return allocations_; }

  private:
    struct Entry
    {
        bool dirtyFill = false;
        std::vector<std::uint64_t> waiters;
    };

    /** Outstanding misses keyed by line address. MSHR identity is
     *  architecturally invisible (only the line and its waiters
     *  matter), so an associative map is an exact model. */
    std::unordered_map<Addr, Entry> entries_;
    std::size_t capacity_;
    std::uint64_t allocations_ = 0;
};

} // namespace stfm

#endif // STFM_CPU_MSHR_HH
