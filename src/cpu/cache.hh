/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used for the private per-core L1 (32 KB, 4-way, write-through to L2)
 * and L2 (512 KB, 8-way, write-back) of the paper's Table 2. The model
 * tracks tags, valid and dirty bits only — data never flows through the
 * simulator. Latencies are applied by the core, not here.
 */

#ifndef STFM_CPU_CACHE_HH
#define STFM_CPU_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace stfm
{

/** Geometry of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 4;
    std::uint64_t lineBytes = 64;
    /** Access latency in CPU cycles (applied by the core). */
    Cycles latency = 2;
};

/** Outcome of a fill: whether a dirty victim needs writing back. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr addr = 0;
};

class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on a hit, update LRU and (for stores) the dirty
     * bit. Misses change nothing — allocation happens via fill().
     * @return true on hit.
     */
    bool access(Addr addr, bool is_store);

    /** Non-destructive lookup (no LRU update). */
    bool probe(Addr addr) const;

    /**
     * Allocate the line for @p addr, evicting the LRU way.
     * @param dirty Install the line already dirty (store fill).
     * @return the evicted victim, if any.
     */
    Eviction fill(Addr addr, bool dirty);

    /** Drop the line if present (inclusion maintenance). */
    void invalidate(Addr addr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return sets_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    Line *find(Addr addr);
    const Line *find(Addr addr) const;
    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr rebuild(Addr tag, std::uint64_t set) const;

    CacheParams params_;
    unsigned sets_;
    unsigned lineShift_;
    std::vector<Line> lines_; // sets_ * ways, row-major by set
    std::uint64_t useCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace stfm

#endif // STFM_CPU_CACHE_HH
