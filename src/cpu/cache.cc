#include "cpu/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace stfm
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    STFM_ASSERT(params.lineBytes > 0 &&
                    std::has_single_bit(params.lineBytes),
                "line size must be a power of two");
    STFM_ASSERT(params.ways > 0, "cache needs at least one way");
    const std::uint64_t lines = params.sizeBytes / params.lineBytes;
    STFM_ASSERT(lines % params.ways == 0, "size/ways mismatch");
    sets_ = static_cast<unsigned>(lines / params.ways);
    STFM_ASSERT(sets_ > 0 && std::has_single_bit(std::uint64_t{sets_}),
                "set count must be a power of two");
    lineShift_ = static_cast<unsigned>(std::countr_zero(params.lineBytes));
    lines_.resize(static_cast<std::size_t>(sets_) * params.ways);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (sets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_ >> std::countr_zero(std::uint64_t{sets_});
}

Addr
Cache::rebuild(Addr tag, std::uint64_t set) const
{
    return ((tag << std::countr_zero(std::uint64_t{sets_})) | set)
           << lineShift_;
}

Cache::Line *
Cache::find(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

bool
Cache::access(Addr addr, bool is_store)
{
    if (Line *line = find(addr)) {
        line->lastUse = ++useCounter_;
        if (is_store)
            line->dirty = true;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

Eviction
Cache::fill(Addr addr, bool dirty)
{
    const std::uint64_t set = setIndex(addr);
    Line *base = &lines_[set * params_.ways];

    // Re-fill of a resident line just updates state.
    if (Line *line = find(addr)) {
        line->dirty |= dirty;
        line->lastUse = ++useCounter_;
        return {};
    }

    // Pick an invalid way, else the LRU way.
    Line *victim = &base[0];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    Eviction out;
    if (victim->valid) {
        out.valid = true;
        out.dirty = victim->dirty;
        out.addr = rebuild(victim->tag, set);
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tagOf(addr);
    victim->lastUse = ++useCounter_;
    return out;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = find(addr))
        line->valid = false;
}

} // namespace stfm
