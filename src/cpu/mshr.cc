#include "cpu/mshr.hh"

#include "common/logging.hh"

namespace stfm
{

MshrFile::MshrFile(unsigned entries) : capacity_(entries)
{
    STFM_ASSERT(entries > 0, "need at least one MSHR");
    entries_.reserve(entries);
}

MshrFile::Result
MshrFile::allocate(Addr line_addr, std::uint64_t window_pos,
                   bool dirty_fill)
{
    const auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
        if (window_pos != kNoWaiter)
            it->second.waiters.push_back(window_pos);
        it->second.dirtyFill |= dirty_fill;
        return Result::Merged;
    }
    if (full())
        return Result::Full;

    Entry &entry = entries_[line_addr];
    entry.dirtyFill = dirty_fill;
    if (window_pos != kNoWaiter)
        entry.waiters.push_back(window_pos);
    ++allocations_;
    return Result::Allocated;
}

bool
MshrFile::has(Addr line_addr) const
{
    return entries_.find(line_addr) != entries_.end();
}

bool
MshrFile::complete(Addr line_addr, std::vector<std::uint64_t> &waiters,
                   bool &dirty)
{
    const auto it = entries_.find(line_addr);
    if (it == entries_.end())
        return false;
    waiters = std::move(it->second.waiters);
    dirty = it->second.dirtyFill;
    entries_.erase(it);
    return true;
}

} // namespace stfm
