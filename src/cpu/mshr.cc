#include "cpu/mshr.hh"

#include "common/logging.hh"

namespace stfm
{

MshrFile::MshrFile(unsigned entries) : entries_(entries)
{
    STFM_ASSERT(entries > 0, "need at least one MSHR");
}

MshrFile::Result
MshrFile::allocate(Addr line_addr, std::uint64_t window_pos,
                   bool dirty_fill)
{
    Entry *free_entry = nullptr;
    for (auto &entry : entries_) {
        if (entry.valid && entry.lineAddr == line_addr) {
            if (window_pos != kNoWaiter)
                entry.waiters.push_back(window_pos);
            entry.dirtyFill |= dirty_fill;
            return Result::Merged;
        }
        if (!entry.valid && free_entry == nullptr)
            free_entry = &entry;
    }
    if (free_entry == nullptr)
        return Result::Full;

    free_entry->valid = true;
    free_entry->lineAddr = line_addr;
    free_entry->dirtyFill = dirty_fill;
    free_entry->waiters.clear();
    if (window_pos != kNoWaiter)
        free_entry->waiters.push_back(window_pos);
    ++used_;
    ++allocations_;
    return Result::Allocated;
}

bool
MshrFile::has(Addr line_addr) const
{
    for (const auto &entry : entries_) {
        if (entry.valid && entry.lineAddr == line_addr)
            return true;
    }
    return false;
}

bool
MshrFile::complete(Addr line_addr, std::vector<std::uint64_t> &waiters,
                   bool &dirty)
{
    for (auto &entry : entries_) {
        if (entry.valid && entry.lineAddr == line_addr) {
            waiters = std::move(entry.waiters);
            dirty = entry.dirtyFill;
            entry.valid = false;
            entry.waiters.clear();
            --used_;
            return true;
        }
    }
    return false;
}

} // namespace stfm
