/**
 * @file
 * Log-bucketed latency histogram.
 *
 * Buckets are powers of two: bucket k counts samples in [2^k, 2^(k+1)).
 * Constant memory, O(1) insert, and approximate quantiles good enough
 * for latency-distribution reporting (tail behavior is what matters for
 * starvation analysis, and factor-of-two resolution captures it).
 */

#ifndef STFM_STATS_HISTOGRAM_HH
#define STFM_STATS_HISTOGRAM_HH

#include <array>
#include <cstdint>

namespace stfm
{

class LatencyHistogram
{
  public:
    static constexpr unsigned kBuckets = 32;

    /** Record one sample. */
    void add(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Approximate p-quantile (0 < p <= 1): upper edge of the bucket
     * containing the requested rank. quantile(0.5) ~ median,
     * quantile(0.99) ~ tail latency.
     */
    std::uint64_t quantile(double p) const;

    /** Samples in bucket k, i.e. values in [2^k, 2^(k+1)). */
    std::uint64_t bucket(unsigned k) const { return buckets_[k]; }

    /** Merge another histogram into this one. */
    void merge(const LatencyHistogram &other);

    /**
     * Rebuild a histogram from previously reported state (the obs tier
     * deserializes end-of-run telemetry snapshots through this; see
     * obs/telemetry.hh latencyHistogramFromJson). @p sum is the exact
     * sample total the mean was derived from.
     */
    static LatencyHistogram
    restore(const std::array<std::uint64_t, kBuckets> &buckets,
            std::uint64_t count, std::uint64_t sum, std::uint64_t min,
            std::uint64_t max);

  private:
    static unsigned bucketOf(std::uint64_t value);

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

} // namespace stfm

#endif // STFM_STATS_HISTOGRAM_HH
