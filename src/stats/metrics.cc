#include "stats/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace stfm
{

MetricsReport
computeMetrics(const SimResult &shared,
               const std::vector<ThreadResult> &alone)
{
    STFM_ASSERT(shared.threads.size() == alone.size(),
                "alone baselines must align with shared threads");
    MetricsReport report;
    const std::size_t n = shared.threads.size();
    report.slowdowns.resize(n);
    report.relIpc.resize(n);

    double inv_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const ThreadResult &s = shared.threads[i];
        const ThreadResult &a = alone[i];

        // Guard against near-zero alone MCPI (compute-bound threads):
        // floor the baseline at a tenth of a stall cycle per kilo-instr.
        const double mcpi_alone = std::max(a.mcpi(), 1e-4);
        const double mcpi_shared = std::max(s.mcpi(), 1e-4);
        report.slowdowns[i] = mcpi_shared / mcpi_alone;

        const double ipc_alone = std::max(a.ipc(), 1e-9);
        const double rel = s.ipc() / ipc_alone;
        report.relIpc[i] = rel;
        report.weightedSpeedup += rel;
        inv_sum += 1.0 / std::max(rel, 1e-9);
        report.sumOfIpcs += s.ipc();
    }

    const auto [min_it, max_it] = std::minmax_element(
        report.slowdowns.begin(), report.slowdowns.end());
    report.unfairness =
        (*min_it > 0.0) ? (*max_it / *min_it) : kSlowdownInfinity;
    report.hmeanSpeedup = static_cast<double>(n) / inv_sum;
    return report;
}

double
geometricMean(const std::vector<double> &values)
{
    STFM_ASSERT(!values.empty(), "geometric mean of an empty set");
    double log_sum = 0.0;
    for (const double v : values) {
        STFM_ASSERT(v > 0.0, "geometric mean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace stfm
