/**
 * @file
 * Fairness and throughput metrics (Section 6.2 of the paper).
 *
 *   MemSlowdown_i = MCPI_i^shared / MCPI_i^alone
 *   Unfairness    = max_i MemSlowdown_i / min_i MemSlowdown_i
 *   Weighted Speedup = sum_i IPC_i^shared / IPC_i^alone
 *   Hmean Speedup    = N / sum_i 1 / (IPC_i^shared / IPC_i^alone)
 *   Sum of IPCs      = sum_i IPC_i^shared   (report with caution;
 *                      the paper only uses it for insight)
 *
 * The alone baseline is always measured with FR-FCFS in the same
 * memory system, regardless of the scheduler under test.
 */

#ifndef STFM_STATS_METRICS_HH
#define STFM_STATS_METRICS_HH

#include <vector>

#include "sim/results.hh"

namespace stfm
{

/** Sentinel for "perfectly unfair" (a starved thread). */
inline constexpr double kSlowdownInfinity = 1e9;

/** All Section 6.2 metrics for one workload run. */
struct MetricsReport
{
    std::vector<double> slowdowns; ///< MemSlowdown per thread.
    std::vector<double> relIpc;    ///< IPC_shared / IPC_alone per thread.
    double unfairness = 1.0;
    double weightedSpeedup = 0.0;
    double hmeanSpeedup = 0.0;
    double sumOfIpcs = 0.0;
};

/**
 * Compute the metrics of @p shared against per-thread @p alone
 * baselines (index-aligned with the shared threads).
 */
MetricsReport computeMetrics(const SimResult &shared,
                             const std::vector<ThreadResult> &alone);

/** Geometric mean of @p values (values must be positive). */
double geometricMean(const std::vector<double> &values);

} // namespace stfm

#endif // STFM_STATS_METRICS_HH
