#include "stats/summary.hh"

#include <cmath>

#include "common/logging.hh"

namespace stfm
{

void
GeoMean::add(double value)
{
    STFM_ASSERT(value > 0.0, "geometric mean needs positive values");
    logSum_ += std::log(value);
    ++count_;
}

double
GeoMean::value() const
{
    STFM_ASSERT(count_ > 0, "geometric mean of an empty set");
    return std::exp(logSum_ / static_cast<double>(count_));
}

} // namespace stfm
