/**
 * @file
 * Accumulators for averaging metrics over workload sweeps (the GMEAN
 * columns of Figures 9, 11 and 12 and Table 5).
 */

#ifndef STFM_STATS_SUMMARY_HH
#define STFM_STATS_SUMMARY_HH

#include <vector>

#include "stats/metrics.hh"

namespace stfm
{

/** Streaming geometric-mean accumulator. */
class GeoMean
{
  public:
    void add(double value);
    double value() const;
    std::size_t count() const { return count_; }

  private:
    double logSum_ = 0.0;
    std::size_t count_ = 0;
};

/** Per-policy aggregate over a workload sweep. */
struct SweepSummary
{
    GeoMean unfairness;
    GeoMean weightedSpeedup;
    GeoMean hmeanSpeedup;
    GeoMean sumOfIpcs;

    void
    add(const MetricsReport &report)
    {
        unfairness.add(report.unfairness);
        weightedSpeedup.add(report.weightedSpeedup);
        hmeanSpeedup.add(report.hmeanSpeedup);
        sumOfIpcs.add(report.sumOfIpcs);
    }
};

} // namespace stfm

#endif // STFM_STATS_SUMMARY_HH
