#include "stats/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace stfm
{

unsigned
LatencyHistogram::bucketOf(std::uint64_t value)
{
    if (value == 0)
        return 0;
    const unsigned k = 63 - static_cast<unsigned>(std::countl_zero(value));
    return std::min(k, kBuckets - 1);
}

void
LatencyHistogram::add(std::uint64_t value)
{
    ++buckets_[bucketOf(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
LatencyHistogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / count_ : 0.0;
}

std::uint64_t
LatencyHistogram::quantile(double p) const
{
    STFM_ASSERT(p > 0.0 && p <= 1.0, "quantile out of range");
    if (count_ == 0)
        return 0;
    // Ceiling rank: with 10 samples, p99 must land on the 10th (the
    // tail outlier), not the 9th.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (unsigned k = 0; k < kBuckets; ++k) {
        seen += buckets_[k];
        if (seen >= rank && buckets_[k] > 0)
            return std::min<std::uint64_t>((2ULL << k) - 1, max_);
    }
    return max_;
}

LatencyHistogram
LatencyHistogram::restore(
    const std::array<std::uint64_t, kBuckets> &buckets,
    std::uint64_t count, std::uint64_t sum, std::uint64_t min,
    std::uint64_t max)
{
    std::uint64_t total = 0;
    for (const std::uint64_t n : buckets)
        total += n;
    STFM_ASSERT(total == count, "histogram bucket sum != count");
    LatencyHistogram hist;
    if (count == 0)
        return hist;
    hist.buckets_ = buckets;
    hist.count_ = count;
    hist.sum_ = sum;
    hist.min_ = min;
    hist.max_ = max;
    return hist;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (unsigned k = 0; k < kBuckets; ++k)
        buckets_[k] += other.buckets_[k];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

} // namespace stfm
