/**
 * @file
 * Trace recording and replay.
 *
 * `TraceRecorder` tees any TraceSource to a portable text format (one
 * op per line); `RecordedTrace` replays such a file, looping forever
 * (traces are infinite streams by contract). This enables
 * reproducible experiment sharing without shipping the generator
 * configuration, and lets externally produced traces (e.g. converted
 * Pin/DynamoRIO output) drive the simulator.
 *
 * Format: one op per line,
 *
 *   <aluBefore> <kind:N|L|S> <dependsOnPrev:0|1> <nonTemporal:0|1> <addr-hex>
 *
 * Lines starting with '#' are comments.
 */

#ifndef STFM_TRACE_RECORDED_HH
#define STFM_TRACE_RECORDED_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace stfm
{

/** Pass-through TraceSource that writes every op to a stream. */
class TraceRecorder : public TraceSource
{
  public:
    /**
     * @param inner Source being recorded (not owned).
     * @param out   Destination stream (not owned; must outlive this).
     */
    TraceRecorder(TraceSource &inner, std::ostream &out);

    TraceOp next() override;

    /** Ops recorded so far. */
    std::uint64_t recorded() const { return recorded_; }

    /** Serialize one op into the line format. */
    static std::string formatOp(const TraceOp &op);

  private:
    TraceSource &inner_;
    std::ostream &out_;
    std::uint64_t recorded_ = 0;
};

/** Replays a recorded trace, looping when it reaches the end. */
class RecordedTrace : public TraceSource
{
  public:
    /** Parse from a stream; throws via fatal() on malformed input. */
    explicit RecordedTrace(std::istream &in);
    /** Construct directly from ops (for tests / programmatic use). */
    explicit RecordedTrace(std::vector<TraceOp> ops);

    TraceOp next() override;

    std::size_t size() const { return ops_.size(); }

    /** Parse a single line; returns false for blank/comment lines. */
    static bool parseLine(const std::string &line, TraceOp &op);

  private:
    std::vector<TraceOp> ops_;
    std::size_t cursor_ = 0;
};

} // namespace stfm

#endif // STFM_TRACE_RECORDED_HH
