/**
 * @file
 * The instruction-trace abstraction feeding each core.
 *
 * A trace is an infinite stream of TraceOps. Each op contributes
 * `aluBefore` plain single-cycle instructions followed (for Load/Store
 * kinds) by one memory instruction. Kind::None ops model pure-compute /
 * idle phases (the bursty behavior behind NFQ's idleness problem).
 *
 * `dependsOnPrev` marks a load whose address depends on the previous
 * load (pointer chasing); the core may not issue it until that load
 * completes, which destroys memory-level parallelism exactly the way
 * low-MLP applications like omnetpp do.
 */

#ifndef STFM_TRACE_TRACE_HH
#define STFM_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace stfm
{

struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        None,  ///< aluBefore plain instructions, no memory access.
        Load,  ///< ... followed by a load from `addr`.
        Store, ///< ... followed by a store to `addr`.
    };

    std::uint32_t aluBefore = 0;
    Kind kind = Kind::None;
    bool dependsOnPrev = false;
    /**
     * Non-temporal (streaming) store: bypasses the caches and goes
     * straight to the DRAM write queue, hitting the row its companion
     * load just opened. Streaming workloads (libquantum, lbm, ...)
     * write this way; their store traffic reinforces their row-buffer
     * locality instead of scattering it through eviction writebacks.
     */
    bool nonTemporal = false;
    Addr addr = 0;
};

/** A line to pre-install during cache warmup. */
struct WarmLine
{
    Addr addr = 0;
    bool dirty = false;
};

/** Infinite instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    virtual TraceOp next() = 0;

    /**
     * Produce up to @p lines cache lines representing the working set
     * the workload touched *before* the simulated window, used to
     * pre-warm the L2 so capacity evictions (and thus writeback
     * traffic) are in steady state from the first measured cycle.
     * Default: no footprint (cold caches).
     */
    virtual void
    warmupFootprint(std::size_t lines, std::vector<WarmLine> &out)
    {
        (void)lines;
        out.clear();
    }
};

} // namespace stfm

#endif // STFM_TRACE_TRACE_HH
