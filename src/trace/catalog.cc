#include "trace/catalog.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace stfm
{

namespace
{

/**
 * Build one catalog entry. The generator knobs (burst duty, streams,
 * bank spread, store/dependent fractions) come from the paper's prose:
 * e.g. mcf "continuously generates memory requests" while libquantum /
 * GemsFDTD / astar are bursty (Section 7.2.1); dealII's and astar's
 * accesses are "heavily skewed to only two DRAM banks" (footnote 16,
 * Section 7.2.1); omnetpp relies on bank parallelism that NFQ destroys
 * (Section 7.2.3).
 */
BenchmarkProfile
make(std::string name, const char *type, double mcpi, double mpki,
     double row_hit, int category, double duty, unsigned streams,
     unsigned spread, double store_frac, double dep_frac)
{
    BenchmarkProfile p;
    p.name = std::move(name);
    p.type = type;
    p.paperMcpi = mcpi;
    p.paperMpki = mpki;
    p.paperRowHit = row_hit;
    p.category = category;
    p.trace.mpki = mpki;
    p.trace.rowBufferHitRate = row_hit;
    p.trace.burstDuty = duty;
    p.trace.burstLength = static_cast<unsigned>(
        std::clamp(mpki * 4.0, 4.0, 128.0));
    p.trace.streamCount = streams;
    p.trace.bankSpread = spread;
    p.trace.storeFraction = store_frac;
    p.trace.dependentFraction = dep_frac;
    p.trace.hitAccessesPer1k = 30.0;
    return p;
}

} // namespace

const std::vector<BenchmarkProfile> &
benchmarkCatalog()
{
    // Columns: name, type, MCPI, L2 MPKI, RB hit rate, category,
    //          burst duty, streams, bank spread, store frac, dep frac.
    // MCPI/MPKI/RB-hit are the published Table 3 numbers.
    static const std::vector<BenchmarkProfile> catalog = {
        make("mcf",        "INT", 10.02, 101.06, 0.419, 2, 1.00, 6, 0, 0.25, 0.55),
        make("libquantum", "INT",  9.10,  50.00, 0.984, 3, 0.80, 8, 0, 0.60, 0.00),
        make("leslie3d",   "FP",   7.82,  36.21, 0.825, 3, 0.80, 8, 0, 0.50, 0.00),
        make("soplex",     "FP",   7.48,  45.66, 0.639, 3, 0.80, 6, 0, 0.50, 0.10),
        make("milc",       "FP",   6.74,  51.05, 0.9177, 3, 0.80, 8, 0, 0.50, 0.00),
        make("lbm",        "FP",   6.44,  43.46, 0.546, 3, 0.80, 8, 0, 0.60, 0.00),
        make("sphinx3",    "FP",   5.49,  24.97, 0.578, 3, 0.70, 6, 0, 0.40, 0.20),
        make("GemsFDTD",   "FP",   3.87,  17.62, 0.002, 2, 0.50, 6, 0, 0.40, 1.00),
        make("cactusADM",  "FP",   3.53,  14.66, 0.020, 2, 0.50, 6, 0, 0.30, 1.00),
        make("xalancbmk",  "INT",  3.18,  21.66, 0.548, 3, 0.70, 4, 0, 0.35, 0.30),
        make("astar",      "INT",  2.02,   9.25, 0.448, 0, 0.50, 2, 2, 0.20, 1.00),
        make("omnetpp",    "INT",  1.78,  13.83, 0.219, 0, 0.70, 2, 4, 0.20, 0.60),
        make("hmmer",      "INT",  1.52,   5.82, 0.327, 0, 0.35, 4, 0, 0.25, 1.00),
        make("h264ref",    "INT",  0.71,   3.22, 0.653, 1, 0.25, 4, 0, 0.25, 1.00),
        make("bzip2",      "INT",  0.55,   3.55, 0.414, 0, 0.30, 4, 0, 0.30, 0.95),
        make("gromacs",    "FP",   0.37,   1.26, 0.410, 1, 0.30, 4, 0, 0.25, 0.95),
        make("gobmk",      "INT",  0.19,   0.94, 0.568, 1, 0.30, 4, 0, 0.25, 0.95),
        make("dealII",     "FP",   0.16,   0.86, 0.902, 1, 0.30, 2, 2, 0.25, 0.90),
        make("wrf",        "FP",   0.14,   0.77, 0.769, 1, 0.30, 4, 0, 0.25, 0.90),
        make("sjeng",      "INT",  0.12,   0.51, 0.234, 0, 0.30, 4, 0, 0.25, 0.95),
        make("namd",       "FP",   0.11,   0.54, 0.726, 1, 0.30, 4, 0, 0.25, 0.90),
        make("tonto",      "FP",   0.07,   0.39, 0.345, 0, 0.30, 4, 0, 0.25, 0.95),
        make("gcc",        "INT",  0.07,   0.42, 0.586, 1, 0.30, 4, 0, 0.25, 0.95),
        make("calculix",   "FP",   0.05,   0.29, 0.718, 1, 0.30, 4, 0, 0.25, 0.90),
        make("perlbench",  "INT",  0.03,   0.20, 0.698, 1, 0.30, 4, 0, 0.25, 0.95),
        make("povray",     "FP",   0.01,   0.09, 0.766, 1, 0.30, 4, 0, 0.25, 0.90),
    };
    return catalog;
}

const std::vector<BenchmarkProfile> &
desktopCatalog()
{
    // Table 4: Windows desktop applications (traced with iDNA in the
    // paper). iexplorer and instant-messenger concentrate their
    // accesses on two and three banks respectively (Section 7.4).
    static const std::vector<BenchmarkProfile> catalog = {
        make("matlab",            "FP", 11.06, 60.26, 0.978, 3, 0.90, 8, 0, 0.60, 0.00),
        make("instant-messenger", "INT", 1.56,  7.72, 0.228, 0, 0.30, 3, 3, 0.25, 1.00),
        make("xml-parser",        "INT", 8.56, 53.46, 0.958, 3, 0.85, 8, 0, 0.50, 0.00),
        make("iexplorer",         "INT", 0.55,  3.55, 0.414, 0, 0.30, 2, 2, 0.25, 0.85),
    };
    return catalog;
}

const BenchmarkProfile &
findBenchmark(const std::string &name)
{
    for (const auto &profile : benchmarkCatalog()) {
        if (profile.name == name)
            return profile;
    }
    for (const auto &profile : desktopCatalog()) {
        if (profile.name == name)
            return profile;
    }
    // Recoverable: a harness sweep catches this, records the failed
    // workload, and keeps going (see harness/runner.cc).
    throw SimError(
        formatMessage("unknown benchmark '%s'", name.c_str()));
}

bool
isIntensive(const BenchmarkProfile &profile)
{
    return profile.category >= 2;
}

std::uint64_t
benchmarkSeed(const std::string &name)
{
    // FNV-1a over the name, stirred through splitmix64.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return splitmix64(hash);
}

std::unique_ptr<TraceSource>
makeBenchmarkTrace(const BenchmarkProfile &profile,
                   const AddressMapping &mapping, ThreadId thread,
                   unsigned num_threads, std::uint64_t seed_salt)
{
    // Salt 0 preserves the historical per-benchmark seed so memoized
    // alone-run baselines stay valid; retries pass a nonzero salt to
    // reseed the trace stream.
    const std::uint64_t base = benchmarkSeed(profile.name);
    return std::make_unique<SyntheticTraceGenerator>(
        profile.trace, mapping, thread, num_threads,
        seed_salt == 0 ? base : combineSeeds(base, seed_salt));
}

} // namespace stfm
