/**
 * @file
 * Synthetic trace generator.
 *
 * Produces deterministic, infinite instruction streams whose
 * DRAM-visible behavior is controlled along exactly the axes the paper
 * identifies as scheduler-relevant (Section 7.2 summary):
 *
 *  - memory intensiveness: L2 misses per kilo-instruction;
 *  - row-buffer locality: consecutive-line run length within a row;
 *  - bank access balance: how many banks the miss streams touch;
 *  - burstiness: memory-active bursts separated by compute phases
 *    (the trigger of NFQ's idleness problem);
 *  - memory-level parallelism: number of concurrent miss streams and
 *    the fraction of address-dependent (serialized) misses.
 *
 * The generator works in DRAM coordinates and uses
 * AddressMapping::compose() to emit addresses, so a profile's bank
 * spread and row locality hold for any mapping scheme or geometry.
 * Threads are confined to disjoint row regions (multiprogrammed
 * address spaces) while sharing all banks.
 */

#ifndef STFM_TRACE_GENERATOR_HH
#define STFM_TRACE_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/address_mapping.hh"
#include "trace/trace.hh"

namespace stfm
{

/** Workload knobs for one synthetic benchmark. */
struct TraceProfile
{
    /** Target L2 misses per 1000 instructions. */
    double mpki = 10.0;
    /** Target row-buffer hit rate when running alone. */
    double rowBufferHitRate = 0.5;
    /** Fraction of instruction time spent in memory-active bursts. */
    double burstDuty = 1.0;
    /** Misses per memory burst. */
    unsigned burstLength = 64;
    /** Concurrent miss streams (bank-level parallelism). */
    unsigned streamCount = 4;
    /** Limit the streams to this many banks (0 = all banks). */
    unsigned bankSpread = 0;
    /** Fraction of misses that are stores (dirty fills -> writebacks). */
    double storeFraction = 0.25;
    /**
     * Model stores as non-temporal streaming writes (read-modify-write
     * on the same line as the preceding load) instead of
     * write-allocate stores that surface later as eviction writebacks.
     */
    bool streamingStores = false;
    /** Fraction of loads whose address depends on the previous load. */
    double dependentFraction = 0.0;
    /** Cache-hitting loads per 1000 instructions (background traffic). */
    double hitAccessesPer1k = 30.0;
};

class SyntheticTraceGenerator : public TraceSource
{
  public:
    /**
     * @param profile      Workload characteristics.
     * @param mapping      Geometry of the memory system under test.
     * @param thread       The hardware thread this trace runs on
     *                     (selects the private row region).
     * @param num_threads  Total threads sharing the system.
     * @param seed         Stream seed; also seeds the bank-subset choice
     *                     for profiles with limited bank spread.
     */
    SyntheticTraceGenerator(const TraceProfile &profile,
                            const AddressMapping &mapping, ThreadId thread,
                            unsigned num_threads, std::uint64_t seed);

    TraceOp next() override;

    /** Lines "behind" each stream's cursor, dirty per storeFraction. */
    void warmupFootprint(std::size_t lines,
                         std::vector<WarmLine> &out) override;

    /** Derived per-burst-cycle idle instructions (for tests). */
    std::uint64_t idleInstructionsPerBurst() const { return idleInstr_; }
    /** Derived intra-burst gap between misses (instructions). */
    std::uint64_t gapInstructions() const { return gapInstr_; }

  private:
    struct Stream
    {
        unsigned globalBank = 0;
        RowId row = 0;
        ColumnId column = 0;
        unsigned remainingInRun = 0;
        std::uint64_t rowCursor = 0;
    };

    Addr nextMissAddress();
    Addr nextHitAddress();
    void advanceStream(Stream &stream);
    RowId regionRow(std::uint64_t cursor) const;

    TraceProfile profile_;
    AddressMapping mapping_;
    ThreadId thread_;
    Rng rng_;

    std::vector<Stream> streams_;
    std::vector<unsigned> bankSet_;
    unsigned nextStream_ = 0;

    /** Row region [regionBase_, regionBase_ + regionRows_) per bank. */
    RowId regionBase_ = 0;
    std::uint64_t regionRows_ = 1;

    /** Hot set for cache-hitting accesses. */
    std::vector<Addr> hotSet_;
    std::size_t hotCursor_ = 0;

    std::uint64_t gapInstr_ = 1;
    std::uint64_t idleInstr_ = 0;
    unsigned missesLeftInBurst_ = 0;
    bool inBurst_ = true;

    double hitCarry_ = 0.0;
    unsigned pendingHits_ = 0;
    std::uint32_t hitGap_ = 1;
    bool havePendingStore_ = false;
    Addr pendingStoreAddr_ = 0;
};

} // namespace stfm

#endif // STFM_TRACE_GENERATOR_HH
