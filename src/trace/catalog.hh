/**
 * @file
 * Benchmark catalog: the 26 SPEC CPU2006 profiles of the paper's
 * Table 3 plus the 4 Windows desktop applications of Table 4.
 *
 * Each profile records the published characteristics (L2 MPKI,
 * row-buffer hit rate, intensity category) and the behavioral traits
 * the paper describes in prose (burstiness, bank-access balance,
 * memory-level parallelism). The synthetic trace generator turns a
 * profile into an address stream with those properties; the
 * `table3_characteristics` bench verifies the calibration by measuring
 * MCPI / MPKI / row-buffer hit rate of each benchmark running alone.
 */

#ifndef STFM_TRACE_CATALOG_HH
#define STFM_TRACE_CATALOG_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/generator.hh"

namespace stfm
{

/** A cataloged benchmark: identity + published stats + trace profile. */
struct BenchmarkProfile
{
    std::string name;
    const char *type = "INT"; ///< INT or FP (reporting only).
    /** Published memory cycles per instruction (reference, Table 3/4). */
    double paperMcpi = 0.0;
    /** Published L2 misses per kilo-instruction. */
    double paperMpki = 0.0;
    /** Published row-buffer hit rate. */
    double paperRowHit = 0.0;
    /** Paper category: 0/1 not intensive, 2/3 intensive; odd = high RB. */
    int category = 0;
    /** Generator knobs derived from the published characteristics. */
    TraceProfile trace;
};

/** The full catalog (SPEC first, in the paper's intensity order). */
const std::vector<BenchmarkProfile> &benchmarkCatalog();

/** The Table 4 desktop applications. */
const std::vector<BenchmarkProfile> &desktopCatalog();

/**
 * Look up a benchmark by name in both catalogs.
 * @throws SimError if the name is unknown (recoverable, so sweeps can
 *         skip a misconfigured workload instead of dying).
 */
const BenchmarkProfile &findBenchmark(const std::string &name);

/** True if the benchmark is memory-intensive (category 2 or 3). */
bool isIntensive(const BenchmarkProfile &profile);

/** Deterministic per-benchmark seed (hash of the name). */
std::uint64_t benchmarkSeed(const std::string &name);

/**
 * Build the synthetic trace of @p profile for core @p thread in a
 * system with @p num_threads cores and the given mapping.
 *
 * @param seed_salt 0 reproduces the canonical per-benchmark stream;
 *                  nonzero values reseed it (harness retry path).
 */
std::unique_ptr<TraceSource>
makeBenchmarkTrace(const BenchmarkProfile &profile,
                   const AddressMapping &mapping, ThreadId thread,
                   unsigned num_threads, std::uint64_t seed_salt = 0);

} // namespace stfm

#endif // STFM_TRACE_CATALOG_HH
