#include "trace/recorded.hh"

#include <cstdio>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace stfm
{

TraceRecorder::TraceRecorder(TraceSource &inner, std::ostream &out)
    : inner_(inner), out_(out)
{}

std::string
TraceRecorder::formatOp(const TraceOp &op)
{
    char kind = 'N';
    if (op.kind == TraceOp::Kind::Load)
        kind = 'L';
    else if (op.kind == TraceOp::Kind::Store)
        kind = 'S';
    char buf[96];
    std::snprintf(buf, sizeof buf, "%u %c %d %d %llx", op.aluBefore, kind,
                  op.dependsOnPrev ? 1 : 0, op.nonTemporal ? 1 : 0,
                  static_cast<unsigned long long>(op.addr));
    return buf;
}

TraceOp
TraceRecorder::next()
{
    const TraceOp op = inner_.next();
    out_ << formatOp(op) << '\n';
    ++recorded_;
    return op;
}

bool
RecordedTrace::parseLine(const std::string &line, TraceOp &op)
{
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    if (i >= line.size() || line[i] == '#')
        return false;

    unsigned alu = 0;
    char kind = 0;
    int dep = 0, nt = 0;
    unsigned long long addr = 0;
    if (std::sscanf(line.c_str() + i, "%u %c %d %d %llx", &alu, &kind,
                    &dep, &nt, &addr) != 5) {
        STFM_FATAL("malformed trace line");
    }
    op = TraceOp{};
    op.aluBefore = alu;
    op.dependsOnPrev = dep != 0;
    op.nonTemporal = nt != 0;
    op.addr = static_cast<Addr>(addr);
    switch (kind) {
      case 'N': op.kind = TraceOp::Kind::None; break;
      case 'L': op.kind = TraceOp::Kind::Load; break;
      case 'S': op.kind = TraceOp::Kind::Store; break;
      default: STFM_FATAL("unknown trace op kind");
    }
    return true;
}

RecordedTrace::RecordedTrace(std::istream &in)
{
    std::string line;
    TraceOp op;
    while (std::getline(in, line)) {
        if (parseLine(line, op))
            ops_.push_back(op);
    }
    STFM_ASSERT(!ops_.empty(), "recorded trace is empty");
}

RecordedTrace::RecordedTrace(std::vector<TraceOp> ops)
    : ops_(std::move(ops))
{
    STFM_ASSERT(!ops_.empty(), "recorded trace is empty");
}

TraceOp
RecordedTrace::next()
{
    const TraceOp op = ops_[cursor_];
    cursor_ = (cursor_ + 1) % ops_.size();
    return op;
}

} // namespace stfm
