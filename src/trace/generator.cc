#include "trace/generator.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace stfm
{

SyntheticTraceGenerator::SyntheticTraceGenerator(
    const TraceProfile &profile, const AddressMapping &mapping,
    ThreadId thread, unsigned num_threads, std::uint64_t seed)
    : profile_(profile), mapping_(mapping), thread_(thread),
      rng_(combineSeeds(seed, thread))
{
    STFM_ASSERT(profile.mpki > 0.0, "profile needs a positive MPKI");
    STFM_ASSERT(num_threads > 0, "need at least one thread");

    // Private row region: threads share banks but not rows.
    regionRows_ = std::max<std::uint64_t>(
        mapping_.rowsPerBank() / num_threads, 64);
    regionBase_ = static_cast<RowId>(
        (static_cast<std::uint64_t>(thread) * regionRows_) %
        mapping_.rowsPerBank());

    // Choose the bank subset. The subset is a property of the
    // *benchmark* (same seed -> same banks), not of the core it runs on.
    const unsigned total_banks =
        mapping_.channels() * mapping_.banksPerChannel();
    const unsigned spread =
        (profile.bankSpread == 0 || profile.bankSpread > total_banks)
            ? total_banks
            : profile.bankSpread;
    std::vector<unsigned> all(total_banks);
    std::iota(all.begin(), all.end(), 0u);
    Rng bank_rng(seed); // Thread-independent.
    for (unsigned i = 0; i < spread; ++i) {
        const unsigned j =
            i + static_cast<unsigned>(bank_rng.nextBelow(total_banks - i));
        std::swap(all[i], all[j]);
    }
    bankSet_.assign(all.begin(), all.begin() + spread);

    // One stream per bank at most: two streams of the same thread
    // alternating in one bank would destroy the thread's own alone-mode
    // row locality.
    const unsigned streams =
        std::max(1u, std::min(profile.streamCount, spread));
    streams_.resize(streams);
    const std::uint64_t rows_per_stream =
        std::max<std::uint64_t>(regionRows_ / streams, 8);
    for (unsigned s = 0; s < streams; ++s) {
        streams_[s].globalBank = bankSet_[s % bankSet_.size()];
        streams_[s].rowCursor =
            s * rows_per_stream + rng_.nextBelow(rows_per_stream);
        streams_[s].remainingInRun = 0;
    }

    // Burst arithmetic: T instructions contain burstLength misses;
    // the active part of the cycle occupies duty * T of them.
    const double total_instr =
        profile.burstLength * 1000.0 / profile.mpki;
    const double duty = std::clamp(profile.burstDuty, 0.05, 1.0);
    gapInstr_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(total_instr * duty / profile.burstLength)));
    const std::uint64_t active = gapInstr_ * profile.burstLength;
    idleInstr_ = total_instr > static_cast<double>(active)
                     ? static_cast<std::uint64_t>(total_instr) - active
                     : 0;

    // Hot set for cache-hitting background loads: one reserved row per
    // thread, never touched by the miss streams. Kept tiny (8 lines) so
    // every line is re-touched frequently enough to stay LRU-resident in
    // the caches — a larger set gets evicted by the miss streams' fills
    // and its DRAM re-fetches would shred the streams' row locality.
    const RowId hot_row =
        static_cast<RowId>(regionBase_ + regionRows_ - 1);
    for (unsigned i = 0; i < 8; ++i) {
        AddrDecode coords;
        coords.channel = 0;
        coords.bank = static_cast<BankId>(
            bankSet_[0] % mapping_.banksPerChannel());
        coords.row = hot_row;
        coords.column = static_cast<ColumnId>(
            i % mapping_.linesPerRow());
        hotSet_.push_back(mapping_.compose(coords));
    }

    missesLeftInBurst_ = profile.burstLength;
    inBurst_ = true;
}

RowId
SyntheticTraceGenerator::regionRow(std::uint64_t cursor) const
{
    return static_cast<RowId>(regionBase_ + (cursor % (regionRows_ - 1)));
}

void
SyntheticTraceGenerator::advanceStream(Stream &stream)
{
    stream.row = regionRow(stream.rowCursor++);
    stream.column = static_cast<ColumnId>(
        rng_.nextBelow(mapping_.linesPerRow()));

    // Sample the run length so the mean matches 1 / (1 - hit_rate).
    // For high-locality profiles the run length is stretched to
    // compensate for writeback-drain self-interference: every drained
    // writeback closes rows the read streams have open, converting
    // about 0.6 read hits per write into conflicts. The paper's
    // row-buffer hit rates are properties of the application's access
    // stream, so the compensation keeps the *measured* alone-run rate
    // on target (see DESIGN.md, substitutions).
    const double h = std::clamp(profile_.rowBufferHitRate, 0.0, 0.995);
    // Streaming stores are row-local and cause no drain damage, so no
    // compensation is needed for them.
    double conflict = 1.0 - h;
    if (h >= 0.2 && !profile_.streamingStores) {
        conflict =
            std::max(0.005, conflict - 0.7 * profile_.storeFraction);
    }
    const double target = 1.0 / conflict;
    const auto lo = static_cast<unsigned>(target);
    const double frac = target - lo;
    stream.remainingInRun = lo + (rng_.nextBool(frac) ? 1u : 0u);
    stream.remainingInRun = std::max(1u, stream.remainingInRun);
}

Addr
SyntheticTraceGenerator::nextMissAddress()
{
    Stream &stream = streams_[nextStream_];
    nextStream_ = (nextStream_ + 1) % static_cast<unsigned>(
                                          streams_.size());
    if (stream.remainingInRun == 0)
        advanceStream(stream);
    --stream.remainingInRun;

    AddrDecode coords;
    coords.channel = static_cast<ChannelId>(stream.globalBank /
                                            mapping_.banksPerChannel());
    coords.bank = static_cast<BankId>(stream.globalBank %
                                      mapping_.banksPerChannel());
    coords.row = stream.row;
    coords.column = stream.column;
    stream.column = static_cast<ColumnId>(
        (stream.column + 1) % mapping_.linesPerRow());
    return mapping_.compose(coords);
}

void
SyntheticTraceGenerator::warmupFootprint(std::size_t lines,
                                         std::vector<WarmLine> &out)
{
    out.clear();
    out.reserve(lines);
    Rng rng(combineSeeds(0x77a7, thread_));
    const std::uint64_t span = regionRows_ - 1;
    const std::uint64_t lines_per_row = mapping_.linesPerRow();

    // Lay the footprint out the way the workload itself would have:
    // whole rows of consecutive lines per stream, oldest rows first.
    // Eviction order then mirrors fill order, so the resulting
    // writeback stream has the same row locality as real streaming
    // history (a random layout here would turn every write drain into
    // a row-conflict storm and wreck the read streams' locality).
    const std::uint64_t rows_needed =
        (lines + streams_.size() * lines_per_row - 1) /
        (streams_.size() * lines_per_row);
    for (std::uint64_t back = rows_needed; back >= 1; --back) {
        for (const Stream &stream : streams_) {
            const RowId row = static_cast<RowId>(
                regionBase_ +
                (stream.rowCursor + span * 16 - back) % span);
            AddrDecode coords;
            coords.channel = static_cast<ChannelId>(
                stream.globalBank / mapping_.banksPerChannel());
            coords.bank = static_cast<BankId>(
                stream.globalBank % mapping_.banksPerChannel());
            coords.row = row;
            for (std::uint64_t col = 0; col < lines_per_row; ++col) {
                if (out.size() >= lines)
                    return;
                coords.column = static_cast<ColumnId>(col);
                out.push_back(
                    {mapping_.compose(coords),
                     rng.nextBool(profile_.storeFraction)});
            }
        }
    }
}

Addr
SyntheticTraceGenerator::nextHitAddress()
{
    const Addr addr = hotSet_[hotCursor_];
    hotCursor_ = (hotCursor_ + 1) % hotSet_.size();
    return addr;
}

TraceOp
SyntheticTraceGenerator::next()
{
    if (havePendingStore_) {
        havePendingStore_ = false;
        TraceOp op;
        op.kind = TraceOp::Kind::Store;
        op.nonTemporal = true;
        op.aluBefore = 1;
        op.addr = pendingStoreAddr_;
        return op;
    }
    if (!inBurst_) {
        // Idle / compute phase between bursts.
        inBurst_ = true;
        missesLeftInBurst_ = std::max(1u, profile_.burstLength);
        TraceOp op;
        op.kind = TraceOp::Kind::None;
        op.aluBefore = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(idleInstr_, 0xffffffffULL));
        return op;
    }

    // Cache-hitting background loads queued by the previous miss slot;
    // they share that slot's instruction budget.
    if (pendingHits_ > 0) {
        --pendingHits_;
        TraceOp op;
        op.kind = TraceOp::Kind::Load;
        op.aluBefore = hitGap_;
        op.addr = nextHitAddress();
        return op;
    }

    std::uint32_t gap = static_cast<std::uint32_t>(gapInstr_);

    // Decide how many hit accesses accompany this miss. The carry keeps
    // the long-run ratio at hitAccessesPer1k regardless of MPKI.
    hitCarry_ += profile_.hitAccessesPer1k / profile_.mpki;
    const unsigned hits =
        static_cast<unsigned>(std::min(hitCarry_, 8.0));
    hitCarry_ -= hits;
    hitCarry_ = std::min(hitCarry_, 8.0);
    pendingHits_ = hits;
    if (hits > 0) {
        const std::uint32_t hit_share = gap / 2;
        hitGap_ = std::max(1u, hit_share / hits);
        gap -= std::min(gap, hitGap_ * hits);
    }

    TraceOp op;
    op.aluBefore = gap;
    op.addr = nextMissAddress();
    if (profile_.streamingStores) {
        // Read-modify-write streaming: every miss is a load; a
        // non-temporal store to the same line follows with probability
        // storeFraction, landing in the row the load just opened.
        op.kind = TraceOp::Kind::Load;
        op.dependsOnPrev = rng_.nextBool(profile_.dependentFraction);
        if (rng_.nextBool(profile_.storeFraction)) {
            pendingStoreAddr_ = op.addr;
            havePendingStore_ = true;
        }
    } else {
        const bool is_store = rng_.nextBool(profile_.storeFraction);
        op.kind = is_store ? TraceOp::Kind::Store : TraceOp::Kind::Load;
        op.dependsOnPrev =
            !is_store && rng_.nextBool(profile_.dependentFraction);
    }
    if (--missesLeftInBurst_ == 0) {
        if (idleInstr_ > 0)
            inBurst_ = false;
        else
            missesLeftInBurst_ = std::max(1u, profile_.burstLength);
    }
    return op;
}

} // namespace stfm
