/**
 * @file
 * MetricSketch: a mergeable quantile/distribution structure for the
 * fleet reporting tier (docs/REPORTING.md).
 *
 * Fleet rollups need tail percentiles of *double-valued* fairness
 * metrics (slowdown, unfairness) over anywhere from one run to many
 * thousands, folded in whatever order shards complete. The existing
 * LatencyHistogram (stats/histogram.hh) is integer power-of-two
 * buckets — far too coarse near 1.0, where slowdowns live. This sketch
 * is two-phase:
 *
 *   - **exact** up to kExactCap samples: the raw values are kept, and
 *     quantiles are computed by nearest rank against the sorted
 *     multiset — bit-exact against a sorted-vector oracle;
 *   - **bucketed** beyond the cap: samples collapse into sparse
 *     logarithmic buckets (kBucketsPerDecade per decade, ~0.9 %
 *     relative resolution), constant memory per distinct magnitude.
 *
 * Merge is a pure multiset/integer-count operation in both phases, so
 * it is associative and commutative: merge(a, merge(b, c)) and
 * merge(merge(a, b), c) — and every other fold order — produce
 * identical state, including the exact->bucketed collapse (the
 * collapse fires iff the total count exceeds the cap, and bucketing is
 * per-sample deterministic). The fleet supervisor relies on this to
 * fold shard results in completion order while still emitting a
 * byte-identical stfm-report-v1 rollup.
 *
 * Percentile definition (the stfm-report-v1 contract): quantile(p)
 * for p in (0, 1] is the nearest-rank statistic — the value of rank
 * ceil(p * count) (1-based) in ascending order. In bucketed phase the
 * returned value is the geometric midpoint of the rank's bucket,
 * clamped to the observed [min, max]. quantile of an empty sketch is
 * 0.
 */

#ifndef STFM_REPORT_QUANTILE_HH
#define STFM_REPORT_QUANTILE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/json.hh"

namespace stfm
{
namespace report
{

class MetricSketch
{
  public:
    /** Exact-phase capacity; past this the sketch collapses. */
    static constexpr std::size_t kExactCap = 4096;
    /** Log-bucket resolution: buckets per factor of 10. */
    static constexpr int kBucketsPerDecade = 256;
    /** Values at or below zero clamp to this before bucketing (exact
     *  phase keeps them verbatim). */
    static constexpr double kMinPositive = 1e-12;

    /** Record one sample. */
    void add(double value);

    /** Fold @p other in (associative, commutative; see file header). */
    void merge(const MetricSketch &other);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Arithmetic mean. Exact phase: mean of the sorted multiset
     *  (deterministic under any merge order); bucketed phase: bucket
     *  midpoints weighted by count, clamped to [min, max]. */
    double mean() const;

    /** Nearest-rank quantile, p in (0, 1]; see file header. */
    double quantile(double p) const;

    /** True once the sketch has collapsed into log buckets. */
    bool bucketed() const { return bucketed_; }

    /**
     * Serialize: {"count", "min", "max", and "samples": [sorted...]
     * (exact) or "buckets": {"<index>": n, ...} (bucketed)}. Sorted
     * output makes the serialization a pure function of the folded
     * multiset — byte-identical regardless of merge order.
     */
    Json toJson() const;

    /** Rebuild from toJson() output. @throws SimError on malformed
     *  input (@p context names the value in diagnostics). */
    static MetricSketch fromJson(const Json &json,
                                 const std::string &context);

    bool operator==(const MetricSketch &other) const;

  private:
    static int bucketOf(double value);
    /** Geometric midpoint of bucket @p index. */
    static double bucketMid(int index);
    void collapse();
    /** Sorted view of the exact samples. */
    std::vector<double> sorted() const;

    bool bucketed_ = false;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    /** Exact phase: raw samples, unordered. */
    std::vector<double> samples_;
    /** Bucketed phase: sparse log-bucket counts. */
    std::map<int, std::uint64_t> buckets_;
};

} // namespace report
} // namespace stfm

#endif // STFM_REPORT_QUANTILE_HH
