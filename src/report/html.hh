/**
 * @file
 * Self-contained single-file HTML rendering of a stfm-report-v1
 * rollup: summary tiles, per-configuration tables, and an inline SVG
 * unfairness chart. No external dependencies — no scripts, fonts or
 * stylesheets are fetched; the file opens identically from a CI
 * artifact tarball or a local checkout. Light and dark palettes ship
 * in one file via CSS custom properties and prefers-color-scheme.
 */

#ifndef STFM_REPORT_HTML_HH
#define STFM_REPORT_HTML_HH

#include <string>

#include "common/json.hh"

namespace stfm
{
namespace report
{

/** Render @p report (stfm-report-v1) as a complete HTML document.
 *  @throws SimError when @p report is not a valid report. */
std::string renderReportHtml(const Json &report);

/** renderReportHtml to @p path. @throws SimError on I/O failure. */
void writeReportHtml(const Json &report, const std::string &path);

} // namespace report
} // namespace stfm

#endif // STFM_REPORT_HTML_HH
