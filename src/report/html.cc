#include "report/html.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

#include "common/logging.hh"

namespace stfm
{
namespace report
{

namespace
{

std::string
esc(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
fmt(double value)
{
    return formatMessage("%.3f", value);
}

std::string
groupTitle(const Json &group)
{
    const std::string scheduler =
        group.at("scheduler", "group").asString("group.scheduler");
    const std::string device =
        group.at("device", "group").asString("group.device");
    if (device.empty())
        return scheduler;
    return scheduler + " @ " + device;
}

void
statTile(std::string &out, const std::string &label,
         const std::string &value)
{
    out += "<div class=\"tile\"><div class=\"tile-value\">" +
           esc(value) + "</div><div class=\"tile-label\">" +
           esc(label) + "</div></div>\n";
}

/**
 * Horizontal bar chart of unfairness p95 per configuration: one
 * series (categorical slot 1), value axis with hairline gridlines,
 * native <title> tooltips, exact values in the table above.
 */
std::string
unfairnessChart(const Json::Array &groups)
{
    struct Bar
    {
        std::string label;
        double value;
    };
    std::vector<Bar> bars;
    for (const Json &group : groups) {
        const Json &u = group.at("unfairness", "group");
        if (u.at("count", "group").asUint("group.unfairness.count") == 0)
            continue;
        bars.push_back({groupTitle(group),
                        u.at("p95", "group")
                            .asDouble("group.unfairness.p95")});
    }
    if (bars.empty())
        return "";

    double max_value = 0.0;
    for (const Bar &bar : bars)
        max_value = std::max(max_value, bar.value);
    // Axis ceiling: max rounded up to one decimal, never zero.
    const double axis_max =
        max_value > 0.0 ? std::ceil(max_value * 10.0) / 10.0 : 1.0;

    const int gutter = 230;
    const int plot_w = 420;
    const int bar_h = 18;
    const int bar_gap = 8;
    const int top = 8;
    const int axis_h = 28;
    const int height =
        top + static_cast<int>(bars.size()) * (bar_h + bar_gap) + axis_h;
    const int width = gutter + plot_w + 16;

    std::string svg = formatMessage(
        "<svg class=\"chart\" role=\"img\" viewBox=\"0 0 %d %d\" "
        "width=\"%d\" height=\"%d\" "
        "aria-label=\"Unfairness p95 by configuration\">\n",
        width, height, width, height);

    const int baseline_y = height - axis_h + 4;
    for (int tick = 0; tick <= 4; ++tick) {
        const double value = axis_max * tick / 4.0;
        const int x = gutter + static_cast<int>(
            std::lround(plot_w * tick / 4.0));
        svg += formatMessage(
            "<line class=\"grid\" x1=\"%d\" y1=\"%d\" x2=\"%d\" "
            "y2=\"%d\"/>\n",
            x, top, x, baseline_y);
        svg += formatMessage(
            "<text class=\"tick\" x=\"%d\" y=\"%d\" "
            "text-anchor=\"middle\">%s</text>\n",
            x, baseline_y + 16, fmt(value).c_str());
    }
    svg += formatMessage(
        "<line class=\"axis\" x1=\"%d\" y1=\"%d\" x2=\"%d\" "
        "y2=\"%d\"/>\n",
        gutter, baseline_y, gutter + plot_w, baseline_y);

    int y = top;
    for (const Bar &bar : bars) {
        const int w = std::max(1, static_cast<int>(std::lround(
            plot_w * bar.value / axis_max)));
        svg += formatMessage(
            "<text class=\"label\" x=\"%d\" y=\"%d\" "
            "text-anchor=\"end\">%s</text>\n",
            gutter - 8, y + bar_h - 5, esc(bar.label).c_str());
        svg += formatMessage(
            "<rect class=\"bar\" x=\"%d\" y=\"%d\" width=\"%d\" "
            "height=\"%d\" rx=\"3\"><title>%s: p95 unfairness "
            "%s</title></rect>\n",
            gutter, y, w, bar_h, esc(bar.label).c_str(),
            fmt(bar.value).c_str());
        y += bar_h + bar_gap;
    }
    svg += "</svg>\n";
    return svg;
}

const char *kStyle = R"css(
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --bad: #e66767;
  }
}
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 880px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 10px 16px;
  min-width: 96px;
}
.tile-value { font-size: 22px; font-weight: 600; }
.tile-label { color: var(--text-secondary); font-size: 12px; }
table {
  border-collapse: collapse;
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  width: 100%;
}
th, td { padding: 6px 10px; text-align: left; }
th {
  color: var(--text-secondary);
  font-weight: 500;
  font-size: 12px;
  border-bottom: 1px solid var(--grid);
}
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
tr + tr td { border-top: 1px solid var(--grid); }
td.violated { color: var(--bad); font-weight: 600; }
.chart-box {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px;
  overflow-x: auto;
}
.chart .grid { stroke: var(--grid); stroke-width: 1; }
.chart .axis { stroke: var(--axis); stroke-width: 1; }
.chart .bar { fill: var(--series-1); }
.chart .label { fill: var(--text-secondary); font-size: 12px; }
.chart .tick {
  fill: var(--text-muted);
  font-size: 11px;
  font-variant-numeric: tabular-nums;
}
footer { color: var(--text-muted); font-size: 12px; margin-top: 28px; }
)css";

} // namespace

std::string
renderReportHtml(const Json &report)
{
    const std::string schema =
        report.at("schema", "report").asString("report.schema");
    if (schema != "stfm-report-v1") {
        throw SimError("report html: unexpected schema '" + schema +
                       "'");
    }
    const std::string name =
        report.at("name", "report").asString("report.name");
    const Json &totals = report.at("totals", "report");
    const Json &violations = totals.at("sloViolations", "report.totals");
    const Json &slo = report.at("slo", "report");
    const auto &groups =
        report.at("groups", "report").asArray("report.groups");

    std::string out;
    out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
    out += "<meta charset=\"utf-8\">\n";
    out += "<meta name=\"viewport\" content=\"width=device-width, "
           "initial-scale=1\">\n";
    out += "<title>" + esc(name) + " — STFM fleet report</title>\n";
    out += "<style>";
    out += kStyle;
    out += "</style>\n</head>\n<body>\n<main>\n";

    out += "<h1>" + esc(name) + "</h1>\n";
    out += "<p class=\"subtitle\">STFM fleet report "
           "(stfm-report-v1) · SLO: unfairness ≤ " +
           fmt(slo.at("unfairness", "slo").asDouble("slo.unfairness")) +
           ", per-thread slowdown ≤ " +
           fmt(slo.at("slowdown", "slo").asDouble("slo.slowdown")) +
           "</p>\n";

    const std::uint64_t total_runs =
        totals.at("runs", "totals").asUint("totals.runs");
    const std::uint64_t total_failed =
        totals.at("failed", "totals").asUint("totals.failed");
    out += "<div class=\"tiles\">\n";
    statTile(out, "runs", std::to_string(total_runs));
    statTile(out, "failed", std::to_string(total_failed));
    statTile(out, "configurations",
             std::to_string(
                 totals.at("groups", "totals").asUint("totals.groups")));
    statTile(out, "unfairness SLO violations",
             std::to_string(violations.at("unfairness", "violations")
                                .asUint("violations.unfairness")));
    statTile(out, "slowdown SLO violations",
             std::to_string(violations.at("slowdown", "violations")
                                .asUint("violations.slowdown")));
    out += "</div>\n";

    if (groups.empty()) {
        out += "<p class=\"subtitle\">No runs folded into this "
               "report.</p>\n</main>\n</body>\n</html>\n";
        return out;
    }

    out += "<h2>Configurations</h2>\n<table>\n<tr>"
           "<th>scheduler</th><th>device</th>"
           "<th class=\"num\">runs</th><th class=\"num\">failed</th>"
           "<th class=\"num\">unfairness p50</th>"
           "<th class=\"num\">p95</th><th class=\"num\">p99</th>"
           "<th class=\"num\">max</th>"
           "<th class=\"num\">slowdown p99</th>"
           "<th class=\"num\">SLO viol.</th></tr>\n";
    for (const Json &group : groups) {
        const Json &u = group.at("unfairness", "group");
        const Json &s = group.at("slowdown", "group");
        const Json &gv = group.at("sloViolations", "group");
        const std::uint64_t viol =
            gv.at("unfairness", "group").asUint("group.slo") +
            gv.at("slowdown", "group").asUint("group.slo");
        const std::string device =
            group.at("device", "group").asString("group.device");
        out += "<tr><td>" +
               esc(group.at("scheduler", "group")
                       .asString("group.scheduler")) +
               "</td><td>" + esc(device.empty() ? "default" : device) +
               "</td><td class=\"num\">" +
               std::to_string(
                   group.at("runs", "group").asUint("group.runs")) +
               "</td><td class=\"num\">" +
               std::to_string(
                   group.at("failed", "group").asUint("group.failed")) +
               "</td><td class=\"num\">" +
               fmt(u.at("p50", "group").asDouble("group.u")) +
               "</td><td class=\"num\">" +
               fmt(u.at("p95", "group").asDouble("group.u")) +
               "</td><td class=\"num\">" +
               fmt(u.at("p99", "group").asDouble("group.u")) +
               "</td><td class=\"num\">" +
               fmt(u.at("max", "group").asDouble("group.u")) +
               "</td><td class=\"num\">" +
               fmt(s.at("p99", "group").asDouble("group.s")) +
               "</td><td class=\"num" +
               std::string(viol ? " violated" : "") + "\">" +
               std::to_string(viol) + "</td></tr>\n";
    }
    out += "</table>\n";

    const std::string chart = unfairnessChart(groups);
    if (!chart.empty()) {
        out += "<h2>Unfairness p95 by configuration</h2>\n"
               "<div class=\"chart-box\">\n" +
               chart + "</div>\n";
    }

    // Worst (group, workload) cells by mean unfairness.
    struct Worst
    {
        std::string group;
        std::string workload;
        double mean;
        double max;
    };
    std::vector<Worst> worst;
    for (const Json &group : groups) {
        for (const Json &w : group.at("workloads", "group")
                                 .asArray("group.workloads")) {
            const Json &u = w.at("unfairness", "workload");
            if (u.at("count", "workload").asUint("workload.count") == 0)
                continue;
            worst.push_back(
                {groupTitle(group),
                 w.at("label", "workload").asString("workload.label"),
                 u.at("mean", "workload").asDouble("workload.mean"),
                 u.at("max", "workload").asDouble("workload.max")});
        }
    }
    std::sort(worst.begin(), worst.end(),
              [](const Worst &a, const Worst &b) {
                  if (a.mean != b.mean)
                      return a.mean > b.mean;
                  if (a.group != b.group)
                      return a.group < b.group;
                  return a.workload < b.workload;
              });
    if (worst.size() > 10)
        worst.resize(10);
    if (!worst.empty()) {
        out += "<h2>Least fair workloads</h2>\n<table>\n<tr>"
               "<th>configuration</th><th>workload</th>"
               "<th class=\"num\">mean unfairness</th>"
               "<th class=\"num\">max</th></tr>\n";
        for (const Worst &w : worst) {
            out += "<tr><td>" + esc(w.group) + "</td><td>" +
                   esc(w.workload) + "</td><td class=\"num\">" +
                   fmt(w.mean) + "</td><td class=\"num\">" +
                   fmt(w.max) + "</td></tr>\n";
        }
        out += "</table>\n";
    }

    if (const Json *latency = report.find("readLatency")) {
        out += "<h2>Read latency (merged telemetry)</h2>\n<table>\n"
               "<tr><th class=\"num\">samples</th>"
               "<th class=\"num\">min</th><th class=\"num\">mean</th>"
               "<th class=\"num\">p50</th><th class=\"num\">p90</th>"
               "<th class=\"num\">p99</th><th class=\"num\">max</th>"
               "</tr>\n";
        out += "<tr><td class=\"num\">" +
               std::to_string(latency->at("count", "latency")
                                  .asUint("latency.count")) +
               "</td><td class=\"num\">" +
               std::to_string(latency->at("min", "latency")
                                  .asUint("latency.min")) +
               "</td><td class=\"num\">" +
               fmt(latency->at("mean", "latency")
                       .asDouble("latency.mean")) +
               "</td><td class=\"num\">" +
               std::to_string(latency->at("p50", "latency")
                                  .asUint("latency.p50")) +
               "</td><td class=\"num\">" +
               std::to_string(latency->at("p90", "latency")
                                  .asUint("latency.p90")) +
               "</td><td class=\"num\">" +
               std::to_string(latency->at("p99", "latency")
                                  .asUint("latency.p99")) +
               "</td><td class=\"num\">" +
               std::to_string(latency->at("max", "latency")
                                  .asUint("latency.max")) +
               "</td></tr>\n</table>\n"
               "<p class=\"subtitle\">DRAM cycles, power-of-two "
               "buckets; quantiles are bucket upper edges.</p>\n";
    }

    const auto &sources =
        report.at("sources", "report").asArray("report.sources");
    if (!sources.empty()) {
        out += "<h2>Sources</h2>\n<table>\n<tr><th>path</th>"
               "<th>kind</th><th class=\"num\">runs</th></tr>\n";
        for (const Json &source : sources) {
            out += "<tr><td>" +
                   esc(source.at("path", "source")
                           .asString("source.path")) +
                   "</td><td>" +
                   esc(source.at("kind", "source")
                           .asString("source.kind")) +
                   "</td><td class=\"num\">" +
                   std::to_string(source.at("runs", "source")
                                      .asUint("source.runs")) +
                   "</td></tr>\n";
        }
        out += "</table>\n";
    }

    out += "<footer>Generated by <code>stfm report</code> · schema "
           "stfm-report-v1 · docs/REPORTING.md documents every "
           "field.</footer>\n";
    out += "</main>\n</body>\n</html>\n";
    return out;
}

void
writeReportHtml(const Json &report, const std::string &path)
{
    const std::string html = renderReportHtml(report);
    std::ofstream out(path, std::ios::binary);
    out << html;
    out.flush();
    if (!out)
        throw SimError("report: cannot write HTML to " + path);
}

} // namespace report
} // namespace stfm
