#include "report/rollup.hh"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "fleet/manifest.hh"
#include "fleet/supervisor.hh"
#include "fleet/wire.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "obs/telemetry.hh"

namespace stfm
{
namespace report
{

namespace
{

/**
 * Device-axis scheduler labels carry an "@<device>" suffix
 * ("STFM@DDR4-2400"); the report keys groups by (scheduler, device),
 * so the suffix would double-encode the device. Strip it when it names
 * exactly this group's device.
 */
std::string
stripDeviceSuffix(const std::string &scheduler, const std::string &device)
{
    if (device.empty())
        return scheduler;
    const std::string suffix = "@" + device;
    if (scheduler.size() > suffix.size() &&
        scheduler.compare(scheduler.size() - suffix.size(),
                          suffix.size(), suffix) == 0) {
        return scheduler.substr(0, scheduler.size() - suffix.size());
    }
    return scheduler;
}

} // namespace

ReportBuilder::ReportBuilder(std::string name, SloConfig slo)
    : name_(std::move(name)), slo_(slo)
{
}

ReportBuilder::Group &
ReportBuilder::groupFor(const std::string &scheduler,
                        const std::string &device, int order_hint)
{
    Group &group = groups_[{scheduler, device}];
    if (group.order < 0)
        group.order = order_hint >= 0 ? order_hint : nextOrder_;
    nextOrder_ = std::max(nextOrder_, group.order + 1);
    return group;
}

void
ReportBuilder::addRun(Group &group, const std::string &workload,
                      bool failed, double unfairness,
                      const std::vector<double> &slowdowns,
                      double weighted_speedup)
{
    ++runs_;
    ++group.runs;
    WorkloadStats &ws = group.workloads[workload];
    ++ws.runs;
    if (failed) {
        ++failedRuns_;
        ++group.failed;
        ++ws.failed;
        return;
    }
    group.unfairness.add(unfairness);
    ws.unfairness.add(unfairness);
    group.weightedSpeedup.add(weighted_speedup);
    if (unfairness > slo_.unfairness)
        ++group.sloUnfairness;
    for (const double slowdown : slowdowns) {
        group.slowdown.add(slowdown);
        if (slowdown > slo_.slowdown)
            ++group.sloSlowdown;
    }
}

void
ReportBuilder::addOutcome(const std::string &scheduler,
                          const std::string &device,
                          const std::string &workload,
                          const RunOutcome &outcome, int order_hint)
{
    Group &group =
        groupFor(stripDeviceSuffix(scheduler, device), device, order_hint);
    if (outcome.failed)
        addRun(group, workload, true, 0.0, {}, 0.0);
    else
        addRun(group, workload, false, outcome.metrics.unfairness,
               outcome.metrics.slowdowns, outcome.metrics.weightedSpeedup);
    ++streamedRuns_;
}

std::uint64_t
ReportBuilder::addResultsDoc(const Json &doc,
                             const std::string &source_path)
{
    const std::string context = "results " + source_path;
    const std::string schema =
        doc.at("schema", context).asString(context + ".schema");
    if (schema != "stfm-results-v1") {
        throw SimError("report: " + source_path +
                       ": unexpected schema '" + schema + "'");
    }
    const auto &runs =
        doc.at("runs", context).asArray(context + ".runs");
    std::uint64_t folded = 0;
    for (const Json &run : runs) {
        const std::string rc = context + ".runs[]";
        std::string workload;
        for (const Json &bench :
             run.at("workload", rc).asArray(rc + ".workload")) {
            if (!workload.empty())
                workload += '+';
            workload += bench.asString(rc + ".workload[]");
        }
        const std::string scheduler =
            run.at("scheduler", rc).asString(rc + ".scheduler");
        std::string device;
        if (const Json *d = run.find("device"))
            device = d->asString(rc + ".device");
        const bool failed =
            run.at("failed", rc).asBool(rc + ".failed");
        Group &group = groupFor(stripDeviceSuffix(scheduler, device),
                                device, -1);
        if (failed) {
            addRun(group, workload, true, 0.0, {}, 0.0);
        } else {
            const Json &metrics = run.at("metrics", rc);
            std::vector<double> slowdowns;
            for (const Json &v : metrics.at("slowdowns", rc)
                                     .asArray(rc + ".slowdowns"))
                slowdowns.push_back(v.asDouble(rc + ".slowdowns[]"));
            addRun(group, workload, false,
                   metrics.at("unfairness", rc)
                       .asDouble(rc + ".unfairness"),
                   slowdowns,
                   metrics.at("weightedSpeedup", rc)
                       .asDouble(rc + ".weightedSpeedup"));
        }
        ++folded;
    }
    noteSource(source_path, "results", folded);
    return folded;
}

std::uint64_t
ReportBuilder::addManifest(const std::string &path,
                           const ExperimentPlan &plan)
{
    fleet::ManifestData data = fleet::loadManifest(path);
    if (data.header.type() == Json::Type::Null)
        throw SimError("report: manifest not found: " + path);
    const std::string context = "manifest " + path;
    const std::uint64_t jobs =
        data.header.at("jobs", context).asUint(context + ".jobs");
    if (jobs != plan.jobs.size()) {
        throw SimError(formatMessage(
            "report: %s records %llu jobs but the spec derives %zu — "
            "pass the spec the sweep actually ran",
            path.c_str(), static_cast<unsigned long long>(jobs),
            plan.jobs.size()));
    }
    const std::uint64_t shards =
        data.header.at("shards", context).asUint(context + ".shards");
    const auto ranges = fleet::partitionShards(
        plan.jobs.size(), plan.jobsPerRow(),
        static_cast<unsigned>(shards));
    if (ranges.size() != shards) {
        throw SimError(formatMessage(
            "report: %s: cannot re-derive %llu shard ranges",
            path.c_str(), static_cast<unsigned long long>(shards)));
    }

    const std::size_t per = plan.jobsPerRow();
    std::uint64_t folded = 0;
    for (const auto &[index, entry] : data.shards) {
        if (index >= ranges.size()) {
            throw SimError(formatMessage(
                "report: %s: shard %u out of range", path.c_str(),
                index));
        }
        const auto [begin, end] = ranges[index];
        const std::string sc =
            context + " shard " + std::to_string(index);
        const auto &outcomes =
            entry.at("outcomes", sc).asArray(sc + ".outcomes");
        if (outcomes.size() != end - begin) {
            throw SimError(formatMessage(
                "report: %s: shard %u carries %zu outcomes for a "
                "%zu-job range",
                path.c_str(), index, outcomes.size(), end - begin));
        }
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const std::size_t job = begin + i;
            const std::size_t s = job % per;
            const std::size_t row = job / per;
            const SchedulerEntry &sched = plan.schedulers[s];
            const RunOutcome outcome =
                fleet::runOutcomeFromWire(outcomes[i], sc);
            Group &group = groupFor(
                stripDeviceSuffix(sched.label, sched.device),
                sched.device, static_cast<int>(s));
            const std::string workload = workloadLabel(
                plan.workloads[row / plan.spec.repeat]);
            if (outcome.failed) {
                addRun(group, workload, true, 0.0, {}, 0.0);
            } else {
                addRun(group, workload, false,
                       outcome.metrics.unfairness,
                       outcome.metrics.slowdowns,
                       outcome.metrics.weightedSpeedup);
            }
            ++folded;
        }
    }
    noteSource(path, "manifest", folded);
    return folded;
}

void
ReportBuilder::addTelemetryDoc(const Json &doc,
                               const std::string &source_path)
{
    const std::string context = "telemetry " + source_path;
    const std::string schema =
        doc.at("schema", context).asString(context + ".schema");
    if (schema != "stfm-telemetry-v1") {
        throw SimError("report: " + source_path +
                       ": unexpected schema '" + schema + "'");
    }
    if (const Json *histograms = doc.find("histograms")) {
        for (const Json &hist :
             histograms->asArray(context + ".histograms")) {
            const std::string hc = context + ".histograms[]";
            const std::string name =
                hist.at("name", hc).asString(hc + ".name");
            if (name.find(".readLatency.") == std::string::npos)
                continue;
            readLatency_.merge(latencyHistogramFromJson(hist, hc));
            haveReadLatency_ = true;
        }
    }
    noteSource(source_path, "telemetry", 0);
}

void
ReportBuilder::noteSource(const std::string &path,
                          const std::string &kind, std::uint64_t runs)
{
    sources_.push_back({path, kind, runs});
}

Json
ReportBuilder::toJson() const
{
    Json out = Json::object();
    out.set("schema", "stfm-report-v1");
    out.set("name", name_);

    Json slo = Json::object();
    slo.set("unfairness", slo_.unfairness);
    slo.set("slowdown", slo_.slowdown);
    out.set("slo", std::move(slo));

    // Canonical group order: plan order first (the scheduler axis as
    // the spec listed it), then key — independent of fold order.
    std::vector<const std::pair<const std::pair<std::string, std::string>,
                                Group> *> ordered;
    for (const auto &entry : groups_)
        ordered.push_back(&entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto *a, const auto *b) {
                  if (a->second.order != b->second.order)
                      return a->second.order < b->second.order;
                  return a->first < b->first;
              });

    std::set<std::string> schedulers;
    std::set<std::string> devices;
    std::set<std::string> workloads;
    std::uint64_t slo_unfairness = 0;
    std::uint64_t slo_slowdown = 0;
    for (const auto &[key, group] : groups_) {
        schedulers.insert(key.first);
        devices.insert(key.second);
        slo_unfairness += group.sloUnfairness;
        slo_slowdown += group.sloSlowdown;
        for (const auto &[label, ws] : group.workloads)
            workloads.insert(label);
    }

    Json totals = Json::object();
    totals.set("runs", runs_);
    totals.set("failed", failedRuns_);
    totals.set("groups", groups_.size());
    totals.set("schedulers", schedulers.size());
    totals.set("devices", devices.size());
    totals.set("workloads", workloads.size());
    Json violations = Json::object();
    violations.set("unfairness", slo_unfairness);
    violations.set("slowdown", slo_slowdown);
    totals.set("sloViolations", std::move(violations));
    out.set("totals", std::move(totals));

    Json sources = Json::array();
    for (const Source &source : sources_) {
        Json entry = Json::object();
        entry.set("path", source.path);
        entry.set("kind", source.kind);
        entry.set("runs", source.runs);
        sources.push(std::move(entry));
    }
    if (streamedRuns_ > 0) {
        Json entry = Json::object();
        entry.set("path", "<streamed>");
        entry.set("kind", "stream");
        entry.set("runs", streamedRuns_);
        sources.push(std::move(entry));
    }
    out.set("sources", std::move(sources));

    Json groups = Json::array();
    for (const auto *entry : ordered) {
        const auto &[key, group] = *entry;
        Json g = Json::object();
        g.set("scheduler", key.first);
        g.set("device", key.second);
        g.set("runs", group.runs);
        g.set("failed", group.failed);
        Json gv = Json::object();
        gv.set("unfairness", group.sloUnfairness);
        gv.set("slowdown", group.sloSlowdown);
        g.set("sloViolations", std::move(gv));
        g.set("unfairness", distributionJson(group.unfairness));
        g.set("slowdown", distributionJson(group.slowdown));
        g.set("weightedSpeedup",
              distributionJson(group.weightedSpeedup));
        Json wl = Json::array();
        // std::map iteration: workloads already sorted by label.
        for (const auto &[label, ws] : group.workloads) {
            Json w = Json::object();
            w.set("label", label);
            w.set("runs", ws.runs);
            w.set("failed", ws.failed);
            Json u = Json::object();
            u.set("count", ws.unfairness.count());
            u.set("mean", ws.unfairness.mean());
            u.set("max", ws.unfairness.max());
            w.set("unfairness", std::move(u));
            wl.push(std::move(w));
        }
        g.set("workloads", std::move(wl));
        groups.push(std::move(g));
    }
    out.set("groups", std::move(groups));

    if (haveReadLatency_) {
        Json latency = latencyHistogramToJson(readLatency_);
        latency.set("unit", "dram-cycles");
        out.set("readLatency", std::move(latency));
    }
    return out;
}

Json
distributionJson(const MetricSketch &sketch)
{
    Json out = Json::object();
    out.set("count", sketch.count());
    out.set("min", sketch.min());
    out.set("max", sketch.max());
    out.set("mean", sketch.mean());
    out.set("p50", sketch.quantile(0.5));
    out.set("p95", sketch.quantile(0.95));
    out.set("p99", sketch.quantile(0.99));
    const Json payload = sketch.toJson();
    if (const Json *samples = payload.find("samples"))
        out.set("samples", *samples);
    else
        out.set("buckets", *payload.find("buckets"));
    return out;
}

bool
pathExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

bool
isDirectory(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string>
listDirectoryFiles(const std::string &path)
{
    DIR *dir = ::opendir(path.c_str());
    if (dir == nullptr)
        throw SimError("report: cannot open directory: " + path);
    std::vector<std::string> files;
    while (const dirent *entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        const std::string full = path + "/" + name;
        struct stat st{};
        if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode))
            files.push_back(full);
    }
    ::closedir(dir);
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace report
} // namespace stfm
