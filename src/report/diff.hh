/**
 * @file
 * Report regression diffing: compare a current stfm-report-v1 rollup
 * against a committed baseline and emit structured regressions — the
 * CI gate behind `stfm report --diff` (docs/REPORTING.md documents the
 * semantics and exit codes).
 *
 * Matching is positional-independent: groups pair by (scheduler,
 * device), workloads pair by label. A metric regresses when
 *
 *     current > baseline * (1 + threshold)
 *
 * with threshold defaulting to 0.02 (2 %). Disappearing coverage is a
 * regression too: a baseline group or workload missing from the
 * current report fails the gate (a sweep silently dropping
 * configurations must not pass CI), as does a group with more failed
 * runs than the baseline. Extra groups/workloads in the current report
 * are fine — coverage may grow. Baselines are compared numerically
 * (parsed doubles), never byte-wise, so a bit-identical rerun always
 * diffs clean.
 */

#ifndef STFM_REPORT_DIFF_HH
#define STFM_REPORT_DIFF_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hh"

namespace stfm
{
namespace report
{

struct DiffOptions
{
    /** Relative slack before a metric increase counts as regressed. */
    double threshold = 0.02;
};

/** One detected regression. */
struct Regression
{
    /** What regressed: "workload-unfairness", "group-unfairness-p95",
     *  "group-unfairness-p99", "group-slowdown-p99", "group-failures",
     *  "missing-group", "missing-workload". */
    std::string kind;
    std::string scheduler;
    std::string device;
    /** Workload label (workload-scoped kinds only). */
    std::string workload;
    double baseline = 0.0;
    double current = 0.0;
};

struct ReportDiff
{
    std::string baselineName;
    std::string currentName;
    std::uint64_t comparedGroups = 0;
    std::uint64_t comparedWorkloads = 0;
    /** Metrics that improved past the same threshold (informational). */
    std::uint64_t improvements = 0;
    std::vector<Regression> regressions;

    bool regressed() const { return !regressions.empty(); }
};

/**
 * Compare @p current against @p baseline (both stfm-report-v1).
 * @throws SimError on a document that is not a valid report.
 */
ReportDiff diffReports(const Json &current, const Json &baseline,
                       const DiffOptions &options);

/** The machine-readable diff document ("stfm-reportdiff-v1"). */
Json diffJson(const ReportDiff &diff, const DiffOptions &options);

/**
 * Human-readable digest: one line per regression plus per-kind
 * summaries ("unfairness regressed >2% on N workloads").
 */
void printDiff(const ReportDiff &diff, const DiffOptions &options,
               std::ostream &os);

} // namespace report
} // namespace stfm

#endif // STFM_REPORT_DIFF_HH
