#include "report/diff.hh"

#include <map>
#include <ostream>
#include <utility>

#include "common/logging.hh"

namespace stfm
{
namespace report
{

namespace
{

/** The comparable slice of one group. */
struct GroupView
{
    std::uint64_t runs = 0;
    std::uint64_t failed = 0;
    std::uint64_t metricCount = 0;
    double unfairnessP95 = 0.0;
    double unfairnessP99 = 0.0;
    double slowdownP99 = 0.0;
    /** label -> (count, mean unfairness). */
    std::map<std::string, std::pair<std::uint64_t, double>> workloads;
};

std::map<std::pair<std::string, std::string>, GroupView>
groupViews(const Json &doc, const std::string &context)
{
    const std::string schema =
        doc.at("schema", context).asString(context + ".schema");
    if (schema != "stfm-report-v1") {
        throw SimError(context + ": unexpected schema '" + schema +
                       "' (want stfm-report-v1)");
    }
    std::map<std::pair<std::string, std::string>, GroupView> views;
    for (const Json &g :
         doc.at("groups", context).asArray(context + ".groups")) {
        const std::string gc = context + ".groups[]";
        GroupView view;
        view.runs = g.at("runs", gc).asUint(gc + ".runs");
        view.failed = g.at("failed", gc).asUint(gc + ".failed");
        const Json &unfairness = g.at("unfairness", gc);
        view.metricCount =
            unfairness.at("count", gc).asUint(gc + ".unfairness.count");
        view.unfairnessP95 =
            unfairness.at("p95", gc).asDouble(gc + ".unfairness.p95");
        view.unfairnessP99 =
            unfairness.at("p99", gc).asDouble(gc + ".unfairness.p99");
        view.slowdownP99 = g.at("slowdown", gc)
                               .at("p99", gc)
                               .asDouble(gc + ".slowdown.p99");
        for (const Json &w : g.at("workloads", gc)
                                 .asArray(gc + ".workloads")) {
            const std::string wc = gc + ".workloads[]";
            const Json &u = w.at("unfairness", wc);
            view.workloads[w.at("label", wc).asString(wc + ".label")] =
                {u.at("count", wc).asUint(wc + ".unfairness.count"),
                 u.at("mean", wc).asDouble(wc + ".unfairness.mean")};
        }
        views[{g.at("scheduler", gc).asString(gc + ".scheduler"),
               g.at("device", gc).asString(gc + ".device")}] =
            std::move(view);
    }
    return views;
}

std::string
groupLabel(const std::pair<std::string, std::string> &key)
{
    if (key.second.empty())
        return key.first;
    return key.first + "@" + key.second;
}

} // namespace

ReportDiff
diffReports(const Json &current, const Json &baseline,
            const DiffOptions &options)
{
    ReportDiff diff;
    diff.currentName =
        current.at("name", "current report").asString("current.name");
    diff.baselineName = baseline.at("name", "baseline report")
                            .asString("baseline.name");
    const auto cur = groupViews(current, "current report");
    const auto base = groupViews(baseline, "baseline report");
    const double up = 1.0 + options.threshold;
    const double down = 1.0 - options.threshold;

    // Compare one (baseline, current) metric pair; empty distributions
    // on either side carry no information and are skipped.
    const auto compare = [&](const std::string &kind,
                             const std::pair<std::string, std::string>
                                 &key,
                             const std::string &workload, double b,
                             double c, bool comparable) {
        if (!comparable)
            return;
        if (c > b * up) {
            diff.regressions.push_back(
                {kind, key.first, key.second, workload, b, c});
        } else if (c < b * down) {
            ++diff.improvements;
        }
    };

    for (const auto &[key, b] : base) {
        const auto it = cur.find(key);
        if (it == cur.end()) {
            diff.regressions.push_back(
                {"missing-group", key.first, key.second, "",
                 static_cast<double>(b.runs), 0.0});
            continue;
        }
        const GroupView &c = it->second;
        ++diff.comparedGroups;
        if (c.failed > b.failed) {
            diff.regressions.push_back(
                {"group-failures", key.first, key.second, "",
                 static_cast<double>(b.failed),
                 static_cast<double>(c.failed)});
        }
        const bool comparable = b.metricCount > 0 && c.metricCount > 0;
        compare("group-unfairness-p95", key, "", b.unfairnessP95,
                c.unfairnessP95, comparable);
        compare("group-unfairness-p99", key, "", b.unfairnessP99,
                c.unfairnessP99, comparable);
        compare("group-slowdown-p99", key, "", b.slowdownP99,
                c.slowdownP99, comparable);
        for (const auto &[label, bw] : b.workloads) {
            const auto wit = c.workloads.find(label);
            if (wit == c.workloads.end()) {
                diff.regressions.push_back(
                    {"missing-workload", key.first, key.second, label,
                     static_cast<double>(bw.first), 0.0});
                continue;
            }
            ++diff.comparedWorkloads;
            compare("workload-unfairness", key, label, bw.second,
                    wit->second.second,
                    bw.first > 0 && wit->second.first > 0);
        }
    }
    return diff;
}

Json
diffJson(const ReportDiff &diff, const DiffOptions &options)
{
    Json out = Json::object();
    out.set("schema", "stfm-reportdiff-v1");
    out.set("baseline", diff.baselineName);
    out.set("current", diff.currentName);
    out.set("threshold", options.threshold);
    out.set("comparedGroups", diff.comparedGroups);
    out.set("comparedWorkloads", diff.comparedWorkloads);
    out.set("improvements", diff.improvements);
    out.set("regressed", diff.regressed());
    Json regressions = Json::array();
    for (const Regression &r : diff.regressions) {
        Json entry = Json::object();
        entry.set("kind", r.kind);
        entry.set("scheduler", r.scheduler);
        entry.set("device", r.device);
        if (!r.workload.empty())
            entry.set("workload", r.workload);
        entry.set("baseline", r.baseline);
        entry.set("current", r.current);
        regressions.push(std::move(entry));
    }
    out.set("regressions", std::move(regressions));
    return out;
}

void
printDiff(const ReportDiff &diff, const DiffOptions &options,
          std::ostream &os)
{
    os << "report diff: '" << diff.currentName << "' vs baseline '"
       << diff.baselineName << "' (threshold "
       << formatMessage("%.1f%%", options.threshold * 100.0) << ")\n";
    os << "  compared " << diff.comparedGroups << " groups, "
       << diff.comparedWorkloads << " workloads; "
       << diff.improvements << " improved past threshold\n";
    if (!diff.regressed()) {
        os << "  OK: no regressions\n";
        return;
    }
    std::map<std::string, unsigned> byKind;
    for (const Regression &r : diff.regressions) {
        ++byKind[r.kind];
        os << "  REGRESSION " << r.kind << " "
           << groupLabel({r.scheduler, r.device});
        if (!r.workload.empty())
            os << " workload " << r.workload;
        if (r.kind == "missing-group" || r.kind == "missing-workload") {
            os << formatMessage(" (%.0f baseline runs, now absent)",
                                r.baseline);
        } else if (r.kind == "group-failures") {
            os << formatMessage(" (failed runs %.0f -> %.0f)",
                                r.baseline, r.current);
        } else {
            const double pct =
                r.baseline > 0.0
                    ? (r.current / r.baseline - 1.0) * 100.0
                    : 0.0;
            os << formatMessage(" (%.4f -> %.4f, %+.1f%%)", r.baseline,
                                r.current, pct);
        }
        os << "\n";
    }
    const auto wl = byKind.find("workload-unfairness");
    if (wl != byKind.end()) {
        os << formatMessage(
            "  summary: unfairness regressed >%.1f%% on %u workloads\n",
            options.threshold * 100.0, wl->second);
    }
    os << "  total: " << diff.regressions.size() << " regressions\n";
}

} // namespace report
} // namespace stfm
