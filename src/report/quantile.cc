#include "report/quantile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace stfm
{
namespace report
{

int
MetricSketch::bucketOf(double value)
{
    const double clamped = std::max(value, kMinPositive);
    // floor of log10(v) * buckets-per-decade. Bucket k spans
    // [10^(k/N), 10^((k+1)/N)).
    return static_cast<int>(std::floor(
        std::log10(clamped) * static_cast<double>(kBucketsPerDecade)));
}

double
MetricSketch::bucketMid(int index)
{
    const double lo =
        std::pow(10.0, static_cast<double>(index) /
                           static_cast<double>(kBucketsPerDecade));
    const double hi =
        std::pow(10.0, static_cast<double>(index + 1) /
                           static_cast<double>(kBucketsPerDecade));
    return std::sqrt(lo * hi);
}

void
MetricSketch::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    if (bucketed_) {
        ++buckets_[bucketOf(value)];
        return;
    }
    samples_.push_back(value);
    if (samples_.size() > kExactCap)
        collapse();
}

void
MetricSketch::collapse()
{
    for (const double value : samples_)
        ++buckets_[bucketOf(value)];
    samples_.clear();
    samples_.shrink_to_fit();
    bucketed_ = true;
}

void
MetricSketch::merge(const MetricSketch &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;

    if (!bucketed_ && !other.bucketed_ && count_ <= kExactCap) {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        return;
    }
    // Either side already collapsed, or the union exceeds the cap:
    // the merged state is bucketed. Bucketing is per-sample, so the
    // result depends only on the combined multiset — not on which
    // side collapsed first or in what order merges happened.
    if (!bucketed_)
        collapse();
    for (const auto &[index, n] : other.buckets_)
        buckets_[index] += n;
    for (const double value : other.samples_)
        ++buckets_[bucketOf(value)];
}

std::vector<double>
MetricSketch::sorted() const
{
    std::vector<double> values = samples_;
    std::sort(values.begin(), values.end());
    return values;
}

double
MetricSketch::mean() const
{
    if (count_ == 0)
        return 0.0;
    if (!bucketed_) {
        // Sum in sorted order: a pure function of the multiset, so
        // the mean is identical under any merge order.
        double sum = 0.0;
        for (const double value : sorted())
            sum += value;
        return sum / static_cast<double>(count_);
    }
    double sum = 0.0;
    for (const auto &[index, n] : buckets_)
        sum += bucketMid(index) * static_cast<double>(n);
    const double value = sum / static_cast<double>(count_);
    return std::min(std::max(value, min_), max_);
}

double
MetricSketch::quantile(double p) const
{
    STFM_ASSERT(p > 0.0 && p <= 1.0, "quantile out of range");
    if (count_ == 0)
        return 0.0;
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(count_))));
    if (!bucketed_) {
        const std::vector<double> values = sorted();
        return values[static_cast<std::size_t>(rank - 1)];
    }
    std::uint64_t seen = 0;
    for (const auto &[index, n] : buckets_) {
        seen += n;
        if (seen >= rank) {
            const double value = bucketMid(index);
            return std::min(std::max(value, min_), max_);
        }
    }
    return max_;
}

Json
MetricSketch::toJson() const
{
    Json out = Json::object();
    out.set("count", count_);
    out.set("min", min());
    out.set("max", max());
    if (!bucketed_) {
        Json values = Json::array();
        for (const double value : sorted())
            values.push(Json(value));
        out.set("samples", std::move(values));
        return out;
    }
    // std::map iterates in index order: serialization is canonical.
    Json buckets = Json::object();
    for (const auto &[index, n] : buckets_)
        buckets.set(std::to_string(index), n);
    out.set("buckets", std::move(buckets));
    return out;
}

MetricSketch
MetricSketch::fromJson(const Json &json, const std::string &context)
{
    MetricSketch sketch;
    const std::uint64_t count =
        json.at("count", context).asUint(context + ".count");
    if (count == 0)
        return sketch;
    sketch.count_ = count;
    sketch.min_ = json.at("min", context).asDouble(context + ".min");
    sketch.max_ = json.at("max", context).asDouble(context + ".max");
    if (const Json *samples = json.find("samples")) {
        const auto &values = samples->asArray(context + ".samples");
        if (values.size() != count) {
            throw SimError(context + ": count " +
                           std::to_string(count) + " but " +
                           std::to_string(values.size()) + " samples");
        }
        for (const Json &value : values)
            sketch.samples_.push_back(
                value.asDouble(context + ".samples[]"));
        return sketch;
    }
    const auto &buckets =
        json.at("buckets", context).asObject(context + ".buckets");
    sketch.bucketed_ = true;
    std::uint64_t total = 0;
    for (const auto &[key, value] : buckets) {
        int index = 0;
        try {
            index = std::stoi(key);
        } catch (const std::exception &) {
            throw SimError(context + ".buckets: bad bucket index '" +
                           key + "'");
        }
        const std::uint64_t n =
            value.asUint(context + ".buckets." + key);
        sketch.buckets_[index] += n;
        total += n;
    }
    if (total != count) {
        throw SimError(context + ": count " + std::to_string(count) +
                       " but buckets sum to " + std::to_string(total));
    }
    return sketch;
}

bool
MetricSketch::operator==(const MetricSketch &other) const
{
    if (bucketed_ != other.bucketed_ || count_ != other.count_)
        return false;
    if (count_ == 0)
        return true;
    if (min_ != other.min_ || max_ != other.max_)
        return false;
    if (bucketed_)
        return buckets_ == other.buckets_;
    return sorted() == other.sorted();
}

} // namespace report
} // namespace stfm
