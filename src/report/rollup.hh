/**
 * @file
 * The fleet rollup builder: folds per-run artifacts — stfm-results-v1
 * documents, manifest.jsonl shard checkpoints, stfm-telemetry-v1
 * samples — into one fleet-level `stfm-report-v1` document
 * (docs/REPORTING.md is the schema contract).
 *
 * Folding is streaming and order-independent: every distribution is a
 * MetricSketch (report/quantile.hh), whose merge is associative and
 * commutative, and all serialization orders are canonical (groups by
 * plan order then key, workloads by label, sketch samples sorted).
 * The fleet supervisor folds shard outcomes the moment they complete,
 * in whatever order workers finish, and still writes the exact bytes
 * an after-the-fact `stfm report` over the merged results produces.
 *
 * Grouping: one group per (scheduler, device) pair. Failed runs are
 * counted per group and per workload but excluded from the metric
 * distributions (there are no valid metrics to fold). SLO violations
 * are counted against the configured thresholds: one per run whose
 * unfairness exceeds `slo.unfairness`, one per thread whose memory
 * slowdown exceeds `slo.slowdown`.
 */

#ifndef STFM_REPORT_ROLLUP_HH
#define STFM_REPORT_ROLLUP_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "report/quantile.hh"
#include "stats/histogram.hh"

namespace stfm
{

struct RunOutcome;
struct ExperimentPlan;

namespace report
{

/** Fleet SLO thresholds (folded into the report; see REPORTING.md). */
struct SloConfig
{
    /** A run whose unfairness exceeds this violates the fairness SLO. */
    double unfairness = 2.0;
    /** A thread whose memory slowdown exceeds this violates the
     *  per-thread SLO. */
    double slowdown = 4.0;
};

class ReportBuilder
{
  public:
    explicit ReportBuilder(std::string name, SloConfig slo = {});

    /**
     * Fold one run outcome under its labels (the fleet streaming
     * path). @p scheduler may carry the plan's "@<device>" suffix; it
     * is stripped when it names @p device. @p order_hint fixes the
     * group's position in the serialized report (plan scheduler
     * index); pass -1 to assign first-seen order.
     */
    void addOutcome(const std::string &scheduler,
                    const std::string &device,
                    const std::string &workload,
                    const RunOutcome &outcome, int order_hint);

    /**
     * Fold every run of a stfm-results-v1 document. Returns the runs
     * folded. @throws SimError on a malformed document.
     */
    std::uint64_t addResultsDoc(const Json &doc,
                                const std::string &source_path);

    /**
     * Fold the completed shards of a manifest.jsonl checkpoint,
     * labeling outcomes by re-deriving the job grid from @p plan (the
     * same planExperiment() the sweep used). Returns the runs folded.
     * @throws SimError on unreadable contents or a plan whose job
     * count disagrees with the manifest header.
     */
    std::uint64_t addManifest(const std::string &path,
                              const ExperimentPlan &plan);

    /**
     * Merge a stfm-telemetry-v1 document's read-latency histograms
     * into the fleet-level latency distribution. Documents without
     * histograms fold as a no-op. @throws SimError on malformed input.
     */
    void addTelemetryDoc(const Json &doc,
                         const std::string &source_path);

    /** Record an ingested source in the report's provenance list. */
    void noteSource(const std::string &path, const std::string &kind,
                    std::uint64_t runs);

    /** Total outcomes folded so far (failed included). */
    std::uint64_t runs() const { return runs_; }

    /** The stfm-report-v1 document (docs/REPORTING.md). */
    Json toJson() const;

  private:
    struct WorkloadStats
    {
        std::uint64_t runs = 0;
        std::uint64_t failed = 0;
        MetricSketch unfairness;
    };

    struct Group
    {
        int order = -1;
        std::uint64_t runs = 0;
        std::uint64_t failed = 0;
        std::uint64_t sloUnfairness = 0;
        std::uint64_t sloSlowdown = 0;
        MetricSketch unfairness;
        MetricSketch slowdown;
        MetricSketch weightedSpeedup;
        std::map<std::string, WorkloadStats> workloads;
    };

    struct Source
    {
        std::string path;
        std::string kind;
        std::uint64_t runs = 0;
    };

    Group &groupFor(const std::string &scheduler,
                    const std::string &device, int order_hint);
    void addRun(Group &group, const std::string &workload, bool failed,
                double unfairness, const std::vector<double> &slowdowns,
                double weighted_speedup);

    std::string name_;
    SloConfig slo_;
    std::uint64_t runs_ = 0;
    std::uint64_t failedRuns_ = 0;
    int nextOrder_ = 0;
    /** Keyed (scheduler, device); serialization sorts by (order, key). */
    std::map<std::pair<std::string, std::string>, Group> groups_;
    std::vector<Source> sources_;
    std::uint64_t streamedRuns_ = 0;
    LatencyHistogram readLatency_;
    bool haveReadLatency_ = false;
};

/**
 * Serialize one distribution block: MetricSketch stats (count, min,
 * max, mean, p50, p95, p99) plus the sketch payload ("samples" or
 * "buckets") that keeps the block mergeable downstream.
 */
Json distributionJson(const MetricSketch &sketch);

// Input discovery ----------------------------------------------------

/** True when @p path exists at all (any file type). */
bool pathExists(const std::string &path);

/** True when @p path names a directory. */
bool isDirectory(const std::string &path);

/**
 * Regular files directly inside directory @p path, sorted by name
 * (canonical ingestion order). @throws SimError when unreadable.
 */
std::vector<std::string> listDirectoryFiles(const std::string &path);

} // namespace report
} // namespace stfm

#endif // STFM_REPORT_ROLLUP_HH
