/**
 * @file
 * The CMP system: N trace-driven cores sharing one multi-channel DRAM
 * memory system through the scheduling policy under test.
 *
 * Following the paper's methodology (Section 6), each thread runs a
 * fixed instruction budget; its statistics freeze the cycle it commits
 * the budget, but the thread keeps executing so that the remaining
 * threads continue to see its interference. The run ends when every
 * thread's stats are frozen.
 */

#ifndef STFM_SIM_SYSTEM_HH
#define STFM_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/results.hh"
#include "trace/trace.hh"

namespace stfm
{

class CmpSystem
{
  public:
    /**
     * @param config System configuration; `config.cores` must equal
     *               `traces.size()`.
     * @param traces One instruction stream per core.
     */
    CmpSystem(const SimConfig &config,
              std::vector<std::unique_ptr<TraceSource>> traces);

    /** Run to completion (all budgets met or the cycle limit). */
    SimResult run();

    MemorySystem &memory() { return memory_; }
    const SimConfig &config() const { return config_; }

  private:
    /** Counter snapshot taken when a thread finishes its warmup. */
    struct WarmSnapshot
    {
        bool taken = false;
        std::uint64_t instructions = 0;
        Cycles cycle = 0;
        Cycles memStall = 0;
        std::uint64_t l2Misses = 0;
        ControllerThreadStats memStats;
    };

    void snapshotThread(unsigned t, Cycles now);
    void freezeThread(unsigned t, Cycles now, SimResult &result);

    SimConfig config_;
    std::vector<std::unique_ptr<TraceSource>> traces_;
    MemorySystem memory_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Cycles> stallSnapshot_;
    std::vector<bool> frozen_;
    std::vector<WarmSnapshot> warm_;
    Cycles cpuNow_ = 0;
};

} // namespace stfm

#endif // STFM_SIM_SYSTEM_HH
