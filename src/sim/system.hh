/**
 * @file
 * The CMP system: N trace-driven cores sharing one multi-channel DRAM
 * memory system through the scheduling policy under test.
 *
 * Following the paper's methodology (Section 6), each thread runs a
 * fixed instruction budget; its statistics freeze the cycle it commits
 * the budget, but the thread keeps executing so that the remaining
 * threads continue to see its interference. The run ends when every
 * thread's stats are frozen.
 */

#ifndef STFM_SIM_SYSTEM_HH
#define STFM_SIM_SYSTEM_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "obs/session.hh"
#include "sim/config.hh"
#include "sim/results.hh"
#include "trace/trace.hh"

namespace stfm
{

class CmpSystem
{
  public:
    /**
     * @param config System configuration; `config.cores` must equal
     *               `traces.size()`.
     * @param traces One instruction stream per core.
     */
    CmpSystem(const SimConfig &config,
              std::vector<std::unique_ptr<TraceSource>> traces);

    /** Run to completion (all budgets met or the cycle limit). */
    SimResult run();

    MemorySystem &memory() { return memory_; }
    const SimConfig &config() const { return config_; }

    /**
     * The observability session, or null when telemetry and tracing
     * are both disabled. Documents are valid after run() returns
     * (finalize happens in run's epilogue).
     */
    const ObsSession *obs() const { return obs_.get(); }

  private:
    /** Counter snapshot taken when a thread finishes its warmup. */
    struct WarmSnapshot
    {
        bool taken = false;
        std::uint64_t instructions = 0;
        Cycles cycle = 0;
        Cycles memStall = 0;
        std::uint64_t l2Misses = 0;
        ControllerThreadStats memStats;
    };

    void snapshotThread(unsigned t, Cycles now);
    void freezeThread(unsigned t, Cycles now, SimResult &result);

    /**
     * Fast-forward from post-tick state at @p now: if every core is
     * quiescent and no DRAM cycle is interesting before some wake
     * cycle, advance straight to it — replaying only the per-cycle
     * effects a cycle-by-cycle run would have had (stall counters,
     * DRAM-boundary policy accounting). @return the last cycle whose
     * effects are applied (the loop resumes at the cycle after it);
     * @p now itself when nothing can be skipped.
     */
    Cycles fastForward(Cycles now);

    /**
     * Drop every cached core quiescence window if memory state a core
     * can observe changed since the caches were computed (column issue
     * = request-buffer capacity freed). Read completions invalidate the
     * affected core directly from the read callback.
     */
    void refreshCoreEventGen()
    {
        const std::uint64_t gen = memory_.coreEventGen();
        if (gen != coreEventGenSeen_) {
            coreEventGenSeen_ = gen;
            std::fill(coreWakeValid_.begin(), coreWakeValid_.end(), 0);
        }
    }

    SimConfig config_;
    std::vector<std::unique_ptr<TraceSource>> traces_;
    MemorySystem memory_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** Null unless config_.telemetry.collecting() — the hot path pays
     *  one null check per executed DRAM boundary when disabled. */
    std::unique_ptr<ObsSession> obs_;
    std::vector<Cycles> stallSnapshot_;
    std::vector<bool> frozen_;
    std::vector<WarmSnapshot> warm_;
    /**
     * Per-core quiescence cache: until coreWake_[t], core t's ticks are
     * no-ops except a stall-counter increment when coreStalls_[t] is
     * set, so the loop applies that increment directly instead of
     * ticking. Entries are invalidated by the core's own tick, its read
     * completions, and memory capacity events (see refreshCoreEventGen).
     */
    std::vector<Cycles> coreWake_;
    std::vector<char> coreStalls_;
    std::vector<char> coreWakeValid_;
    std::uint64_t coreEventGenSeen_ = 0;
    /**
     * Run-ahead horizon: core t already executed every cycle below
     * coreAheadUntil_[t] via Core::runAhead() and accrued no stall
     * doing so. Until then it must not be ticked again and is immune to
     * cache invalidation (a run-ahead core has no outstanding request,
     * so no external event can be aimed at it).
     */
    std::vector<Cycles> coreAheadUntil_;
    /** Max cycles a single runAhead() burst may cover. Bounds wasted
     *  work past the (unknowable in advance) end of the run; large
     *  enough that burst re-entry cost is noise. */
    static constexpr Cycles kRunAheadChunk = 65536;
    Cycles cpuNow_ = 0;

    /** Committed-instruction count at which core @p t next crosses a
     *  snapshot/freeze threshold (run-ahead must stop short of it). */
    std::uint64_t commitCap(unsigned t) const
    {
        if (!warm_[t].taken)
            return config_.warmupInstructions;
        if (!frozen_[t])
            return config_.warmupInstructions +
                   config_.instructionBudget;
        return ~0ULL;
    }
};

} // namespace stfm

#endif // STFM_SIM_SYSTEM_HH
