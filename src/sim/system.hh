/**
 * @file
 * The CMP system: N trace-driven cores sharing one multi-channel DRAM
 * memory system through the scheduling policy under test.
 *
 * Following the paper's methodology (Section 6), each thread runs a
 * fixed instruction budget; its statistics freeze the cycle it commits
 * the budget, but the thread keeps executing so that the remaining
 * threads continue to see its interference. The run ends when every
 * thread's stats are frozen.
 */

#ifndef STFM_SIM_SYSTEM_HH
#define STFM_SIM_SYSTEM_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "obs/session.hh"
#include "sim/config.hh"
#include "sim/results.hh"
#include "trace/trace.hh"

namespace stfm
{

/**
 * Indexed binary min-heap of per-core due cycles. Keyed on
 * (due, thread): ties break toward the lower thread index so that
 * cores waking on the same cycle are processed in the exact order the
 * cycle-by-cycle reference ticks them (core-to-memory enqueue order is
 * architecturally visible through the request buffer).
 */
class WakeHeap
{
  public:
    /** (Re)build the heap with @p n cores, all due at cycle 0. */
    void
    reset(unsigned n)
    {
        heap_.resize(n);
        pos_.resize(n);
        for (unsigned t = 0; t < n; ++t) {
            heap_[t] = {0, t};
            pos_[t] = t;
        }
    }

    Cycles minDue() const { return heap_[0].due; }
    unsigned minThread() const { return heap_[0].thread; }

    /** Move core @p t's due cycle (either direction). */
    void
    setDue(unsigned t, Cycles due)
    {
        unsigned i = pos_[t];
        const Cycles old = heap_[i].due;
        heap_[i].due = due;
        if (due < old)
            siftUp(i);
        else if (due > old)
            siftDown(i);
    }

  private:
    struct Slot
    {
        Cycles due;
        unsigned thread;
    };

    bool
    before(const Slot &a, const Slot &b) const
    {
        return a.due != b.due ? a.due < b.due : a.thread < b.thread;
    }

    void
    place(unsigned i, Slot s)
    {
        heap_[i] = s;
        pos_[s.thread] = i;
    }

    void
    siftUp(unsigned i)
    {
        const Slot s = heap_[i];
        while (i > 0) {
            const unsigned parent = (i - 1) / 2;
            if (!before(s, heap_[parent]))
                break;
            place(i, heap_[parent]);
            i = parent;
        }
        place(i, s);
    }

    void
    siftDown(unsigned i)
    {
        const Slot s = heap_[i];
        const unsigned n = static_cast<unsigned>(heap_.size());
        for (;;) {
            unsigned child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && before(heap_[child + 1], heap_[child]))
                ++child;
            if (!before(heap_[child], s))
                break;
            place(i, heap_[child]);
            i = child;
        }
        place(i, s);
    }

    std::vector<Slot> heap_;
    std::vector<unsigned> pos_; ///< thread -> heap index
};

class CmpSystem
{
  public:
    /**
     * @param config System configuration; `config.cores` must equal
     *               `traces.size()`.
     * @param traces One instruction stream per core.
     */
    CmpSystem(const SimConfig &config,
              std::vector<std::unique_ptr<TraceSource>> traces);

    /** Run to completion (all budgets met or the cycle limit). */
    SimResult run();

    MemorySystem &memory() { return memory_; }
    const SimConfig &config() const { return config_; }

    /**
     * The observability session, or null when telemetry and tracing
     * are both disabled. Documents are valid after run() returns
     * (finalize happens in run's epilogue).
     */
    const ObsSession *obs() const { return obs_.get(); }

  private:
    /** Counter snapshot taken when a thread finishes its warmup. */
    struct WarmSnapshot
    {
        bool taken = false;
        std::uint64_t instructions = 0;
        Cycles cycle = 0;
        Cycles memStall = 0;
        std::uint64_t l2Misses = 0;
        ControllerThreadStats memStats;
    };

    void snapshotThread(unsigned t, Cycles now);
    void freezeThread(unsigned t, Cycles now, SimResult &result);

    /**
     * The cumulative memory-stall counter core @p t would show after a
     * cycle-by-cycle run ticked it at cycle @p c. Stall accrual is
     * lazy: a sleeping, stalling core's counter is materialized only
     * when visited (see stallAnchor_), so reads in between — the
     * per-boundary stall snapshot STFM consumes — extrapolate from the
     * anchor instead.
     */
    Cycles
    stallAt(unsigned t, Cycles c) const
    {
        return cores_[t]->memStallCycles() +
               (coreStalls_[t] ? c - stallAnchor_[t] : 0);
    }

    SimConfig config_;
    std::vector<std::unique_ptr<TraceSource>> traces_;
    MemorySystem memory_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** Null unless config_.telemetry.collecting() — the hot path pays
     *  one null check per executed DRAM boundary when disabled. */
    std::unique_ptr<ObsSession> obs_;
    std::vector<Cycles> stallSnapshot_;
    std::vector<bool> frozen_;
    std::vector<WarmSnapshot> warm_;
    /**
     * The event model: each core sleeps until its due cycle. due = the
     * core's exact quiescence wake (Core::nextEventCycle) after a
     * progress-free tick, now + 1 after a progressing tick, or the end
     * of a Core::runAhead() burst (those cycles already executed).
     * Sleeps are cut short by the core's own read completions (the
     * callback re-arms the core for the next cycle) and — for cores
     * whose sleep depends on memory capacity (coreWaitsCap_) — by a
     * column issue during a boundary tick (coreEventGenSeen_). The
     * global clock jumps to min(heap, memory's next interesting cycle).
     */
    WakeHeap wake_;
    /** Sleeping core t accrues one stall cycle per slept cycle. */
    std::vector<char> coreStalls_;
    /** Core t's sleep must end early if controller capacity frees. */
    std::vector<char> coreWaitsCap_;
    /**
     * Lazy stall accrual: core t's memStallCycles() is accurate as of
     * its post-tick state at cycle stallAnchor_[t]; each later slept
     * cycle owes one stall iff coreStalls_[t]. Materialized when the
     * core is next visited, when a completion callback fires, and at
     * loop exit. stallAt() reads the counter without materializing.
     */
    std::vector<Cycles> stallAnchor_;
    std::uint64_t coreEventGenSeen_ = 0;
    /** Max cycles a single runAhead() burst may cover. Bounds wasted
     *  work past the (unknowable in advance) end of the run; large
     *  enough that burst re-entry cost is noise. */
    static constexpr Cycles kRunAheadChunk = 65536;
    Cycles cpuNow_ = 0;

    /** Committed-instruction count at which core @p t next crosses a
     *  snapshot/freeze threshold (run-ahead must stop short of it). */
    std::uint64_t commitCap(unsigned t) const
    {
        if (!warm_[t].taken)
            return config_.warmupInstructions;
        if (!frozen_[t])
            return config_.warmupInstructions +
                   config_.instructionBudget;
        return ~0ULL;
    }
};

} // namespace stfm

#endif // STFM_SIM_SYSTEM_HH
