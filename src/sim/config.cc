#include "sim/config.hh"

namespace stfm
{

unsigned
SimConfig::channelsForCores(unsigned cores)
{
    if (cores <= 4)
        return 1;
    if (cores <= 8)
        return 2;
    return 4;
}

SimConfig
SimConfig::baseline(unsigned cores)
{
    SimConfig config;
    config.cores = cores;
    config.memory.channels = channelsForCores(cores);
    return config;
}

} // namespace stfm
