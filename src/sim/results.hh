/**
 * @file
 * Simulation result records.
 */

#ifndef STFM_SIM_RESULTS_HH
#define STFM_SIM_RESULTS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace stfm
{

/** Per-thread outcome, frozen when the thread reaches its budget. */
struct ThreadResult
{
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    Cycles memStallCycles = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowClosed = 0;
    std::uint64_t rowConflicts = 0;
    /** Demand-read service latency (enqueue to data) in DRAM cycles,
     *  over the whole run including warmup. */
    double readLatencyMean = 0.0;
    std::uint64_t readLatencyP50 = 0;
    std::uint64_t readLatencyP99 = 0;
    std::uint64_t readLatencyMax = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    /** Memory (L2-miss) stall cycles per instruction. */
    double
    mcpi() const
    {
        return instructions ? static_cast<double>(memStallCycles) /
                                  instructions
                            : 0.0;
    }

    /** L2 misses per kilo-instruction. */
    double
    mpki() const
    {
        return instructions ? 1000.0 * l2Misses / instructions : 0.0;
    }

    /** Row-buffer hit rate of the thread's serviced DRAM accesses. */
    double
    rowHitRate() const
    {
        const std::uint64_t total = rowHits + rowClosed + rowConflicts;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
};

/** Outcome of one simulation run. */
struct SimResult
{
    std::vector<ThreadResult> threads;
    Cycles totalCycles = 0;
    /** True if the safety cycle limit fired before all budgets. */
    bool hitCycleLimit = false;
};

} // namespace stfm

#endif // STFM_SIM_RESULTS_HH
