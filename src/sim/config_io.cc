#include "sim/config_io.hh"

#include <bit>
#include <cctype>
#include <exception>
#include <utility>

#include "common/logging.hh"
#include "sim/device_io.hh"

namespace stfm
{

namespace
{

/**
 * Field-walker over one JSON object section: every member must match a
 * registered field name exactly once; leftovers are unknown keys.
 */
class Fields
{
  public:
    Fields(const Json &overrides, const std::string &context)
        : object_(overrides.asObject(context)), context_(context),
          consumed_(object_.size(), false)
    {}

    ~Fields() noexcept(false)
    {
        // Surface unknown keys even when the caller consumed only a
        // subset — but never while already unwinding another error.
        if (std::uncaught_exceptions() == 0)
            finish();
    }

    /** The member JSON for @p key, or nullptr when absent. */
    const Json *
    get(const std::string &key)
    {
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (object_[i].first == key) {
                consumed_[i] = true;
                return &object_[i].second;
            }
        }
        return nullptr;
    }

    std::string
    path(const std::string &key) const
    {
        return context_ + "." + key;
    }

    // Typed setters: overwrite @p out when the key is present.
    void
    number(const std::string &key, double &out)
    {
        if (const Json *v = get(key))
            out = v->asDouble(path(key));
    }

    void
    boolean(const std::string &key, bool &out)
    {
        if (const Json *v = get(key))
            out = v->asBool(path(key));
    }

    void
    u64(const std::string &key, std::uint64_t &out)
    {
        if (const Json *v = get(key))
            out = v->asUint(path(key));
    }

    void
    u32(const std::string &key, unsigned &out)
    {
        if (const Json *v = get(key)) {
            const std::uint64_t wide = v->asUint(path(key));
            if (wide > 0xffffffffULL) {
                throw SimError(formatMessage(
                    "%s: value %llu does not fit a 32-bit field",
                    path(key).c_str(),
                    static_cast<unsigned long long>(wide)));
            }
            out = static_cast<unsigned>(wide);
        }
    }

    void
    string(const std::string &key, std::string &out)
    {
        if (const Json *v = get(key))
            out = v->asString(path(key));
    }

    void
    numberList(const std::string &key, std::vector<double> &out)
    {
        if (const Json *v = get(key)) {
            out.clear();
            const Json::Array &items = v->asArray(path(key));
            for (std::size_t i = 0; i < items.size(); ++i) {
                out.push_back(items[i].asDouble(
                    formatMessage("%s[%zu]", path(key).c_str(), i)));
            }
        }
    }

    void
    finish()
    {
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (!consumed_[i]) {
                throw SimError(formatMessage(
                    "%s: unknown key '%s'", context_.c_str(),
                    object_[i].first.c_str()));
            }
        }
        consumed_.assign(object_.size(), true);
    }

  private:
    const Json::Object &object_;
    std::string context_;
    std::vector<bool> consumed_;
};

Json
doubleList(const std::vector<double> &values)
{
    Json out = Json::array();
    for (const double v : values)
        out.push(Json(v));
    return out;
}

} // namespace

// --------------------------------------------------------------------
// DramTiming

Json
toJson(const DramTiming &timing)
{
    Json out = Json::object();
    out.set("tCL", timing.tCL);
    out.set("tRCD", timing.tRCD);
    out.set("tRP", timing.tRP);
    out.set("tRAS", timing.tRAS);
    out.set("tRC", timing.tRC);
    out.set("tWR", timing.tWR);
    out.set("tWTR", timing.tWTR);
    out.set("tRTP", timing.tRTP);
    out.set("tCCD", timing.tCCD);
    out.set("tRRD", timing.tRRD);
    out.set("tFAW", timing.tFAW);
    out.set("tCCD_S", timing.tCCD_S);
    out.set("tRRD_S", timing.tRRD_S);
    out.set("tWTR_S", timing.tWTR_S);
    out.set("tWL", timing.tWL);
    out.set("burst", timing.burst);
    out.set("tREFI", timing.tREFI);
    out.set("tRFC", timing.tRFC);
    return out;
}

void
applyJson(const Json &overrides, DramTiming &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    fields.u64("tCL", out.tCL);
    fields.u64("tRCD", out.tRCD);
    fields.u64("tRP", out.tRP);
    fields.u64("tRAS", out.tRAS);
    fields.u64("tRC", out.tRC);
    fields.u64("tWR", out.tWR);
    fields.u64("tWTR", out.tWTR);
    fields.u64("tRTP", out.tRTP);
    fields.u64("tCCD", out.tCCD);
    fields.u64("tRRD", out.tRRD);
    fields.u64("tFAW", out.tFAW);
    fields.u64("tCCD_S", out.tCCD_S);
    fields.u64("tRRD_S", out.tRRD_S);
    fields.u64("tWTR_S", out.tWTR_S);
    fields.u64("tWL", out.tWL);
    fields.u64("burst", out.burst);
    fields.u64("tREFI", out.tREFI);
    fields.u64("tRFC", out.tRFC);
}

// --------------------------------------------------------------------
// CacheParams

Json
toJson(const CacheParams &cache)
{
    Json out = Json::object();
    out.set("sizeBytes", cache.sizeBytes);
    out.set("ways", cache.ways);
    out.set("lineBytes", cache.lineBytes);
    out.set("latency", cache.latency);
    return out;
}

void
applyJson(const Json &overrides, CacheParams &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    fields.u64("sizeBytes", out.sizeBytes);
    fields.u32("ways", out.ways);
    fields.u64("lineBytes", out.lineBytes);
    fields.u64("latency", out.latency);
}

// --------------------------------------------------------------------
// CoreParams

Json
toJson(const CoreParams &cpu)
{
    Json out = Json::object();
    out.set("windowSize", cpu.windowSize);
    out.set("fetchWidth", cpu.fetchWidth);
    out.set("commitWidth", cpu.commitWidth);
    out.set("mshrs", cpu.mshrs);
    out.set("l1", toJson(cpu.l1));
    out.set("l2", toJson(cpu.l2));
    out.set("dramOverhead", cpu.dramOverhead);
    out.set("maxPendingWritebacks", cpu.maxPendingWritebacks);
    return out;
}

void
applyJson(const Json &overrides, CoreParams &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    fields.u32("windowSize", out.windowSize);
    fields.u32("fetchWidth", out.fetchWidth);
    fields.u32("commitWidth", out.commitWidth);
    fields.u32("mshrs", out.mshrs);
    if (const Json *v = fields.get("l1"))
        applyJson(*v, out.l1, fields.path("l1"));
    if (const Json *v = fields.get("l2"))
        applyJson(*v, out.l2, fields.path("l2"));
    fields.u64("dramOverhead", out.dramOverhead);
    fields.u32("maxPendingWritebacks", out.maxPendingWritebacks);
}

// --------------------------------------------------------------------
// IntegrityConfig

Json
toJson(const IntegrityConfig &integrity)
{
    Json out = Json::object();
    out.set("protocolCheck", integrity.protocolCheck);
    out.set("watchdog", integrity.watchdog);
    out.set("starvationBound", integrity.starvationBound);
    out.set("progressCheckStride", integrity.progressCheckStride);
    out.set("throwOnViolation", integrity.throwOnViolation);
    return out;
}

void
applyJson(const Json &overrides, IntegrityConfig &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    fields.boolean("protocolCheck", out.protocolCheck);
    fields.boolean("watchdog", out.watchdog);
    fields.u64("starvationBound", out.starvationBound);
    fields.u64("progressCheckStride", out.progressCheckStride);
    fields.boolean("throwOnViolation", out.throwOnViolation);
}

// --------------------------------------------------------------------
// ControllerParams

Json
toJson(const ControllerParams &controller)
{
    Json out = Json::object();
    out.set("requestBufferEntries", controller.requestBufferEntries);
    out.set("writeBufferEntries", controller.writeBufferEntries);
    out.set("writeDrainHigh", controller.writeDrainHigh);
    out.set("writeDrainLow", controller.writeDrainLow);
    out.set("refreshEnabled", controller.refreshEnabled);
    out.set("rowProtection", controller.rowProtection);
    out.set("integrity", toJson(controller.integrity));
    return out;
}

void
applyJson(const Json &overrides, ControllerParams &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    fields.u32("requestBufferEntries", out.requestBufferEntries);
    fields.u32("writeBufferEntries", out.writeBufferEntries);
    fields.u32("writeDrainHigh", out.writeDrainHigh);
    fields.u32("writeDrainLow", out.writeDrainLow);
    fields.boolean("refreshEnabled", out.refreshEnabled);
    fields.boolean("rowProtection", out.rowProtection);
    if (const Json *v = fields.get("integrity"))
        applyJson(*v, out.integrity, fields.path("integrity"));
}

// --------------------------------------------------------------------
// MemoryConfig

Json
toJson(const MemoryConfig &memory)
{
    Json out = Json::object();
    if (!memory.device.empty())
        out.set("device", memory.device);
    out.set("channels", memory.channels);
    out.set("banksPerChannel", memory.banksPerChannel);
    out.set("bankGroups", memory.bankGroups);
    out.set("rowBytes", memory.rowBytes);
    out.set("lineBytes", memory.lineBytes);
    out.set("rowsPerBank", memory.rowsPerBank);
    out.set("xorBankMapping", memory.xorBankMapping);
    out.set("coreFrequencyMHz", memory.coreFrequencyMHz);
    out.set("dramBusMHz", memory.dramBusMHz);
    out.set("timing", toJson(memory.timing));
    out.set("controller", toJson(memory.controller));
    return out;
}

void
applyJson(const Json &overrides, MemoryConfig &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    // The device reference applies first: it rewrites geometry, clock
    // and timing wholesale, and any explicit keys alongside it in the
    // same object then override individual fields.
    if (const Json *v = fields.get("device"))
        applyDevice(out, v->asString(fields.path("device")));
    fields.u32("channels", out.channels);
    fields.u32("banksPerChannel", out.banksPerChannel);
    fields.u32("bankGroups", out.bankGroups);
    fields.u64("rowBytes", out.rowBytes);
    fields.u64("lineBytes", out.lineBytes);
    fields.u64("rowsPerBank", out.rowsPerBank);
    fields.boolean("xorBankMapping", out.xorBankMapping);
    fields.u32("coreFrequencyMHz", out.coreFrequencyMHz);
    fields.u32("dramBusMHz", out.dramBusMHz);
    if (const Json *v = fields.get("timing"))
        applyJson(*v, out.timing, fields.path("timing"));
    if (const Json *v = fields.get("controller"))
        applyJson(*v, out.controller, fields.path("controller"));
}

// --------------------------------------------------------------------
// SchedulerConfig

PolicyKind
policyKindFromName(const std::string &name)
{
    // Normalize: lowercase, drop separators ("FR-FCFS+Cap" and
    // "fr_fcfs_cap" both resolve).
    std::string key;
    for (const char c : name) {
        if (c == '-' || c == '+' || c == '_' || c == ' ')
            continue;
        key += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    if (key == "frfcfs")
        return PolicyKind::FrFcfs;
    if (key == "fcfs")
        return PolicyKind::Fcfs;
    if (key == "frfcfscap" || key == "cap")
        return PolicyKind::FrFcfsCap;
    if (key == "nfq")
        return PolicyKind::Nfq;
    if (key == "stfm")
        return PolicyKind::Stfm;
    throw SimError(formatMessage(
        "unknown scheduling policy '%s' (known: FR-FCFS, FCFS, "
        "FRFCFS+Cap, NFQ, STFM)",
        name.c_str()));
}

Json
toJson(const SchedulerConfig &scheduler)
{
    Json out = Json::object();
    out.set("policy", toString(scheduler.kind));
    switch (scheduler.kind) {
    case PolicyKind::FrFcfs:
    case PolicyKind::Fcfs:
        break;
    case PolicyKind::FrFcfsCap:
        out.set("cap", scheduler.cap);
        break;
    case PolicyKind::Nfq:
        if (!scheduler.shares.empty())
            out.set("shares", doubleList(scheduler.shares));
        out.set("inversionThreshold", scheduler.inversionThreshold);
        break;
    case PolicyKind::Stfm:
        out.set("alpha", scheduler.alpha);
        out.set("intervalLength", scheduler.intervalLength);
        out.set("gamma", scheduler.gamma);
        out.set("quantizeSlowdowns", scheduler.quantizeSlowdowns);
        out.set("busInterference", scheduler.busInterference);
        out.set("requestLevelEstimator",
                scheduler.requestLevelEstimator);
        if (!scheduler.weights.empty())
            out.set("weights", doubleList(scheduler.weights));
        break;
    }
    return out;
}

void
applyJson(const Json &overrides, SchedulerConfig &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    if (const Json *v = fields.get("policy"))
        out.kind = policyKindFromName(v->asString(fields.path("policy")));
    fields.number("alpha", out.alpha);
    fields.u64("intervalLength", out.intervalLength);
    fields.number("gamma", out.gamma);
    fields.boolean("quantizeSlowdowns", out.quantizeSlowdowns);
    fields.boolean("busInterference", out.busInterference);
    fields.boolean("requestLevelEstimator", out.requestLevelEstimator);
    fields.numberList("weights", out.weights);
    fields.u32("cap", out.cap);
    fields.numberList("shares", out.shares);
    fields.u64("inversionThreshold", out.inversionThreshold);
}

// --------------------------------------------------------------------
// TelemetryConfig

Json
toJson(const TelemetryConfig &telemetry)
{
    Json out = Json::object();
    out.set("enabled", telemetry.enabled);
    out.set("epochCycles", telemetry.epochCycles);
    out.set("output", telemetry.output);
    out.set("trace", telemetry.trace);
    return out;
}

void
applyJson(const Json &overrides, TelemetryConfig &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    fields.boolean("enabled", out.enabled);
    fields.u64("epochCycles", out.epochCycles);
    fields.string("output", out.output);
    fields.string("trace", out.trace);
}

// --------------------------------------------------------------------
// SimConfig

Json
toJson(const SimConfig &config)
{
    Json out = Json::object();
    out.set("cores", config.cores);
    out.set("instructionBudget", config.instructionBudget);
    out.set("warmupInstructions", config.warmupInstructions);
    out.set("maxCycles", config.maxCycles);
    out.set("fastForward", config.fastForward);
    out.set("cpu", toJson(config.cpu));
    out.set("memory", toJson(config.memory));
    out.set("scheduler", toJson(config.scheduler));
    out.set("telemetry", toJson(config.telemetry));
    return out;
}

void
applyJson(const Json &overrides, SimConfig &out,
          const std::string &context)
{
    Fields fields(overrides, context);
    fields.u32("cores", out.cores);
    fields.u64("instructionBudget", out.instructionBudget);
    fields.u64("warmupInstructions", out.warmupInstructions);
    fields.u64("maxCycles", out.maxCycles);
    fields.boolean("fastForward", out.fastForward);
    if (const Json *v = fields.get("cpu"))
        applyJson(*v, out.cpu, fields.path("cpu"));
    if (const Json *v = fields.get("memory"))
        applyJson(*v, out.memory, fields.path("memory"));
    if (const Json *v = fields.get("scheduler"))
        applyJson(*v, out.scheduler, fields.path("scheduler"));
    if (const Json *v = fields.get("telemetry"))
        applyJson(*v, out.telemetry, fields.path("telemetry"));
}

SimConfig
simConfigFromJson(const Json &overrides, unsigned default_cores)
{
    unsigned cores = default_cores;
    if (const Json *v = overrides.find("cores")) {
        const std::uint64_t wide = v->asUint("config.cores");
        cores = static_cast<unsigned>(wide);
    }
    // baseline(cores) first so channel scaling tracks the core count;
    // explicit "memory.channels" overrides still win below.
    SimConfig config = SimConfig::baseline(cores);
    applyJson(overrides, config, "config");
    return config;
}

// --------------------------------------------------------------------
// Validation

namespace
{

void
check(std::vector<std::string> &problems, bool ok, std::string message)
{
    if (!ok)
        problems.push_back(std::move(message));
}

bool
powerOfTwo(std::uint64_t v)
{
    return v != 0 && std::has_single_bit(v);
}

} // namespace

std::vector<std::string>
validateConfig(const SimConfig &config)
{
    std::vector<std::string> problems;
    const MemoryConfig &mem = config.memory;
    const DramTiming &t = mem.timing;
    const ControllerParams &ctl = mem.controller;
    const CoreParams &cpu = config.cpu;
    const SchedulerConfig &sched = config.scheduler;

    // Run shape ------------------------------------------------------
    check(problems, config.cores >= 1,
          "cores: zero-thread workloads cannot run (cores must be >= 1)");
    check(problems, config.cores <= 32,
          formatMessage("cores: %u exceeds the 32-thread limit of the "
                        "scheduler's per-thread bitmasks",
                        config.cores));
    check(problems, config.instructionBudget > 0,
          "instructionBudget: must be positive");
    check(problems, config.maxCycles > 0, "maxCycles: must be positive");

    // Clock domains --------------------------------------------------
    if (mem.coreFrequencyMHz == 0 || mem.dramBusMHz == 0) {
        problems.push_back("memory: coreFrequencyMHz and dramBusMHz "
                           "must be positive");
    } else {
        check(problems, mem.coreFrequencyMHz % mem.dramBusMHz == 0,
              formatMessage(
                  "memory: non-integer CPU:DRAM clock ratio (%u MHz "
                  "core / %u MHz bus); the simulator ticks the DRAM "
                  "domain on whole CPU cycles",
                  mem.coreFrequencyMHz, mem.dramBusMHz));
        check(problems, mem.coreFrequencyMHz >= mem.dramBusMHz,
              formatMessage("memory: core clock (%u MHz) below the DRAM "
                            "bus clock (%u MHz)",
                            mem.coreFrequencyMHz, mem.dramBusMHz));
    }

    // Geometry (AddressMapping would otherwise assert) ---------------
    check(problems, powerOfTwo(mem.channels),
          formatMessage("memory.channels: %u is not a power of two",
                        mem.channels));
    check(problems, powerOfTwo(mem.banksPerChannel),
          formatMessage(
              "memory.banksPerChannel: %u is not a power of two",
              mem.banksPerChannel));
    check(problems,
          powerOfTwo(mem.bankGroups) &&
              mem.bankGroups <= mem.banksPerChannel &&
              mem.banksPerChannel % mem.bankGroups == 0,
          formatMessage("memory.bankGroups: %u must be a power of two "
                        "dividing the bank count (%u)",
                        mem.bankGroups, mem.banksPerChannel));
    check(problems, powerOfTwo(mem.lineBytes),
          formatMessage("memory.lineBytes: %llu is not a power of two",
                        static_cast<unsigned long long>(mem.lineBytes)));
    check(problems, powerOfTwo(mem.rowsPerBank),
          formatMessage("memory.rowsPerBank: %llu is not a power of two",
                        static_cast<unsigned long long>(
                            mem.rowsPerBank)));
    if (!powerOfTwo(mem.rowBytes) || mem.rowBytes < mem.lineBytes) {
        problems.push_back(formatMessage(
            "memory.rowBytes: %llu must be a power of two and at least "
            "one line (%llu bytes)",
            static_cast<unsigned long long>(mem.rowBytes),
            static_cast<unsigned long long>(mem.lineBytes)));
    }
    check(problems,
          cpu.l1.lineBytes == mem.lineBytes &&
              cpu.l2.lineBytes == mem.lineBytes,
          formatMessage("line size mismatch: L1 %llu / L2 %llu / DRAM "
                        "%llu bytes must agree",
                        static_cast<unsigned long long>(cpu.l1.lineBytes),
                        static_cast<unsigned long long>(cpu.l2.lineBytes),
                        static_cast<unsigned long long>(mem.lineBytes)));

    // DRAM timing ----------------------------------------------------
    check(problems,
          t.tCL > 0 && t.tRCD > 0 && t.tRP > 0 && t.burst > 0,
          "timing: tCL, tRCD, tRP and burst must be positive");
    check(problems, t.tRC >= t.tRAS + t.tRP,
          formatMessage("timing: tRC (%llu) below tRAS + tRP (%llu); "
                        "the row cycle must cover the row active time "
                        "plus the precharge that follows it",
                        static_cast<unsigned long long>(t.tRC),
                        static_cast<unsigned long long>(t.tRAS + t.tRP)));
    check(problems, t.tRTP > 0 && t.tWR > 0,
          "timing: tRTP and tWR must be positive");
    check(problems, t.tCCD_S > 0 && t.tCCD_S <= t.tCCD,
          formatMessage("timing: tCCD_S (%llu) must be in [1, tCCD=%llu]"
                        " (the cross-group gap never exceeds the "
                        "same-group one)",
                        static_cast<unsigned long long>(t.tCCD_S),
                        static_cast<unsigned long long>(t.tCCD)));
    check(problems, t.tRRD_S > 0 && t.tRRD_S <= t.tRRD,
          formatMessage("timing: tRRD_S (%llu) must be in [1, tRRD=%llu]",
                        static_cast<unsigned long long>(t.tRRD_S),
                        static_cast<unsigned long long>(t.tRRD)));
    check(problems, t.tWTR_S > 0 && t.tWTR_S <= t.tWTR,
          formatMessage("timing: tWTR_S (%llu) must be in [1, tWTR=%llu]",
                        static_cast<unsigned long long>(t.tWTR_S),
                        static_cast<unsigned long long>(t.tWTR)));
    check(problems, t.tWL <= t.tCL,
          formatMessage("timing: tWL (%llu) above tCL (%llu)",
                        static_cast<unsigned long long>(t.tWL),
                        static_cast<unsigned long long>(t.tCL)));
    check(problems, t.tFAW >= 3 * t.tRRD,
          formatMessage(
              "timing: tFAW (%llu) inconsistent with tRRD (%llu): four "
              "activates already take 3*tRRD = %llu cycles, so the "
              "four-activate window cannot be shorter",
              static_cast<unsigned long long>(t.tFAW),
              static_cast<unsigned long long>(t.tRRD),
              static_cast<unsigned long long>(3 * t.tRRD)));
    if (ctl.refreshEnabled) {
        check(problems, t.tREFI > t.tRFC,
              formatMessage("timing: refresh interval tREFI (%llu) must "
                            "exceed the refresh cycle tRFC (%llu)",
                            static_cast<unsigned long long>(t.tREFI),
                            static_cast<unsigned long long>(t.tRFC)));
    }

    // Controller buffers ---------------------------------------------
    check(problems, ctl.requestBufferEntries >= 1,
          "controller.requestBufferEntries: must be positive");
    check(problems, ctl.writeBufferEntries >= 1,
          "controller.writeBufferEntries: must be positive");
    check(problems, ctl.writeDrainHigh <= ctl.writeBufferEntries,
          formatMessage("controller: writeDrainHigh (%u) above the "
                        "write buffer capacity (%u)",
                        ctl.writeDrainHigh, ctl.writeBufferEntries));
    check(problems, ctl.writeDrainLow < ctl.writeDrainHigh,
          formatMessage("controller: writeDrainLow (%u) must be below "
                        "writeDrainHigh (%u)",
                        ctl.writeDrainLow, ctl.writeDrainHigh));
    check(problems, ctl.requestBufferEntries >= cpu.mshrs,
          formatMessage(
              "controller.requestBufferEntries (%u) below the per-core "
              "MSHR count (%u): a single core's outstanding misses "
              "could not fit the request buffer, serializing the very "
              "parallelism the MSHRs exist to expose",
              ctl.requestBufferEntries, cpu.mshrs));

    // Core -----------------------------------------------------------
    check(problems,
          cpu.windowSize >= 1 && cpu.fetchWidth >= 1 &&
              cpu.commitWidth >= 1 && cpu.mshrs >= 1,
          "cpu: windowSize, fetchWidth, commitWidth and mshrs must be "
          "positive");
    const std::pair<const char *, const CacheParams *> caches[] = {
        {"l1", &cpu.l1}, {"l2", &cpu.l2}};
    for (const auto &[label, cache] : caches) {
        check(problems,
              cache->sizeBytes > 0 && cache->ways > 0 &&
                  powerOfTwo(cache->lineBytes) &&
                  cache->sizeBytes % (cache->ways * cache->lineBytes) == 0,
              formatMessage("cpu.%s: size/ways/line geometry is "
                            "inconsistent",
                            label));
    }

    // Scheduler ------------------------------------------------------
    check(problems, sched.alpha >= 1.0,
          formatMessage("scheduler.alpha: %.3f below 1.0 (unfairness is "
                        "a max/min slowdown ratio, never below 1)",
                        sched.alpha));
    check(problems, sched.gamma >= 0.0,
          "scheduler.gamma: must be non-negative");
    check(problems, sched.intervalLength > 0,
          "scheduler.intervalLength: must be positive");
    check(problems, sched.cap >= 1,
          "scheduler.cap: must be at least 1");
    const std::pair<const char *, const std::vector<double> *> lists[] = {
        {"weights", &sched.weights}, {"shares", &sched.shares}};
    for (const auto &[label, values] : lists) {
        if (values->empty())
            continue;
        check(problems, values->size() == config.cores,
              formatMessage("scheduler.%s: %zu entries for %u cores",
                            label, values->size(), config.cores));
        for (const double v : *values) {
            if (v <= 0.0) {
                problems.push_back(formatMessage(
                    "scheduler.%s: entries must be positive", label));
                break;
            }
        }
    }

    // Telemetry ------------------------------------------------------
    check(problems, config.telemetry.epochCycles > 0,
          "telemetry.epochCycles: must be positive (DRAM cycles "
          "between samples)");

    return problems;
}

void
validateOrThrow(const SimConfig &config)
{
    const std::vector<std::string> problems = validateConfig(config);
    if (problems.empty())
        return;
    std::string joined = "invalid configuration:";
    for (const std::string &p : problems) {
        joined += "\n  - ";
        joined += p;
    }
    throw SimError(joined);
}

} // namespace stfm
