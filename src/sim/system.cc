#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

CmpSystem::CmpSystem(const SimConfig &config,
                     std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(config), traces_(std::move(traces)),
      memory_(config.memory, config.scheduler, config.cores),
      stallSnapshot_(config.cores, 0), frozen_(config.cores, false),
      warm_(config.cores), coreWake_(config.cores, 0),
      coreStalls_(config.cores, 0), coreWakeValid_(config.cores, 0),
      coreAheadUntil_(config.cores, 0)
{
    STFM_ASSERT(traces_.size() == config.cores,
                "one trace per core required (%zu traces, %u cores)",
                traces_.size(), config.cores);
    std::vector<WarmLine> footprint;
    for (unsigned t = 0; t < config_.cores; ++t) {
        cores_.push_back(std::make_unique<Core>(t, config_.cpu,
                                                *traces_[t], memory_));
        traces_[t]->warmupFootprint(
            config_.cpu.l2.sizeBytes / config_.cpu.l2.lineBytes,
            footprint);
        cores_.back()->prewarmCaches(footprint);
    }
    memory_.setStallCounters(&stallSnapshot_);
    memory_.setReadCallback([this](const Request &req) {
        cores_[req.thread]->onReadComplete(req.addr, cpuNow_);
        // The completion mutated the core; its cached quiescence
        // window no longer describes its state.
        coreWakeValid_[req.thread] = 0;
    });
    if (config_.telemetry.collecting()) {
        obs_ = std::make_unique<ObsSession>(config_.telemetry,
                                            config_.memory.timing);
        memory_.registerObservability(*obs_);
        for (auto &core : cores_)
            core->registerTelemetry(obs_->registry());
        obs_->start(memory_.dramNow());
    }
}

void
CmpSystem::snapshotThread(unsigned t, Cycles now)
{
    WarmSnapshot &w = warm_[t];
    const Core &core = *cores_[t];
    w.taken = true;
    w.instructions = core.instructionsCommitted();
    w.cycle = now;
    w.memStall = core.memStallCycles();
    w.l2Misses = core.l2Misses();
    w.memStats = memory_.threadStats(t);
}

void
CmpSystem::freezeThread(unsigned t, Cycles now, SimResult &result)
{
    const WarmSnapshot &w = warm_[t];
    ThreadResult &r = result.threads[t];
    const Core &core = *cores_[t];
    r.instructions = core.instructionsCommitted() - w.instructions;
    r.cycles = now + 1 - w.cycle;
    r.memStallCycles = core.memStallCycles() - w.memStall;
    r.l2Misses = core.l2Misses() - w.l2Misses;
    const ControllerThreadStats stats = memory_.threadStats(t);
    r.dramReads = stats.readsServiced - w.memStats.readsServiced;
    r.dramWrites = stats.writesServiced - w.memStats.writesServiced;
    r.rowHits = stats.rowHits - w.memStats.rowHits;
    r.rowClosed = stats.rowClosed - w.memStats.rowClosed;
    r.rowConflicts = stats.rowConflicts - w.memStats.rowConflicts;
    const LatencyHistogram latency = memory_.readLatency(t);
    r.readLatencyMean = latency.mean();
    r.readLatencyP50 = latency.quantile(0.5);
    r.readLatencyP99 = latency.quantile(0.99);
    r.readLatencyMax = latency.max();
    frozen_[t] = true;
}

SimResult
CmpSystem::run()
{
    SimResult result;
    result.threads.resize(config_.cores);

    unsigned active = config_.cores;
    const Cycles cpu_per_dram = config_.memory.cpuPerDram();

    // Next DRAM-boundary cycle, tracked incrementally so the hot loop
    // carries no divisions. Re-derived after every fast-forward jump.
    Cycles next_boundary = 0;

    for (cpuNow_ = 0; active > 0 && cpuNow_ < config_.maxCycles;
         ++cpuNow_) {
        const bool boundary = cpuNow_ == next_boundary;
        if (boundary)
            next_boundary += cpu_per_dram;

        bool any_active = false;
        // Cores whose tick() ran this cycle. Only a tick can push a
        // core across a snapshot/freeze threshold: runAhead() stops
        // strictly below commitCap(), cached-window skips and ahead
        // cores commit nothing, so the threshold scan below covers
        // exactly these cores. 32 cores max (asserted by MemorySystem).
        std::uint32_t ticked = 0;
        if (config_.fastForward) {
            // Per-core lazy ticks: a run-ahead core already executed
            // this cycle (see coreAheadUntil_); a core inside its
            // cached quiescence window would tick as a no-op except for
            // (possibly) one stall-counter increment — apply that
            // directly. Anyone else first attempts a run-ahead burst,
            // then ticks for real; a tick that made progress is assumed
            // active again next cycle (sound: early wakes are
            // harmless), so the exact wake is only computed on the
            // first progress-free tick.
            refreshCoreEventGen();
            for (unsigned t = 0; t < config_.cores; ++t) {
                if (cpuNow_ < coreAheadUntil_[t])
                    continue;
                if (coreWakeValid_[t] && cpuNow_ < coreWake_[t]) {
                    if (coreStalls_[t])
                        cores_[t]->skipStalledCycles(1);
                    continue;
                }
                // Horizon-bounded so a never-missing (typically
                // frozen) core doesn't burn host time running all the
                // way to maxCycles when the run will end much sooner;
                // re-entry is O(1), so long streaks just chain bursts.
                const Cycles horizon = std::min(
                    config_.maxCycles, cpuNow_ + kRunAheadChunk);
                const Cycles ahead = cores_[t]->runAhead(
                    cpuNow_, horizon, commitCap(t));
                if (ahead != cpuNow_) {
                    coreAheadUntil_[t] = ahead;
                    coreWakeValid_[t] = 0;
                    continue;
                }
                ticked |= 1u << t;
                if (cores_[t]->tick(cpuNow_)) {
                    coreWake_[t] = cpuNow_ + 1;
                    coreStalls_[t] = 0;
                    any_active = true;
                } else {
                    bool stalling = false;
                    coreWake_[t] =
                        cores_[t]->nextEventCycle(cpuNow_, stalling);
                    coreStalls_[t] = stalling ? 1 : 0;
                    any_active = any_active ||
                                 coreWake_[t] <= cpuNow_ + 1;
                }
                coreWakeValid_[t] = 1;
            }
        } else {
            for (auto &core : cores_)
                core->tick(cpuNow_);
            ticked = ~0u;
        }

        if (boundary) {
            for (unsigned t = 0; t < config_.cores; ++t)
                stallSnapshot_[t] = cores_[t]->memStallCycles();
            memory_.tick(cpuNow_);
            if (obs_)
                obs_->onBoundary(memory_.dramNow());
        } else {
            memory_.syncCpuNow(cpuNow_);
        }

        // Threshold scan, after the memory tick so snapshots observe
        // the same post-tick stats a full per-cycle scan would.
        for (unsigned t = 0; ticked != 0 && t < config_.cores; ++t) {
            if (!(ticked & (1u << t)) || frozen_[t])
                continue;
            const std::uint64_t done =
                cores_[t]->instructionsCommitted();
            if (!warm_[t].taken &&
                done >= config_.warmupInstructions) {
                snapshotThread(t, cpuNow_);
            }
            if (warm_[t].taken &&
                done >= config_.warmupInstructions +
                            config_.instructionBudget) {
                freezeThread(t, cpuNow_, result);
                --active;
            }
        }

        // Event-driven fast-forwarding: from post-tick state, skip
        // straight to the next cycle where anything can happen. Guarded
        // on active > 0 so the exit value of cpuNow_ (and thus
        // totalCycles) matches the cycle-by-cycle reference exactly;
        // skipped outright when a core just made progress (its wake is
        // now + 1, so no window can open).
        if (config_.fastForward && active > 0 && !any_active) {
            const Cycles jumped = fastForward(cpuNow_);
            if (jumped != cpuNow_) {
                cpuNow_ = jumped;
                next_boundary =
                    (cpuNow_ / cpu_per_dram + 1) * cpu_per_dram;
            }
        }
    }

    // Anything still unfrozen hit the cycle limit.
    for (unsigned t = 0; t < config_.cores; ++t) {
        if (!frozen_[t]) {
            freezeThread(t, cpuNow_, result);
            result.hitCycleLimit = true;
        }
    }
    result.totalCycles = cpuNow_;

    // Integrity epilogue: with watchdogs enabled, drain the memory
    // system (cores stop injecting; queued work completes) so the
    // lifetime auditors can verify request conservation end to end.
    // This runs after every result field is computed, keeping checked
    // and unchecked runs bit-identical.
    const IntegrityConfig &integrity = config_.memory.controller.integrity;
    if (integrity.watchdog && !result.hitCycleLimit) {
        const Cycles drain_limit = cpuNow_ + 4'000'000;
        while (!memory_.idle() && cpuNow_ < drain_limit) {
            ++cpuNow_;
            memory_.tick(cpuNow_);
        }
        if (!memory_.idle()) {
            throw CheckFailure(
                "drain-stall", cpuNow_ / config_.memory.cpuPerDram(), 0, 0,
                CheckFailure::kNoRequest, kInvalidThread,
                "memory system failed to drain after the run");
        }
        memory_.auditDrained();
    }
    // Observability epilogue: closing samples and open-span closure
    // happen after the drain so trace lanes cover the drained commands
    // too. Never affects SimResult (results were computed above).
    if (obs_)
        obs_->finalize(memory_.dramNow());
    return result;
}

Cycles
CmpSystem::fastForward(Cycles now)
{
    // A skip window (now, wake) is legal when every core is quiescent
    // (its ticks reduce to at most a stall-counter increment) and no
    // DRAM boundary inside it can deliver data, issue a command, or
    // run refresh/watchdog housekeeping. All wake bounds err early,
    // never late, so at worst we wake spuriously and re-evaluate.
    // Core checks run first: they are cheap and usually decide (an
    // actively executing core ends the attempt immediately). Cached
    // windows from the lazy-tick pass are reused; only cores whose
    // cache was invalidated this cycle (a completion fired or a column
    // issued during the memory tick) recompute. The memory-side bound
    // — a full readiness sweep — runs last, and only when every core
    // turned out quiescent.
    refreshCoreEventGen();
    Cycles wake = config_.maxCycles;
    for (unsigned t = 0; t < config_.cores; ++t) {
        if (now < coreAheadUntil_[t]) {
            // Run-ahead core: already executed (stall-free) up to its
            // horizon; it next needs the global clock at that cycle.
            wake = std::min(wake, coreAheadUntil_[t]);
        } else {
            if (!coreWakeValid_[t]) {
                bool stalling = false;
                coreWake_[t] = cores_[t]->nextEventCycle(now, stalling);
                coreStalls_[t] = stalling ? 1 : 0;
                coreWakeValid_[t] = 1;
            }
            wake = std::min(wake, coreWake_[t]);
        }
        if (wake <= now + 1)
            return now;
    }
    wake = std::min(wake, memory_.nextInterestingCpuCycle(now));
    if (wake <= now + 1)
        return now;

    // Replay the per-cycle effects a cycle-by-cycle run would have had
    // over (now, wake - 1]: stall accounting on the cores, and on each
    // DRAM boundary the stall snapshot plus the policy's per-cycle
    // accounting (STFM integrates interference every DRAM cycle; the
    // other policies' beginCycle is a no-op, letting the DRAM clock
    // jump wholesale).
    const Cycles skipped = wake - 1 - now;
    const Cycles per = config_.memory.cpuPerDram();
    if (memory_.policyNeedsPerCycleAccounting()) {
        for (Cycles c = (now / per + 1) * per; c < wake; c += per) {
            for (unsigned t = 0; t < config_.cores; ++t) {
                // Run-ahead cores accrued no stall over their horizon
                // (which covers this whole window), so their counter is
                // already the per-boundary value.
                const bool st =
                    now >= coreAheadUntil_[t] && coreStalls_[t];
                stallSnapshot_[t] = cores_[t]->memStallCycles() +
                                    (st ? c - now : 0);
            }
            memory_.quiescentDramTick(c);
            if (obs_)
                obs_->onBoundary(memory_.dramNow());
        }
    } else {
        memory_.skipDramTicks((wake - 1) / per - now / per);
    }
    for (unsigned t = 0; t < config_.cores; ++t) {
        if (now >= coreAheadUntil_[t] && coreStalls_[t])
            cores_[t]->skipStalledCycles(skipped);
    }
    memory_.syncCpuNow(wake - 1);
    return wake - 1;
}

} // namespace stfm
