#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

CmpSystem::CmpSystem(const SimConfig &config,
                     std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(config), traces_(std::move(traces)),
      memory_(config.memory, config.scheduler, config.cores),
      stallSnapshot_(config.cores, 0), frozen_(config.cores, false),
      warm_(config.cores), coreStalls_(config.cores, 0),
      coreWaitsCap_(config.cores, 0), stallAnchor_(config.cores, 0)
{
    STFM_ASSERT(traces_.size() == config.cores,
                "one trace per core required (%zu traces, %u cores)",
                traces_.size(), config.cores);
    std::vector<WarmLine> footprint;
    for (unsigned t = 0; t < config_.cores; ++t) {
        cores_.push_back(std::make_unique<Core>(t, config_.cpu,
                                                *traces_[t], memory_));
        traces_[t]->warmupFootprint(
            config_.cpu.l2.sizeBytes / config_.cpu.l2.lineBytes,
            footprint);
        cores_.back()->prewarmCaches(footprint);
    }
    memory_.setStallCounters(&stallSnapshot_);
    wake_.reset(config_.cores);
    memory_.setReadCallback([this](const Request &req) {
        const unsigned t = req.thread;
        // Completions fire during the boundary memory tick, after the
        // core's (possibly virtual) tick this cycle: settle the lazy
        // stall owed through cpuNow_ with the pre-completion stall
        // state, then re-arm the core — the completion mutated it, so
        // its cached wake no longer describes its state. A run-ahead
        // burst may have covered cpuNow_ itself but never cpuNow_ + 1
        // (bursts with misses in flight end before the completion's
        // first *observable* cycle), and every due <= cpuNow_ was
        // drained before this tick, so the re-arm below only ever
        // moves the core's wake earlier.
        if (coreStalls_[t]) {
            cores_[t]->skipStalledCycles(cpuNow_ - stallAnchor_[t]);
            coreStalls_[t] = 0;
        }
        stallAnchor_[t] = cpuNow_;
        cores_[t]->onReadComplete(req.addr, cpuNow_);
        wake_.setDue(t, cpuNow_ + 1);
    });
    if (config_.telemetry.collecting()) {
        obs_ = std::make_unique<ObsSession>(config_.telemetry,
                                            config_.memory.timing);
        memory_.registerObservability(*obs_);
        for (auto &core : cores_)
            core->registerTelemetry(obs_->registry());
        obs_->start(memory_.dramNow());
    }
}

void
CmpSystem::snapshotThread(unsigned t, Cycles now)
{
    WarmSnapshot &w = warm_[t];
    const Core &core = *cores_[t];
    w.taken = true;
    w.instructions = core.instructionsCommitted();
    w.cycle = now;
    w.memStall = core.memStallCycles();
    w.l2Misses = core.l2Misses();
    w.memStats = memory_.threadStats(t);
}

void
CmpSystem::freezeThread(unsigned t, Cycles now, SimResult &result)
{
    const WarmSnapshot &w = warm_[t];
    ThreadResult &r = result.threads[t];
    const Core &core = *cores_[t];
    r.instructions = core.instructionsCommitted() - w.instructions;
    r.cycles = now + 1 - w.cycle;
    r.memStallCycles = core.memStallCycles() - w.memStall;
    r.l2Misses = core.l2Misses() - w.l2Misses;
    const ControllerThreadStats stats = memory_.threadStats(t);
    r.dramReads = stats.readsServiced - w.memStats.readsServiced;
    r.dramWrites = stats.writesServiced - w.memStats.writesServiced;
    r.rowHits = stats.rowHits - w.memStats.rowHits;
    r.rowClosed = stats.rowClosed - w.memStats.rowClosed;
    r.rowConflicts = stats.rowConflicts - w.memStats.rowConflicts;
    const LatencyHistogram latency = memory_.readLatency(t);
    r.readLatencyMean = latency.mean();
    r.readLatencyP50 = latency.quantile(0.5);
    r.readLatencyP99 = latency.quantile(0.99);
    r.readLatencyMax = latency.max();
    frozen_[t] = true;
}

SimResult
CmpSystem::run()
{
    SimResult result;
    result.threads.resize(config_.cores);

    unsigned active = config_.cores;
    const Cycles cpu_per_dram = config_.memory.cpuPerDram();
    // Only STFM consumes the per-boundary stall snapshots (through
    // SchedContext::stallCycles); skip refreshing them for the other
    // policies — they are pure overhead on every executed boundary.
    const bool stall_snapshots = memory_.policyNeedsPerCycleAccounting();

    // Next DRAM-boundary cycle, tracked incrementally so the hot loop
    // carries no divisions. Re-derived after every event jump.
    Cycles next_boundary = 0;

    wake_.reset(config_.cores);
    std::fill(coreStalls_.begin(), coreStalls_.end(), 0);
    std::fill(coreWaitsCap_.begin(), coreWaitsCap_.end(), 0);
    std::fill(stallAnchor_.begin(), stallAnchor_.end(), 0);

    cpuNow_ = 0;
    while (active > 0 && cpuNow_ < config_.maxCycles) {
        const bool boundary = cpuNow_ == next_boundary;
        if (boundary)
            next_boundary += cpu_per_dram;

        // Cores whose tick() ran this cycle. Only a tick can push a
        // core across a snapshot/freeze threshold: runAhead() stops
        // strictly below commitCap() and sleeping cores commit
        // nothing, so the threshold scan below covers exactly these
        // cores. 32 cores max (asserted by MemorySystem).
        std::uint32_t ticked = 0;
        if (config_.fastForward) {
            // Visit exactly the cores due this cycle, in thread order
            // (the heap tie-breaks on the index, preserving the
            // reference's core-to-memory enqueue order). Each visit
            // settles the core's lazy stall debt, then either bursts
            // ahead (the whole burst is stall-free and pre-executed) or
            // ticks for real; a progressing tick is assumed active
            // again next cycle (sound: early wakes are harmless), so
            // the exact wake is only computed on the first
            // progress-free tick.
            while (wake_.minDue() <= cpuNow_) {
                const unsigned t = wake_.minThread();
                if (coreStalls_[t]) {
                    cores_[t]->skipStalledCycles(cpuNow_ - 1 -
                                                 stallAnchor_[t]);
                    coreStalls_[t] = 0;
                }
                coreWaitsCap_[t] = 0;
                // Horizon-bounded so a never-missing (typically
                // frozen) core doesn't burn host time running all the
                // way to maxCycles when the run will end much sooner;
                // re-entry is O(1), so long streaks just chain bursts.
                Cycles horizon = std::min(config_.maxCycles,
                                          cpuNow_ + kRunAheadChunk);
                if (cores_[t]->mshrInUse() != 0) {
                    // In-flight misses make this core a completion
                    // target: the burst must end before the first
                    // cycle that could *observe* a completion for this
                    // thread. Data delivered at boundary B lands after
                    // the core's own cycle-B tick (same order as the
                    // reference), so the burst may cover B itself; and
                    // every due <= cpuNow_ is drained before this
                    // cycle's memory tick, so a callback at B only
                    // ever moves this core's wake earlier, never into
                    // already-executed cycles.
                    horizon = std::min(
                        horizon,
                        memory_.nextCompletionEffectCpuCycle(
                            t, boundary ? cpuNow_ : next_boundary));
                }
                const Cycles ahead =
                    horizon > cpuNow_
                        ? cores_[t]->runAhead(cpuNow_, horizon,
                                              commitCap(t))
                        : cpuNow_;
                if (ahead != cpuNow_) {
                    // Cycles [cpuNow_, ahead) are executed and
                    // stall-free; the core next needs the clock (and
                    // is next allowed to be visited) at `ahead`.
                    wake_.setDue(t, ahead);
                    stallAnchor_[t] = ahead;
                    continue;
                }
                ticked |= 1u << t;
                stallAnchor_[t] = cpuNow_;
                if (cores_[t]->tick(cpuNow_)) {
                    wake_.setDue(t, cpuNow_ + 1);
                } else {
                    bool stalling = false;
                    bool waits_cap = false;
                    wake_.setDue(t,
                                 cores_[t]->nextEventCycle(
                                     cpuNow_, stalling, waits_cap));
                    coreStalls_[t] = stalling ? 1 : 0;
                    coreWaitsCap_[t] = waits_cap ? 1 : 0;
                }
            }
        } else {
            for (auto &core : cores_)
                core->tick(cpuNow_);
            ticked = ~0u;
        }

        if (boundary) {
            if (config_.fastForward && memory_.nextBoundaryQuiet()) {
                // This boundary's controller ticks are provably no-ops
                // (cores are awake most windows, but the memory system
                // does real work in only a few percent of them): skip
                // straight past the context build and controller entry.
                // STFM still integrates interference off the same stall
                // snapshot a full tick would have seen; the other
                // policies' beginCycle is a no-op, letting the DRAM
                // clock advance bare. No column command can issue on a
                // quiet boundary, so the capacity-wake generation check
                // below is not needed here.
                if (stall_snapshots) {
                    for (unsigned t = 0; t < config_.cores; ++t)
                        stallSnapshot_[t] = stallAt(t, cpuNow_);
                    memory_.quiescentDramTick(cpuNow_);
                } else {
                    memory_.skipDramTicks(1);
                    memory_.syncCpuNow(cpuNow_);
                }
                if (obs_)
                    obs_->onBoundary(memory_.dramNow());
            } else {
                if (stall_snapshots) {
                    for (unsigned t = 0; t < config_.cores; ++t)
                        stallSnapshot_[t] = stallAt(t, cpuNow_);
                }
                // next_boundary tracking makes the clock-ratio check
                // inside tick() redundant on this path.
                memory_.boundaryTick(cpuNow_);
                if (obs_)
                    obs_->onBoundary(memory_.dramNow());
                if (config_.fastForward) {
                    // A column issue during the tick freed
                    // request-buffer capacity: cut short every sleep
                    // that depends on it. (Completions re-armed their
                    // cores directly from the read callback.)
                    const std::uint64_t gen = memory_.coreEventGen();
                    if (gen != coreEventGenSeen_) {
                        coreEventGenSeen_ = gen;
                        for (unsigned t = 0; t < config_.cores; ++t) {
                            if (coreWaitsCap_[t])
                                wake_.setDue(t, cpuNow_ + 1);
                        }
                    }
                }
            }
        } else {
            memory_.syncCpuNow(cpuNow_);
        }

        // Threshold scan, after the memory tick so snapshots observe
        // the same post-tick stats a full per-cycle scan would.
        for (unsigned t = 0; ticked != 0 && t < config_.cores; ++t) {
            if (!(ticked & (1u << t)) || frozen_[t])
                continue;
            const std::uint64_t done =
                cores_[t]->instructionsCommitted();
            if (!warm_[t].taken &&
                done >= config_.warmupInstructions) {
                snapshotThread(t, cpuNow_);
            }
            if (warm_[t].taken &&
                done >= config_.warmupInstructions +
                            config_.instructionBudget) {
                freezeThread(t, cpuNow_, result);
                --active;
            }
        }

        // Advance to the next event: the earliest core due cycle or
        // the next interesting DRAM cycle, whichever comes first.
        // Guarded on active > 0 so the exit value of cpuNow_ (and thus
        // totalCycles) matches the cycle-by-cycle reference exactly.
        if (!config_.fastForward || active == 0) {
            ++cpuNow_;
            continue;
        }
        Cycles target = std::min(wake_.minDue(), config_.maxCycles);
        if (target > cpuNow_ + 1) {
            target = std::min(target,
                              memory_.nextInterestingCpuCycle(cpuNow_));
        }
        if (target <= cpuNow_ + 1) {
            ++cpuNow_;
            continue;
        }
        // Jump. Every core sleeps through (cpuNow_, target) — stall
        // accrual is settled lazily from the anchors — and every DRAM
        // boundary inside the window is proven uninteresting; replay
        // only the per-cycle effects a cycle-by-cycle run would have
        // had (STFM integrates interference every DRAM cycle off the
        // stall snapshot; the other policies' beginCycle is a no-op,
        // letting the DRAM clock jump wholesale).
        if (memory_.policyNeedsPerCycleAccounting()) {
            for (Cycles c = (cpuNow_ / cpu_per_dram + 1) * cpu_per_dram;
                 c < target; c += cpu_per_dram) {
                for (unsigned t = 0; t < config_.cores; ++t)
                    stallSnapshot_[t] = stallAt(t, c);
                memory_.quiescentDramTick(c);
                if (obs_)
                    obs_->onBoundary(memory_.dramNow());
            }
        } else {
            memory_.skipDramTicks((target - 1) / cpu_per_dram -
                                  cpuNow_ / cpu_per_dram);
        }
        memory_.syncCpuNow(target - 1);
        cpuNow_ = target;
        next_boundary = target / cpu_per_dram * cpu_per_dram;
        if (next_boundary < target)
            next_boundary += cpu_per_dram;
    }

    // Settle every core's remaining lazy stall debt: the run's last
    // executed cycle is cpuNow_ - 1, and sleeping cores accrued
    // through it.
    if (config_.fastForward) {
        for (unsigned t = 0; t < config_.cores; ++t) {
            if (coreStalls_[t]) {
                cores_[t]->skipStalledCycles(cpuNow_ - 1 -
                                             stallAnchor_[t]);
                coreStalls_[t] = 0;
            }
        }
    }

    // Anything still unfrozen hit the cycle limit.
    for (unsigned t = 0; t < config_.cores; ++t) {
        if (!frozen_[t]) {
            freezeThread(t, cpuNow_, result);
            result.hitCycleLimit = true;
        }
    }
    result.totalCycles = cpuNow_;

    // Integrity epilogue: with watchdogs enabled, drain the memory
    // system (cores stop injecting; queued work completes) so the
    // lifetime auditors can verify request conservation end to end.
    // This runs after every result field is computed, keeping checked
    // and unchecked runs bit-identical.
    const IntegrityConfig &integrity = config_.memory.controller.integrity;
    if (integrity.watchdog && !result.hitCycleLimit) {
        const Cycles drain_limit = cpuNow_ + 4'000'000;
        while (!memory_.idle() && cpuNow_ < drain_limit) {
            ++cpuNow_;
            memory_.tick(cpuNow_);
        }
        if (!memory_.idle()) {
            throw CheckFailure(
                "drain-stall", cpuNow_ / config_.memory.cpuPerDram(), 0, 0,
                CheckFailure::kNoRequest, kInvalidThread,
                "memory system failed to drain after the run");
        }
        memory_.auditDrained();
    }
    // Observability epilogue: closing samples and open-span closure
    // happen after the drain so trace lanes cover the drained commands
    // too. Never affects SimResult (results were computed above).
    if (obs_)
        obs_->finalize(memory_.dramNow());
    return result;
}

} // namespace stfm
