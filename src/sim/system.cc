#include "sim/system.hh"

#include "common/logging.hh"

namespace stfm
{

CmpSystem::CmpSystem(const SimConfig &config,
                     std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(config), traces_(std::move(traces)),
      memory_(config.memory, config.scheduler, config.cores),
      stallSnapshot_(config.cores, 0), frozen_(config.cores, false),
      warm_(config.cores)
{
    STFM_ASSERT(traces_.size() == config.cores,
                "one trace per core required (%zu traces, %u cores)",
                traces_.size(), config.cores);
    std::vector<WarmLine> footprint;
    for (unsigned t = 0; t < config_.cores; ++t) {
        cores_.push_back(std::make_unique<Core>(t, config_.cpu,
                                                *traces_[t], memory_));
        traces_[t]->warmupFootprint(
            config_.cpu.l2.sizeBytes / config_.cpu.l2.lineBytes,
            footprint);
        cores_.back()->prewarmCaches(footprint);
    }
    memory_.setStallCounters(&stallSnapshot_);
    memory_.setReadCallback([this](const Request &req) {
        cores_[req.thread]->onReadComplete(req.addr, cpuNow_);
    });
}

void
CmpSystem::snapshotThread(unsigned t, Cycles now)
{
    WarmSnapshot &w = warm_[t];
    const Core &core = *cores_[t];
    w.taken = true;
    w.instructions = core.instructionsCommitted();
    w.cycle = now;
    w.memStall = core.memStallCycles();
    w.l2Misses = core.l2Misses();
    w.memStats = memory_.threadStats(t);
}

void
CmpSystem::freezeThread(unsigned t, Cycles now, SimResult &result)
{
    const WarmSnapshot &w = warm_[t];
    ThreadResult &r = result.threads[t];
    const Core &core = *cores_[t];
    r.instructions = core.instructionsCommitted() - w.instructions;
    r.cycles = now + 1 - w.cycle;
    r.memStallCycles = core.memStallCycles() - w.memStall;
    r.l2Misses = core.l2Misses() - w.l2Misses;
    const ControllerThreadStats stats = memory_.threadStats(t);
    r.dramReads = stats.readsServiced - w.memStats.readsServiced;
    r.dramWrites = stats.writesServiced - w.memStats.writesServiced;
    r.rowHits = stats.rowHits - w.memStats.rowHits;
    r.rowClosed = stats.rowClosed - w.memStats.rowClosed;
    r.rowConflicts = stats.rowConflicts - w.memStats.rowConflicts;
    const LatencyHistogram latency = memory_.readLatency(t);
    r.readLatencyMean = latency.mean();
    r.readLatencyP50 = latency.quantile(0.5);
    r.readLatencyP99 = latency.quantile(0.99);
    r.readLatencyMax = latency.max();
    frozen_[t] = true;
}

SimResult
CmpSystem::run()
{
    SimResult result;
    result.threads.resize(config_.cores);

    unsigned active = config_.cores;
    const Cycles cpu_per_dram = config_.memory.cpuPerDram;

    for (cpuNow_ = 0; active > 0 && cpuNow_ < config_.maxCycles;
         ++cpuNow_) {
        for (auto &core : cores_)
            core->tick(cpuNow_);

        if (cpuNow_ % cpu_per_dram == 0) {
            for (unsigned t = 0; t < config_.cores; ++t)
                stallSnapshot_[t] = cores_[t]->memStallCycles();
        }
        memory_.tick(cpuNow_);

        for (unsigned t = 0; t < config_.cores; ++t) {
            if (frozen_[t])
                continue;
            const std::uint64_t done =
                cores_[t]->instructionsCommitted();
            if (!warm_[t].taken &&
                done >= config_.warmupInstructions) {
                snapshotThread(t, cpuNow_);
            }
            if (warm_[t].taken &&
                done >= config_.warmupInstructions +
                            config_.instructionBudget) {
                freezeThread(t, cpuNow_, result);
                --active;
            }
        }
    }

    // Anything still unfrozen hit the cycle limit.
    for (unsigned t = 0; t < config_.cores; ++t) {
        if (!frozen_[t]) {
            freezeThread(t, cpuNow_, result);
            result.hitCycleLimit = true;
        }
    }
    result.totalCycles = cpuNow_;

    // Integrity epilogue: with watchdogs enabled, drain the memory
    // system (cores stop injecting; queued work completes) so the
    // lifetime auditors can verify request conservation end to end.
    // This runs after every result field is computed, keeping checked
    // and unchecked runs bit-identical.
    const IntegrityConfig &integrity = config_.memory.controller.integrity;
    if (integrity.watchdog && !result.hitCycleLimit) {
        const Cycles drain_limit = cpuNow_ + 4'000'000;
        while (!memory_.idle() && cpuNow_ < drain_limit) {
            ++cpuNow_;
            memory_.tick(cpuNow_);
        }
        if (!memory_.idle()) {
            throw CheckFailure(
                "drain-stall", cpuNow_ / config_.memory.cpuPerDram, 0, 0,
                CheckFailure::kNoRequest, kInvalidThread,
                "memory system failed to drain after the run");
        }
        memory_.auditDrained();
    }
    return result;
}

} // namespace stfm
