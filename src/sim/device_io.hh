/**
 * @file
 * DeviceSpec JSON I/O and application to the simulation config.
 *
 * A device spec names a memory part once — geometry, clock,
 * cycle-domain timing table, nanosecond refresh parameters — and both
 * the device model and the shadow protocol checker are configured from
 * it (single source of truth; see dram/device_spec.hh).
 *
 * Resolution order for a device reference ("--device X", the spec
 * "device" block, STFM_DEVICE):
 *
 *   1. a built-in preset name (DDR2-800, DDR3-1600, DDR4-2400,
 *      LPDDR4-3200);
 *   2. a path to a JSON spec file (anything containing '/' or ending
 *      in ".json");
 *   3. specs/devices/<name>.json relative to the working directory.
 *
 * Device JSON files carry refresh timing in nanoseconds (tREFIns /
 * tRFCns) — a "tREFI" or "tRFC" key inside the timing block is
 * rejected with a pointed error, because cycle counts baked at one
 * clock are exactly the bug this layer exists to remove.
 */

#ifndef STFM_SIM_DEVICE_IO_HH
#define STFM_SIM_DEVICE_IO_HH

#include <string>

#include "common/json.hh"
#include "dram/device_spec.hh"
#include "mem/memory_system.hh"

namespace stfm
{

/** Serialize a device spec (stable key order; refresh in ns). */
Json toJson(const DeviceSpec &spec);

/**
 * Parse a device spec from JSON layered over the DDR2-800 defaults.
 * Unknown keys throw SimError; so do "tREFI"/"tRFC" inside "timing"
 * (use the nanosecond "tREFIns"/"tRFCns" at the top level instead).
 * The result is validated; any DeviceSpec::validate problem throws.
 */
DeviceSpec deviceSpecFromJson(const Json &json,
                              const std::string &context = "device");

/**
 * Resolve @p name_or_path per the header comment's order and return
 * the validated spec. @throws SimError naming the built-in presets
 * when nothing resolves.
 */
DeviceSpec loadDeviceSpec(const std::string &name_or_path);

/**
 * Configure @p memory for @p spec: geometry (banks, bank groups, row
 * size, rows per bank), bus clock, the timing table with tREFI/tRFC
 * converted from nanoseconds at the device's clock, and the device
 * name for reporting. The core clock is snapped to the spec's
 * defaultCoreMHz only when the configured value would produce a
 * non-integer CPU:DRAM ratio — a core clock that already divides
 * evenly is left alone (the DDR2 baseline stays untouched).
 */
void applyDevice(MemoryConfig &memory, const DeviceSpec &spec);

/** loadDeviceSpec + applyDevice in one step. */
void applyDevice(MemoryConfig &memory, const std::string &name_or_path);

} // namespace stfm

#endif // STFM_SIM_DEVICE_IO_HH
