/**
 * @file
 * Top-level simulation configuration.
 *
 * SimConfig::baseline(cores) reproduces the paper's Table 2 system:
 * 4 GHz cores, 128-entry windows, 32 KB L1 / 512 KB L2 private caches,
 * 64 MSHRs, DDR2-800 with 8 banks and 2 KB/chip row buffers, a
 * 128-entry request buffer, and channel count scaled with core count
 * (1, 1, 2, 4 channels for 2, 4, 8, 16 cores).
 */

#ifndef STFM_SIM_CONFIG_HH
#define STFM_SIM_CONFIG_HH

#include <cstdint>

#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "obs/telemetry_config.hh"
#include "sched/policy.hh"

namespace stfm
{

struct SimConfig
{
    unsigned cores = 4;
    CoreParams cpu;
    MemoryConfig memory;
    SchedulerConfig scheduler;
    /** Observability: telemetry sampling and trace export (off by
     *  default; the disabled configuration never constructs a session
     *  and leaves the hot path untouched). */
    TelemetryConfig telemetry;

    /** Instructions each thread must commit before its stats freeze. */
    std::uint64_t instructionBudget = 100000;
    /**
     * Instructions each thread commits before measurement starts (cache
     * and row-buffer warmup; excludes cold-start transients and lets
     * L2 writeback traffic reach steady state).
     */
    std::uint64_t warmupInstructions = 30000;
    /** Hard safety limit on simulated CPU cycles. */
    Cycles maxCycles = 2'000'000'000ULL;

    /**
     * Event-driven fast-forwarding: skip runs of CPU cycles in which
     * every core is provably quiescent and no DRAM command can become
     * ready (see CmpSystem::run). Bit-exact with the cycle-by-cycle
     * reference path (fastForward = false, also reachable via
     * STFM_REFERENCE=1 through the harness); the reference path is the
     * oracle for the equivalence suite and perf baselines.
     */
    bool fastForward = true;

    /** The paper's baseline system for @p cores cores. */
    static SimConfig baseline(unsigned cores);

    /** Channels the paper uses for a given core count (1,1,2,4). */
    static unsigned channelsForCores(unsigned cores);
};

} // namespace stfm

#endif // STFM_SIM_CONFIG_HH
