/**
 * @file
 * Parse / validate / serialize for the simulation configuration tree.
 *
 * Every config struct (SimConfig, CoreParams, CacheParams,
 * MemoryConfig, DramTiming, ControllerParams, IntegrityConfig,
 * SchedulerConfig) gets a uniform story:
 *
 *  - toJson() serializes the full resolved configuration (stable key
 *    order), so results files can echo back exactly what ran;
 *  - applyJson() layers field-by-field overrides from a JSON object
 *    onto an existing value: keys present replace that field, absent
 *    fields keep their current value, and unknown keys throw SimError
 *    naming the offending key and section — a typo in a spec file is a
 *    diagnosable failure, not a silently ignored knob;
 *  - validateConfig() checks cross-field consistency (clock ratios,
 *    tFAW vs tRRD, buffer sizing, zero-thread workloads, power-of-two
 *    geometry) and reports *all* problems, turning configurations that
 *    would previously abort deep inside the model (STFM_ASSERT in
 *    AddressMapping, nonsense scheduling) into structured, recoverable
 *    SimErrors at spec-resolution time.
 *
 * The canonical layering is SimConfig::baseline(cores) + applyJson()
 * of a spec's "config" object + environment overrides (EnvOverrides).
 */

#ifndef STFM_SIM_CONFIG_IO_HH
#define STFM_SIM_CONFIG_IO_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/config.hh"

namespace stfm
{

// Serialization ------------------------------------------------------
Json toJson(const DramTiming &timing);
Json toJson(const CacheParams &cache);
Json toJson(const CoreParams &cpu);
Json toJson(const IntegrityConfig &integrity);
Json toJson(const ControllerParams &controller);
Json toJson(const MemoryConfig &memory);
Json toJson(const SchedulerConfig &scheduler);
Json toJson(const TelemetryConfig &telemetry);
Json toJson(const SimConfig &config);

// Override layering --------------------------------------------------
// @p context prefixes error messages ("config.memory.timing").
void applyJson(const Json &overrides, DramTiming &out,
               const std::string &context = "timing");
void applyJson(const Json &overrides, CacheParams &out,
               const std::string &context = "cache");
void applyJson(const Json &overrides, CoreParams &out,
               const std::string &context = "cpu");
void applyJson(const Json &overrides, IntegrityConfig &out,
               const std::string &context = "integrity");
void applyJson(const Json &overrides, ControllerParams &out,
               const std::string &context = "controller");
void applyJson(const Json &overrides, MemoryConfig &out,
               const std::string &context = "memory");
void applyJson(const Json &overrides, SchedulerConfig &out,
               const std::string &context = "scheduler");
void applyJson(const Json &overrides, TelemetryConfig &out,
               const std::string &context = "telemetry");
void applyJson(const Json &overrides, SimConfig &out,
               const std::string &context = "config");

/** Map a policy name ("STFM", "fr-fcfs", "frfcfs+cap", ...) to its
 *  kind; separators and case are ignored. @throws SimError listing the
 *  known names on an unknown policy. */
PolicyKind policyKindFromName(const std::string &name);

/**
 * Full round trip helper: SimConfig::baseline(cores) with @p overrides
 * layered on top. If overrides contains "cores", the baseline is built
 * for that count (so channel scaling tracks it) before the remaining
 * fields apply.
 */
SimConfig simConfigFromJson(const Json &overrides,
                            unsigned default_cores = 4);

// Validation ---------------------------------------------------------

/**
 * Cross-field consistency checks over the whole configuration tree.
 * Returns one human-readable message per problem (empty = valid).
 */
std::vector<std::string> validateConfig(const SimConfig &config);

/** @throws SimError joining every validateConfig() problem. */
void validateOrThrow(const SimConfig &config);

} // namespace stfm

#endif // STFM_SIM_CONFIG_IO_HH
