#include "sim/device_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sim/config_io.hh"

namespace stfm
{

namespace
{

/** Serialize the timing table without tREFI/tRFC: device files carry
 *  refresh in nanoseconds, converted per device when applied. */
Json
deviceTimingToJson(const DramTiming &t)
{
    Json out = Json::object();
    out.set("tCL", t.tCL);
    out.set("tRCD", t.tRCD);
    out.set("tRP", t.tRP);
    out.set("tRAS", t.tRAS);
    out.set("tRC", t.tRC);
    out.set("tWR", t.tWR);
    out.set("tWTR", t.tWTR);
    out.set("tRTP", t.tRTP);
    out.set("tCCD", t.tCCD);
    out.set("tRRD", t.tRRD);
    out.set("tFAW", t.tFAW);
    out.set("tCCD_S", t.tCCD_S);
    out.set("tRRD_S", t.tRRD_S);
    out.set("tWTR_S", t.tWTR_S);
    out.set("tWL", t.tWL);
    out.set("burst", t.burst);
    return out;
}

std::string
builtinNames()
{
    std::string names;
    for (const DeviceSpec &spec : builtinDevices()) {
        if (!names.empty())
            names += ", ";
        names += spec.name;
    }
    return names;
}

void
validateOrThrowSpec(const DeviceSpec &spec, const std::string &context)
{
    const std::vector<std::string> problems = spec.validate();
    if (problems.empty())
        return;
    std::string joined = formatMessage("%s: invalid device spec '%s':",
                                       context.c_str(),
                                       spec.name.c_str());
    for (const std::string &p : problems) {
        joined += "\n  - ";
        joined += p;
    }
    throw SimError(joined);
}

} // namespace

Json
toJson(const DeviceSpec &spec)
{
    Json out = Json::object();
    out.set("name", spec.name);
    out.set("standard", spec.standard);
    out.set("tCKns", spec.tCKns);
    out.set("banks", spec.banks);
    out.set("bankGroups", spec.bankGroups);
    out.set("rowBytes", spec.rowBytes);
    out.set("rowsPerBank", spec.rowsPerBank);
    out.set("defaultCoreMHz", spec.defaultCoreMHz);
    out.set("tREFIns", spec.tREFIns);
    out.set("tRFCns", spec.tRFCns);
    out.set("timing", deviceTimingToJson(spec.timing));
    return out;
}

DeviceSpec
deviceSpecFromJson(const Json &json, const std::string &context)
{
    DeviceSpec spec; // Layer over the DDR2-800 defaults.
    const Json::Object &object = json.asObject(context);
    for (const auto &[key, value] : object) {
        const std::string path = context + "." + key;
        if (key == "name") {
            spec.name = value.asString(path);
        } else if (key == "standard") {
            spec.standard = value.asString(path);
        } else if (key == "tCKns") {
            spec.tCKns = value.asDouble(path);
        } else if (key == "banks") {
            spec.banks = static_cast<unsigned>(value.asUint(path));
        } else if (key == "bankGroups") {
            spec.bankGroups = static_cast<unsigned>(value.asUint(path));
        } else if (key == "rowBytes") {
            spec.rowBytes = value.asUint(path);
        } else if (key == "rowsPerBank") {
            spec.rowsPerBank = value.asUint(path);
        } else if (key == "defaultCoreMHz") {
            spec.defaultCoreMHz =
                static_cast<unsigned>(value.asUint(path));
        } else if (key == "tREFIns") {
            spec.tREFIns = value.asDouble(path);
        } else if (key == "tRFCns") {
            spec.tRFCns = value.asDouble(path);
        } else if (key == "timing") {
            // Cycle counts at one clock are the bug this layer removes:
            // refresh belongs at the top level, in nanoseconds.
            for (const char *banned : {"tREFI", "tRFC"}) {
                if (value.find(banned)) {
                    throw SimError(formatMessage(
                        "%s.timing.%s: refresh timing is specified in "
                        "nanoseconds at the device level ('tREFIns' / "
                        "'tRFCns'), not as a cycle count",
                        context.c_str(), banned));
                }
            }
            applyJson(value, spec.timing, path);
        } else {
            throw SimError(formatMessage("%s: unknown key '%s'",
                                         context.c_str(), key.c_str()));
        }
    }
    validateOrThrowSpec(spec, context);
    return spec;
}

DeviceSpec
loadDeviceSpec(const std::string &name_or_path)
{
    if (const DeviceSpec *builtin = findBuiltinDevice(name_or_path))
        return *builtin;

    const bool looks_like_path =
        name_or_path.find('/') != std::string::npos ||
        (name_or_path.size() > 5 &&
         name_or_path.compare(name_or_path.size() - 5, 5, ".json") == 0);
    const std::string path = looks_like_path
                                 ? name_or_path
                                 : "specs/devices/" + name_or_path +
                                       ".json";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw SimError(formatMessage(
            "unknown device '%s': not a built-in preset (%s) and no "
            "spec file at '%s'",
            name_or_path.c_str(), builtinNames().c_str(), path.c_str()));
    }
    std::ostringstream text;
    text << in.rdbuf();
    DeviceSpec spec;
    try {
        spec = deviceSpecFromJson(Json::parse(text.str()), "device");
    } catch (const SimError &e) {
        throw SimError(formatMessage("%s: %s", path.c_str(), e.what()));
    }
    return spec;
}

void
applyDevice(MemoryConfig &memory, const DeviceSpec &spec)
{
    memory.device = spec.name;
    memory.banksPerChannel = spec.banks;
    memory.bankGroups = spec.bankGroups;
    memory.rowBytes = spec.rowBytes;
    memory.rowsPerBank = spec.rowsPerBank;
    memory.dramBusMHz = spec.busMHz();
    memory.timing = spec.timing;
    memory.timing.tREFI = spec.refiCycles();
    memory.timing.tRFC = spec.rfcCycles();
    // Snap the core clock only when the configured one cannot tick the
    // DRAM domain on whole CPU cycles; an integer ratio is respected.
    if (memory.dramBusMHz == 0 ||
        memory.coreFrequencyMHz % memory.dramBusMHz != 0) {
        memory.coreFrequencyMHz = spec.defaultCoreMHz;
    }
}

void
applyDevice(MemoryConfig &memory, const std::string &name_or_path)
{
    applyDevice(memory, loadDeviceSpec(name_or_path));
}

} // namespace stfm
