#include "obs/telemetry.hh"

#include <array>
#include <cctype>
#include <cmath>

#include "common/logging.hh"

namespace stfm
{

void
TelemetryRegistry::add(std::string name, std::string unit,
                       std::string subsystem, SeriesKind kind,
                       std::function<double()> sample)
{
    for (const TelemetrySeries &s : series_) {
        if (s.name == name) {
            throw SimError(formatMessage(
                "telemetry: duplicate series registration '%s'",
                name.c_str()));
        }
    }
    series_.push_back({std::move(name), std::move(unit),
                       std::move(subsystem), kind, std::move(sample)});
}

void
TelemetryRegistry::counter(std::string name, std::string unit,
                           std::string subsystem,
                           std::function<double()> sample)
{
    add(std::move(name), std::move(unit), std::move(subsystem),
        SeriesKind::Counter, std::move(sample));
}

void
TelemetryRegistry::gauge(std::string name, std::string unit,
                         std::string subsystem,
                         std::function<double()> sample)
{
    add(std::move(name), std::move(unit), std::move(subsystem),
        SeriesKind::Gauge, std::move(sample));
}

void
TelemetryRegistry::histogram(std::string name, std::string unit,
                             std::string subsystem,
                             const LatencyHistogram *hist)
{
    for (const TelemetryHistogram &h : histograms_) {
        if (h.name == name) {
            throw SimError(formatMessage(
                "telemetry: duplicate histogram registration '%s'",
                name.c_str()));
        }
    }
    histograms_.push_back(
        {std::move(name), std::move(unit), std::move(subsystem), hist});
}

void
TelemetryRegistry::reset()
{
    series_.clear();
    histograms_.clear();
}

std::string
normalizeSeriesName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (std::size_t i = 0; i < name.size();) {
        if (std::isdigit(static_cast<unsigned char>(name[i]))) {
            out += "<n>";
            while (i < name.size() &&
                   std::isdigit(static_cast<unsigned char>(name[i])))
                ++i;
        } else {
            out += name[i++];
        }
    }
    return out;
}

const std::vector<TelemetryCatalogEntry> &
telemetryCatalog()
{
    // Keep in sync with docs/METRICS.md (tests/test_telemetry.cc and
    // the CI docs job enforce the correspondence in both directions).
    static const std::vector<TelemetryCatalogEntry> catalog = {
        // DRAM channel (device model).
        {"dram.ch<n>.reads", "counter", "commands", "dram",
         "column-read commands issued on the channel"},
        {"dram.ch<n>.writes", "counter", "commands", "dram",
         "column-write commands issued on the channel"},
        {"dram.ch<n>.activates", "counter", "commands", "dram",
         "row-activate commands (row misses + conflicts opened)"},
        {"dram.ch<n>.precharges", "counter", "commands", "dram",
         "explicit precharge commands (row conflicts closed)"},
        {"dram.ch<n>.refreshes", "counter", "commands", "dram",
         "all-bank auto-refresh operations"},
        {"dram.ch<n>.fawLimitedActs", "counter", "commands", "dram",
         "activates whose issue time was bound by the tFAW "
         "four-activate window"},
        {"dram.ch<n>.busUtilization", "gauge", "fraction", "dram",
         "cumulative data-bus busy cycles / elapsed DRAM cycles"},
        // Memory controller.
        {"mem.ch<n>.rowHits", "counter", "requests", "mem",
         "demand accesses serviced as row-buffer hits"},
        {"mem.ch<n>.rowClosed", "counter", "requests", "mem",
         "demand accesses to a closed (precharged) bank"},
        {"mem.ch<n>.rowConflicts", "counter", "requests", "mem",
         "demand accesses that had to close another row first"},
        {"mem.ch<n>.readQueueOccupancy", "gauge", "requests", "mem",
         "reads waiting in the request buffer"},
        {"mem.ch<n>.writeQueueOccupancy", "gauge", "requests", "mem",
         "writebacks waiting in the write buffer"},
        {"mem.ch<n>.drainEpisodes", "counter", "episodes", "mem",
         "write-drain batches started by the drain state machine"},
        {"mem.ch<n>.emergencyDrains", "counter", "episodes", "mem",
         "entries into the emergency (buffer-nearly-full) drain state"},
        {"mem.ch<n>.readLatency.t<n>", "histogram", "dram-cycles",
         "mem",
         "per-thread demand-read service latency distribution "
         "(arrival to data)"},
        // Scheduler (policy-dependent; STFM registers the full set).
        {"sched.stfm.unfairness", "gauge", "ratio", "sched",
         "current max/min estimated slowdown ratio (paper sec. 3.2)"},
        {"sched.stfm.fairnessMode", "gauge", "bool", "sched",
         "1 while unfairness > alpha and STFM prioritizes the hot "
         "thread, else 0 (paper sec. 3.1)"},
        {"sched.stfm.fairnessModeToggles", "counter", "transitions",
         "sched", "times the scheduler entered fairness mode"},
        {"sched.stfm.hotGrants", "counter", "commands", "sched",
         "column commands granted to the prioritized (hot) thread "
         "while in fairness mode"},
        {"sched.stfm.slowdown.t<n>", "gauge", "ratio", "sched",
         "thread t's estimated slowdown S = Tshared/Talone from the "
         "hardware slowdown registers (paper sec. 3.2)"},
        // Cores.
        {"core.t<n>.mshrOccupancy", "gauge", "entries", "core",
         "MSHR entries currently allocated (misses in flight)"},
        {"core.t<n>.stallCycles", "counter", "cpu-cycles", "core",
         "cumulative cycles the thread was memory-stalled"},
        {"core.t<n>.instructions", "counter", "instructions", "core",
         "instructions committed"},
        {"core.t<n>.llcMisses", "counter", "requests", "core",
         "L2 (last-level cache) misses; DRAM demand accesses"},
        // Fleet supervisor (process-pool tier; registered by
        // registerFleetTelemetry over FleetStats, not by a simulated
        // run — written to <checkpoint>/fleet_counters.json).
        {"fleet.shards.completed", "counter", "shards", "fleet",
         "shards executed to success by worker processes this run"},
        {"fleet.shards.resumed", "counter", "shards", "fleet",
         "shards replayed from the checkpoint manifest"},
        {"fleet.shards.failed", "counter", "shards", "fleet",
         "shards that exhausted their process-level retries (merged "
         "as FAILED rows)"},
        {"fleet.retries", "counter", "attempts", "fleet",
         "shard attempts after the first (bounded retry machinery)"},
        {"fleet.timeouts", "counter", "events", "fleet",
         "workers killed for exceeding the per-shard wall-clock "
         "timeout"},
        {"fleet.hangs", "counter", "events", "fleet",
         "workers killed for missing the heartbeat liveness window"},
        {"fleet.crashes", "counter", "events", "fleet",
         "workers that exited nonzero or died to a signal mid-shard"},
        {"fleet.garbage", "counter", "events", "fleet",
         "shard attempts abandoned for protocol garbage on the "
         "worker stream"},
        {"fleet.heartbeats", "counter", "frames", "fleet",
         "heartbeat frames received from busy workers"},
        {"fleet.sigkills", "counter", "events", "fleet",
         "workers killed by SIGKILL mid-shard (likely the OOM killer "
         "on the node; counted inside fleet.crashes too)"},
        {"fleet.migrations", "counter", "shards", "fleet",
         "in-flight shards pulled off a dead or quarantined node and "
         "replayed elsewhere (retry budget untouched)"},
        {"fleet.launchFailures", "counter", "events", "fleet",
         "worker launches that failed at the node (charged to the "
         "node's fault domain, never to a shard)"},
        {"fleet.nodes.quarantined", "counter", "nodes", "fleet",
         "nodes taken out of placement after consecutive failures"},
        {"fleet.netfaults", "counter", "events", "fleet",
         "injected STFM_NETFAULT events that fired this run"},
    };
    return catalog;
}

Json
latencyHistogramToJson(const LatencyHistogram &hist)
{
    Json out = Json::object();
    out.set("count", hist.count());
    out.set("min", hist.min());
    out.set("max", hist.max());
    out.set("mean", hist.mean());
    out.set("p50", hist.quantile(0.5));
    out.set("p90", hist.quantile(0.9));
    out.set("p99", hist.quantile(0.99));
    Json buckets = Json::array();
    for (unsigned k = 0; k < LatencyHistogram::kBuckets; ++k)
        buckets.push(Json(hist.bucket(k)));
    out.set("buckets", std::move(buckets));
    return out;
}

LatencyHistogram
latencyHistogramFromJson(const Json &json, const std::string &context)
{
    const std::uint64_t count =
        json.at("count", context).asUint(context + ".count");
    const auto &values =
        json.at("buckets", context).asArray(context + ".buckets");
    if (values.size() != LatencyHistogram::kBuckets) {
        throw SimError(formatMessage(
            "%s.buckets: expected %u buckets, got %zu", context.c_str(),
            LatencyHistogram::kBuckets, values.size()));
    }
    std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
    std::uint64_t total = 0;
    for (unsigned k = 0; k < LatencyHistogram::kBuckets; ++k) {
        buckets[k] = values[k].asUint(context + ".buckets[]");
        total += buckets[k];
    }
    if (total != count) {
        throw SimError(formatMessage(
            "%s: count %llu but buckets sum to %llu", context.c_str(),
            static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(total)));
    }
    if (count == 0)
        return LatencyHistogram();
    const std::uint64_t min =
        json.at("min", context).asUint(context + ".min");
    const std::uint64_t max =
        json.at("max", context).asUint(context + ".max");
    const double mean =
        json.at("mean", context).asDouble(context + ".mean");
    const std::uint64_t sum = static_cast<std::uint64_t>(
        std::llround(mean * static_cast<double>(count)));
    return LatencyHistogram::restore(buckets, count, sum, min, max);
}

} // namespace stfm
