#include "obs/trace_writer.hh"

#include "common/logging.hh"
#include "dram/command.hh"

namespace stfm
{

namespace
{

constexpr unsigned kSchedulerPid = 1;
constexpr unsigned kSchedulerTid = 0;
constexpr unsigned kChannelPidBase = 100;
constexpr unsigned kDrainTid = 1000;

} // namespace

// Tap adapters -------------------------------------------------------

class ChromeTraceWriter::ChannelTapImpl : public DramCommandObserver
{
  public:
    ChannelTapImpl(ChromeTraceWriter &writer, unsigned channel)
        : writer_(writer), channel_(channel)
    {}

    void
    onCommand(DramCommand cmd, BankId bank, RowId row,
              DramCycles now) override
    {
        writer_.recordCommand(channel_, cmd, bank, row, now);
    }

    void
    onRefresh(DramCycles now) override
    {
        writer_.recordRefresh(channel_, now);
    }

  private:
    ChromeTraceWriter &writer_;
    unsigned channel_;
};

class ChromeTraceWriter::DrainTapImpl : public DrainTap
{
  public:
    DrainTapImpl(ChromeTraceWriter &writer, unsigned channel)
        : writer_(writer), channel_(channel)
    {}

    void
    onDrainState(bool draining, bool emergency, unsigned bank,
                 DramCycles now) override
    {
        writer_.recordDrain(channel_, draining, emergency, bank, now);
    }

  private:
    ChromeTraceWriter &writer_;
    unsigned channel_;
};

class ChromeTraceWriter::FairnessTapImpl : public FairnessModeTap
{
  public:
    explicit FairnessTapImpl(ChromeTraceWriter &writer) : writer_(writer)
    {}

    void
    onFairnessMode(bool active, ThreadId hot, double unfairness,
                   DramCycles now) override
    {
        writer_.recordFairness(active, hot, unfairness, now);
    }

  private:
    ChromeTraceWriter &writer_;
};

// Writer -------------------------------------------------------------

ChromeTraceWriter::ChromeTraceWriter(const DramTiming &timing)
    : timing_(timing)
{}

ChromeTraceWriter::~ChromeTraceWriter() = default;

DramCommandObserver *
ChromeTraceWriter::channelTap(unsigned channel)
{
    while (channelTaps_.size() <= channel)
        channelTaps_.push_back(std::make_unique<ChannelTapImpl>(
            *this, static_cast<unsigned>(channelTaps_.size())));
    return channelTaps_[channel].get();
}

DrainTap *
ChromeTraceWriter::drainTap(unsigned channel)
{
    while (drainTaps_.size() <= channel)
        drainTaps_.push_back(std::make_unique<DrainTapImpl>(
            *this, static_cast<unsigned>(drainTaps_.size())));
    return drainTaps_[channel].get();
}

FairnessModeTap *
ChromeTraceWriter::fairnessTap()
{
    if (!fairnessTap_)
        fairnessTap_ = std::make_unique<FairnessTapImpl>(*this);
    return fairnessTap_.get();
}

DramCycles
ChromeTraceWriter::commandDuration(DramCommand cmd) const
{
    // The bank-visible engagement of each command: how long the lane
    // should read as busy. Column commands include the data burst.
    switch (cmd) {
      case DramCommand::Activate:
        return timing_.tRCD;
      case DramCommand::Precharge:
        return timing_.tRP;
      case DramCommand::Read:
        return timing_.tCL + timing_.burst;
      case DramCommand::Write:
        return timing_.tWL + timing_.burst;
    }
    return 1;
}

void
ChromeTraceWriter::ensureChannelMeta(unsigned channel)
{
    if (channel < channelMetaDone_.size() && channelMetaDone_[channel])
        return;
    if (channel >= channelMetaDone_.size())
        channelMetaDone_.resize(channel + 1, false);
    channelMetaDone_[channel] = true;

    Json meta = Json::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", kChannelPidBase + channel);
    Json args = Json::object();
    args.set("name",
             formatMessage("DRAM channel %u", channel));
    meta.set("args", std::move(args));
    metadata_.push_back(std::move(meta));
}

void
ChromeTraceWriter::ensureLaneMeta(unsigned pid, unsigned tid,
                                  const std::string &name)
{
    for (const auto &[p, t] : lanesSeen_) {
        if (p == pid && t == tid)
            return;
    }
    lanesSeen_.emplace_back(pid, tid);

    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", pid);
    meta.set("tid", tid);
    Json args = Json::object();
    args.set("name", name);
    meta.set("args", std::move(args));
    metadata_.push_back(std::move(meta));
}

void
ChromeTraceWriter::recordCommand(unsigned channel, DramCommand cmd,
                                 BankId bank, RowId row, DramCycles now)
{
    ensureChannelMeta(channel);
    const unsigned pid = kChannelPidBase + channel;
    ensureLaneMeta(pid, bank, formatMessage("bank %u", bank));

    Event ev;
    ev.name = toString(cmd);
    ev.phase = 'X';
    ev.pid = pid;
    ev.tid = bank;
    ev.ts = now;
    ev.dur = commandDuration(cmd);
    if (cmd == DramCommand::Activate)
        ev.args = formatMessage("row %u", row);
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::recordRefresh(unsigned channel, DramCycles now)
{
    ensureChannelMeta(channel);
    const unsigned pid = kChannelPidBase + channel;
    ensureLaneMeta(pid, kDrainTid, "drain / maintenance");

    Event ev;
    ev.name = "Refresh";
    ev.phase = 'X';
    ev.pid = pid;
    ev.tid = kDrainTid;
    ev.ts = now;
    ev.dur = timing_.tRFC;
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::recordDrain(unsigned channel, bool draining,
                               bool emergency, unsigned bank,
                               DramCycles now)
{
    ensureChannelMeta(channel);
    const unsigned pid = kChannelPidBase + channel;
    ensureLaneMeta(pid, kDrainTid, "drain / maintenance");
    if (channel >= drainOpen_.size())
        drainOpen_.resize(channel + 1, 0);

    // A batch handoff (draining -> draining, new bank) closes the
    // previous span before opening the next.
    if (drainOpen_[channel]) {
        Event end;
        end.name = "write-drain";
        end.phase = 'E';
        end.pid = pid;
        end.tid = kDrainTid;
        end.ts = now;
        events_.push_back(std::move(end));
        drainOpen_[channel] = 0;
    }
    if (draining) {
        Event begin;
        begin.name = "write-drain";
        begin.phase = 'B';
        begin.pid = pid;
        begin.tid = kDrainTid;
        begin.ts = now;
        begin.args = formatMessage("bank %u%s", bank,
                                   emergency ? " (emergency)" : "");
        events_.push_back(std::move(begin));
        drainOpen_[channel] = 1;
    }
    if (emergency) {
        Event mark;
        mark.name = "emergency";
        mark.phase = 'i';
        mark.pid = pid;
        mark.tid = kDrainTid;
        mark.ts = now;
        events_.push_back(std::move(mark));
    }
}

void
ChromeTraceWriter::recordFairness(bool active, ThreadId hot,
                                  double unfairness, DramCycles now)
{
    ensureLaneMeta(kSchedulerPid, kSchedulerTid, "fairness mode");

    if (fairnessOpen_) {
        Event end;
        end.name = "fairness-mode";
        end.phase = 'E';
        end.pid = kSchedulerPid;
        end.tid = kSchedulerTid;
        end.ts = now;
        events_.push_back(std::move(end));
        fairnessOpen_ = false;
    }
    if (active) {
        Event begin;
        begin.name = "fairness-mode";
        begin.phase = 'B';
        begin.pid = kSchedulerPid;
        begin.tid = kSchedulerTid;
        begin.ts = now;
        begin.args = formatMessage("hot t%u, unfairness %.3f",
                                   hot, unfairness);
        events_.push_back(std::move(begin));
        fairnessOpen_ = true;
    }
}

void
ChromeTraceWriter::finalize(DramCycles end)
{
    if (fairnessOpen_)
        recordFairness(false, kInvalidThread, 0.0, end);
    for (std::size_t ch = 0; ch < drainOpen_.size(); ++ch) {
        if (drainOpen_[ch])
            recordDrain(static_cast<unsigned>(ch), false, false, 0, end);
    }
}

Json
ChromeTraceWriter::toJson() const
{
    Json doc = Json::object();
    Json trace_events = Json::array();

    // Scheduler process metadata first, then per-channel metadata.
    {
        Json meta = Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", kSchedulerPid);
        Json args = Json::object();
        args.set("name", "Scheduler");
        meta.set("args", std::move(args));
        trace_events.push(std::move(meta));
    }
    for (const Json &meta : metadata_)
        trace_events.push(meta);

    for (const Event &ev : events_) {
        Json out = Json::object();
        out.set("name", ev.name);
        out.set("ph", std::string(1, ev.phase));
        out.set("pid", ev.pid);
        out.set("tid", ev.tid);
        out.set("ts", static_cast<std::uint64_t>(ev.ts));
        if (ev.phase == 'X')
            out.set("dur", static_cast<std::uint64_t>(ev.dur));
        if (ev.phase == 'i')
            out.set("s", "t");
        if (!ev.args.empty()) {
            Json args = Json::object();
            args.set("detail", ev.args);
            out.set("args", std::move(args));
        }
        trace_events.push(std::move(out));
    }

    doc.set("traceEvents", std::move(trace_events));
    doc.set("displayTimeUnit", "ms");
    Json other = Json::object();
    other.set("schema", "stfm-trace-v1");
    other.set("clock", "dram-cycles (ts unit: 1 trace us = 1 DRAM "
                       "cycle = 2.5 ns at DDR2-800)");
    doc.set("otherData", std::move(other));
    return doc;
}

} // namespace stfm
