/**
 * @file
 * Observability configuration — a member of SimConfig.
 *
 * Parsed/serialized by sim/config_io (spec "telemetry" block), layered
 * by EnvOverrides (STFM_TELEMETRY / STFM_TRACE) and surfaced on the
 * `stfm` CLI as `--telemetry` / `--trace <file>`. The struct itself is
 * dependency-free so sim/config.hh can include it directly.
 */

#ifndef STFM_OBS_TELEMETRY_CONFIG_HH
#define STFM_OBS_TELEMETRY_CONFIG_HH

#include <cstdint>
#include <string>

namespace stfm
{

struct TelemetryConfig
{
    /** Collect the time-series registry and emit stfm-telemetry-v1. */
    bool enabled = false;

    /** Sampling period of the epoch sampler, in DRAM cycles. */
    std::uint64_t epochCycles = 10000;

    /**
     * Output path for the telemetry document. Empty = derived by the
     * harness ("<experiment>_telemetry.json" next to the results).
     */
    std::string output;

    /**
     * Output path for the Chrome trace_event document. Empty =
     * tracing disabled; a non-empty path implies collection even if
     * `enabled` is false.
     */
    std::string trace;

    /** True when any observability machinery must be built. */
    bool
    collecting() const
    {
        return enabled || !trace.empty();
    }

    /** True when the Chrome-trace exporter is active. */
    bool
    tracing() const
    {
        return !trace.empty();
    }
};

} // namespace stfm

#endif // STFM_OBS_TELEMETRY_CONFIG_HH
