/**
 * @file
 * Observer-tap interfaces the simulated subsystems fire into.
 *
 * These are the write-side counterparts of `DramCommandObserver`
 * (dram/channel.hh): tiny virtual interfaces a subsystem holds as a
 * null-by-default pointer and fires only on state *transitions*. They
 * live in obs/ but depend on nothing beyond common/types.hh, so
 * sched/ and mem/ can include them without pulling in the telemetry
 * or trace machinery (and without obs/ depending back on them).
 *
 * The zero-overhead-when-off contract: every fire site is guarded by
 * a pointer null-check on a transition path that already branches, so
 * a disabled build path costs one predictable compare.
 */

#ifndef STFM_OBS_TAPS_HH
#define STFM_OBS_TAPS_HH

#include "common/types.hh"

namespace stfm
{

/**
 * Fired by a fairness-aware scheduling policy (STFM) whenever it
 * enters or leaves fairness mode. `hot` is the prioritized thread
 * while fairness mode is active, kInvalidThread otherwise.
 */
class FairnessModeTap
{
  public:
    virtual ~FairnessModeTap() = default;
    virtual void onFairnessMode(bool active, ThreadId hot,
                                double unfairness, DramCycles now) = 0;
};

/**
 * Fired by a memory controller when its write-drain state machine
 * transitions: a drain episode starts/ends, the drained bank batch
 * advances, or the emergency (buffer-nearly-full) flag flips.
 */
class DrainTap
{
  public:
    virtual ~DrainTap() = default;
    virtual void onDrainState(bool draining, bool emergency,
                              unsigned bank, DramCycles now) = 0;
};

} // namespace stfm

#endif // STFM_OBS_TAPS_HH
