/**
 * @file
 * Per-run observability session: owns the telemetry registry, the
 * epoch sampler and (when tracing) the Chrome trace writer, and is
 * driven from CmpSystem's executed DRAM-cycle boundaries.
 *
 * A session exists only when `TelemetryConfig::collecting()` — the
 * disabled configuration never constructs one, so the simulation hot
 * path pays exactly one null-pointer check per DRAM boundary.
 */

#ifndef STFM_OBS_SESSION_HH
#define STFM_OBS_SESSION_HH

#include <memory>

#include "common/json.hh"
#include "obs/sampler.hh"
#include "obs/telemetry.hh"
#include "obs/telemetry_config.hh"
#include "obs/trace_writer.hh"

namespace stfm
{

class ObsSession
{
  public:
    ObsSession(const TelemetryConfig &config, const DramTiming &timing);

    const TelemetryConfig &config() const { return config_; }
    TelemetryRegistry &registry() { return registry_; }
    const TelemetryRegistry &registry() const { return registry_; }

    /** Null when tracing is disabled. */
    ChromeTraceWriter *trace() { return trace_.get(); }

    /** Must be called once, after every subsystem has registered. */
    void start(DramCycles dram_now);

    /** Called at each *executed* DRAM-cycle boundary. */
    void
    onBoundary(DramCycles dram_now)
    {
        if (sampler_)
            sampler_->onBoundary(dram_now);
    }

    /** Take closing samples and close open trace spans. */
    void finalize(DramCycles dram_now);

    bool hasTelemetryDoc() const { return sampler_ != nullptr; }
    bool hasTraceDoc() const { return trace_ != nullptr; }

    /** The stfm-telemetry-v1 document (valid after finalize). */
    Json telemetryJson() const;
    /** The Chrome trace document (valid after finalize). */
    Json traceJson() const;

  private:
    const TelemetryConfig config_;
    TelemetryRegistry registry_;
    std::unique_ptr<EpochSampler> sampler_;
    std::unique_ptr<ChromeTraceWriter> trace_;
};

} // namespace stfm

#endif // STFM_OBS_SESSION_HH
