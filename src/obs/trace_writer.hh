/**
 * @file
 * Chrome trace_event exporter (Perfetto / about://tracing loadable).
 *
 * Three event families, documented in docs/TRACING.md:
 *
 *  - DRAM commands: one "X" (complete) event per command, one lane
 *    per bank (pid = 100 + channel, tid = bank), duration derived
 *    from the timing parameters the command engages;
 *  - fairness-mode spans: "B"/"E" pairs on the scheduler lane
 *    (pid = 1, tid = 0) opened when STFM's unfairness estimate
 *    crosses alpha and closed when it falls back;
 *  - write-drain spans: "B"/"E" pairs on a per-channel drain lane
 *    (pid = 100 + channel, tid = 1000), one span per drained bank
 *    batch, with an "i" (instant) marker on emergency entry.
 *
 * Timestamps are DRAM cycles presented as microseconds — trace
 * viewers require a time unit, and 1 cycle == 1 "us" keeps the axis
 * readable (the real scale, 2.5 ns/cycle for DDR2-800, is recorded in
 * otherData.clock).
 *
 * The writer is fed through the same observer taps the integrity
 * layer uses (`DramCommandObserver`, obs/taps.hh) and composes with
 * the protocol checker: `DramChannel` now fans commands out to both.
 */

#ifndef STFM_OBS_TRACE_WRITER_HH
#define STFM_OBS_TRACE_WRITER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"
#include "obs/taps.hh"

namespace stfm
{

class ChromeTraceWriter
{
  public:
    explicit ChromeTraceWriter(const DramTiming &timing);
    ~ChromeTraceWriter();

    /**
     * The per-channel DRAM command tap to attach via
     * `DramChannel::addObserver`. Owned by the writer.
     */
    DramCommandObserver *channelTap(unsigned channel);

    /** The per-channel write-drain tap for
     *  `MemoryController::setDrainTap`. Owned by the writer. */
    DrainTap *drainTap(unsigned channel);

    /** The scheduler fairness-mode tap for
     *  `SchedulingPolicy::setFairnessTap`. */
    FairnessModeTap *fairnessTap();

    /** Close any spans still open at end of run. */
    void finalize(DramCycles end);

    std::size_t eventCount() const { return events_.size(); }

    /** The Chrome trace document: {"traceEvents": [...], ...}. */
    Json toJson() const;

  private:
    struct Event
    {
        std::string name;
        char phase;       ///< 'X', 'B', 'E' or 'i'.
        unsigned pid;
        unsigned tid;
        DramCycles ts;
        DramCycles dur;   ///< 'X' only.
        std::string args; ///< Optional pre-rendered detail string.
    };

    class ChannelTapImpl;
    class DrainTapImpl;
    class FairnessTapImpl;

    void recordCommand(unsigned channel, DramCommand cmd, BankId bank,
                       RowId row, DramCycles now);
    void recordRefresh(unsigned channel, DramCycles now);
    void recordDrain(unsigned channel, bool draining, bool emergency,
                     unsigned bank, DramCycles now);
    void recordFairness(bool active, ThreadId hot, double unfairness,
                        DramCycles now);

    DramCycles commandDuration(DramCommand cmd) const;
    void ensureChannelMeta(unsigned channel);
    void ensureLaneMeta(unsigned pid, unsigned tid,
                        const std::string &name);

    const DramTiming timing_;
    std::vector<Event> events_;
    std::vector<Json> metadata_;
    std::vector<std::unique_ptr<ChannelTapImpl>> channelTaps_;
    std::vector<std::unique_ptr<DrainTapImpl>> drainTaps_;
    std::unique_ptr<FairnessTapImpl> fairnessTap_;

    std::vector<bool> channelMetaDone_;
    std::vector<std::pair<unsigned, unsigned>> lanesSeen_;

    bool fairnessOpen_ = false;
    std::vector<char> drainOpen_; ///< Per channel.
};

} // namespace stfm

#endif // STFM_OBS_TRACE_WRITER_HH
