/**
 * @file
 * The telemetry registry: named counters, gauges and histograms that
 * subsystems register by name when observability is enabled.
 *
 * Probes are *pull-based*: a registration is a name plus a sampling
 * closure over state the subsystem already maintains (its existing
 * stats structs). Nothing is added to any hot path — when telemetry is
 * off the registry simply never exists and no closure is ever created;
 * when it is on, cost is confined to the epoch sampler walking the
 * closures every N DRAM cycles.
 *
 * Naming contract (documented in docs/METRICS.md, browsable via
 * `stfm list telemetry`): dotted lowercase paths where instance
 * indices are literal digits, e.g. `dram.ch0.activates`,
 * `sched.stfm.slowdown.t2`. `normalizeSeriesName()` maps a concrete
 * name onto its catalog pattern (`dram.ch<n>.activates`,
 * `sched.stfm.slowdown.t<n>`) so tests and CI can verify that every
 * registered series is documented and vice versa.
 */

#ifndef STFM_OBS_TELEMETRY_HH
#define STFM_OBS_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "stats/histogram.hh"

namespace stfm
{

enum class SeriesKind
{
    Counter, ///< Monotonically non-decreasing cumulative count.
    Gauge,   ///< Instantaneous level; may move in both directions.
};

/** One registered time-series probe. */
struct TelemetrySeries
{
    std::string name;
    std::string unit;
    std::string subsystem;
    SeriesKind kind = SeriesKind::Counter;
    std::function<double()> sample;
};

/** One registered histogram (emitted once, at end of run). */
struct TelemetryHistogram
{
    std::string name;
    std::string unit;
    std::string subsystem;
    const LatencyHistogram *histogram = nullptr;
};

class TelemetryRegistry
{
  public:
    /** Register a cumulative counter probe. @throws SimError on a
     *  duplicate name. */
    void counter(std::string name, std::string unit,
                 std::string subsystem, std::function<double()> sample);

    /** Register an instantaneous gauge probe. */
    void gauge(std::string name, std::string unit, std::string subsystem,
               std::function<double()> sample);

    /** Register a histogram snapshotted at end of run. The pointee
     *  must outlive the registry. */
    void histogram(std::string name, std::string unit,
                   std::string subsystem, const LatencyHistogram *hist);

    const std::vector<TelemetrySeries> &series() const { return series_; }
    const std::vector<TelemetryHistogram> &
    histograms() const
    {
        return histograms_;
    }

    std::size_t size() const { return series_.size(); }

    /** Drop every registration (per-run lifetime management). */
    void reset();

  private:
    void add(std::string name, std::string unit, std::string subsystem,
             SeriesKind kind, std::function<double()> sample);

    std::vector<TelemetrySeries> series_;
    std::vector<TelemetryHistogram> histograms_;
};

/** One row of the static metrics catalog (`stfm list telemetry`). */
struct TelemetryCatalogEntry
{
    const char *pattern;   ///< Name with <n> in place of indices.
    const char *kind;      ///< "counter" / "gauge" / "histogram".
    const char *unit;
    const char *subsystem;
    const char *description;
};

/**
 * The authoritative in-tree catalog of every series the simulator can
 * register. docs/METRICS.md mirrors this table; tests assert the two
 * never drift (each registered name normalizes onto a pattern here,
 * and each pattern is exercised by a telemetry-enabled run).
 */
const std::vector<TelemetryCatalogEntry> &telemetryCatalog();

/** Replace each digit run with `<n>`: `dram.ch0.reads` ->
 *  `dram.ch<n>.reads`, `sched.stfm.slowdown.t12` ->
 *  `sched.stfm.slowdown.t<n>`. */
std::string normalizeSeriesName(const std::string &name);

/**
 * Serialize @p hist exactly as stfm-telemetry-v1 documents carry
 * end-of-run histograms: {"count", "min", "max", "mean", "p50",
 * "p90", "p99", "buckets": [32 counts]}. The one shape the epoch
 * sampler emits and the fleet report tier re-ingests.
 */
Json latencyHistogramToJson(const LatencyHistogram &hist);

/**
 * Rebuild a mergeable LatencyHistogram from the object
 * latencyHistogramToJson emits. The document carries no explicit
 * sample sum; it is reconstructed as round(mean * count), exact while
 * the true sum fits a double's 2^53 integer range (DRAM-cycle
 * latencies in budgeted runs are far below that). @throws SimError on
 * malformed input; @p context names the value in diagnostics.
 */
LatencyHistogram latencyHistogramFromJson(const Json &json,
                                          const std::string &context);

} // namespace stfm

#endif // STFM_OBS_TELEMETRY_HH
