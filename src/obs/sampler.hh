/**
 * @file
 * Epoch sampler: snapshots every registered telemetry series each N
 * DRAM cycles and serializes the run into an `stfm-telemetry-v1`
 * document (schema documented in docs/METRICS.md).
 *
 * The sampler is driven from executed DRAM-cycle boundaries only.
 * Event-driven fast-forwarding (DESIGN.md sec. 6) legitimately skips
 * boundaries, so samples are taken at the first executed boundary at
 * or after each epoch edge and the *actual* cycle is recorded per
 * sample — the time axis is explicit, never assumed uniform.
 */

#ifndef STFM_OBS_SAMPLER_HH
#define STFM_OBS_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace stfm
{

class TelemetryRegistry;

class EpochSampler
{
  public:
    /** @p epoch_cycles must be > 0 (validated by config_io). */
    EpochSampler(const TelemetryRegistry &registry,
                 std::uint64_t epoch_cycles);

    /**
     * Called at an executed DRAM-cycle boundary. Samples once when
     * @p dram_now has reached the next epoch edge, then re-arms at the
     * following edge strictly after @p dram_now.
     */
    void
    onBoundary(DramCycles dram_now)
    {
        if (dram_now >= nextEpoch_)
            sample(dram_now);
    }

    /** Take a closing sample (end of run), regardless of epoch phase. */
    void finalize(DramCycles dram_now);

    std::size_t sampleCount() const { return cycles_.size(); }
    const std::vector<DramCycles> &cycles() const { return cycles_; }

    /** The full `stfm-telemetry-v1` document. */
    Json toJson() const;

  private:
    void sample(DramCycles dram_now);

    const TelemetryRegistry &registry_;
    const std::uint64_t epochCycles_;
    DramCycles nextEpoch_ = 0;

    std::vector<DramCycles> cycles_;
    /** values_[s][i] = series s at cycles_[i]. */
    std::vector<std::vector<double>> values_;
    bool finalized_ = false;
};

} // namespace stfm

#endif // STFM_OBS_SAMPLER_HH
