#include "obs/session.hh"

namespace stfm
{

ObsSession::ObsSession(const TelemetryConfig &config,
                       const DramTiming &timing)
    : config_(config)
{
    if (config_.tracing())
        trace_ = std::make_unique<ChromeTraceWriter>(timing);
}

void
ObsSession::start(DramCycles dram_now)
{
    // The sampler snapshots the registry by reference, so it is built
    // after registration settles; its first sample lands on the first
    // executed boundary at or after `dram_now`.
    if (config_.enabled && !sampler_) {
        sampler_ =
            std::make_unique<EpochSampler>(registry_, config_.epochCycles);
        sampler_->onBoundary(dram_now);
    }
}

void
ObsSession::finalize(DramCycles dram_now)
{
    if (sampler_)
        sampler_->finalize(dram_now);
    if (trace_)
        trace_->finalize(dram_now);
}

Json
ObsSession::telemetryJson() const
{
    return sampler_ ? sampler_->toJson() : Json();
}

Json
ObsSession::traceJson() const
{
    return trace_ ? trace_->toJson() : Json();
}

} // namespace stfm
