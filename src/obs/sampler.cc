#include "obs/sampler.hh"

#include "obs/telemetry.hh"
#include "stats/histogram.hh"

namespace stfm
{

EpochSampler::EpochSampler(const TelemetryRegistry &registry,
                           std::uint64_t epoch_cycles)
    : registry_(registry), epochCycles_(epoch_cycles ? epoch_cycles : 1)
{
    values_.resize(registry_.size());
}

void
EpochSampler::sample(DramCycles dram_now)
{
    // Registrations happen before the first boundary; tolerate a
    // registry that grew since construction (tests build them apart).
    if (values_.size() < registry_.size())
        values_.resize(registry_.size());

    cycles_.push_back(dram_now);
    const auto &series = registry_.series();
    for (std::size_t s = 0; s < series.size(); ++s)
        values_[s].push_back(series[s].sample ? series[s].sample() : 0.0);
    nextEpoch_ = (dram_now / epochCycles_ + 1) * epochCycles_;
}

void
EpochSampler::finalize(DramCycles dram_now)
{
    if (finalized_)
        return;
    finalized_ = true;
    if (cycles_.empty() || cycles_.back() != dram_now)
        sample(dram_now);
}

Json
EpochSampler::toJson() const
{
    Json doc = Json::object();
    doc.set("schema", "stfm-telemetry-v1");
    doc.set("clock", "dram-cycles");
    doc.set("epochCycles", epochCycles_);

    Json defs = Json::array();
    for (const TelemetrySeries &s : registry_.series()) {
        Json def = Json::object();
        def.set("name", s.name);
        def.set("kind",
                s.kind == SeriesKind::Counter ? "counter" : "gauge");
        def.set("unit", s.unit);
        def.set("subsystem", s.subsystem);
        defs.push(std::move(def));
    }
    doc.set("series", std::move(defs));

    Json samples = Json::object();
    Json cycles = Json::array();
    for (const DramCycles c : cycles_)
        cycles.push(Json(static_cast<std::uint64_t>(c)));
    samples.set("cycles", std::move(cycles));

    Json values = Json::object();
    const auto &series = registry_.series();
    for (std::size_t s = 0; s < series.size(); ++s) {
        Json column = Json::array();
        // A series registered after earlier samples were taken reads
        // as absent for those epochs; pad from the front with zeros so
        // every column has one value per recorded cycle.
        const std::size_t have =
            s < values_.size() ? values_[s].size() : 0;
        for (std::size_t i = 0; i < cycles_.size(); ++i) {
            const std::size_t missing = cycles_.size() - have;
            column.push(Json(i < missing ? 0.0
                                         : values_[s][i - missing]));
        }
        values.set(series[s].name, std::move(column));
    }
    samples.set("values", std::move(values));
    doc.set("samples", std::move(samples));

    Json final_values = Json::object();
    for (std::size_t s = 0; s < series.size(); ++s) {
        final_values.set(series[s].name,
                         series[s].sample ? series[s].sample() : 0.0);
    }
    doc.set("final", std::move(final_values));

    Json histograms = Json::array();
    for (const TelemetryHistogram &h : registry_.histograms()) {
        Json hist = Json::object();
        hist.set("name", h.name);
        hist.set("unit", h.unit);
        hist.set("subsystem", h.subsystem);
        // Stats via the shared serializer so the report tier's
        // re-ingest (latencyHistogramFromJson) reads the same shape.
        const Json stats = latencyHistogramToJson(*h.histogram);
        for (const auto &[key, value] : stats.asObject("histogram"))
            hist.set(key, value);
        histograms.push(std::move(hist));
    }
    doc.set("histograms", std::move(histograms));
    return doc;
}

} // namespace stfm
