/**
 * @file
 * Forward-progress watchdogs: request lifetime auditor + starvation
 * monitor.
 *
 * The auditor shadows every request's lifecycle through one
 * controller — enqueue, (column) issue, data return — keyed by the
 * controller-assigned globally unique request id. It flags:
 *
 *   - duplicate ids at enqueue, double issues, and completions for
 *     requests it never saw (conservation violations);
 *   - leaked requests at drain (accepted but never completed);
 *   - starvation: any queued request aging past a configurable DRAM-
 *     cycle bound, which turns scheduler-policy livelock (the failure
 *     mode fairness bugs actually produce — unbounded latencies) into
 *     a diagnosable CheckFailure with full context instead of a hung
 *     or silently wrong run.
 *
 * Observation-only: the auditor never influences scheduling.
 */

#ifndef STFM_CHECK_AUDITOR_HH
#define STFM_CHECK_AUDITOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "check/integrity.hh"
#include "common/types.hh"

namespace stfm
{

class RequestAuditor
{
  public:
    /**
     * @param channel            Channel id (diagnostics only).
     * @param starvation_bound   Max DRAM cycles a request may stay
     *                           queued before issue.
     * @param throw_on_violation Throw CheckFailure (default) or record.
     */
    RequestAuditor(ChannelId channel, DramCycles starvation_bound,
                   bool throw_on_violation = true);

    /** A request entered the controller's buffers. */
    void onEnqueue(std::uint64_t id, ThreadId thread, BankId bank,
                   bool is_write, DramCycles now);
    /**
     * A read was satisfied by write-to-read forwarding: it bypasses
     * DRAM entirely and completes on a later tick.
     */
    void onForward(std::uint64_t id, ThreadId thread, BankId bank,
                   DramCycles now);
    /** The request's column command issued (it entered service). */
    void onIssue(std::uint64_t id, DramCycles now);
    /** The request's data burst finished (it left the controller). */
    void onComplete(std::uint64_t id, DramCycles now);

    /** Starvation scan: flag queued requests older than the bound. */
    void checkProgress(DramCycles now);
    /**
     * Drain check: every accepted request must have completed. Call
     * once the controller reports idle.
     */
    void checkDrained(DramCycles now);

    const std::vector<Violation> &violations() const
    {
        return violations_;
    }
    /** Requests currently tracked (accepted, not yet completed). */
    std::size_t outstanding() const { return outstanding_.size(); }
    std::uint64_t accepted() const { return accepted_; }
    std::uint64_t completed() const { return completed_; }

  private:
    struct Record
    {
        ThreadId thread = kInvalidThread;
        BankId bank = 0;
        bool isWrite = false;
        bool issued = false;
        DramCycles enqueuedAt = 0;
    };

    void flag(const char *constraint, const Record &record,
              std::uint64_t id, DramCycles now,
              const std::string &detail);

    ChannelId channel_;
    DramCycles starvationBound_;
    bool throwOnViolation_;

    std::unordered_map<std::uint64_t, Record> outstanding_;
    std::uint64_t accepted_ = 0;
    std::uint64_t completed_ = 0;

    std::vector<Violation> violations_;
};

} // namespace stfm

#endif // STFM_CHECK_AUDITOR_HH
