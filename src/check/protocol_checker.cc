#include "check/protocol_checker.hh"

#include "common/logging.hh"

namespace stfm
{

ProtocolChecker::ProtocolChecker(ChannelId channel, unsigned num_banks,
                                 const DramTiming &timing,
                                 bool throw_on_violation,
                                 unsigned bank_groups)
    : channel_(channel), timing_(timing),
      throwOnViolation_(throw_on_violation), bankGroups_(bank_groups),
      banks_(num_banks)
{
    STFM_ASSERT(num_banks > 0, "protocol checker needs at least one bank");
    STFM_ASSERT(bank_groups >= 1 && num_banks % bank_groups == 0,
                "bank group count must divide the bank count");
    if (bankGroups_ > 1) {
        lastActPerGroup_.assign(bankGroups_, kNoTime);
        lastColPerGroup_.assign(bankGroups_, kNoTime);
        writeEndPerGroup_.assign(bankGroups_, kNoTime);
    }
}

void
ProtocolChecker::noteRequest(std::uint64_t id, ThreadId thread)
{
    pendingRequestId_ = id;
    pendingThread_ = thread;
}

void
ProtocolChecker::flag(const char *constraint, BankId bank, DramCycles now,
                      const std::string &detail)
{
    if (throwOnViolation_) {
        throw CheckFailure(constraint, now, channel_, bank,
                           pendingRequestId_, pendingThread_, detail);
    }
    Violation v;
    v.constraint = constraint;
    v.cycle = now;
    v.channel = channel_;
    v.bank = bank;
    v.requestId = pendingRequestId_;
    v.thread = pendingThread_;
    v.detail = detail;
    violations_.push_back(std::move(v));
}

void
ProtocolChecker::checkActivate(BankShadow &bank, BankId b, RowId row,
                               DramCycles now)
{
    if (now < refreshUntil_) {
        flag("tRFC", b, now,
             formatMessage("ACT while rank refreshes until cycle %llu",
                           static_cast<unsigned long long>(
                               refreshUntil_)));
    }
    if (bank.openRow != kInvalidRow) {
        flag("bank-state", b, now,
             formatMessage("ACT to a bank with row %u already open",
                           bank.openRow));
    }
    if (bank.actAt != kNoTime && now < bank.actAt + timing_.tRC) {
        flag("tRC", b, now,
             formatMessage("ACT %llu cycles after previous ACT (tRC=%llu)",
                           static_cast<unsigned long long>(now - bank.actAt),
                           static_cast<unsigned long long>(timing_.tRC)));
    }
    if (bank.preAt != kNoTime && now < bank.preAt + timing_.tRP) {
        flag("tRP", b, now,
             formatMessage("ACT %llu cycles after PRE (tRP=%llu)",
                           static_cast<unsigned long long>(now - bank.preAt),
                           static_cast<unsigned long long>(timing_.tRP)));
    }
    if (bankGroups_ > 1) {
        // Pairwise group gaps: long tRRD inside this bank's group,
        // short tRRD_S against every other group's last activate.
        const unsigned g = groupOf(b);
        for (unsigned h = 0; h < bankGroups_; ++h) {
            if (lastActPerGroup_[h] == kNoTime)
                continue;
            const DramCycles gap =
                h == g ? timing_.tRRD : timing_.tRRD_S;
            if (now < lastActPerGroup_[h] + gap) {
                flag("tRRD", b, now,
                     formatMessage(
                         "ACT %llu cycles after an ACT to group %u "
                         "(%s=%llu)",
                         static_cast<unsigned long long>(
                             now - lastActPerGroup_[h]),
                         h, h == g ? "tRRD_L" : "tRRD_S",
                         static_cast<unsigned long long>(gap)));
            }
        }
    } else if (!actTimes_.empty() &&
               now < actTimes_.back() + timing_.tRRD) {
        flag("tRRD", b, now,
             formatMessage("ACT %llu cycles after previous channel ACT "
                           "(tRRD=%llu)",
                           static_cast<unsigned long long>(
                               now - actTimes_.back()),
                           static_cast<unsigned long long>(timing_.tRRD)));
    }
    if (actTimes_.size() >= 4 &&
        now < actTimes_[actTimes_.size() - 4] + timing_.tFAW) {
        flag("tFAW", b, now,
             formatMessage("fifth ACT %llu cycles after the fourth-last "
                           "(tFAW=%llu)",
                           static_cast<unsigned long long>(
                               now - actTimes_[actTimes_.size() - 4]),
                           static_cast<unsigned long long>(timing_.tFAW)));
    }

    bank.openRow = row;
    bank.actAt = now;
    if (bankGroups_ > 1)
        lastActPerGroup_[groupOf(b)] = now;
    actTimes_.push_back(now);
    if (actTimes_.size() > 4)
        actTimes_.erase(actTimes_.begin());
}

void
ProtocolChecker::checkPrecharge(BankShadow &bank, BankId b,
                                DramCycles now)
{
    if (bank.openRow == kInvalidRow)
        flag("bank-state", b, now, "PRE to an already-precharged bank");
    if (bank.actAt != kNoTime && now < bank.actAt + timing_.tRAS) {
        flag("tRAS", b, now,
             formatMessage("PRE %llu cycles after ACT (tRAS=%llu)",
                           static_cast<unsigned long long>(now - bank.actAt),
                           static_cast<unsigned long long>(timing_.tRAS)));
    }
    // Read to precharge: the burst plus tRTP must elapse.
    if (bank.readAt != kNoTime &&
        now < bank.readAt + timing_.burst + timing_.tRTP) {
        flag("tRTP", b, now,
             formatMessage("PRE %llu cycles after READ (burst+tRTP=%llu)",
                           static_cast<unsigned long long>(now - bank.readAt),
                           static_cast<unsigned long long>(timing_.burst +
                                                           timing_.tRTP)));
    }
    // Write recovery: data must be restored into the array first.
    if (bank.writeAt != kNoTime &&
        now < bank.writeAt + timing_.tWL + timing_.burst + timing_.tWR) {
        flag("tWR", b, now,
             formatMessage("PRE %llu cycles after WRITE "
                           "(tWL+burst+tWR=%llu)",
                           static_cast<unsigned long long>(
                               now - bank.writeAt),
                           static_cast<unsigned long long>(
                               timing_.tWL + timing_.burst + timing_.tWR)));
    }

    bank.openRow = kInvalidRow;
    bank.preAt = now;
}

void
ProtocolChecker::checkColumn(BankShadow &bank, BankId b, RowId row,
                             DramCycles now, bool is_write)
{
    const char *name = is_write ? "WRITE" : "READ";
    if (bank.openRow == kInvalidRow) {
        flag("bank-state", b, now,
             formatMessage("%s to a precharged bank", name));
    } else if (bank.openRow != row) {
        flag("bank-state", b, now,
             formatMessage("%s to row %u while row %u is open", name, row,
                           bank.openRow));
    }
    if (bank.actAt != kNoTime && now < bank.actAt + timing_.tRCD) {
        flag("tRCD", b, now,
             formatMessage("%s %llu cycles after ACT (tRCD=%llu)", name,
                           static_cast<unsigned long long>(now - bank.actAt),
                           static_cast<unsigned long long>(timing_.tRCD)));
    }
    if (bank.colAt != kNoTime && now < bank.colAt + timing_.tCCD) {
        flag("tCCD", b, now,
             formatMessage("%s %llu cycles after previous column command "
                           "(tCCD=%llu)",
                           name,
                           static_cast<unsigned long long>(now - bank.colAt),
                           static_cast<unsigned long long>(timing_.tCCD)));
    }
    if (bankGroups_ > 1) {
        // Pairwise group gaps: tCCD_L inside this bank's group,
        // tCCD_S against every other group's last column command.
        const unsigned g = groupOf(b);
        for (unsigned h = 0; h < bankGroups_; ++h) {
            if (lastColPerGroup_[h] == kNoTime)
                continue;
            const DramCycles gap =
                h == g ? timing_.tCCD : timing_.tCCD_S;
            if (now < lastColPerGroup_[h] + gap) {
                flag("tCCD", b, now,
                     formatMessage(
                         "%s %llu cycles after a column command to "
                         "group %u (%s=%llu)",
                         name,
                         static_cast<unsigned long long>(
                             now - lastColPerGroup_[h]),
                         h, h == g ? "tCCD_L" : "tCCD_S",
                         static_cast<unsigned long long>(gap)));
            }
        }
    }
    if (!is_write && bankGroups_ > 1) {
        // Write-to-read turnaround per group: tWTR_L from a write in
        // this bank's group, tWTR_S from writes in other groups.
        const unsigned g = groupOf(b);
        for (unsigned h = 0; h < bankGroups_; ++h) {
            if (writeEndPerGroup_[h] == kNoTime)
                continue;
            const DramCycles gap =
                h == g ? timing_.tWTR : timing_.tWTR_S;
            if (now < writeEndPerGroup_[h] + gap) {
                flag("tWTR", b, now,
                     formatMessage(
                         "READ %llu cycles before the group-%u "
                         "write-to-read turnaround expires (%s=%llu)",
                         static_cast<unsigned long long>(
                             writeEndPerGroup_[h] + gap - now),
                         h, h == g ? "tWTR_L" : "tWTR_S",
                         static_cast<unsigned long long>(gap)));
            }
        }
    } else if (!is_write && writeDataEndAt_ != kNoTime &&
               now < writeDataEndAt_ + timing_.tWTR) {
        flag("tWTR", b, now,
             formatMessage("READ %llu cycles before the write-to-read "
                           "turnaround expires (tWTR=%llu)",
                           static_cast<unsigned long long>(
                               writeDataEndAt_ + timing_.tWTR - now),
                           static_cast<unsigned long long>(timing_.tWTR)));
    }
    // Data-bus contention: this command's burst must not overlap the
    // previously scheduled burst.
    const DramCycles data_start =
        now + (is_write ? timing_.tWL : timing_.tCL);
    if (data_start < busFreeAt_) {
        flag("data-bus", b, now,
             formatMessage("%s data burst starts at %llu but the bus is "
                           "busy until %llu",
                           name,
                           static_cast<unsigned long long>(data_start),
                           static_cast<unsigned long long>(busFreeAt_)));
    }

    bank.colAt = now;
    busFreeAt_ = data_start + timing_.burst;
    if (bankGroups_ > 1)
        lastColPerGroup_[groupOf(b)] = now;
    if (is_write) {
        bank.writeAt = now;
        writeDataEndAt_ = data_start + timing_.burst;
        if (bankGroups_ > 1)
            writeEndPerGroup_[groupOf(b)] = data_start + timing_.burst;
    } else {
        bank.readAt = now;
    }
}

void
ProtocolChecker::onCommand(DramCommand cmd, BankId bank, RowId row,
                           DramCycles now)
{
    ++commandsChecked_;
    if (bank >= banks_.size()) {
        flag("bank-range", bank, now,
             formatMessage("command to bank %u of %zu", bank,
                           banks_.size()));
        pendingRequestId_ = CheckFailure::kNoRequest;
        pendingThread_ = kInvalidThread;
        return;
    }
    BankShadow &shadow = banks_[bank];
    switch (cmd) {
      case DramCommand::Activate:
        checkActivate(shadow, bank, row, now);
        break;
      case DramCommand::Precharge:
        checkPrecharge(shadow, bank, now);
        break;
      case DramCommand::Read:
        checkColumn(shadow, bank, row, now, /*is_write=*/false);
        break;
      case DramCommand::Write:
        checkColumn(shadow, bank, row, now, /*is_write=*/true);
        break;
    }
    pendingRequestId_ = CheckFailure::kNoRequest;
    pendingThread_ = kInvalidThread;
}

void
ProtocolChecker::onRefresh(DramCycles now)
{
    ++commandsChecked_;
    for (BankId b = 0; b < banks_.size(); ++b) {
        if (banks_[b].openRow != kInvalidRow) {
            flag("refresh", b, now,
                 formatMessage("refresh with row %u open",
                               banks_[b].openRow));
            banks_[b].openRow = kInvalidRow; // Resync in record mode.
        }
    }
    refreshUntil_ = now + timing_.tRFC;
    pendingRequestId_ = CheckFailure::kNoRequest;
    pendingThread_ = kInvalidThread;
}

} // namespace stfm
