/**
 * @file
 * Shared types of the simulation integrity layer.
 *
 * The integrity layer runs *alongside* the simulation and is strictly
 * observation-only: enabling it must not change a single scheduling
 * decision or statistic (tests/test_integrity.cc enforces this with a
 * bit-identical determinism regression). It consists of
 *
 *   - a shadow DRAM protocol checker (check/protocol_checker.hh) that
 *     re-derives every DDR2 timing constraint from the issued command
 *     stream alone and flags commands the device model wrongly let
 *     through, and
 *   - forward-progress watchdogs (check/auditor.hh): a per-request
 *     lifetime auditor (enqueue -> issue -> data return, flagging
 *     leaked or duplicated requests at drain) and a starvation monitor
 *     bounding how long any queued request may age.
 *
 * Violations surface as structured CheckFailure exceptions
 * (common/logging.hh) so the harness can isolate a failing run, or are
 * recorded for inspection when throwOnViolation is off (negative
 * tests).
 */

#ifndef STFM_CHECK_INTEGRITY_HH
#define STFM_CHECK_INTEGRITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stfm
{

/** Per-run toggles and bounds for the integrity layer. */
struct IntegrityConfig
{
    /** Run the shadow DDR2 protocol checker on every issued command. */
    bool protocolCheck = false;
    /** Run the request lifetime auditor and starvation monitor. */
    bool watchdog = false;
    /**
     * Maximum DRAM cycles a queued request may wait before the
     * starvation monitor flags scheduler livelock. Generous by design:
     * writes are legitimately deprioritized for long stretches, so the
     * bound only exists to turn "never" into a diagnosable failure.
     */
    DramCycles starvationBound = 500000;
    /** DRAM cycles between starvation-monitor scans. */
    DramCycles progressCheckStride = 256;
    /**
     * Throw CheckFailure on a violation (default) instead of only
     * recording it. Record-only mode is for the negative tests that
     * deliberately inject malformed command sequences.
     */
    bool throwOnViolation = true;

    bool enabled() const { return protocolCheck || watchdog; }

    /** Everything on, default bounds. */
    static IntegrityConfig
    full()
    {
        IntegrityConfig config;
        config.protocolCheck = true;
        config.watchdog = true;
        return config;
    }

};

/** One recorded integrity violation (record-only mode). */
struct Violation
{
    std::string constraint; ///< e.g. "tRCD", "tFAW", "leak".
    DramCycles cycle = 0;
    ChannelId channel = 0;
    BankId bank = 0;
    std::uint64_t requestId = static_cast<std::uint64_t>(-1);
    ThreadId thread = kInvalidThread;
    std::string detail;
};

} // namespace stfm

#endif // STFM_CHECK_INTEGRITY_HH
