/**
 * @file
 * Shadow DRAM protocol checker.
 *
 * An independent, from-the-spec re-implementation of the device's
 * timing rules: it reconstructs per-bank and per-channel state from
 * the issued command stream alone (command timestamps, not the device
 * model's precomputed earliest-issue times) and flags any command the
 * Channel/Bank readiness logic wrongly admitted. Because the two
 * implementations share no code or state representation, a bookkeeping
 * bug in one is caught by the other.
 *
 * Constraints validated per command:
 *
 *   ACTIVATE   bank closed; tRC (ACT->ACT same bank); tRP (PRE->ACT);
 *              tRRD (ACT->ACT any bank); tFAW (four-activate window);
 *              tRFC (no ACT while the rank refreshes)
 *   PRECHARGE  bank open; tRAS (ACT->PRE); tRTP after the read burst;
 *              write recovery tWR after the write burst
 *   READ       row open and matching; tRCD; tCCD (same bank);
 *              tWTR from the end of the last write burst (channel-
 *              wide); data-bus contention (burst may not overlap)
 *   WRITE      row open and matching; tRCD; tCCD; data-bus contention
 *   REFRESH    all banks precharged
 *
 * On a device with bank groups (DDR4 generation) the cross-bank
 * constraints split: tRRD/tCCD/tWTR apply inside a bank group and the
 * shorter tRRD_S/tCCD_S/tWTR_S across groups. The checker then tracks
 * a last-activate, last-column and last-write-end time per group and
 * validates every pairwise gap; tFAW stays rank-wide. With one group
 * (the default) the original channel-wide DDR2 checks run unchanged.
 *
 * The checker attaches to a DramChannel as its DramCommandObserver and
 * is strictly observation-only.
 */

#ifndef STFM_CHECK_PROTOCOL_CHECKER_HH
#define STFM_CHECK_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <vector>

#include "check/integrity.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace stfm
{

class ProtocolChecker : public DramCommandObserver
{
  public:
    /**
     * @param channel            Channel id (diagnostics only).
     * @param num_banks          Banks in the shadowed channel.
     * @param timing             The constraint set to validate against.
     * @param throw_on_violation Throw CheckFailure (default) or record.
     * @param bank_groups        Bank groups (1 = no bank-group split;
     *                           must divide the bank count).
     */
    ProtocolChecker(ChannelId channel, unsigned num_banks,
                    const DramTiming &timing,
                    bool throw_on_violation = true,
                    unsigned bank_groups = 1);

    /**
     * Attach request context for the next observed command so that a
     * violation names the offending request/thread. Cleared after one
     * command; maintenance commands (refresh precharges) carry none.
     */
    void noteRequest(std::uint64_t id, ThreadId thread);

    // DramCommandObserver interface -----------------------------------
    void onCommand(DramCommand cmd, BankId bank, RowId row,
                   DramCycles now) override;
    void onRefresh(DramCycles now) override;

    /** Violations recorded so far (record-only mode). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }
    /** Total commands (including refreshes) validated. */
    std::uint64_t commandsChecked() const { return commandsChecked_; }

  private:
    /** Sentinel: no such command has been observed yet. */
    static constexpr DramCycles kNoTime =
        static_cast<DramCycles>(-1);

    struct BankShadow
    {
        RowId openRow = kInvalidRow;
        DramCycles actAt = kNoTime;   ///< Last ACTIVATE issue time.
        DramCycles preAt = kNoTime;   ///< Last PRECHARGE issue time.
        DramCycles readAt = kNoTime;  ///< Last READ issue time.
        DramCycles writeAt = kNoTime; ///< Last WRITE issue time.
        DramCycles colAt = kNoTime;   ///< Last column command (tCCD).
    };

    void checkActivate(BankShadow &bank, BankId b, RowId row,
                       DramCycles now);
    void checkPrecharge(BankShadow &bank, BankId b, DramCycles now);
    void checkColumn(BankShadow &bank, BankId b, RowId row,
                     DramCycles now, bool is_write);
    void flag(const char *constraint, BankId bank, DramCycles now,
              const std::string &detail);

    /** Bank group of a bank index (round-robin interleave). */
    unsigned groupOf(BankId b) const { return b % bankGroups_; }

    ChannelId channel_;
    DramTiming timing_;
    bool throwOnViolation_;
    unsigned bankGroups_;

    std::vector<BankShadow> banks_;
    /** Issue times of the most recent activates (tRRD/tFAW window). */
    std::vector<DramCycles> actTimes_;
    /** First cycle the shadow data bus is free. */
    DramCycles busFreeAt_ = 0;
    /** End of the most recent write data burst (tWTR origin). */
    DramCycles writeDataEndAt_ = kNoTime;
    /** Per-group shadow state; sized bankGroups_ and only consulted
     *  when bankGroups_ > 1. */
    std::vector<DramCycles> lastActPerGroup_;
    std::vector<DramCycles> lastColPerGroup_;
    std::vector<DramCycles> writeEndPerGroup_;
    /** Rank unusable until this cycle (refresh in progress). */
    DramCycles refreshUntil_ = 0;

    std::uint64_t pendingRequestId_ = CheckFailure::kNoRequest;
    ThreadId pendingThread_ = kInvalidThread;

    std::vector<Violation> violations_;
    std::uint64_t commandsChecked_ = 0;
};

} // namespace stfm

#endif // STFM_CHECK_PROTOCOL_CHECKER_HH
