#include "check/auditor.hh"

#include "common/logging.hh"

namespace stfm
{

RequestAuditor::RequestAuditor(ChannelId channel,
                               DramCycles starvation_bound,
                               bool throw_on_violation)
    : channel_(channel), starvationBound_(starvation_bound),
      throwOnViolation_(throw_on_violation)
{}

void
RequestAuditor::flag(const char *constraint, const Record &record,
                     std::uint64_t id, DramCycles now,
                     const std::string &detail)
{
    if (throwOnViolation_) {
        throw CheckFailure(constraint, now, channel_, record.bank, id,
                           record.thread, detail);
    }
    Violation v;
    v.constraint = constraint;
    v.cycle = now;
    v.channel = channel_;
    v.bank = record.bank;
    v.requestId = id;
    v.thread = record.thread;
    v.detail = detail;
    violations_.push_back(std::move(v));
}

void
RequestAuditor::onEnqueue(std::uint64_t id, ThreadId thread, BankId bank,
                          bool is_write, DramCycles now)
{
    Record record;
    record.thread = thread;
    record.bank = bank;
    record.isWrite = is_write;
    record.enqueuedAt = now;
    const auto [it, inserted] = outstanding_.emplace(id, record);
    if (!inserted) {
        flag("duplicate-id", record, id, now,
             "request id enqueued twice (id reuse before completion)");
        it->second = record; // Resync in record mode.
        return;
    }
    ++accepted_;
}

void
RequestAuditor::onForward(std::uint64_t id, ThreadId thread, BankId bank,
                          DramCycles now)
{
    onEnqueue(id, thread, bank, /*is_write=*/false, now);
    onIssue(id, now);
}

void
RequestAuditor::onIssue(std::uint64_t id, DramCycles now)
{
    const auto it = outstanding_.find(id);
    if (it == outstanding_.end()) {
        flag("issue-unknown", Record{}, id, now,
             "column command issued for a request never enqueued");
        return;
    }
    if (it->second.issued) {
        flag("double-issue", it->second, id, now,
             "column command issued twice for one request");
        return;
    }
    it->second.issued = true;
}

void
RequestAuditor::onComplete(std::uint64_t id, DramCycles now)
{
    const auto it = outstanding_.find(id);
    if (it == outstanding_.end()) {
        flag("duplicate-completion", Record{}, id, now,
             "completion for an unknown or already-completed request");
        return;
    }
    if (!it->second.issued) {
        flag("complete-unissued", it->second, id, now,
             "request completed without its column command issuing");
    }
    outstanding_.erase(it);
    ++completed_;
}

void
RequestAuditor::checkProgress(DramCycles now)
{
    for (const auto &[id, record] : outstanding_) {
        if (record.issued)
            continue; // In service; bounded by DRAM timing.
        if (now - record.enqueuedAt > starvationBound_) {
            flag("starvation", record, id, now,
                 formatMessage(
                     "%s queued for %llu DRAM cycles (bound %llu)",
                     record.isWrite ? "write" : "read",
                     static_cast<unsigned long long>(
                         now - record.enqueuedAt),
                     static_cast<unsigned long long>(starvationBound_)));
            return; // One report per scan is enough context.
        }
    }
}

void
RequestAuditor::checkDrained(DramCycles now)
{
    if (outstanding_.empty())
        return;
    // Report the oldest leaked request; record-only mode logs them all.
    const std::pair<const std::uint64_t, Record> *oldest = nullptr;
    for (const auto &entry : outstanding_) {
        if (!oldest || entry.second.enqueuedAt < oldest->second.enqueuedAt)
            oldest = &entry;
    }
    if (throwOnViolation_) {
        flag("leak", oldest->second, oldest->first, now,
             formatMessage("%zu request(s) never completed; oldest "
                           "enqueued at cycle %llu",
                           outstanding_.size(),
                           static_cast<unsigned long long>(
                               oldest->second.enqueuedAt)));
        return;
    }
    for (const auto &[id, record] : outstanding_) {
        flag("leak", record, id, now,
             formatMessage("request enqueued at cycle %llu never "
                           "completed",
                           static_cast<unsigned long long>(
                               record.enqueuedAt)));
    }
}

} // namespace stfm
