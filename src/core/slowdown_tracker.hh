/**
 * @file
 * STFM's per-thread slowdown estimation state (Table 1 of the paper).
 *
 * For each thread the tracker maintains:
 *  - Tshared: memory stall cycles accrued in the shared system, supplied
 *    by the core (cycles in which the oldest instruction is an
 *    uncommitted L2 miss);
 *  - Tinterference: estimated extra stall cycles caused by other
 *    threads, updated by the scheduler on every serviced request;
 *  - Slowdown = Tshared / (Tshared - Tinterference), optionally
 *    quantized to the 8-bit fixed-point register format of Table 1;
 *  - LastRowAddress per (thread, bank), used to decide whether a
 *    serviced request would have been a row hit had the thread run
 *    alone.
 *
 * Registers are reset every IntervalLength cycles to adapt to phase
 * behavior, exactly as Section 5.1 describes.
 */

#ifndef STFM_CORE_SLOWDOWN_TRACKER_HH
#define STFM_CORE_SLOWDOWN_TRACKER_HH

#include <vector>

#include "common/fixed_point.hh"
#include "common/types.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace stfm
{

/** Tunables of the estimation logic. */
struct SlowdownTrackerParams
{
    unsigned numThreads = 1;
    unsigned totalBanks = 8;
    /** Register reset interval in CPU cycles (paper: 2^24). */
    Cycles intervalLength = 1ULL << 24;
    /** Bank-waiting-parallelism scaling factor gamma (paper: 1/2). */
    double gamma = 0.5;
    /** Quantize stored slowdowns to the 8-bit register format. */
    bool quantize = true;
    /** Per-thread weights for weighted slowdown (empty = all 1). */
    std::vector<double> weights;
};

class SlowdownTracker
{
  public:
    explicit SlowdownTracker(const SlowdownTrackerParams &params);

    /**
     * Recompute slowdowns from the current counters. @p cumulative_stall
     * holds each thread's total memory stall cycles since simulation
     * start; the tracker internally subtracts the value latched at the
     * last interval reset. Performs the interval reset when due.
     */
    void updateSlowdowns(const std::vector<Cycles> &cumulative_stall,
                         Cycles cpu_now);

    /**
     * Weighted slowdown of @p t per Section 3.3:
     * S' = 1 + (S - 1) * Weight.
     */
    double slowdown(ThreadId t) const { return slowdown_[t]; }

    /** Raw (unweighted, unquantized) slowdown, for inspection. */
    double rawSlowdown(ThreadId t) const { return rawSlowdown_[t]; }

    /** Current Tinterference estimate in CPU cycles (can be negative). */
    double interferenceCycles(ThreadId t) const
    {
        return interference_[t];
    }

    /**
     * Bus interference: the scheduled command keeps the data bus busy
     * for @p tbus_cpu cycles, stalling thread @p t which had a ready
     * column command.
     */
    void addBusInterference(ThreadId t, double tbus_cpu);

    /** Plain addition of @p cycles of extra stall (per-cycle wait
     *  attribution; the caller has already amortized parallelism). */
    void addStallInterference(ThreadId t, double cycles);

    /**
     * Bank interference from a scheduled request of another thread:
     * adds latency / (gamma * BankWaitingParallelism) per the paper's
     * update rule. @p bwp of zero is treated as one.
     */
    void addBankInterference(ThreadId t, double latency_cpu, unsigned bwp);

    /**
     * Own-thread row-buffer interference. Given that thread @p t was
     * serviced in @p bank with row @p row under @p actual row-buffer
     * state, compares against what the thread would have seen alone
     * (from LastRowAddress) and charges ExtraLatency / BAP. Both signs
     * are handled (a shared-mode hit that would have been an alone-mode
     * conflict contributes negative interference). Updates
     * LastRowAddress.
     *
     * @return the extra latency charged (CPU cycles, may be negative or
     *         zero), exposed for testing.
     */
    double noteOwnService(ThreadId t, unsigned global_bank, RowId row,
                          RowBufferState actual, unsigned bap,
                          const DramTiming &timing, Cycles cpu_per_dram);

    /** Last row this thread accessed in this bank (or kInvalidRow). */
    RowId lastRow(ThreadId t, unsigned global_bank) const
    {
        return lastRow_[rowIdx(t, global_bank)];
    }

    /** Update the last-row history without charging interference (used
     *  by the request-level estimator, which folds the row-state
     *  difference into its alone-latency reconstruction). */
    void
    setLastRow(ThreadId t, unsigned global_bank, RowId row)
    {
        lastRow_[rowIdx(t, global_bank)] = row;
    }

    unsigned numThreads() const { return params_.numThreads; }

  private:
    std::size_t rowIdx(ThreadId t, unsigned global_bank) const
    {
        return static_cast<std::size_t>(t) * params_.totalBanks +
               global_bank;
    }

    void resetInterval(const std::vector<Cycles> &cumulative_stall,
                       Cycles cpu_now);

    SlowdownTrackerParams params_;
    std::vector<double> interference_;
    std::vector<Cycles> stallAtIntervalStart_;
    std::vector<RowId> lastRow_;
    std::vector<double> slowdown_;
    std::vector<double> rawSlowdown_;
    std::vector<double> weights_;
    Cycles intervalStart_ = 0;
};

} // namespace stfm

#endif // STFM_CORE_SLOWDOWN_TRACKER_HH
