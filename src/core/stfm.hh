/**
 * @file
 * STFM: the Stall-Time Fair Memory scheduler — the paper's contribution.
 *
 * Scheduling policy (Section 3.2.1):
 *  1. Each DRAM cycle, compute each thread's (weighted) slowdown
 *     S = Tshared / Talone and the unfairness Smax / Smin over threads
 *     with at least one outstanding request.
 *  2. If unfairness <= alpha, schedule with the baseline FR-FCFS rules.
 *  3. Otherwise prioritize, in order: requests of the most slowed-down
 *     thread (Tmax-first), then ready column accesses, then older
 *     requests.
 *
 * Tinterference estimation follows Section 3.2.2 in spirit but is
 * accounted per DRAM cycle rather than per scheduling event (see
 * DESIGN.md): each cycle a thread accrues stall while its blocking
 * reads wait behind other threads' bank or bus activity, the accrued
 * stall (scaled by the blocked fraction of its BankWaitingParallelism)
 * is charged as interference. The paper's bus term (tbus to ready
 * column losers) and own-thread row-state term (ExtraLatency via
 * LastRowAddress, both signs, amortized by BankAccessParallelism) are
 * retained, and the paper's literal per-event formulation plus a
 * request-level variant remain available as ablations.
 */

#ifndef STFM_CORE_STFM_HH
#define STFM_CORE_STFM_HH

#include <memory>

#include "core/slowdown_tracker.hh"
#include "sched/policy.hh"

namespace stfm
{

/** STFM-specific knobs (a view over SchedulerConfig). */
struct StfmParams
{
    double alpha = 1.10;
    Cycles intervalLength = 1ULL << 24;
    double gamma = 0.5;
    bool quantize = true;
    bool busInterference = false;
    /**
     * Estimate Tinterference per completed request (observed latency
     * minus the reconstructed alone-mode latency, amortized over the
     * thread's bank-waiting parallelism). When false, fall back to the
     * per-DRAM-cycle wait-attribution estimator (ablation).
     */
    bool requestLevelEstimator = false;
    std::vector<double> weights;
};

class StfmPolicy : public SchedulingPolicy
{
  public:
    StfmPolicy(const StfmParams &params, unsigned num_threads,
               unsigned total_banks);

    std::string name() const override { return "STFM"; }

    void beginCycle(const SchedContext &ctx) override;

    /** STFM integrates interference every DRAM cycle; the simulation
     *  loop must invoke beginCycle even across quiescent stretches. */
    bool perCycleAccounting() const override { return true; }

    bool higherPriority(const Candidate &a, const Candidate &b,
                        const SchedContext &ctx) const override;

    /** The fairness-rule trip (and hot thread) is re-evaluated every
     *  beginCycle, so the ordering can flip between any two cycles. */
    bool timeVaryingPriority() const override { return true; }

    void onRowCommand(const RowIssueEvent &ev,
                      const SchedContext &ctx) override;
    void onEnqueueBlocked(ThreadId thread, double foreign_fraction,
                          const SchedContext &ctx) override;
    void onColumnCommand(const ColumnIssueEvent &ev,
                         const SchedContext &ctx) override;

    /** True if the fairness-rule (not FR-FCFS) governs this cycle. */
    bool fairnessMode() const { return fairnessMode_; }
    /** Thread prioritized while the fairness-rule is active. */
    ThreadId hotThread() const { return hotThread_; }
    /** Unfairness (Smax/Smin) computed at the last beginCycle. */
    double unfairness() const { return unfairness_; }

    /** Times the scheduler entered fairness mode. */
    std::uint64_t fairnessModeToggles() const
    {
        return fairnessModeToggles_;
    }
    /** Column commands granted to the hot thread in fairness mode. */
    std::uint64_t hotGrants() const { return hotGrants_; }

    void registerTelemetry(TelemetryRegistry &registry) override;

    const SlowdownTracker &tracker() const { return tracker_; }

  private:
    /** Commit a fairness-mode decision, counting entries and firing
     *  the trace tap on transitions. */
    void setFairnessMode(bool active, ThreadId hot, DramCycles now);

    StfmParams params_;
    SlowdownTracker tracker_;

    bool fairnessMode_ = false;
    ThreadId hotThread_ = kInvalidThread;
    double unfairness_ = 1.0;
    std::uint64_t fairnessModeToggles_ = 0;
    std::uint64_t hotGrants_ = 0;

    /** Row-command (precharge/activate) occupancy per global bank, so
     *  the prep phase of a foreign access counts as interference too. */
    std::vector<ThreadId> prepOwner_;
    std::vector<DramCycles> prepUntil_;

    /** Data-bus occupancy per channel: in a saturated system most of a
     *  request's wait is for the shared bus, not its specific bank. */
    std::vector<ThreadId> busOwner_;
    std::vector<DramCycles> busUntil_;

  public:
    /** Diagnostics: DRAM cycles in which the thread had blocking reads
     *  waiting and at least one was charged as foreign-blocked. */
    std::uint64_t chargedCycles(ThreadId t) const
    {
        return chargedCycles_[t];
    }
    /** DRAM cycles with blocking reads waiting but no charge (the
     *  blocking banks looked idle — self-queueing or timing gaps). */
    std::uint64_t unchargedCycles(ThreadId t) const
    {
        return unchargedCycles_[t];
    }

  private:
    std::vector<std::uint64_t> chargedCycles_;
    std::vector<std::uint64_t> unchargedCycles_;

    /** Last observed cumulative stall per thread: per-cycle charges are
     *  scaled by the stall actually accrued since the previous DRAM
     *  cycle, so Tinterference stays a portion of Tshared by
     *  construction (interference is *extra stall*, nothing else). */
    std::vector<Cycles> lastStall_;
};

} // namespace stfm

#endif // STFM_CORE_STFM_HH
