#include "core/stfm.hh"

#include "common/logging.hh"
#include "obs/telemetry.hh"
#include "sched/fr_fcfs.hh"

namespace stfm
{

StfmPolicy::StfmPolicy(const StfmParams &params, unsigned num_threads,
                       unsigned total_banks)
    : params_(params), tracker_([&] {
          SlowdownTrackerParams tp;
          tp.numThreads = num_threads;
          tp.totalBanks = total_banks;
          tp.intervalLength = params.intervalLength;
          tp.gamma = params.gamma;
          tp.quantize = params.quantize;
          tp.weights = params.weights;
          return tp;
      }()),
      prepOwner_(total_banks, kInvalidThread), prepUntil_(total_banks, 0),
      busOwner_(32, kInvalidThread), busUntil_(32, 0),
      chargedCycles_(num_threads, 0), unchargedCycles_(num_threads, 0),
      lastStall_(num_threads, 0)
{}

void
StfmPolicy::onRowCommand(const RowIssueEvent &ev, const SchedContext &ctx)
{
    const unsigned bank = ctx.globalBank(ev.bank);
    prepOwner_[bank] = ev.req->thread;
    const DramCycles busy = (ev.cmd == DramCommand::Precharge)
                                ? (ctx.timing ? ctx.timing->tRP : 6)
                                : (ctx.timing ? ctx.timing->tRCD : 6);
    prepUntil_[bank] = ctx.dramNow + busy;
}

void
StfmPolicy::onEnqueueBlocked(ThreadId thread, double foreign_fraction,
                             const SchedContext &)
{
    // One CPU cycle of stall the thread spends locked out of a request
    // buffer that is (mostly) full of other threads' requests.
    tracker_.addStallInterference(thread, foreign_fraction);
}

void
StfmPolicy::beginCycle(const SchedContext &ctx)
{
    // Bank-interference accounting, per DRAM cycle: a thread whose
    // *blocking* reads (reads a load is stalled on) sit waiting in
    // banks that other threads' requests currently occupy is being
    // delayed by interference — running alone, those banks would have
    // been free. Time spent behind the thread's own requests, and any
    // delay to non-blocking fills, is not charged. The charge is the
    // blocked fraction of the thread's bank-waiting parallelism, so a
    // fully blocked thread accrues extra stall at wall-clock rate —
    // this per-cycle formulation keeps the estimate proportional to
    // the real extra stall even when the memory system is saturated,
    // where the paper's per-scheduling-event description loses
    // discrimination (see DESIGN.md, deliberate simplifications).
    if (ctx.occupancy && !params_.requestLevelEstimator) {
        const unsigned total_banks = ctx.occupancy->totalBanks();
        for (unsigned t = 0; t < ctx.numThreads; ++t) {
            // Stall the thread actually accrued since the last DRAM
            // cycle: the charge below is a fraction of this, never
            // more. Interference is by definition a part of Tshared.
            double stall_delta = static_cast<double>(ctx.cpuPerDram);
            if (ctx.stallCycles) {
                const Cycles current = (*ctx.stallCycles)[t];
                stall_delta =
                    static_cast<double>(current - lastStall_[t]);
                lastStall_[t] = current;
            }
            const unsigned bwp =
                ctx.occupancy->bankWaitingParallelism(t);
            if (bwp == 0 || stall_delta <= 0.0)
                continue;
            unsigned blocked = 0;
            for (unsigned g = 0; g < total_banks; ++g) {
                if (ctx.occupancy->waitingBlocking(t, g) == 0)
                    continue;
                if (ctx.occupancy->inService(t, g) > 0)
                    continue; // Behind its own access: not interference.
                // Foreign activity in the bank itself (column service
                // or a precharge/activate in flight)...
                bool foreign_busy =
                    prepUntil_[g] > ctx.dramNow && prepOwner_[g] != t;
                for (unsigned o = 0;
                     o < ctx.numThreads && !foreign_busy; ++o) {
                    foreign_busy =
                        o != t && ctx.occupancy->inService(o, g) > 0;
                }
                // ...or another thread's burst occupying the channel's
                // data bus: in a loaded system most of a request's wait
                // is for the shared bus, not its bank.
                if (!foreign_busy) {
                    const unsigned ch = g / ctx.banksPerChannel;
                    foreign_busy = busUntil_[ch] > ctx.dramNow &&
                                   busOwner_[ch] != t;
                }
                if (foreign_busy)
                    ++blocked;
            }
            if (blocked > 0) {
                tracker_.addStallInterference(
                    t, stall_delta * blocked / bwp);
                ++chargedCycles_[t];
            } else {
                ++unchargedCycles_[t];
            }
        }
    }

    if (ctx.stallCycles)
        tracker_.updateSlowdowns(*ctx.stallCycles, ctx.cpuNow);

    // Determine unfairness among threads that currently have at least
    // one outstanding request (Section 3.2.1, step 1). Threads with no
    // requests neither need nor can receive prioritization.
    double s_max = 0.0, s_min = 0.0;
    ThreadId hot = kInvalidThread;
    for (unsigned t = 0; t < ctx.numThreads; ++t) {
        if (!ctx.occupancy || ctx.occupancy->waitingTotal(t) == 0)
            continue;
        const double s = tracker_.slowdown(t);
        if (hot == kInvalidThread || s > s_max) {
            if (hot == kInvalidThread)
                s_min = s;
            s_max = s;
            hot = t;
        }
        s_min = std::min(s_min, s);
    }

    if (hot == kInvalidThread || s_min <= 0.0) {
        unfairness_ = 1.0;
        setFairnessMode(false, kInvalidThread, ctx.dramNow);
        return;
    }
    unfairness_ = s_max / s_min;
    setFairnessMode(unfairness_ > params_.alpha, hot, ctx.dramNow);
}

void
StfmPolicy::setFairnessMode(bool active, ThreadId hot, DramCycles now)
{
    hotThread_ = active ? hot : kInvalidThread;
    if (active == fairnessMode_)
        return;
    fairnessMode_ = active;
    if (active)
        ++fairnessModeToggles_;
    if (fairnessTap_)
        fairnessTap_->onFairnessMode(active, hotThread_, unfairness_,
                                     now);
}

bool
StfmPolicy::higherPriority(const Candidate &a, const Candidate &b,
                           const SchedContext &) const
{
    if (fairnessMode_) {
        // 2b-1) Tmax-first, 2b-2) column-first, 2b-3) oldest-first.
        const bool hot_a = a.req->thread == hotThread_;
        const bool hot_b = b.req->thread == hotThread_;
        if (hot_a != hot_b)
            return hot_a;
    }
    return FrFcfsPolicy::frFcfsBefore(a, b);
}

void
StfmPolicy::onColumnCommand(const ColumnIssueEvent &ev,
                            const SchedContext &ctx)
{
    const ThreadId owner = ev.req->thread;
    if (fairnessMode_ && owner == hotThread_)
        ++hotGrants_;
    const unsigned bank = ctx.globalBank(ev.req->coords.bank);
    busOwner_[ctx.channel] = owner;
    busUntil_[ctx.channel] = ev.busBusyUntil;
    const double cpu_per_dram = static_cast<double>(ctx.cpuPerDram);

    // (a) DRAM bus interference: the data burst blocks every other
    // thread that had a ready column command in this channel. In
    // request-level mode the bus delay is already part of each
    // victim's observed latency, so the event charge would double
    // count.
    if (params_.busInterference && !params_.requestLevelEstimator &&
        ctx.timing) {
        const double tbus_cpu =
            static_cast<double>(ctx.timing->burst) * cpu_per_dram;
        for (unsigned t = 0; t < ctx.numThreads; ++t) {
            if (t == owner)
                continue;
            if (ev.readyColumnThreads & (1u << t))
                tracker_.addBusInterference(t, tbus_cpu);
        }
    }

    if (params_.requestLevelEstimator && ctx.timing) {
        // (b) Request-level interference estimate: the request's
        // observed queueing+service latency minus the latency it would
        // have had running alone (zero queueing; row-buffer state
        // reconstructed from LastRowAddress). The excess is charged as
        // extra stall, amortized over the thread's bank-waiting
        // parallelism since concurrent waits overlap. This subsumes
        // the paper's separate own-thread row-state term: the alone
        // latency already uses the would-have-been row category.
        const DramTiming &timing = *ctx.timing;
        const RowId last = tracker_.lastRow(owner, bank);
        tracker_.setLastRow(owner, bank, ev.req->coords.row);
        if (!ev.req->isWrite && ev.req->blocking) {
            DramCycles alone_bank = ev.bankLatency;
            if (last != kInvalidRow) {
                alone_bank = (last == ev.req->coords.row)
                                 ? timing.rowHitLatency()
                                 : timing.rowConflictLatency();
            }
            const double observed = static_cast<double>(
                ctx.dramNow - ev.req->arrivalDram + timing.tCL +
                timing.burst);
            const double alone =
                static_cast<double>(alone_bank + timing.burst);
            if (observed > alone) {
                const unsigned bwp =
                    ctx.occupancy
                        ? std::max(
                              1u,
                              ctx.occupancy->bankWaitingParallelism(
                                  owner))
                        : 1u;
                tracker_.addStallInterference(
                    owner, (observed - alone) * cpu_per_dram / bwp);
            }
        }
        return;
    }

    // (2) Own-thread interference: row-buffer state lost to sharing
    // (per-cycle estimator path).
    if (ctx.timing) {
        const unsigned bap =
            ctx.occupancy ? ctx.occupancy->bankAccessParallelism(owner) : 1;
        tracker_.noteOwnService(owner, bank, ev.req->coords.row,
                                ev.serviceState, bap, *ctx.timing,
                                ctx.cpuPerDram);
    }
}

void
StfmPolicy::registerTelemetry(TelemetryRegistry &registry)
{
    registry.gauge("sched.stfm.unfairness", "ratio", "sched",
                   [this] { return unfairness_; });
    registry.gauge("sched.stfm.fairnessMode", "bool", "sched",
                   [this] { return fairnessMode_ ? 1.0 : 0.0; });
    registry.counter("sched.stfm.fairnessModeToggles", "transitions",
                     "sched", [this] {
                         return static_cast<double>(fairnessModeToggles_);
                     });
    registry.counter("sched.stfm.hotGrants", "commands", "sched",
                     [this] {
                         return static_cast<double>(hotGrants_);
                     });
    for (unsigned t = 0; t < tracker_.numThreads(); ++t) {
        registry.gauge(
            formatMessage("sched.stfm.slowdown.t%u", t), "ratio",
            "sched", [this, t] { return tracker_.slowdown(t); });
    }
}

} // namespace stfm
