#include "core/slowdown_tracker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

namespace
{

/** Bank access latency for a row-buffer category, in DRAM cycles. */
DramCycles
bankLatencyOf(RowBufferState state, const DramTiming &timing)
{
    switch (state) {
      case RowBufferState::Hit:
        return timing.rowHitLatency();
      case RowBufferState::Closed:
        return timing.rowClosedLatency();
      case RowBufferState::Conflict:
        return timing.rowConflictLatency();
    }
    return timing.rowConflictLatency();
}

/** Cap for the stored slowdown: the 8-bit register saturates near 32. */
constexpr double kSlowdownCap = 32.0;

} // namespace

SlowdownTracker::SlowdownTracker(const SlowdownTrackerParams &params)
    : params_(params), interference_(params.numThreads, 0.0),
      stallAtIntervalStart_(params.numThreads, 0),
      lastRow_(static_cast<std::size_t>(params.numThreads) *
                   params.totalBanks,
               kInvalidRow),
      slowdown_(params.numThreads, 1.0),
      rawSlowdown_(params.numThreads, 1.0),
      weights_(params.weights)
{
    STFM_ASSERT(params.numThreads > 0, "need at least one thread");
    STFM_ASSERT(params.gamma > 0.0, "gamma must be positive");
    if (weights_.empty())
        weights_.assign(params_.numThreads, 1.0);
    STFM_ASSERT(weights_.size() == params_.numThreads,
                "weights must cover every thread");
}

void
SlowdownTracker::resetInterval(const std::vector<Cycles> &cumulative_stall,
                               Cycles cpu_now)
{
    for (unsigned t = 0; t < params_.numThreads; ++t) {
        interference_[t] = 0.0;
        stallAtIntervalStart_[t] = cumulative_stall[t];
    }
    std::fill(lastRow_.begin(), lastRow_.end(), kInvalidRow);
    intervalStart_ = cpu_now;
}

void
SlowdownTracker::updateSlowdowns(const std::vector<Cycles> &cumulative_stall,
                                 Cycles cpu_now)
{
    STFM_ASSERT(cumulative_stall.size() >= params_.numThreads,
                "stall vector too small");
    if (cpu_now - intervalStart_ >= params_.intervalLength)
        resetInterval(cumulative_stall, cpu_now);

    for (unsigned t = 0; t < params_.numThreads; ++t) {
        const double t_shared = static_cast<double>(
            cumulative_stall[t] - stallAtIntervalStart_[t]);
        double s = 1.0;
        if (t_shared > 0.0) {
            // Talone = Tshared - Tinterference (Section 3.2.2).
            const double t_alone = t_shared - interference_[t];
            if (t_alone <= t_shared / kSlowdownCap) {
                s = kSlowdownCap; // Saturate like the hardware register.
            } else {
                s = t_shared / t_alone;
            }
        }
        rawSlowdown_[t] = s;
        // Weighted slowdown: S' = 1 + (S - 1) * Weight (Section 3.3).
        double weighted = 1.0 + (s - 1.0) * weights_[t];
        weighted = std::clamp(weighted, 1.0 / kSlowdownCap, kSlowdownCap);
        slowdown_[t] =
            params_.quantize ? quantizeSlowdown(weighted) : weighted;
    }
}

void
SlowdownTracker::addBusInterference(ThreadId t, double tbus_cpu)
{
    interference_[t] += tbus_cpu;
}

void
SlowdownTracker::addStallInterference(ThreadId t, double cycles)
{
    interference_[t] += cycles;
}

void
SlowdownTracker::addBankInterference(ThreadId t, double latency_cpu,
                                     unsigned bwp)
{
    const double parallelism =
        params_.gamma * static_cast<double>(std::max(1u, bwp));
    interference_[t] += latency_cpu / parallelism;
}

double
SlowdownTracker::noteOwnService(ThreadId t, unsigned global_bank, RowId row,
                                RowBufferState actual, unsigned bap,
                                const DramTiming &timing,
                                Cycles cpu_per_dram)
{
    const std::size_t idx = rowIdx(t, global_bank);
    const RowId last = lastRow_[idx];
    lastRow_[idx] = row;
    if (last == kInvalidRow)
        return 0.0; // No alone-mode history yet; nothing to charge.

    // Had the thread run alone, the bank's row buffer would hold the
    // row this thread accessed last.
    const RowBufferState would_alone =
        (last == row) ? RowBufferState::Hit : RowBufferState::Conflict;

    const double actual_lat =
        static_cast<double>(bankLatencyOf(actual, timing));
    const double alone_lat =
        static_cast<double>(bankLatencyOf(would_alone, timing));
    const double extra_dram = actual_lat - alone_lat;
    if (extra_dram == 0.0)
        return 0.0;

    // Some of the extra latency hides behind the thread's own
    // concurrent accesses in other banks (Section 3.2.2, item 2).
    const double charged = extra_dram *
                           static_cast<double>(cpu_per_dram) /
                           static_cast<double>(std::max(1u, bap));
    interference_[t] += charged;
    return charged;
}

} // namespace stfm
