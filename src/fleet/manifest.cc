#include "fleet/manifest.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/spec.hh"
#include "sim/config_io.hh"

namespace stfm
{
namespace fleet
{

std::string
fleetSpecHash(const ExperimentSpec &spec, const SimConfig &resolved)
{
    const std::string text =
        toJson(spec).dump() + "\n" + toJson(resolved).dump();
    // FNV-1a 64: tiny, dependency-free, and stable across builds.
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return formatMessage("%016llx",
                         static_cast<unsigned long long>(hash));
}

ManifestData
loadManifest(const std::string &path)
{
    ManifestData data;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return data; // No manifest yet: a fresh (non-resumed) sweep.

    std::string line;
    std::size_t line_no = 0;
    bool have_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        const bool truncated = in.eof() && !line.empty();
        if (line.empty())
            continue;
        Json entry;
        try {
            entry = Json::parse(line);
        } catch (const SimError &e) {
            // A torn final line is the expected SIGKILL residue; any
            // earlier parse failure is real corruption.
            if (truncated)
                break;
            throw SimError(formatMessage(
                "manifest %s line %zu: %s", path.c_str(), line_no,
                e.what()));
        }
        const std::string context =
            formatMessage("manifest line %zu", line_no);
        if (!have_header) {
            const std::string schema =
                entry.at("schema", context)
                    .asString(context + ".schema");
            if (schema != kManifestSchema) {
                throw SimError(formatMessage(
                    "manifest %s: unknown schema '%s' (expected %s)",
                    path.c_str(), schema.c_str(), kManifestSchema));
            }
            const std::int64_t version =
                entry.at("version", context)
                    .asInt(context + ".version");
            if (version > kManifestVersion) {
                throw SimError(formatMessage(
                    "manifest %s: version %lld is newer than this "
                    "build understands (max %lld) — refusing to "
                    "resume from it",
                    path.c_str(), static_cast<long long>(version),
                    static_cast<long long>(kManifestVersion)));
            }
            data.header = entry;
            have_header = true;
            continue;
        }
        const std::string type =
            entry.at("type", context).asString(context + ".type");
        if (type == "shard") {
            const unsigned shard = static_cast<unsigned>(
                entry.at("shard", context)
                    .asUint(context + ".shard"));
            data.shards[shard] = entry;
        } else if (type == "alone") {
            const std::string key =
                entry.at("key", context).asString(context + ".key");
            data.alone[key] = entry.at("result", context);
        } else {
            throw SimError(formatMessage(
                "manifest %s line %zu: unknown entry type '%s'",
                path.c_str(), line_no, type.c_str()));
        }
    }
    if (!have_header) {
        throw SimError(formatMessage(
            "manifest %s: missing or torn header line", path.c_str()));
    }
    return data;
}

void
validateManifestHeader(const Json &header, const std::string &spec_hash,
                       std::size_t jobs, std::size_t shards)
{
    const std::string context = "manifest header";
    const std::string hash =
        header.at("specHash", context)
            .asString(context + ".specHash");
    if (hash != spec_hash) {
        throw SimError(formatMessage(
            "manifest was checkpointed for a different experiment "
            "(spec hash %s, this run resolves to %s) — pass a fresh "
            "checkpoint directory",
            hash.c_str(), spec_hash.c_str()));
    }
    const std::uint64_t manifest_jobs =
        header.at("jobs", context).asUint(context + ".jobs");
    const std::uint64_t manifest_shards =
        header.at("shards", context).asUint(context + ".shards");
    if (manifest_jobs != jobs || manifest_shards != shards) {
        throw SimError(formatMessage(
            "manifest partitioning mismatch: checkpointed %llu jobs / "
            "%llu shards, this run has %zu jobs / %zu shards (did "
            "--shards change?)",
            static_cast<unsigned long long>(manifest_jobs),
            static_cast<unsigned long long>(manifest_shards), jobs,
            shards));
    }
}

ManifestWriter::~ManifestWriter()
{
    close();
}

void
ManifestWriter::open(const std::string &path,
                     const std::string &spec_hash, std::size_t jobs,
                     std::size_t shards)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        throw SimError(formatMessage(
            "cannot open manifest '%s' for append: %s", path.c_str(),
            std::strerror(errno)));
    }
    path_ = path;
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size == 0) {
        Json header = Json::object();
        header.set("schema", kManifestSchema);
        header.set("version", kManifestVersion);
        header.set("specHash", spec_hash);
        header.set("jobs", static_cast<std::uint64_t>(jobs));
        header.set("shards", static_cast<std::uint64_t>(shards));
        appendLine(header);
    }
}

void
ManifestWriter::appendShard(unsigned shard, unsigned attempts,
                            const Json &outcomes,
                            const std::string &node)
{
    Json entry = Json::object();
    entry.set("type", "shard");
    entry.set("shard", shard);
    entry.set("attempts", attempts);
    entry.set("outcomes", outcomes);
    // Node provenance is additive: the loader reads entries by known
    // keys, so pre-node manifests resume here and these resume there.
    if (!node.empty())
        entry.set("node", node);
    appendLine(entry);
}

void
ManifestWriter::appendAlone(const std::string &key, const Json &result)
{
    Json entry = Json::object();
    entry.set("type", "alone");
    entry.set("key", key);
    entry.set("result", result);
    appendLine(entry);
}

void
ManifestWriter::appendLine(const Json &entry)
{
    STFM_ASSERT(fd_ >= 0, "manifest writer is not open");
    const std::string line = entry.dump() + "\n";
    // One write(2) per entry: an interrupted append leaves at most a
    // torn final line, which loadManifest() discards.
    std::size_t done = 0;
    while (done < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + done, line.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw SimError(formatMessage(
                "manifest %s: append failed: %s", path_.c_str(),
                std::strerror(errno)));
        }
        done += static_cast<std::size_t>(n);
    }
    ::fsync(fd_);
}

void
ManifestWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace fleet
} // namespace stfm
