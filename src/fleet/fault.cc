#include "fleet/fault.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace stfm
{
namespace fleet
{

FaultPlan
parseFaultPlan(const std::string &text)
{
    const std::size_t at = text.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= text.size()) {
        throw SimError(formatMessage(
            "STFM_FAULT: expected '<kind>@<shard>', got '%s'",
            text.c_str()));
    }
    const std::string kind = text.substr(0, at);
    const std::string index = text.substr(at + 1);

    FaultPlan plan;
    if (kind == "crash")
        plan.kind = FaultPlan::Kind::Crash;
    else if (kind == "abort")
        plan.kind = FaultPlan::Kind::Abort;
    else if (kind == "hang")
        plan.kind = FaultPlan::Kind::Hang;
    else if (kind == "garbage")
        plan.kind = FaultPlan::Kind::Garbage;
    else if (kind == "sigkill")
        plan.kind = FaultPlan::Kind::Sigkill;
    else if (kind == "slow")
        plan.kind = FaultPlan::Kind::Slow;
    else if (kind == "simfail")
        plan.kind = FaultPlan::Kind::SimFail;
    else {
        throw SimError(formatMessage(
            "STFM_FAULT: unknown fault kind '%s' (crash, abort, hang, "
            "garbage, sigkill, slow, simfail)",
            kind.c_str()));
    }

    char *end = nullptr;
    const unsigned long shard = std::strtoul(index.c_str(), &end, 10);
    if (end == index.c_str() || *end != '\0') {
        throw SimError(formatMessage(
            "STFM_FAULT: shard index '%s' is not a number",
            index.c_str()));
    }
    plan.shard = static_cast<unsigned>(shard);
    return plan;
}

FaultPlan
faultPlanFromEnv()
{
    const char *value = std::getenv("STFM_FAULT");
    if (value == nullptr || value[0] == '\0')
        return FaultPlan{};
    return parseFaultPlan(value);
}

} // namespace fleet
} // namespace stfm
