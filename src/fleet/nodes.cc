#include "fleet/nodes.hh"

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace stfm
{
namespace fleet
{

NodeSpec
parseNodeFlag(const std::string &text)
{
    NodeSpec node;
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos) {
        node.name = text;
    } else {
        node.name = text.substr(0, colon);
        const std::string slots = text.substr(colon + 1);
        char *end = nullptr;
        const unsigned long parsed =
            std::strtoul(slots.c_str(), &end, 10);
        if (slots.empty() || end == slots.c_str() || *end != '\0' ||
            parsed == 0) {
            throw SimError(formatMessage(
                "--node: slot count '%s' in '%s' is not a positive "
                "integer",
                slots.c_str(), text.c_str()));
        }
        node.slots = static_cast<unsigned>(parsed);
    }
    if (node.name.empty()) {
        throw SimError(
            "--node: expected 'host[:slots]', got an empty host in '" +
            text + "'");
    }
    return node;
}

std::vector<NodeSpec>
nodesFromJson(const Json &json)
{
    const std::string context = "nodes registry";
    const std::string schema =
        json.at("schema", context).asString(context + ".schema");
    if (schema != kNodesSchema) {
        throw SimError(formatMessage(
            "nodes registry: unknown schema '%s' (expected %s)",
            schema.c_str(), kNodesSchema));
    }
    const Json::Array &entries =
        json.at("nodes", context).asArray(context + ".nodes");
    std::vector<NodeSpec> nodes;
    nodes.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::string where =
            formatMessage("nodes registry entry %zu", i);
        const Json &entry = entries[i];
        NodeSpec node;
        node.name = entry.at("name", where).asString(where + ".name");
        if (const Json *slots = entry.find("slots")) {
            const std::uint64_t parsed =
                slots->asUint(where + ".slots");
            if (parsed == 0) {
                throw SimError(where +
                               ": slots must be a positive integer");
            }
            node.slots = static_cast<unsigned>(parsed);
        }
        if (const Json *launch = entry.find("launch")) {
            for (const Json &arg :
                 launch->asArray(where + ".launch")) {
                node.launch.push_back(
                    arg.asString(where + ".launch element"));
            }
            if (node.launch.empty()) {
                throw SimError(
                    where + ".launch: an explicit template must "
                            "carry at least one element");
            }
        }
        nodes.push_back(std::move(node));
    }
    return nodes;
}

std::vector<NodeSpec>
loadNodesFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw SimError("cannot open nodes registry '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return nodesFromJson(Json::parse(text.str()));
    } catch (const SimError &e) {
        throw SimError(formatMessage("nodes registry %s: %s",
                                     path.c_str(), e.what()));
    }
}

void
validateNodes(const std::vector<NodeSpec> &nodes)
{
    if (nodes.empty())
        throw SimError("node registry is empty");
    std::set<std::string> seen;
    for (const NodeSpec &node : nodes) {
        if (node.name.empty())
            throw SimError("node registry carries an unnamed node");
        if (node.slots == 0) {
            throw SimError(formatMessage(
                "node '%s' has zero worker slots", node.name.c_str()));
        }
        if (!seen.insert(node.name).second) {
            throw SimError(formatMessage(
                "node name '%s' appears twice — names are the fault-"
                "domain identity and must be unique",
                node.name.c_str()));
        }
    }
}

} // namespace fleet
} // namespace stfm
