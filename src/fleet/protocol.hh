/**
 * @file
 * The fleet wire protocol: length-prefixed JSON frames.
 *
 * A supervisor and its `stfm worker` subprocesses exchange messages
 * over plain pipes (worker stdin/stdout). Each message is one frame:
 *
 *   +------+----------------+------------------+
 *   | STFM | 8 hex digits   | payload bytes    |
 *   +------+----------------+------------------+
 *     magic  payload length   compact JSON
 *
 * The fixed 12-byte header makes framing self-describing and makes
 * corruption *classifiable*: a stream that does not start with the
 * magic, carries an absurd length, or whose payload fails to parse is
 * reported as protocol garbage (FrameDecoder::Status::Garbage) rather
 * than silently misinterpreted — the supervisor turns that verdict
 * into a retry with a "protocol garbage" diagnosis.
 *
 * Two consumption styles:
 *   - FrameDecoder: incremental (supervisor side, fed from poll());
 *   - readFrame(): blocking loop over a fd (worker side).
 */

#ifndef STFM_FLEET_PROTOCOL_HH
#define STFM_FLEET_PROTOCOL_HH

#include <cstddef>
#include <string>

#include "common/json.hh"

namespace stfm
{
namespace fleet
{

/** Frame header: 4 magic bytes + 8 lowercase-hex payload-length. */
inline constexpr char kFrameMagic[4] = {'S', 'T', 'F', 'M'};
inline constexpr std::size_t kFrameHeaderBytes = 12;
/**
 * Upper bound on a sane payload: 64 MiB. Shard results are far
 * smaller; the bound exists so a hostile or corrupt length prefix
 * (the field can claim up to 4 GiB − 1) poisons the stream instead of
 * committing the supervisor to buffering gigabytes it will never see.
 */
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;

/** Serialize @p message into one frame (header + compact JSON). */
std::string encodeFrame(const Json &message);

/**
 * Incremental frame parser. feed() appends raw bytes; next() extracts
 * the next complete frame, reporting malformed input as Garbage (the
 * decoder does not attempt resynchronization — one garbage verdict
 * poisons the stream, which is exactly the supervisor's failure
 * semantics for a corrupted worker).
 */
class FrameDecoder
{
  public:
    enum class Status
    {
        NeedMore, ///< No complete frame buffered yet.
        Frame,    ///< A frame was extracted into the out parameter.
        Garbage,  ///< The stream is corrupt; @p error explains how.
    };

    void feed(const char *data, std::size_t size);

    /** Extract the next frame. After Garbage the decoder stays dead. */
    Status next(Json &out, std::string *error = nullptr);

    /** True when no partial frame is pending (clean stream end). */
    bool idle() const { return buffer_.empty() && !dead_; }

  private:
    std::string buffer_;
    bool dead_ = false;
    std::string deadReason_;
};

/**
 * Write one frame to @p fd, looping over partial writes.
 * @return false on any write error (EPIPE when the peer is gone).
 */
bool writeFrame(int fd, const Json &message);

/**
 * Blocking read of the next frame from @p fd.
 * @return true on a frame; false on clean EOF (error empty) or on
 *         garbage / read error / truncated frame (error set).
 */
bool readFrame(int fd, Json &out, std::string *error = nullptr);

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_PROTOCOL_HH
