/**
 * @file
 * The fleet supervisor: fault-tolerant sharded sweep execution over a
 * pool of `stfm worker` processes, local or launched on other nodes
 * through a ShardExecutor (fleet/executor.hh).
 *
 * The supervisor partitions a spec's job grid into contiguous shards,
 * hands shards to workers over the frame protocol (fleet/protocol.hh),
 * and babysits the pool through a poll(2) event loop:
 *
 *   - per-shard wall-clock timeout (the shard is killed and retried);
 *   - a liveness window on worker heartbeats (a silent worker is a
 *     *hang*, killed and retried; a slow worker that heartbeats is
 *     left alone);
 *   - bounded retries with exponential backoff, each failure
 *     classified — nonzero exit, signal, timeout, hang, protocol
 *     garbage — and carried into diagnostics;
 *   - graceful degradation: a shard that exhausts its retries is
 *     merged as FAILED rows (structured error text, process attempt
 *     count) while the rest of the sweep completes.
 *
 * With an explicit node registry (fleet/nodes.hh) the failure model
 * graduates from "a worker died" to "a node vanished": every failure
 * is charged to its fault domain, consecutive failures back a node
 * off exponentially and then quarantine it, and in-flight shards
 * *migrate* — pulled back to Pending without burning their retry
 * budget, replayed elsewhere with identical seeds, so the merged
 * document stays byte-identical no matter which nodes died when.
 * STFM_NETFAULT (fleet/netfault.hh) injects deterministic partition
 * faults into exactly this machinery for CI chaos coverage.
 *
 * Determinism: process-level retries replay a shard with identical
 * seeds — crash-class faults are environmental, so the replay must
 * (and does) produce the bytes the faultless run would have. The
 * in-run reseeded retries (spec "attempts") happen inside the worker
 * and their salt rule, base + attempt - 1, is unchanged. With a
 * checkpoint directory, completed shards append to manifest.jsonl
 * (fleet/manifest.hh) and `--resume` replays them without
 * re-simulation; the merged stfm-results-v1 document is byte-identical
 * to an uninterrupted in-process run either way.
 */

#ifndef STFM_FLEET_SUPERVISOR_HH
#define STFM_FLEET_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fleet/nodes.hh"
#include "harness/experiment.hh"

namespace stfm
{

class TelemetryRegistry;

namespace fleet
{

/** Supervisor knobs (CLI flags map onto these 1:1). */
struct FleetOptions
{
    /** Shard count; 0 = one shard per result row. Clamped to the job
     *  count — never an empty shard. */
    unsigned shards = 0;
    /** Concurrent worker processes; 0 = ExperimentRunner::defaultJobs(). */
    unsigned workers = 0;
    /** Process-level retries per shard after the first attempt. */
    unsigned retries = 2;
    /** Per-shard wall-clock timeout, seconds; 0 disables. */
    double timeoutSec = 600.0;
    /** Base retry backoff, seconds; doubles per retry. */
    double backoffSec = 0.25;
    /** Worker heartbeat period while a shard runs. */
    unsigned heartbeatMs = 250;
    /** Liveness window, seconds: a busy worker silent longer than this
     *  is declared hung. 0 = derived (8 heartbeat periods, min 2 s). */
    double livenessSec = 0.0;
    /** Checkpoint directory (manifest.jsonl home); empty = none. */
    std::string checkpoint;
    /** Replay completed shards from the manifest instead of starting
     *  over. Requires `checkpoint`. */
    bool resume = false;
    /** Suppress the per-shard progress/ETA lines on stderr. */
    bool quiet = false;
    /**
     * Testing seam: stop supervising after this many shards complete
     * in *this* run (0 = never), as if the supervisor had been killed
     * — but with orderly teardown, so tests can exercise resume
     * without real signals or timing.
     */
    unsigned stopAfter = 0;
    /**
     * Worker command line; empty = {/proc/self/exe, "worker"}. Tests
     * point this at the built stfm CLI (or at impostors that misbehave
     * in ways STFM_FAULT cannot express).
     */
    std::vector<std::string> workerArgv;
    /**
     * Placement targets (fleet/nodes.hh). Empty = the implicit single
     * "local" fault domain: LocalExecutor, no node-level health
     * accounting — exactly the pre-executor single-machine behavior.
     * Non-empty = every worker launches through a RemoteExecutor
     * (loopback `sh -c` unless the node names a launch template) and
     * node fault domains are live.
     */
    std::vector<NodeSpec> nodeSpecs;
    /** Node registry file (stfm-nodes-v1), prepended to nodeSpecs. */
    std::string nodesFile;
    /** Consecutive node failures before quarantine. */
    unsigned nodeQuarantineAfter = 3;
    /** Base node backoff after a failure, seconds; doubles per
     *  consecutive failure up to nodeBackoffCapSec. */
    double nodeBackoffSec = 0.25;
    /** Ceiling on the node backoff, seconds. */
    double nodeBackoffCapSec = 30.0;
};

/** Supervisor observability counters (docs/METRICS.md `fleet.*`). */
struct FleetStats
{
    std::uint64_t shardsCompleted = 0; ///< Executed to success this run.
    std::uint64_t shardsResumed = 0;   ///< Replayed from the manifest.
    std::uint64_t shardsFailed = 0;    ///< Exhausted their retries.
    std::uint64_t retries = 0;         ///< Shard attempts after the first.
    std::uint64_t timeouts = 0;        ///< Wall-clock deadline kills.
    std::uint64_t hangs = 0;           ///< Liveness-window kills.
    std::uint64_t crashes = 0;         ///< Nonzero exits and signals.
    std::uint64_t protocolErrors = 0;  ///< Garbage on the frame stream.
    std::uint64_t heartbeats = 0;      ///< Heartbeat frames received.
    std::uint64_t sigkills = 0;        ///< Workers killed by SIGKILL
                                       ///< (likely the OOM killer).
    std::uint64_t migrations = 0;      ///< Shards pulled off a dying
                                       ///< node (retry budget intact).
    std::uint64_t launchFailures = 0;  ///< Worker launches that failed
                                       ///< at the node (charged to the
                                       ///< node, never the shard).
    std::uint64_t nodesQuarantined = 0;///< Nodes taken out of rotation.
    std::uint64_t netfaults = 0;       ///< STFM_NETFAULT events fired.
};

/** Everything a sharded execution produced. */
struct FleetOutcome
{
    ExperimentResult result;
    FleetStats stats;
    /** Shard indices merged as FAILED rows. */
    std::vector<unsigned> failedShards;
    /** True when stopAfter or SIGTERM/SIGINT ended the run early (the
     *  result is incomplete; resume from the checkpoint). */
    bool interrupted = false;

    bool anyFailed() const { return !failedShards.empty(); }
};

/**
 * Split @p jobs into at most @p requested contiguous [begin, end)
 * ranges, balanced to within one job. requested == 0 yields one shard
 * per result row (@p jobs_per_row jobs each); a request beyond the job
 * count is clamped (shards are never empty); zero jobs yield zero
 * shards.
 */
std::vector<std::pair<std::size_t, std::size_t>>
partitionShards(std::size_t jobs, std::size_t jobs_per_row,
                unsigned requested);

/**
 * Execute @p spec across a supervised worker pool and merge the shard
 * results into the exact ExperimentResult runExperiment would produce.
 * Shard failures degrade to FAILED outcome rows; spec-level problems
 * (and unusable checkpoint state: foreign manifest, newer manifest
 * version) throw SimError.
 */
FleetOutcome runShardedExperiment(const ExperimentSpec &spec,
                                  const FleetOptions &options);

/**
 * Register the `fleet.*` counters over @p stats on @p registry (the
 * PR 4 pull-based registry; the pointee must outlive it).
 */
void registerFleetTelemetry(TelemetryRegistry &registry,
                            const FleetStats &stats);

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_SUPERVISOR_HH
