/**
 * @file
 * The resumable-sweep checkpoint: an append-only JSONL manifest.
 *
 * `manifest.jsonl` lives in the sweep's checkpoint directory. Line 1
 * is a header binding the manifest to one exact experiment; every
 * later line is a completed shard (with its full outcome fragments)
 * or a shared alone-baseline cache entry:
 *
 *   {"schema":"stfm-manifest-v1","version":1,"specHash":"...",
 *    "jobs":M,"shards":S}
 *   {"type":"alone","key":"mcf#1x8x2048@50000","result":{...}}
 *   {"type":"shard","shard":3,"attempts":1,"outcomes":[...]}
 *
 * Durability model: each entry is one line written with a single
 * write(2) and fsync'd, so a SIGKILL'd supervisor loses at most the
 * line being appended. The loader tolerates exactly that — a
 * truncated *final* line is discarded; corruption anywhere else is a
 * structured SimError. A manifest whose header carries a newer
 * `version` than this build understands, or whose spec hash does not
 * match the experiment being resumed, is rejected with a structured
 * error rather than misread.
 *
 * Only *successful* shards are recorded: a shard that exhausted its
 * process-level retries is reported FAILED in the merged output but
 * stays absent from the manifest, so `--resume` gives it a fresh set
 * of attempts.
 */

#ifndef STFM_FLEET_MANIFEST_HH
#define STFM_FLEET_MANIFEST_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/json.hh"

namespace stfm
{

struct ExperimentSpec;
struct SimConfig;

namespace fleet
{

inline constexpr const char *kManifestSchema = "stfm-manifest-v1";
inline constexpr std::int64_t kManifestVersion = 1;

/**
 * Identity of one exact experiment: FNV-1a 64 over the canonical spec
 * echo and the fully resolved configuration (which folds in the
 * environment overrides — resuming under different STFM_* settings
 * must be rejected, as the merged results would not be reproducible).
 */
std::string fleetSpecHash(const ExperimentSpec &spec,
                          const SimConfig &resolved);

/** A loaded manifest. */
struct ManifestData
{
    Json header;
    /** Completed shards: index -> the full manifest entry. */
    std::map<unsigned, Json> shards;
    /** Shared alone-baseline entries: cache key -> ThreadResult wire. */
    std::map<std::string, Json> alone;
};

/**
 * Parse @p path. Returns an empty ManifestData (Null header) when the
 * file does not exist. @throws SimError on unreadable contents, an
 * unknown schema, or a newer manifest version.
 */
ManifestData loadManifest(const std::string &path);

/**
 * Check @p header (from loadManifest) against the experiment about to
 * resume. @throws SimError naming the mismatch (spec hash, job count,
 * shard count).
 */
void validateManifestHeader(const Json &header,
                            const std::string &spec_hash,
                            std::size_t jobs, std::size_t shards);

/** Append-only manifest writer (one fsync'd write per entry). */
class ManifestWriter
{
  public:
    ManifestWriter() = default;
    ~ManifestWriter();
    ManifestWriter(const ManifestWriter &) = delete;
    ManifestWriter &operator=(const ManifestWriter &) = delete;

    /**
     * Open @p path for appending, writing the header line first when
     * the file is new/empty. @throws SimError on I/O failure.
     */
    void open(const std::string &path, const std::string &spec_hash,
              std::size_t jobs, std::size_t shards);

    bool isOpen() const { return fd_ >= 0; }

    /**
     * Append one completed-shard entry. A non-empty @p node records
     * which fault domain executed the shard (provenance only — the
     * loader ignores the field, so manifests written before node
     * provenance existed resume unchanged, and vice versa).
     */
    void appendShard(unsigned shard, unsigned attempts,
                     const Json &outcomes,
                     const std::string &node = std::string());

    /** Append one alone-baseline cache entry. */
    void appendAlone(const std::string &key, const Json &result);

    void close();

  private:
    void appendLine(const Json &entry);

    int fd_ = -1;
    std::string path_;
};

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_MANIFEST_HH
