#include "fleet/wire.hh"

#include "common/logging.hh"

namespace stfm
{
namespace fleet
{

namespace
{

/** Required-member lookup with a dotted-context error. */
const Json &
member(const Json &json, const char *key, const std::string &context)
{
    return json.at(key, context);
}

double
memberDouble(const Json &json, const char *key,
             const std::string &context)
{
    return member(json, key, context).asDouble(context + "." + key);
}

std::uint64_t
memberUint(const Json &json, const char *key, const std::string &context)
{
    return member(json, key, context).asUint(context + "." + key);
}

} // namespace

Json
toWire(const ThreadResult &thread)
{
    Json out = Json::object();
    out.set("instructions", thread.instructions);
    out.set("cycles", thread.cycles);
    out.set("memStallCycles", thread.memStallCycles);
    out.set("l2Misses", thread.l2Misses);
    out.set("dramReads", thread.dramReads);
    out.set("dramWrites", thread.dramWrites);
    out.set("rowHits", thread.rowHits);
    out.set("rowClosed", thread.rowClosed);
    out.set("rowConflicts", thread.rowConflicts);
    out.set("readLatencyMean", thread.readLatencyMean);
    out.set("readLatencyP50", thread.readLatencyP50);
    out.set("readLatencyP99", thread.readLatencyP99);
    out.set("readLatencyMax", thread.readLatencyMax);
    return out;
}

ThreadResult
threadResultFromWire(const Json &json, const std::string &context)
{
    ThreadResult thread;
    thread.instructions = memberUint(json, "instructions", context);
    thread.cycles = memberUint(json, "cycles", context);
    thread.memStallCycles = memberUint(json, "memStallCycles", context);
    thread.l2Misses = memberUint(json, "l2Misses", context);
    thread.dramReads = memberUint(json, "dramReads", context);
    thread.dramWrites = memberUint(json, "dramWrites", context);
    thread.rowHits = memberUint(json, "rowHits", context);
    thread.rowClosed = memberUint(json, "rowClosed", context);
    thread.rowConflicts = memberUint(json, "rowConflicts", context);
    thread.readLatencyMean =
        memberDouble(json, "readLatencyMean", context);
    thread.readLatencyP50 = memberUint(json, "readLatencyP50", context);
    thread.readLatencyP99 = memberUint(json, "readLatencyP99", context);
    thread.readLatencyMax = memberUint(json, "readLatencyMax", context);
    return thread;
}

Json
toWire(const SimResult &result)
{
    Json out = Json::object();
    Json threads = Json::array();
    for (const ThreadResult &thread : result.threads)
        threads.push(toWire(thread));
    out.set("threads", std::move(threads));
    out.set("totalCycles", result.totalCycles);
    out.set("hitCycleLimit", result.hitCycleLimit);
    return out;
}

SimResult
simResultFromWire(const Json &json, const std::string &context)
{
    SimResult result;
    const Json::Array &threads =
        member(json, "threads", context)
            .asArray(context + ".threads");
    for (std::size_t i = 0; i < threads.size(); ++i) {
        result.threads.push_back(threadResultFromWire(
            threads[i],
            formatMessage("%s.threads[%zu]", context.c_str(), i)));
    }
    result.totalCycles = memberUint(json, "totalCycles", context);
    result.hitCycleLimit =
        member(json, "hitCycleLimit", context)
            .asBool(context + ".hitCycleLimit");
    return result;
}

Json
toWire(const MetricsReport &metrics)
{
    Json out = Json::object();
    Json slowdowns = Json::array();
    for (const double v : metrics.slowdowns)
        slowdowns.push(Json(v));
    out.set("slowdowns", std::move(slowdowns));
    Json rel = Json::array();
    for (const double v : metrics.relIpc)
        rel.push(Json(v));
    out.set("relIpc", std::move(rel));
    out.set("unfairness", metrics.unfairness);
    out.set("weightedSpeedup", metrics.weightedSpeedup);
    out.set("hmeanSpeedup", metrics.hmeanSpeedup);
    out.set("sumOfIpcs", metrics.sumOfIpcs);
    return out;
}

MetricsReport
metricsFromWire(const Json &json, const std::string &context)
{
    MetricsReport metrics;
    for (const Json &v :
         member(json, "slowdowns", context)
             .asArray(context + ".slowdowns"))
        metrics.slowdowns.push_back(
            v.asDouble(context + ".slowdowns[]"));
    for (const Json &v :
         member(json, "relIpc", context).asArray(context + ".relIpc"))
        metrics.relIpc.push_back(v.asDouble(context + ".relIpc[]"));
    metrics.unfairness = memberDouble(json, "unfairness", context);
    metrics.weightedSpeedup =
        memberDouble(json, "weightedSpeedup", context);
    metrics.hmeanSpeedup = memberDouble(json, "hmeanSpeedup", context);
    metrics.sumOfIpcs = memberDouble(json, "sumOfIpcs", context);
    return metrics;
}

Json
toWire(const RunOutcome &outcome)
{
    Json out = Json::object();
    out.set("policyName", outcome.policyName);
    out.set("failed", outcome.failed);
    out.set("attempts", outcome.attempts);
    if (outcome.failed) {
        out.set("error", outcome.error);
        return out;
    }
    out.set("shared", toWire(outcome.shared));
    out.set("metrics", toWire(outcome.metrics));
    if (outcome.hasTelemetry())
        out.set("telemetry", outcome.telemetry);
    if (outcome.hasTrace())
        out.set("trace", outcome.trace);
    return out;
}

RunOutcome
runOutcomeFromWire(const Json &json, const std::string &context)
{
    RunOutcome outcome;
    outcome.policyName =
        member(json, "policyName", context)
            .asString(context + ".policyName");
    outcome.failed =
        member(json, "failed", context).asBool(context + ".failed");
    outcome.attempts = static_cast<unsigned>(
        memberUint(json, "attempts", context));
    if (outcome.failed) {
        outcome.error =
            member(json, "error", context).asString(context + ".error");
        return outcome;
    }
    outcome.shared = simResultFromWire(member(json, "shared", context),
                                       context + ".shared");
    outcome.metrics = metricsFromWire(member(json, "metrics", context),
                                      context + ".metrics");
    if (const Json *v = json.find("telemetry"))
        outcome.telemetry = *v;
    if (const Json *v = json.find("trace"))
        outcome.trace = *v;
    return outcome;
}

Json
toWire(const WorkUnit &unit)
{
    Json out = Json::object();
    out.set("type", "shard");
    out.set("schema", kWorkUnitSchema);
    out.set("shard", unit.shard);
    out.set("attempt", unit.attempt);
    out.set("beginJob", static_cast<std::uint64_t>(unit.beginJob));
    out.set("endJob", static_cast<std::uint64_t>(unit.endJob));
    out.set("heartbeatMs", unit.heartbeatMs);
    out.set("spec", unit.spec);
    Json alone = Json::object();
    for (const auto &[key, result] : unit.alone)
        alone.set(key, toWire(result));
    out.set("alone", std::move(alone));
    return out;
}

WorkUnit
workUnitFromWire(const Json &json)
{
    const std::string context = "workunit";
    const std::string schema =
        member(json, "schema", context).asString(context + ".schema");
    if (schema != kWorkUnitSchema) {
        throw SimError(formatMessage(
            "work unit schema mismatch: got '%s', expected '%s'",
            schema.c_str(), kWorkUnitSchema));
    }
    WorkUnit unit;
    unit.shard =
        static_cast<unsigned>(memberUint(json, "shard", context));
    unit.attempt =
        static_cast<unsigned>(memberUint(json, "attempt", context));
    unit.beginJob = memberUint(json, "beginJob", context);
    unit.endJob = memberUint(json, "endJob", context);
    unit.heartbeatMs =
        static_cast<unsigned>(memberUint(json, "heartbeatMs", context));
    unit.spec = member(json, "spec", context);
    for (const auto &[key, value] :
         member(json, "alone", context).asObject(context + ".alone")) {
        unit.alone[key] =
            threadResultFromWire(value, context + ".alone." + key);
    }
    return unit;
}

Json
toWire(const ShardResult &result)
{
    Json out = Json::object();
    out.set("type", "result");
    out.set("schema", kShardResultSchema);
    out.set("shard", result.shard);
    Json outcomes = Json::array();
    for (const RunOutcome &outcome : result.outcomes)
        outcomes.push(toWire(outcome));
    out.set("outcomes", std::move(outcomes));
    Json alone = Json::object();
    for (const auto &[key, thread] : result.alone)
        alone.set(key, toWire(thread));
    out.set("alone", std::move(alone));
    return out;
}

ShardResult
shardResultFromWire(const Json &json)
{
    const std::string context = "shardresult";
    const std::string schema =
        member(json, "schema", context).asString(context + ".schema");
    if (schema != kShardResultSchema) {
        throw SimError(formatMessage(
            "shard result schema mismatch: got '%s', expected '%s'",
            schema.c_str(), kShardResultSchema));
    }
    ShardResult result;
    result.shard =
        static_cast<unsigned>(memberUint(json, "shard", context));
    const Json::Array &outcomes =
        member(json, "outcomes", context)
            .asArray(context + ".outcomes");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        result.outcomes.push_back(runOutcomeFromWire(
            outcomes[i],
            formatMessage("%s.outcomes[%zu]", context.c_str(), i)));
    }
    for (const auto &[key, value] :
         member(json, "alone", context).asObject(context + ".alone")) {
        result.alone[key] =
            threadResultFromWire(value, context + ".alone." + key);
    }
    return result;
}

Json
heartbeatMessage(unsigned shard)
{
    Json out = Json::object();
    out.set("type", "heartbeat");
    out.set("shard", shard);
    return out;
}

} // namespace fleet
} // namespace stfm
