/**
 * @file
 * Fleet message schemas: the work-unit a supervisor sends to a worker
 * and the shard-result fragment a worker sends back, plus the exact
 * JSON round-trip of the result structs they carry.
 *
 * Exactness matters: a resumed sweep replays completed shards out of
 * the manifest instead of re-simulating them, and the acceptance bar
 * is a merged stfm-results-v1 document *byte-identical* to an
 * uninterrupted run. common/json preserves 64-bit integers exactly and
 * prints doubles in their shortest round-trip form, so serializing the
 * raw RunOutcome fields (not derived values) and re-parsing them
 * reconstructs bit-equal structs — `tests/test_fleet.cc` pins this.
 *
 * Message schemas (all frames carry "type"):
 *
 *   work unit  (supervisor -> worker), "stfm-workunit-v1":
 *     { "type": "shard", "schema": ..., "shard": k, "attempt": a,
 *       "beginJob": i, "endJob": j, "heartbeatMs": h,
 *       "spec": { canonical ExperimentSpec echo },
 *       "alone": { "<cache key>": ThreadResult, ... } }
 *
 *   heartbeat  (worker -> supervisor):
 *     { "type": "heartbeat", "shard": k }
 *
 *   result     (worker -> supervisor), "stfm-shardresult-v1":
 *     { "type": "result", "schema": ..., "shard": k,
 *       "outcomes": [ RunOutcome, ... ],      // jobs [beginJob, endJob)
 *       "alone": { newly computed baselines } }
 *
 * The worker re-derives the job grid from the spec echo (the same
 * planExperiment() the supervisor used), so a work unit only names a
 * contiguous job range — the grid itself is never shipped.
 */

#ifndef STFM_FLEET_WIRE_HH
#define STFM_FLEET_WIRE_HH

#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/runner.hh"

namespace stfm
{
namespace fleet
{

inline constexpr const char *kWorkUnitSchema = "stfm-workunit-v1";
inline constexpr const char *kShardResultSchema = "stfm-shardresult-v1";

// Result-struct round trips ------------------------------------------

Json toWire(const ThreadResult &thread);
ThreadResult threadResultFromWire(const Json &json,
                                  const std::string &context);

Json toWire(const SimResult &result);
SimResult simResultFromWire(const Json &json,
                            const std::string &context);

Json toWire(const MetricsReport &metrics);
MetricsReport metricsFromWire(const Json &json,
                              const std::string &context);

Json toWire(const RunOutcome &outcome);
RunOutcome runOutcomeFromWire(const Json &json,
                              const std::string &context);

// Messages -----------------------------------------------------------

/** One shard assignment: a contiguous job range of the spec's grid. */
struct WorkUnit
{
    unsigned shard = 0;
    /** Process-level attempt, 1-based. Retries replay with the same
     *  seeds (crash-class faults are environmental); the in-run
     *  reseeded retries stay inside the worker per spec "attempts". */
    unsigned attempt = 1;
    std::size_t beginJob = 0;
    std::size_t endJob = 0;
    unsigned heartbeatMs = 250;
    Json spec = Json::object();
    /** Alone-baseline cache entries already known fleet-wide. */
    std::map<std::string, ThreadResult> alone;
};

/** A worker's answer for one shard. */
struct ShardResult
{
    unsigned shard = 0;
    std::vector<RunOutcome> outcomes;
    /** Baselines this worker computed that were not in the unit. */
    std::map<std::string, ThreadResult> alone;
};

Json toWire(const WorkUnit &unit);
WorkUnit workUnitFromWire(const Json &json);

Json toWire(const ShardResult &result);
ShardResult shardResultFromWire(const Json &json);

Json heartbeatMessage(unsigned shard);

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_WIRE_HH
