/**
 * @file
 * Deterministic network fault injection for the fleet supervisor,
 * mirroring STFM_FAULT's design (fleet/fault.hh): an environment
 * variable, parsed once, arming exactly one deterministic event so a
 * chaos scenario replays identically run after run.
 *
 *   STFM_NETFAULT=<mode>@<node>:<K>
 *
 * K is the 1-based ordinal of *dispatches to that node* — the Kth
 * WorkUnit the supervisor sends toward any worker placed on it.
 * Counting dispatches (not wall time) keeps the trigger deterministic
 * under arbitrary scheduling. Modes model the classic partition
 * shapes:
 *
 *   drop   The Kth dispatch frame is silently discarded: the worker
 *          idles on a unit the supervisor believes is in flight, the
 *          liveness window expires, and the hang path replays the
 *          shard elsewhere. (A lost packet.)
 *   stall  After the Kth dispatch, every inbound byte from the node
 *          is read and discarded: heartbeats and results vanish, all
 *          of the node's workers go dark, the shard migrates. (A
 *          one-way partition.)
 *   sever  At the Kth dispatch the node dies: its workers are killed,
 *          in-flight and queued shards migrate off it, and every
 *          later launch on it fails until it is quarantined. (The
 *          node vanished.)
 *   flap   A sever that heals: the first launch attempt that finds
 *          the node dead fails (the node backs off once), after which
 *          the node rejoins healthy. (A transient partition —
 *          exercises backoff/recovery without quarantine.)
 *
 * Fault injection is supervisor-side only: workers are untouched, so
 * the modes compose with STFM_FAULT process faults in the same run.
 */

#ifndef STFM_FLEET_NETFAULT_HH
#define STFM_FLEET_NETFAULT_HH

#include <string>

namespace stfm
{
namespace fleet
{

/** A parsed STFM_NETFAULT directive. */
struct NetFaultPlan
{
    enum class Kind
    {
        None,
        Drop,
        Stall,
        Sever,
        Flap,
    };

    Kind kind = Kind::None;
    /** Target node name (fault-domain identity, nodes.hh). */
    std::string node;
    /** 1-based dispatch ordinal to @ref node that arms the fault. */
    unsigned trigger = 0;

    bool active() const { return kind != Kind::None; }
};

/** Parse `<mode>@<node>:<K>`. @throws SimError on malformed text. */
NetFaultPlan parseNetFaultPlan(const std::string &text);

/** Read STFM_NETFAULT; inactive plan when unset or empty. */
NetFaultPlan netFaultPlanFromEnv();

/** Human-readable mode name ("drop", ..., "none") for diagnostics. */
const char *netFaultKindName(NetFaultPlan::Kind kind);

/**
 * Supervisor-side fault state machine. The supervisor calls the hooks
 * below at its dispatch/launch/read points; this class answers what
 * the armed fault does there. All methods are no-ops for nodes other
 * than the plan's target and for inactive plans.
 */
class NetFaultState
{
  public:
    explicit NetFaultState(NetFaultPlan plan) : plan_(plan) {}

    const NetFaultPlan &plan() const { return plan_; }

    /** What a dispatch toward @p node should do. */
    enum class DispatchAction
    {
        Deliver,  ///< Write the frame normally.
        DropFrame,///< Count the dispatch but discard the frame.
        SeverNode,///< Kill the node now (frame not delivered).
    };

    /**
     * Account one dispatch toward @p node and return the action.
     * Increments the per-target dispatch ordinal; fires at most once.
     */
    DispatchAction onDispatch(const std::string &node);

    /** False while a sever/flap holds the node down (launch gate). */
    bool launchAllowed(const std::string &node) const;

    /**
     * Record that a launch was blocked by the gate. For flap this
     * heals the node: the next launchAllowed() returns true.
     * @return true when this block healed a flap (the caller backs
     * the node off once instead of charging a failure).
     */
    bool noteLaunchBlocked(const std::string &node);

    /** True when inbound bytes from @p node must be discarded. */
    bool inboundBlocked(const std::string &node) const;

    /** True once the armed fault has fired (for fleet.netfaults). */
    bool fired() const { return fired_; }

  private:
    bool targets(const std::string &node) const
    {
        return plan_.active() && node == plan_.node;
    }

    NetFaultPlan plan_;
    unsigned dispatches_ = 0;
    bool fired_ = false;
    bool severed_ = false;
    bool stalled_ = false;
    bool healed_ = false;
};

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_NETFAULT_HH
