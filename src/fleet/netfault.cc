#include "fleet/netfault.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace stfm
{
namespace fleet
{

NetFaultPlan
parseNetFaultPlan(const std::string &text)
{
    const std::size_t at = text.find('@');
    const std::size_t colon = text.rfind(':');
    if (at == std::string::npos || colon == std::string::npos ||
        colon < at || at == 0 || colon == at + 1 ||
        colon + 1 >= text.size()) {
        throw SimError(formatMessage(
            "STFM_NETFAULT: expected '<mode>@<node>:<K>', got '%s'",
            text.c_str()));
    }
    const std::string mode = text.substr(0, at);
    const std::string node = text.substr(at + 1, colon - at - 1);
    const std::string ordinal = text.substr(colon + 1);

    NetFaultPlan plan;
    if (mode == "drop")
        plan.kind = NetFaultPlan::Kind::Drop;
    else if (mode == "stall")
        plan.kind = NetFaultPlan::Kind::Stall;
    else if (mode == "sever")
        plan.kind = NetFaultPlan::Kind::Sever;
    else if (mode == "flap")
        plan.kind = NetFaultPlan::Kind::Flap;
    else {
        throw SimError(formatMessage(
            "STFM_NETFAULT: unknown mode '%s' (drop, stall, sever, "
            "flap)",
            mode.c_str()));
    }

    plan.node = node;
    char *end = nullptr;
    const unsigned long trigger =
        std::strtoul(ordinal.c_str(), &end, 10);
    if (end == ordinal.c_str() || *end != '\0' || trigger == 0) {
        throw SimError(formatMessage(
            "STFM_NETFAULT: dispatch ordinal '%s' is not a positive "
            "number",
            ordinal.c_str()));
    }
    plan.trigger = static_cast<unsigned>(trigger);
    return plan;
}

NetFaultPlan
netFaultPlanFromEnv()
{
    const char *value = std::getenv("STFM_NETFAULT");
    if (value == nullptr || value[0] == '\0')
        return NetFaultPlan{};
    return parseNetFaultPlan(value);
}

const char *
netFaultKindName(NetFaultPlan::Kind kind)
{
    switch (kind) {
    case NetFaultPlan::Kind::None:
        return "none";
    case NetFaultPlan::Kind::Drop:
        return "drop";
    case NetFaultPlan::Kind::Stall:
        return "stall";
    case NetFaultPlan::Kind::Sever:
        return "sever";
    case NetFaultPlan::Kind::Flap:
        return "flap";
    }
    return "none";
}

NetFaultState::DispatchAction
NetFaultState::onDispatch(const std::string &node)
{
    if (!targets(node) || fired_)
        return DispatchAction::Deliver;
    ++dispatches_;
    if (dispatches_ < plan_.trigger)
        return DispatchAction::Deliver;
    fired_ = true;
    switch (plan_.kind) {
    case NetFaultPlan::Kind::Drop:
        return DispatchAction::DropFrame;
    case NetFaultPlan::Kind::Stall:
        stalled_ = true;
        return DispatchAction::Deliver; // The unit lands; replies die.
    case NetFaultPlan::Kind::Sever:
    case NetFaultPlan::Kind::Flap:
        severed_ = true;
        return DispatchAction::SeverNode;
    case NetFaultPlan::Kind::None:
        break;
    }
    return DispatchAction::Deliver;
}

bool
NetFaultState::launchAllowed(const std::string &node) const
{
    if (!targets(node))
        return true;
    return !severed_ || healed_;
}

bool
NetFaultState::noteLaunchBlocked(const std::string &node)
{
    if (!targets(node) || !severed_ || healed_)
        return false;
    if (plan_.kind == NetFaultPlan::Kind::Flap) {
        healed_ = true;
        return true;
    }
    return false;
}

bool
NetFaultState::inboundBlocked(const std::string &node) const
{
    return targets(node) && stalled_;
}

} // namespace fleet
} // namespace stfm
