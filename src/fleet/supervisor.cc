#include "fleet/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "fleet/executor.hh"
#include "fleet/manifest.hh"
#include "fleet/netfault.hh"
#include "fleet/protocol.hh"
#include "fleet/wire.hh"
#include "obs/telemetry.hh"
#include "report/html.hh"
#include "report/rollup.hh"

namespace stfm
{
namespace fleet
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

volatile std::sig_atomic_t g_stopRequested = 0;

void
stopHandler(int)
{
    g_stopRequested = 1;
}

/**
 * SIGTERM/SIGINT request an orderly stop (children killed, manifest
 * intact, exit nonzero); SIGPIPE must not kill the supervisor when a
 * worker dies mid-write. No SA_RESTART: poll() has to wake up.
 */
class SignalGuard
{
  public:
    SignalGuard()
    {
        g_stopRequested = 0;
        struct sigaction action = {};
        action.sa_handler = stopHandler;
        sigemptyset(&action.sa_mask);
        action.sa_flags = 0;
        sigaction(SIGTERM, &action, &oldTerm_);
        sigaction(SIGINT, &action, &oldInt_);
        struct sigaction ignore = {};
        ignore.sa_handler = SIG_IGN;
        sigemptyset(&ignore.sa_mask);
        sigaction(SIGPIPE, &ignore, &oldPipe_);
    }

    ~SignalGuard()
    {
        sigaction(SIGTERM, &oldTerm_, nullptr);
        sigaction(SIGINT, &oldInt_, nullptr);
        sigaction(SIGPIPE, &oldPipe_, nullptr);
    }

  private:
    struct sigaction oldTerm_ = {};
    struct sigaction oldInt_ = {};
    struct sigaction oldPipe_ = {};
};

enum class ShardStatus
{
    Pending,
    Running,
    Done,
    Failed,
};

struct ShardState
{
    std::size_t begin = 0;
    std::size_t end = 0;
    ShardStatus status = ShardStatus::Pending;
    /** Process-level attempts consumed so far. */
    unsigned attempts = 0;
    /** Backoff eligibility: not reassigned before this instant. */
    Clock::time_point notBefore{};
    /** Final diagnosis once Failed. */
    std::string error;
    /** First dispatch instant; anchor for the wall-clock record. */
    Clock::time_point firstDispatch{};
    bool dispatched = false;
    /**
     * Wall-clock seconds from first dispatch to terminal status
     * (retries and backoff included — this is what the sweep actually
     * paid for the shard). 0 for resumed/never-dispatched shards.
     * Recorded per shard in fleet_counters.json so sharded sweeps can
     * feed the same throughput tooling as the perf trajectory.
     */
    double wallSeconds = 0;
    /** Fault domain of the last dispatch (provenance; "" = never
     *  dispatched this run, e.g. resumed from the manifest). */
    std::string node;

    std::size_t jobs() const { return end - begin; }

    void
    settleWallClock()
    {
        if (dispatched) {
            wallSeconds = std::chrono::duration<double>(
                              Clock::now() - firstDispatch)
                              .count();
        }
    }
};

struct WorkerProc
{
    pid_t pid = -1;
    int in = -1;  ///< Write end of the worker's stdin.
    int out = -1; ///< Read end of the worker's stdout.
    FrameDecoder decoder;
    bool alive = false;
    bool busy = false;
    std::size_t shard = 0;
    std::size_t node = 0; ///< Index into the supervisor's node table.
    bool hasDeadline = false;
    Clock::time_point deadline{};
    Clock::time_point lastHeard{};
};

/**
 * One placement target with its health state. Health is charged per
 * *fault domain*: worker crashes, hangs, garbage, and launch failures
 * increment consecutiveFailures; a completed shard resets it. A node
 * past the failure threshold is quarantined — permanently out of
 * rotation, its in-flight shards migrated. Below the threshold it
 * only backs off (notBefore), doubling per consecutive failure.
 *
 * The implicit single "local" domain (no registry configured) is
 * exempt from all of this: its only failure policy is the per-shard
 * retry budget, exactly the pre-executor behavior.
 */
struct NodeState
{
    NodeSpec spec;
    std::unique_ptr<ShardExecutor> executor;
    bool implicitLocal = false;
    unsigned consecutiveFailures = 0;
    bool quarantined = false;
    /** Backoff gate: no launches/assignments before this instant. */
    Clock::time_point notBefore{};
    /** WorkUnits dispatched toward this node (provenance). */
    std::uint64_t dispatches = 0;
};

class Supervisor
{
  public:
    Supervisor(const ExperimentSpec &spec, const FleetOptions &options)
        : options_(options), plan_(planExperiment(spec)),
          specEcho_(toJson(plan_.spec)), report_(spec.name)
    {
        outcome_.result = resultFromPlan(plan_);
        // Shards land by job index as they complete, in any order.
        outcome_.result.outcomes.resize(plan_.jobs.size());
        const auto ranges = partitionShards(
            plan_.jobs.size(), plan_.jobsPerRow(), options_.shards);
        shards_.reserve(ranges.size());
        for (const auto &range : ranges) {
            ShardState state;
            state.begin = range.first;
            state.end = range.second;
            shards_.push_back(state);
        }

        maxWorkers_ = options_.workers > 0
                          ? options_.workers
                          : ExperimentRunner::defaultJobs();
        maxWorkers_ = static_cast<unsigned>(std::min<std::size_t>(
            std::max<std::size_t>(1, maxWorkers_),
            std::max<std::size_t>(1, shards_.size())));
        heartbeatMs_ =
            options_.heartbeatMs > 0 ? options_.heartbeatMs : 250;
        livenessSec_ = options_.livenessSec > 0
                           ? options_.livenessSec
                           : std::max(2.0, 8.0 * heartbeatMs_ / 1000.0);

        buildNodeTable();
        openCheckpoint(spec);
    }

    FleetOutcome
    run()
    {
        SignalGuard guard;
        startTime_ = Clock::now();
        while (!allSettled()) {
            if (g_stopRequested ||
                (options_.stopAfter > 0 &&
                 stats().shardsCompleted >= options_.stopAfter)) {
                outcome_.interrupted = true;
                break;
            }
            assignShards();
            pollWorkers();
            enforceDeadlines();
        }
        teardown();
        finish();
        return std::move(outcome_);
    }

  private:
    FleetStats &stats() { return outcome_.stats; }

    // Nodes -----------------------------------------------------------

    /**
     * Resolve the placement targets. No registry → one implicit
     * "local" node driven by a LocalExecutor with the exact argv the
     * pre-executor supervisor exec'd (bit-identical launch path).
     * Any registry → every node gets a RemoteExecutor; a node without
     * a launch template uses the loopback `sh -c` launcher.
     */
    void
    buildNodeTable()
    {
        std::vector<NodeSpec> specs;
        if (!options_.nodesFile.empty())
            specs = loadNodesFile(options_.nodesFile);
        specs.insert(specs.end(), options_.nodeSpecs.begin(),
                     options_.nodeSpecs.end());
        if (specs.empty()) {
            NodeState local;
            local.spec.name = kLocalNodeName;
            local.spec.slots = maxWorkers_;
            local.implicitLocal = true;
            local.executor = std::make_unique<LocalExecutor>(
                local.spec.name, options_.workerArgv.empty()
                                     ? defaultArgv()
                                     : options_.workerArgv);
            nodes_.push_back(std::move(local));
        } else {
            validateNodes(specs);
            const std::vector<std::string> worker =
                resolvedWorkerArgv();
            for (NodeSpec &spec : specs) {
                NodeState node;
                node.executor = std::make_unique<RemoteExecutor>(
                    spec.name, spec.launch, worker);
                node.spec = std::move(spec);
                nodes_.push_back(std::move(node));
            }
        }
        if (netfault_.plan().active()) {
            bool known = false;
            for (const NodeState &node : nodes_)
                known = known || node.spec.name == netfault_.plan().node;
            if (!known) {
                throw SimError(formatMessage(
                    "STFM_NETFAULT targets node '%s' but this run has "
                    "no node of that name",
                    netfault_.plan().node.c_str()));
            }
        }
    }

    /**
     * The worker argv a transport process runs. `/proc/self/exe`
     * cannot survive a hop through `sh -c` (it would resolve to the
     * shell), so the remote default is the readlink-resolved binary
     * path; an explicit workerArgv passes through untouched.
     */
    std::vector<std::string>
    resolvedWorkerArgv() const
    {
        if (!options_.workerArgv.empty())
            return options_.workerArgv;
        char path[4096];
        const ssize_t n =
            ::readlink("/proc/self/exe", path, sizeof(path) - 1);
        if (n <= 0)
            return defaultArgv();
        path[n] = '\0';
        return {path, "worker"};
    }

    // Checkpoint ------------------------------------------------------

    void
    openCheckpoint(const ExperimentSpec &spec)
    {
        if (options_.checkpoint.empty()) {
            if (options_.resume) {
                throw SimError(
                    "--resume requires a checkpoint directory");
            }
            return;
        }
        if (::mkdir(options_.checkpoint.c_str(), 0755) != 0 &&
            errno != EEXIST) {
            throw SimError(formatMessage(
                "cannot create checkpoint directory '%s': %s",
                options_.checkpoint.c_str(), std::strerror(errno)));
        }
        const std::string path =
            options_.checkpoint + "/manifest.jsonl";
        const std::string hash = fleetSpecHash(spec, plan_.base);
        if (options_.resume)
            restoreFromManifest(path, hash);
        else
            ::remove(path.c_str()); // Stale state must not poison us.
        writer_.open(path, hash, plan_.jobs.size(), shards_.size());
    }

    void
    restoreFromManifest(const std::string &path,
                        const std::string &hash)
    {
        const ManifestData data = loadManifest(path);
        if (data.header.isNull())
            return; // Nothing checkpointed yet; run from scratch.
        validateManifestHeader(data.header, hash, plan_.jobs.size(),
                               shards_.size());
        for (const auto &[key, wire] : data.alone) {
            alone_[key] = threadResultFromWire(
                wire, "manifest alone '" + key + "'");
        }
        for (const auto &[index, entry] : data.shards) {
            if (index >= shards_.size()) {
                throw SimError(formatMessage(
                    "manifest names shard %u but this run has only "
                    "%zu shards",
                    index, shards_.size()));
            }
            ShardState &shard = shards_[index];
            const std::string context =
                formatMessage("manifest shard %u", index);
            shard.attempts = static_cast<unsigned>(
                entry.at("attempts", context)
                    .asUint(context + ".attempts"));
            const auto &outcomes =
                entry.at("outcomes", context)
                    .asArray(context + ".outcomes");
            if (outcomes.size() != shard.jobs()) {
                throw SimError(formatMessage(
                    "%s carries %zu outcomes but the shard spans %zu "
                    "jobs",
                    context.c_str(), outcomes.size(), shard.jobs()));
            }
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                outcome_.result.outcomes[shard.begin + i] =
                    runOutcomeFromWire(
                        outcomes[i],
                        formatMessage("%s outcome %zu",
                                      context.c_str(), i));
                foldOutcome(shard.begin + i,
                            outcome_.result.outcomes[shard.begin + i]);
            }
            shard.status = ShardStatus::Done;
            ++stats().shardsResumed;
        }
        if (!options_.quiet && stats().shardsResumed > 0) {
            std::fprintf(stderr,
                         "[fleet] resumed %llu/%zu shards from %s\n",
                         static_cast<unsigned long long>(
                             stats().shardsResumed),
                         shards_.size(), path.c_str());
        }
    }

    // Scheduling ------------------------------------------------------

    bool
    allSettled() const
    {
        for (const ShardState &shard : shards_) {
            if (shard.status == ShardStatus::Pending ||
                shard.status == ShardStatus::Running)
                return false;
        }
        return true;
    }

    bool
    nodeEligible(std::size_t index, Clock::time_point now) const
    {
        const NodeState &node = nodes_[index];
        return !node.quarantined && now >= node.notBefore;
    }

    /**
     * Find (or launch) a worker for the next Pending shard. Placement
     * prefers an idle worker already alive on an eligible node, then
     * launches on the least-loaded eligible node with a free slot.
     * The STFM_NETFAULT launch gate is checked *after* selection so a
     * severed node keeps accumulating launch failures — that is the
     * path that quarantines it.
     */
    WorkerProc *
    workerForShard()
    {
        const Clock::time_point now = Clock::now();
        std::size_t aliveTotal = 0;
        std::vector<unsigned> aliveOn(nodes_.size(), 0);
        WorkerProc *freeSlot = nullptr;
        WorkerProc *idle = nullptr;
        for (WorkerProc &worker : pool_) {
            if (worker.alive) {
                ++aliveTotal;
                ++aliveOn[worker.node];
                if (!worker.busy && !idle &&
                    nodeEligible(worker.node, now))
                    idle = &worker;
            } else if (!freeSlot) {
                freeSlot = &worker;
            }
        }
        if (idle)
            return idle;
        if (aliveTotal >= maxWorkers_)
            return nullptr;
        std::size_t best = nodes_.size();
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (!nodeEligible(i, now) ||
                aliveOn[i] >= nodes_[i].spec.slots)
                continue;
            if (best == nodes_.size() || aliveOn[i] < aliveOn[best])
                best = i;
        }
        if (best == nodes_.size())
            return nullptr;
        if (!netfault_.launchAllowed(nodes_[best].spec.name)) {
            noteLaunchBlocked(best);
            return nullptr;
        }
        if (!freeSlot) {
            pool_.emplace_back();
            freeSlot = &pool_.back();
        }
        spawn(*freeSlot, best);
        return freeSlot;
    }

    void
    spawn(WorkerProc &worker, std::size_t node)
    {
        const WorkerChannel channel = nodes_[node].executor->launch();
        worker = WorkerProc{};
        worker.pid = channel.pid;
        worker.in = channel.in;
        worker.out = channel.out;
        worker.node = node;
        worker.alive = true;
    }

    static const std::vector<std::string> &
    defaultArgv()
    {
        static const std::vector<std::string> argv = {
            "/proc/self/exe", "worker"};
        return argv;
    }

    void
    assignShards()
    {
        const Clock::time_point now = Clock::now();
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            ShardState &shard = shards_[i];
            if (shard.status != ShardStatus::Pending ||
                now < shard.notBefore)
                continue;
            WorkerProc *worker = workerForShard();
            if (!worker)
                return; // Pool saturated; poll until a slot frees up.

            ++shard.attempts;
            if (!shard.dispatched) {
                shard.dispatched = true;
                shard.firstDispatch = now;
            }
            WorkUnit unit;
            unit.shard = static_cast<unsigned>(i);
            unit.attempt = shard.attempts;
            unit.beginJob = shard.begin;
            unit.endJob = shard.end;
            unit.heartbeatMs = heartbeatMs_;
            unit.spec = specEcho_;
            unit.alone = alone_;

            shard.status = ShardStatus::Running;
            worker->busy = true;
            worker->shard = i;
            worker->lastHeard = now;
            worker->hasDeadline = options_.timeoutSec > 0;
            if (worker->hasDeadline) {
                worker->deadline =
                    now + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  options_.timeoutSec));
            }
            NodeState &node = nodes_[worker->node];
            ++node.dispatches;
            shard.node = node.spec.name;
            const bool netfaultArmed = !netfault_.fired();
            const NetFaultState::DispatchAction action =
                netfault_.onDispatch(node.spec.name);
            // Count the firing however it manifests: stall fires on a
            // *delivered* dispatch (only the replies die).
            if (netfaultArmed && netfault_.fired())
                ++stats().netfaults;
            switch (action) {
            case NetFaultState::DispatchAction::SeverNode:
                if (!options_.quiet) {
                    std::fprintf(stderr,
                                 "[fleet] netfault: node '%s' severed "
                                 "at dispatch\n",
                                 node.spec.name.c_str());
                }
                // Kills this worker too; the shard just marked Running
                // migrates back to Pending with its budget intact.
                severNode(worker->node);
                continue;
            case NetFaultState::DispatchAction::DropFrame:
                if (!options_.quiet) {
                    std::fprintf(stderr,
                                 "[fleet] netfault: dispatch to node "
                                 "'%s' dropped\n",
                                 node.spec.name.c_str());
                }
                // The worker never sees the unit and sits silent; the
                // liveness window reaps it like any hang.
                continue;
            case NetFaultState::DispatchAction::Deliver:
                if (netfaultArmed && netfault_.fired() &&
                    !options_.quiet) {
                    std::fprintf(stderr,
                                 "[fleet] netfault: replies from node "
                                 "'%s' now discarded\n",
                                 node.spec.name.c_str());
                }
                break;
            }
            // A dead-on-arrival worker (bad binary, instant crash)
            // fails this write; its stdout EOF classifies the attempt.
            (void)writeFrame(worker->in, toWire(unit));
        }
    }

    // Node fault domains ----------------------------------------------

    /**
     * Pull a Running shard back to Pending because its *node* is being
     * taken down — the shard itself did nothing wrong, so the dispatch
     * that pre-charged its attempt counter is refunded and the retry
     * budget stays intact. The replay uses identical seeds, so the
     * merged document is byte-identical wherever the shard lands.
     */
    void
    migrateShard(std::size_t index, const char *why)
    {
        ShardState &shard = shards_[index];
        if (shard.status != ShardStatus::Running)
            return;
        shard.status = ShardStatus::Pending;
        if (shard.attempts > 0)
            --shard.attempts;
        shard.notBefore = Clock::now();
        ++stats().migrations;
        if (!options_.quiet) {
            std::fprintf(stderr,
                         "[fleet] shard %zu migrating off node '%s' "
                         "(%s)\n",
                         index, shard.node.c_str(), why);
        }
    }

    /** Kill every worker on @p node, migrating the shards they held. */
    void
    evacuateNode(std::size_t node, const char *why)
    {
        for (WorkerProc &worker : pool_) {
            if (!worker.alive || worker.node != node)
                continue;
            if (worker.busy)
                migrateShard(worker.shard, why);
            killWorker(worker);
        }
    }

    /** A netfault sever: the node is gone *now*; launches keep being
     *  attempted (and blocked) until the charges quarantine it. */
    void
    severNode(std::size_t node)
    {
        evacuateNode(node, "node severed");
    }

    void
    quarantineNode(std::size_t index, const std::string &why)
    {
        NodeState &node = nodes_[index];
        if (node.quarantined)
            return;
        node.quarantined = true;
        ++stats().nodesQuarantined;
        if (!options_.quiet) {
            std::fprintf(stderr,
                         "[fleet] node '%s' quarantined after %u "
                         "consecutive failures (%s)\n",
                         node.spec.name.c_str(),
                         node.consecutiveFailures, why.c_str());
        }
        evacuateNode(index, "node quarantined");
        if (!anyHealthyNode())
            failPendingShards("no healthy nodes remain");
    }

    /**
     * Charge one failure to @p index's fault domain. Below the
     * quarantine threshold the node only backs off (exponentially,
     * capped); at the threshold it is quarantined. The implicit local
     * domain is exempt — single-machine sweeps keep the per-shard
     * retry budget as their only policy.
     */
    void
    chargeNode(std::size_t index, const std::string &why)
    {
        NodeState &node = nodes_[index];
        if (node.implicitLocal || node.quarantined)
            return;
        ++node.consecutiveFailures;
        if (node.consecutiveFailures >= options_.nodeQuarantineAfter) {
            quarantineNode(index, why);
            return;
        }
        backOffNode(node, node.consecutiveFailures);
        if (!options_.quiet) {
            std::fprintf(stderr,
                         "[fleet] node '%s' failure %u/%u (%s); "
                         "backing off\n",
                         node.spec.name.c_str(),
                         node.consecutiveFailures,
                         options_.nodeQuarantineAfter, why.c_str());
        }
    }

    void
    backOffNode(NodeState &node, unsigned failures)
    {
        const double backoff = std::min(
            options_.nodeBackoffCapSec,
            options_.nodeBackoffSec *
                static_cast<double>(
                    1u << std::min(failures > 0 ? failures - 1 : 0u,
                                   16u)));
        node.notBefore =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(backoff));
    }

    /**
     * A launch the netfault gate refused. Launch failures are charged
     * to the node, never to any shard — no shard was dispatched. A
     * flap heals here: the node backs off once and rejoins healthy.
     */
    void
    noteLaunchBlocked(std::size_t index)
    {
        NodeState &node = nodes_[index];
        ++stats().launchFailures;
        if (netfault_.noteLaunchBlocked(node.spec.name)) {
            backOffNode(node, 1);
            if (!options_.quiet) {
                std::fprintf(stderr,
                             "[fleet] netfault: node '%s' flapped; "
                             "rejoining after backoff\n",
                             node.spec.name.c_str());
            }
            return;
        }
        chargeNode(index, "worker launch failed");
    }

    /** Terminal degradation: nowhere left to place work. */
    void
    failPendingShards(const std::string &why)
    {
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            ShardState &shard = shards_[i];
            if (shard.status != ShardStatus::Pending)
                continue;
            shard.status = ShardStatus::Failed;
            shard.settleWallClock();
            shard.error = formatMessage(
                "shard %zu abandoned after %u attempt%s: %s", i,
                shard.attempts, shard.attempts == 1 ? "" : "s",
                why.c_str());
            ++stats().shardsFailed;
            outcome_.failedShards.push_back(
                static_cast<unsigned>(i));
            noteProgress(static_cast<unsigned>(i), "FAILED",
                         shard.attempts);
        }
        streamArtifacts();
    }

    // Event loop ------------------------------------------------------

    void
    pollWorkers()
    {
        std::vector<struct pollfd> fds;
        std::vector<std::size_t> slots;
        for (std::size_t i = 0; i < pool_.size(); ++i) {
            if (!pool_[i].alive)
                continue;
            fds.push_back({pool_[i].out, POLLIN, 0});
            slots.push_back(i);
        }

        const int timeout = pollTimeoutMs();
        const int ready =
            ::poll(fds.empty() ? nullptr : fds.data(),
                   static_cast<nfds_t>(fds.size()), timeout);
        if (ready < 0) {
            if (errno == EINTR)
                return; // Signal: the loop head re-checks the flag.
            throw SimError(formatMessage("poll failed: %s",
                                         std::strerror(errno)));
        }
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                handleReadable(pool_[slots[i]]);
        }
    }

    int
    pollTimeoutMs() const
    {
        const Clock::time_point now = Clock::now();
        double wait = 0.25; // Idle tick: re-check assignments.
        bool haveEvent = false;
        const auto consider = [&](double seconds) {
            if (!haveEvent || seconds < wait)
                wait = seconds;
            haveEvent = true;
        };
        for (const WorkerProc &worker : pool_) {
            if (!worker.alive || !worker.busy)
                continue;
            if (worker.hasDeadline)
                consider(secondsBetween(now, worker.deadline));
            consider(livenessSec_ -
                     secondsBetween(worker.lastHeard, now));
        }
        bool anyPending = false;
        for (const ShardState &shard : shards_) {
            if (shard.status != ShardStatus::Pending)
                continue;
            anyPending = true;
            if (shard.notBefore > now)
                consider(secondsBetween(now, shard.notBefore));
        }
        if (anyPending) {
            // A backed-off node becoming eligible is an assignment
            // opportunity; wake for it like for a shard backoff.
            for (const NodeState &node : nodes_) {
                if (!node.quarantined && node.notBefore > now)
                    consider(secondsBetween(now, node.notBefore));
            }
        }
        const double clamped = std::min(1.0, std::max(0.001, wait));
        return static_cast<int>(std::ceil(clamped * 1000.0));
    }

    void
    handleReadable(WorkerProc &worker)
    {
        // A stalled node (STFM_NETFAULT=stall) models a one-way
        // partition: its bytes are read and discarded — heartbeats
        // and results alike — so the liveness machinery sees exactly
        // the silence a real partition would produce. EOF still
        // registers (the transport process dying is observable even
        // across a partition, and ignoring POLLHUP would spin).
        const bool stalled =
            netfault_.inboundBlocked(nodes_[worker.node].spec.name);
        bool eof = false;
        char buffer[4096];
        for (;;) {
            const ssize_t n =
                ::read(worker.out, buffer, sizeof(buffer));
            if (n > 0) {
                if (!stalled) {
                    worker.decoder.feed(
                        buffer, static_cast<std::size_t>(n));
                }
                continue;
            }
            if (n == 0) {
                eof = true;
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            eof = true; // Read error: treat like a vanished worker.
            break;
        }
        if (!stalled)
            drainFrames(worker);
        if (eof && worker.alive)
            handleWorkerExit(worker);
    }

    void
    drainFrames(WorkerProc &worker)
    {
        for (;;) {
            Json message;
            std::string error;
            const FrameDecoder::Status status =
                worker.decoder.next(message, &error);
            if (status == FrameDecoder::Status::NeedMore)
                return;
            if (status == FrameDecoder::Status::Garbage) {
                handleGarbage(worker, error);
                return;
            }
            const Json *type = message.find("type");
            const std::string kind =
                type && type->isString() ? type->asString() : "";
            if (kind == "heartbeat") {
                ++stats().heartbeats;
                worker.lastHeard = Clock::now();
                continue;
            }
            if (kind == "result") {
                try {
                    completeShard(worker,
                                  shardResultFromWire(message));
                } catch (const SimError &e) {
                    handleGarbage(worker, e.what());
                    return;
                }
                continue;
            }
            handleGarbage(worker,
                          "unexpected frame type '" + kind + "'");
            return;
        }
    }

    void
    handleGarbage(WorkerProc &worker, const std::string &detail)
    {
        ++stats().protocolErrors;
        const bool wasBusy = worker.busy;
        const std::size_t shard = worker.shard;
        const std::size_t node = worker.node;
        killWorker(worker);
        chargeNode(node, "protocol garbage");
        if (wasBusy) {
            failAttempt(shard,
                        "protocol garbage on the worker stream (" +
                            detail + ")");
        }
    }

    void
    handleWorkerExit(WorkerProc &worker)
    {
        const bool wasBusy = worker.busy;
        const std::size_t shard = worker.shard;
        const std::size_t node = worker.node;
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
        closeWorker(worker);
        if (!wasBusy)
            return; // A drained worker retiring between shards.

        ++stats().crashes;
        std::string detail;
        if (WIFEXITED(status)) {
            detail = formatMessage(
                "worker exited with code %d before returning the "
                "shard",
                WEXITSTATUS(status));
        } else if (WIFSIGNALED(status) &&
                   WTERMSIG(status) == SIGKILL) {
            // Distinct from other signal deaths: nothing in the fleet
            // sends SIGKILL to a busy worker, so on a loaded node this
            // is almost always the kernel OOM killer.
            ++stats().sigkills;
            detail = formatMessage(
                "worker killed by SIGKILL on node '%s' (likely the "
                "OOM killer)",
                nodes_[node].spec.name.c_str());
        } else if (WIFSIGNALED(status)) {
            detail = formatMessage("worker killed by signal %d (%s)",
                                   WTERMSIG(status),
                                   strsignal(WTERMSIG(status)));
        } else {
            detail = "worker vanished without an exit status";
        }
        chargeNode(node, "worker died");
        failAttempt(shard, detail);
    }

    void
    enforceDeadlines()
    {
        const Clock::time_point now = Clock::now();
        for (WorkerProc &worker : pool_) {
            if (!worker.alive || !worker.busy)
                continue;
            const std::size_t shard = worker.shard;
            if (worker.hasDeadline && now >= worker.deadline) {
                ++stats().timeouts;
                killWorker(worker);
                failAttempt(
                    shard,
                    formatMessage(
                        "shard timed out after %.1fs of wall clock",
                        options_.timeoutSec));
                continue;
            }
            const double silent =
                secondsBetween(worker.lastHeard, now);
            if (silent > livenessSec_) {
                ++stats().hangs;
                const std::size_t node = worker.node;
                killWorker(worker);
                // A hang is a node symptom (partition, overload) as
                // much as a shard one; a timeout above is not — slow
                // shards are the shard's own fault.
                chargeNode(node, "worker went silent");
                failAttempt(
                    shard,
                    formatMessage(
                        "worker hung: no heartbeat for %.1fs "
                        "(liveness window %.1fs)",
                        silent, livenessSec_));
            }
        }
    }

    // Outcomes --------------------------------------------------------

    /**
     * Stream one landed outcome into the fleet rollup. Folding happens
     * the moment a shard completes (or replays from the manifest), in
     * whatever order workers finish — the report builder's merge is
     * order-independent, so <checkpoint>/report.json comes out
     * byte-identical to an after-the-fact `stfm report` over the
     * merged results.
     */
    void
    foldOutcome(std::size_t job, const RunOutcome &outcome)
    {
        const std::size_t per = plan_.jobsPerRow();
        const SchedulerEntry &sched = plan_.schedulers[job % per];
        const std::size_t row = job / per;
        report_.addOutcome(
            sched.label, sched.device,
            workloadLabel(plan_.workloads[row / plan_.spec.repeat]),
            outcome, static_cast<int>(job % per));
    }

    void
    completeShard(WorkerProc &worker, ShardResult &&result)
    {
        if (!worker.busy ||
            result.shard != static_cast<unsigned>(worker.shard)) {
            throw SimError(formatMessage(
                "result for shard %u from a worker assigned %zu",
                result.shard, worker.shard));
        }
        ShardState &shard = shards_[worker.shard];
        if (result.outcomes.size() != shard.jobs()) {
            throw SimError(formatMessage(
                "shard %u returned %zu outcomes for %zu jobs",
                result.shard, result.outcomes.size(), shard.jobs()));
        }

        Json outcomesWire = Json::array();
        for (const RunOutcome &outcome : result.outcomes)
            outcomesWire.push(toWire(outcome));
        for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
            outcome_.result.outcomes[shard.begin + i] =
                std::move(result.outcomes[i]);
            foldOutcome(shard.begin + i,
                        outcome_.result.outcomes[shard.begin + i]);
        }
        for (auto &[key, baseline] : result.alone) {
            if (alone_.find(key) != alone_.end())
                continue; // Another shard got there first.
            if (writer_.isOpen())
                writer_.appendAlone(key, toWire(baseline));
            alone_.emplace(key, std::move(baseline));
        }
        if (writer_.isOpen()) {
            writer_.appendShard(static_cast<unsigned>(worker.shard),
                                shard.attempts, outcomesWire,
                                nodes_[worker.node].spec.name);
        }

        shard.status = ShardStatus::Done;
        shard.settleWallClock();
        ++stats().shardsCompleted;
        nodes_[worker.node].consecutiveFailures = 0;
        worker.busy = false;
        noteProgress(static_cast<unsigned>(worker.shard), "done",
                     shard.attempts);
        streamArtifacts();
    }

    bool
    anyHealthyNode() const
    {
        for (const NodeState &node : nodes_) {
            if (!node.quarantined)
                return true;
        }
        return false;
    }

    void
    failAttempt(std::size_t index, const std::string &detail)
    {
        ShardState &shard = shards_[index];
        shard.status = ShardStatus::Pending;
        // A retry needs somewhere to run: when the failure that
        // brought us here also quarantined the last node, pending the
        // shard would park it forever.
        const bool stranded = !anyHealthyNode();
        if (shard.attempts >= 1 + options_.retries || stranded) {
            shard.status = ShardStatus::Failed;
            shard.settleWallClock();
            shard.error = formatMessage(
                "shard %zu failed after %u attempt%s: %s%s", index,
                shard.attempts, shard.attempts == 1 ? "" : "s",
                detail.c_str(),
                stranded ? " (no healthy nodes remain)" : "");
            ++stats().shardsFailed;
            outcome_.failedShards.push_back(
                static_cast<unsigned>(index));
            noteProgress(static_cast<unsigned>(index), "FAILED",
                         shard.attempts);
            streamArtifacts();
            return;
        }
        ++stats().retries;
        const double backoff =
            options_.backoffSec *
            static_cast<double>(
                1u << std::min(shard.attempts - 1, 16u));
        shard.notBefore =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(backoff));
        if (!options_.quiet) {
            std::fprintf(stderr,
                         "[fleet] shard %zu attempt %u failed (%s); "
                         "retrying in %.2gs\n",
                         index, shard.attempts, detail.c_str(),
                         backoff);
        }
    }

    void
    noteProgress(unsigned shard, const char *verdict, unsigned attempts)
    {
        if (options_.quiet)
            return;
        const std::uint64_t done = stats().shardsCompleted +
                                   stats().shardsResumed +
                                   stats().shardsFailed;
        const double elapsed =
            secondsBetween(startTime_, Clock::now());
        const std::uint64_t remaining =
            static_cast<std::uint64_t>(shards_.size()) - done;
        const double eta =
            stats().shardsCompleted > 0
                ? elapsed /
                      static_cast<double>(stats().shardsCompleted) *
                      static_cast<double>(remaining)
                : 0.0;
        std::fprintf(stderr,
                     "[fleet] shard %u %s (attempt %u) — %llu/%zu "
                     "done, elapsed %.1fs, eta %.1fs\n",
                     shard, verdict, attempts,
                     static_cast<unsigned long long>(done),
                     shards_.size(), elapsed, eta);
    }

    // Teardown --------------------------------------------------------

    void
    killWorker(WorkerProc &worker)
    {
        if (!worker.alive)
            return;
        ::kill(worker.pid, SIGKILL);
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
        closeWorker(worker);
    }

    void
    closeWorker(WorkerProc &worker)
    {
        if (worker.in >= 0)
            ::close(worker.in);
        if (worker.out >= 0)
            ::close(worker.out);
        worker.in = worker.out = -1;
        worker.alive = false;
        worker.busy = false;
        worker.decoder = FrameDecoder{};
    }

    void
    teardown()
    {
        // Busy workers are mid-simulation and will not notice stdin
        // EOF until their shard ends; idle ones exit on it promptly.
        for (WorkerProc &worker : pool_) {
            if (!worker.alive)
                continue;
            if (worker.busy) {
                killWorker(worker);
            } else {
                ::close(worker.in);
                worker.in = -1;
            }
        }
        const Clock::time_point grace =
            Clock::now() + std::chrono::seconds(2);
        for (WorkerProc &worker : pool_) {
            if (!worker.alive)
                continue;
            for (;;) {
                int status = 0;
                const pid_t reaped =
                    ::waitpid(worker.pid, &status, WNOHANG);
                if (reaped == worker.pid || reaped < 0)
                    break;
                if (Clock::now() >= grace) {
                    ::kill(worker.pid, SIGKILL);
                    ::waitpid(worker.pid, &status, 0);
                    break;
                }
                ::usleep(10 * 1000);
            }
            closeWorker(worker);
        }
        writer_.close();
    }

    void
    finish()
    {
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            const ShardState &shard = shards_[i];
            if (shard.status != ShardStatus::Failed)
                continue;
            for (std::size_t j = shard.begin; j < shard.end; ++j) {
                RunOutcome failed;
                failed.policyName =
                    toString(plan_.jobs[j].scheduler.kind);
                failed.failed = true;
                failed.attempts = shard.attempts;
                failed.error = shard.error;
                outcome_.result.outcomes[j] = std::move(failed);
                foldOutcome(j, outcome_.result.outcomes[j]);
            }
        }
        // An interrupted run's unfinished rows are default-constructed
        // placeholders; aggregating them would be nonsense, and the
        // result exists only so the caller can see what *did* land.
        if (!outcome_.interrupted)
            aggregateOutcomes(outcome_.result);
        writeCounters(true);
        writeReport();
    }

    /**
     * Streaming partial results: refresh the checkpoint's counters and
     * report after every terminal shard, so a sweep watched mid-flight
     * (or cut short by a dead supervisor) leaves current artifacts
     * behind. The final refresh in finish() sets `"final": true`.
     */
    void
    streamArtifacts()
    {
        writeCounters(false);
        writeReport();
    }

    void
    writeReport()
    {
        if (options_.checkpoint.empty())
            return;
        // Like the counters: best-effort artifacts beside the
        // manifest; a full disk must not turn a completed sweep into
        // an error exit.
        try {
            const Json doc = report_.toJson();
            writeJsonFile(doc, options_.checkpoint + "/report.json");
            report::writeReportHtml(
                doc, options_.checkpoint + "/report.html");
        } catch (const SimError &e) {
            std::fprintf(stderr, "[fleet] report not written: %s\n",
                         e.what());
        }
    }

    void
    writeCounters(bool final)
    {
        if (options_.checkpoint.empty())
            return;
        TelemetryRegistry registry;
        registerFleetTelemetry(registry, stats());
        Json counters = Json::object();
        for (const TelemetrySeries &series : registry.series()) {
            counters.set(series.name, static_cast<std::uint64_t>(
                                          series.sample()));
        }
        // Per-shard wall-clock records: what the sweep actually paid
        // per shard (first dispatch to terminal status, retries and
        // backoff included). Resumed shards ran in an earlier process
        // and record 0; interrupted runs leave in-flight shards as
        // "pending". These feed the same throughput tooling as the
        // perf trajectory (EXPERIMENTS.md, "Performance methodology").
        Json shard_records = Json::array();
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            const ShardState &shard = shards_[i];
            Json record = Json::object();
            record.set("shard", static_cast<std::uint64_t>(i));
            record.set("status",
                       shard.status == ShardStatus::Failed ? "failed"
                       : shard.status != ShardStatus::Done ? "pending"
                       : shard.attempts == 0                ? "resumed"
                                                            : "done");
            record.set("jobs", static_cast<std::uint64_t>(shard.jobs()));
            record.set("attempts", shard.attempts);
            record.set("wall_seconds",
                       std::round(shard.wallSeconds * 1000.0) / 1000.0);
            record.set("node", shard.node);
            shard_records.push(std::move(record));
        }
        // Node provenance: which fault domains the sweep ran across,
        // over which transports, and what state they ended in.
        Json node_records = Json::array();
        for (const NodeState &node : nodes_) {
            Json record = Json::object();
            record.set("name", node.spec.name);
            record.set("transport", node.executor->transport());
            record.set("slots",
                       static_cast<std::uint64_t>(node.spec.slots));
            record.set("dispatches", node.dispatches);
            record.set("consecutive_failures",
                       node.consecutiveFailures);
            record.set("quarantined", node.quarantined);
            node_records.push(std::move(record));
        }

        Json document = Json::object();
        document.set("schema", "stfm-fleet-counters-v1");
        document.set("final", final);
        document.set("interrupted", outcome_.interrupted);
        document.set("counters", std::move(counters));
        document.set("shards", std::move(shard_records));
        document.set("nodes", std::move(node_records));
        try {
            writeJsonFile(document, options_.checkpoint +
                                        "/fleet_counters.json");
        } catch (const SimError &e) {
            std::fprintf(stderr, "[fleet] counters not written: %s\n",
                         e.what());
        }
    }

    FleetOptions options_;
    ExperimentPlan plan_;
    Json specEcho_;
    /** Streaming fleet rollup (report/rollup.hh): folded per landed
     *  outcome, written beside the manifest at finish(). */
    report::ReportBuilder report_;
    FleetOutcome outcome_;
    std::vector<ShardState> shards_;
    std::vector<WorkerProc> pool_;
    std::vector<NodeState> nodes_;
    NetFaultState netfault_{netFaultPlanFromEnv()};
    std::map<std::string, ThreadResult> alone_;
    ManifestWriter writer_;
    unsigned maxWorkers_ = 1;
    unsigned heartbeatMs_ = 250;
    double livenessSec_ = 2.0;
    Clock::time_point startTime_{};
};

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
partitionShards(std::size_t jobs, std::size_t jobs_per_row,
                unsigned requested)
{
    std::vector<std::pair<std::size_t, std::size_t>> out;
    if (jobs == 0)
        return out;
    if (requested == 0) {
        const std::size_t per = jobs_per_row > 0 ? jobs_per_row : 1;
        out.reserve((jobs + per - 1) / per);
        for (std::size_t begin = 0; begin < jobs; begin += per)
            out.emplace_back(begin, std::min(jobs, begin + per));
        return out;
    }
    const std::size_t count =
        std::min<std::size_t>(requested, jobs);
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.emplace_back(jobs * i / count, jobs * (i + 1) / count);
    return out;
}

FleetOutcome
runShardedExperiment(const ExperimentSpec &spec,
                     const FleetOptions &options)
{
    Supervisor supervisor(spec, options);
    return supervisor.run();
}

void
registerFleetTelemetry(TelemetryRegistry &registry,
                       const FleetStats &stats)
{
    const auto probe = [](const std::uint64_t &field) {
        return [&field] { return static_cast<double>(field); };
    };
    registry.counter("fleet.shards.completed", "shards", "fleet",
                     probe(stats.shardsCompleted));
    registry.counter("fleet.shards.resumed", "shards", "fleet",
                     probe(stats.shardsResumed));
    registry.counter("fleet.shards.failed", "shards", "fleet",
                     probe(stats.shardsFailed));
    registry.counter("fleet.retries", "attempts", "fleet",
                     probe(stats.retries));
    registry.counter("fleet.timeouts", "events", "fleet",
                     probe(stats.timeouts));
    registry.counter("fleet.hangs", "events", "fleet",
                     probe(stats.hangs));
    registry.counter("fleet.crashes", "events", "fleet",
                     probe(stats.crashes));
    registry.counter("fleet.garbage", "events", "fleet",
                     probe(stats.protocolErrors));
    registry.counter("fleet.heartbeats", "frames", "fleet",
                     probe(stats.heartbeats));
    registry.counter("fleet.sigkills", "events", "fleet",
                     probe(stats.sigkills));
    registry.counter("fleet.migrations", "shards", "fleet",
                     probe(stats.migrations));
    registry.counter("fleet.launchFailures", "events", "fleet",
                     probe(stats.launchFailures));
    registry.counter("fleet.nodes.quarantined", "nodes", "fleet",
                     probe(stats.nodesQuarantined));
    registry.counter("fleet.netfaults", "events", "fleet",
                     probe(stats.netfaults));
}

} // namespace fleet
} // namespace stfm
