/**
 * @file
 * The shard-executor abstraction: how the supervisor turns "launch me
 * a worker" into a process with a frame-protocol channel.
 *
 * PR 5's supervisor fork/exec'd `stfm worker` inline; this interface
 * extracts that launch path so the same poll(2) event loop can drive
 * workers it did not start directly:
 *
 *   - LocalExecutor — fork/exec + a pipe pair, bit-identical to the
 *     PR 5 behavior (same FD_CLOEXEC discipline, same nonblocking
 *     read end, same `_exit(127)` exec-failure sentinel);
 *   - RemoteExecutor — launches the worker *through a command
 *     template* (ssh, a container runtime, or the default loopback
 *     `/bin/sh -c "exec <worker>"` used by CI so the full remote path
 *     is exercised hermetically) and speaks the existing STFM-framed
 *     protocol over the transport's stdio. No wire change: a worker
 *     cannot tell which transport delivered its stdin.
 *
 * The channel is deliberately minimal — a pid to signal and two file
 * descriptors — because the frame protocol (fleet/protocol.hh) is the
 * whole contract. Killing the channel's pid tears down the local
 * transport process; for ssh-like transports the remote worker then
 * sees EOF on stdin and exits on its own (worker.cc's clean-EOF rule).
 */

#ifndef STFM_FLEET_EXECUTOR_HH
#define STFM_FLEET_EXECUTOR_HH

#include <string>
#include <vector>

#include <sys/types.h>

namespace stfm
{
namespace fleet
{

/** A launched worker: a process handle plus its stdio channel. */
struct WorkerChannel
{
    pid_t pid = -1;
    /** Write end toward the worker's stdin (frame dispatch). */
    int in = -1;
    /** Read end from the worker's stdout (frames; O_NONBLOCK). */
    int out = -1;
};

/**
 * Launch `stfm worker` processes for one placement target. launch()
 * throws SimError only when the transport cannot even start a local
 * process (pipe/fork failure); a launch that starts but dies instantly
 * (bad binary, unreachable host, refused connection) is reported
 * through the channel as immediate EOF and classified by the
 * supervisor like any other worker death.
 */
class ShardExecutor
{
  public:
    virtual ~ShardExecutor() = default;

    virtual WorkerChannel launch() = 0;

    /** Placement target this executor launches on (provenance). */
    virtual const std::string &node() const = 0;

    /** Transport label for counters/diagnostics ("pipe", "remote"). */
    virtual const char *transport() const = 0;
};

/** Shared plumbing: pipes + fork + execvp of @p argv (PR 5's path). */
WorkerChannel launchPipedProcess(const std::vector<std::string> &argv);

/** The in-process default: fork/exec the worker argv directly. */
class LocalExecutor final : public ShardExecutor
{
  public:
    LocalExecutor(std::string node, std::vector<std::string> argv)
        : node_(std::move(node)), argv_(std::move(argv))
    {
    }

    WorkerChannel launch() override { return launchPipedProcess(argv_); }
    const std::string &node() const override { return node_; }
    const char *transport() const override { return "pipe"; }

    const std::vector<std::string> &argv() const { return argv_; }

  private:
    std::string node_;
    std::vector<std::string> argv_;
};

/**
 * Launch through a node's command template (docs/FLEET.md grammar):
 *
 *   - an element that is exactly `{worker}` is spliced into the
 *     worker argv, element for element (container runtimes);
 *   - `{host}` inside any element is replaced by the node name;
 *   - `{cmd}` inside any element is replaced by the shell-quoted
 *     worker command, one string (shell wrappers);
 *   - a template with neither `{worker}` nor `{cmd}` gets the quoted
 *     command appended as one final argument (the ssh idiom:
 *     `ssh {host} '<cmd>'`).
 *
 * An empty template means the loopback launcher
 * `/bin/sh -c "exec {cmd}"`: the worker runs on this machine but
 * through the full remote path — template expansion, a transport
 * process, stdio forwarding — so CI covers it without a network.
 */
class RemoteExecutor final : public ShardExecutor
{
  public:
    RemoteExecutor(std::string node,
                   const std::vector<std::string> &launch_template,
                   const std::vector<std::string> &worker_argv);

    WorkerChannel launch() override { return launchPipedProcess(argv_); }
    const std::string &node() const override { return node_; }
    const char *transport() const override { return "remote"; }

    /** The fully expanded transport argv (tests pin the grammar). */
    const std::vector<std::string> &argv() const { return argv_; }

  private:
    std::string node_;
    std::vector<std::string> argv_;
};

/** POSIX single-quote @p arg for embedding in a shell command. */
std::string shellQuote(const std::string &arg);

/** Expand a launch template (see RemoteExecutor) against a host. */
std::vector<std::string>
expandLaunchTemplate(const std::vector<std::string> &launch_template,
                     const std::string &host,
                     const std::vector<std::string> &worker_argv);

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_EXECUTOR_HH
