/**
 * @file
 * Deterministic worker fault injection.
 *
 * The robustness story of the fleet tier is proven, not asserted: the
 * hook is compiled in always and armed only through the STFM_FAULT
 * environment variable, so integration tests (and curious users) can
 * make a worker misbehave at an exact, reproducible point:
 *
 *   STFM_FAULT=crash@K     exit with a nonzero code at shard K
 *   STFM_FAULT=abort@K     raise SIGABRT at shard K (signal class)
 *   STFM_FAULT=hang@K      go silent forever at shard K (no result,
 *                          no heartbeats -> liveness kill)
 *   STFM_FAULT=garbage@K   write junk bytes on the protocol stream,
 *                          then exit 0 (protocol-garbage class)
 *   STFM_FAULT=sigkill@K   SIGKILL own process at shard K — the
 *                          signature of the kernel OOM killer, which
 *                          the supervisor classifies distinctly
 *                          (fleet.sigkills)
 *   STFM_FAULT=slow@K      stall 8 heartbeat periods before running
 *                          shard K while heartbeats keep flowing (must
 *                          NOT be classified as a hang)
 *   STFM_FAULT=simfail@K   throw SimError from the first run attempt
 *                          of shard K (exercises the in-worker
 *                          reseeded-retry machinery, spec "attempts")
 *
 * Faults arm on process-level attempt 1 only: a supervisor retry of
 * the same shard runs clean. That is what makes the retry/resume
 * determinism tests meaningful — the replay must produce the result
 * the faultless run would have.
 */

#ifndef STFM_FLEET_FAULT_HH
#define STFM_FLEET_FAULT_HH

#include <string>

namespace stfm
{
namespace fleet
{

struct FaultPlan
{
    enum class Kind
    {
        None,
        Crash,
        Abort,
        Hang,
        Garbage,
        Sigkill,
        Slow,
        SimFail,
    };

    Kind kind = Kind::None;
    unsigned shard = 0;

    bool
    armedFor(unsigned shard_index, unsigned attempt) const
    {
        return kind != Kind::None && shard == shard_index &&
               attempt == 1;
    }
};

/** Exit code of a Crash fault (recognizable in diagnostics). */
inline constexpr int kCrashExitCode = 42;

/** Parse "kind@shard". @throws SimError on a malformed value. */
FaultPlan parseFaultPlan(const std::string &text);

/** Parse STFM_FAULT from the environment; None when unset/empty. */
FaultPlan faultPlanFromEnv();

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_FAULT_HH
