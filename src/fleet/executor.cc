#include "fleet/executor.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace stfm
{
namespace fleet
{

WorkerChannel
launchPipedProcess(const std::vector<std::string> &argv)
{
    STFM_ASSERT(!argv.empty(), "worker launch argv is empty");
    int inPipe[2];
    int outPipe[2];
    if (::pipe(inPipe) != 0 || ::pipe(outPipe) != 0) {
        throw SimError(formatMessage("cannot create worker pipes: %s",
                                     std::strerror(errno)));
    }
    // Parent-held ends must not leak into later workers' execs.
    ::fcntl(inPipe[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(outPipe[0], F_SETFD, FD_CLOEXEC);
    const pid_t pid = ::fork();
    if (pid < 0) {
        const int saved = errno;
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        throw SimError(formatMessage("cannot fork worker: %s",
                                     std::strerror(saved)));
    }
    if (pid == 0) {
        ::dup2(inPipe[0], STDIN_FILENO);
        ::dup2(outPipe[1], STDOUT_FILENO);
        ::close(inPipe[0]);
        ::close(outPipe[1]);
        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &arg : argv)
            args.push_back(const_cast<char *>(arg.c_str()));
        args.push_back(nullptr);
        ::execvp(args[0], args.data());
        ::_exit(127); // The exit path classifies this as a crash.
    }
    ::close(inPipe[0]);
    ::close(outPipe[1]);
    ::fcntl(outPipe[0], F_SETFL, O_NONBLOCK);

    WorkerChannel channel;
    channel.pid = pid;
    channel.in = inPipe[1];
    channel.out = outPipe[0];
    return channel;
}

std::string
shellQuote(const std::string &arg)
{
    std::string quoted = "'";
    for (const char c : arg) {
        if (c == '\'')
            quoted += "'\\''";
        else
            quoted += c;
    }
    quoted += "'";
    return quoted;
}

namespace
{

std::string
replaceAll(std::string text, const std::string &token,
           const std::string &value)
{
    std::size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
        text.replace(pos, token.size(), value);
        pos += value.size();
    }
    return text;
}

std::string
quotedCommand(const std::vector<std::string> &worker_argv)
{
    std::string command;
    for (const std::string &arg : worker_argv) {
        if (!command.empty())
            command += ' ';
        command += shellQuote(arg);
    }
    return command;
}

} // namespace

std::vector<std::string>
expandLaunchTemplate(const std::vector<std::string> &launch_template,
                     const std::string &host,
                     const std::vector<std::string> &worker_argv)
{
    STFM_ASSERT(!worker_argv.empty(), "worker argv is empty");
    const std::string command = quotedCommand(worker_argv);
    std::vector<std::string> argv;
    argv.reserve(launch_template.size() + worker_argv.size());
    bool placed = false;
    for (const std::string &element : launch_template) {
        if (element == "{worker}") {
            argv.insert(argv.end(), worker_argv.begin(),
                        worker_argv.end());
            placed = true;
            continue;
        }
        std::string expanded = replaceAll(element, "{host}", host);
        if (expanded.find("{cmd}") != std::string::npos) {
            expanded = replaceAll(expanded, "{cmd}", command);
            placed = true;
        }
        argv.push_back(std::move(expanded));
    }
    if (!placed)
        argv.push_back(command); // The ssh idiom: command as one arg.
    if (argv.empty() || argv[0].empty()) {
        throw SimError(formatMessage(
            "node '%s': launch template expands to an empty command",
            host.c_str()));
    }
    return argv;
}

RemoteExecutor::RemoteExecutor(
    std::string node, const std::vector<std::string> &launch_template,
    const std::vector<std::string> &worker_argv)
    : node_(std::move(node))
{
    static const std::vector<std::string> loopback = {
        "/bin/sh", "-c", "exec {cmd}"};
    argv_ = expandLaunchTemplate(
        launch_template.empty() ? loopback : launch_template, node_,
        worker_argv);
}

} // namespace fleet
} // namespace stfm
