/**
 * @file
 * The `stfm worker` subcommand: a shard executor on stdin/stdout.
 *
 * A worker is a loop: read one work-unit frame from stdin, execute the
 * named job range of the spec's grid in-process (the same
 * planExperiment/ExperimentRunner path runExperiment uses, with the
 * supervisor's alone-baseline cache pre-seeded), write one
 * shard-result frame to stdout, repeat until EOF. While a shard runs,
 * a background thread emits heartbeat frames so the supervisor can
 * distinguish "slow" from "hung".
 *
 * The worker is deliberately thin: everything that decides *what* to
 * run lives in the spec echo, and everything that decides *what to do
 * about failures* lives in the supervisor. Simulation-level failures
 * (SimError/CheckFailure) never escape a shard — they are FAILED
 * outcome rows, exactly as in-process runMany reports them; only
 * process-level calamities (crash, hang, a corrupted stream) are the
 * supervisor's business. STFM_FAULT (fleet/fault.hh) manufactures
 * those calamities on demand.
 */

#ifndef STFM_FLEET_WORKER_HH
#define STFM_FLEET_WORKER_HH

#include "fleet/wire.hh"

namespace stfm
{
namespace fleet
{

/**
 * Run the worker protocol loop over @p in_fd / @p out_fd until EOF.
 * @return the process exit code (0 = clean end of stream).
 */
int workerLoop(int in_fd, int out_fd);

/** Entry point of `stfm worker` (stdin/stdout). */
int workerMain();

/**
 * Execute one work unit in-process (no protocol, no heartbeats): the
 * exact computation a worker performs for a shard. Exposed so tests
 * can pin worker-vs-runExperiment equivalence without subprocesses.
 * @throws SimError on an invalid unit (bad spec, bad job range).
 */
ShardResult executeWorkUnit(const WorkUnit &unit);

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_WORKER_HH
