/**
 * @file
 * The fleet node registry: which machines can run shards, with how
 * many concurrent workers, launched how.
 *
 * Two sources, composable (file first, then flags):
 *
 *   --nodes nodes.json      a checked-in registry (stfm-nodes-v1)
 *   --node host[:slots]     one ad-hoc node per flag (loopback
 *                           launcher unless the registry names one)
 *
 * Registry file format (docs/FLEET.md):
 *
 *   {"schema": "stfm-nodes-v1",
 *    "nodes": [
 *      {"name": "alpha", "slots": 4},
 *      {"name": "beta",  "slots": 2,
 *       "launch": ["ssh", "-oBatchMode=yes", "{host}"]}
 *    ]}
 *
 * `launch` is the RemoteExecutor command template (executor.hh
 * grammar: `{host}`, `{cmd}`, `{worker}`); omitted means the loopback
 * `/bin/sh -c "exec {cmd}"` launcher. Node names are the fault-domain
 * identity: health state, quarantine, backoff, STFM_NETFAULT
 * targeting, and manifest/counter provenance all key on them, so they
 * must be unique.
 *
 * When no registry is given the supervisor runs PR 5's single
 * implicit "local" fault domain: LocalExecutor, no node-level
 * quarantine (the shard retry budget is the only failure policy —
 * single-machine sweeps keep their exact pre-executor semantics).
 */

#ifndef STFM_FLEET_NODES_HH
#define STFM_FLEET_NODES_HH

#include <string>
#include <vector>

namespace stfm
{

class Json;

namespace fleet
{

inline constexpr const char *kNodesSchema = "stfm-nodes-v1";

/** The name reserved for the implicit single-machine fault domain. */
inline constexpr const char *kLocalNodeName = "local";

/** One placement target (fault domain). */
struct NodeSpec
{
    std::string name;
    /** Concurrent workers this node may run. */
    unsigned slots = 1;
    /** Launch template (executor.hh); empty = loopback sh. */
    std::vector<std::string> launch;
};

/** Parse one `--node host[:slots]` flag. @throws SimError. */
NodeSpec parseNodeFlag(const std::string &text);

/** Parse a stfm-nodes-v1 document. @throws SimError. */
std::vector<NodeSpec> nodesFromJson(const Json &json);

/** Load and parse a registry file. @throws SimError. */
std::vector<NodeSpec> loadNodesFile(const std::string &path);

/**
 * Check a combined registry: at least one node, unique non-empty
 * names, nonzero slots. @throws SimError naming the offender.
 */
void validateNodes(const std::vector<NodeSpec> &nodes);

} // namespace fleet
} // namespace stfm

#endif // STFM_FLEET_NODES_HH
