#include "fleet/protocol.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/logging.hh"

namespace stfm
{
namespace fleet
{

namespace
{

/** Parse exactly 8 lowercase/uppercase hex digits; npos on garbage. */
std::size_t
parseHexLength(const char *digits)
{
    std::size_t value = 0;
    for (int i = 0; i < 8; ++i) {
        const char c = digits[i];
        int nibble;
        if (c >= '0' && c <= '9')
            nibble = c - '0';
        else if (c >= 'a' && c <= 'f')
            nibble = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            nibble = c - 'A' + 10;
        else
            return static_cast<std::size_t>(-1);
        value = (value << 4) | static_cast<std::size_t>(nibble);
    }
    return value;
}

} // namespace

std::string
encodeFrame(const Json &message)
{
    const std::string payload = message.dump();
    STFM_ASSERT(payload.size() <= kMaxFrameBytes,
                "fleet frame payload too large: %zu bytes",
                payload.size());
    char header[kFrameHeaderBytes + 1];
    std::memcpy(header, kFrameMagic, sizeof(kFrameMagic));
    std::snprintf(header + sizeof(kFrameMagic), 9, "%08zx",
                  payload.size());
    return std::string(header, kFrameHeaderBytes) + payload;
}

void
FrameDecoder::feed(const char *data, std::size_t size)
{
    if (!dead_)
        buffer_.append(data, size);
}

FrameDecoder::Status
FrameDecoder::next(Json &out, std::string *error)
{
    if (dead_) {
        if (error)
            *error = deadReason_;
        return Status::Garbage;
    }
    if (buffer_.size() < kFrameHeaderBytes)
        return Status::NeedMore;

    const auto die = [&](std::string reason) {
        dead_ = true;
        deadReason_ = std::move(reason);
        if (error)
            *error = deadReason_;
        return Status::Garbage;
    };

    if (std::memcmp(buffer_.data(), kFrameMagic, sizeof(kFrameMagic)) !=
        0) {
        return die(formatMessage(
            "bad frame magic (first bytes: %.4s)", buffer_.c_str()));
    }
    const std::size_t length =
        parseHexLength(buffer_.data() + sizeof(kFrameMagic));
    if (length == static_cast<std::size_t>(-1))
        return die("unparsable frame length field");
    if (length > kMaxFrameBytes) {
        return die(
            formatMessage("frame length %zu exceeds limit", length));
    }
    if (buffer_.size() < kFrameHeaderBytes + length)
        return Status::NeedMore;

    const std::string payload =
        buffer_.substr(kFrameHeaderBytes, length);
    buffer_.erase(0, kFrameHeaderBytes + length);
    try {
        out = Json::parse(payload);
    } catch (const SimError &e) {
        return die(formatMessage("frame payload is not JSON: %s",
                                 e.what()));
    }
    return Status::Frame;
}

bool
writeFrame(int fd, const Json &message)
{
    const std::string frame = encodeFrame(message);
    std::size_t done = 0;
    while (done < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + done, frame.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readFrame(int fd, Json &out, std::string *error)
{
    if (error)
        error->clear();
    FrameDecoder decoder;
    char chunk[4096];
    for (;;) {
        switch (decoder.next(out, error)) {
        case FrameDecoder::Status::Frame:
            return true;
        case FrameDecoder::Status::Garbage:
            return false;
        case FrameDecoder::Status::NeedMore:
            break;
        }
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error) {
                *error = formatMessage("read failed: %s",
                                       std::strerror(errno));
            }
            return false;
        }
        if (n == 0) {
            if (!decoder.idle() && error)
                *error = "stream ended mid-frame";
            return false;
        }
        decoder.feed(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace fleet
} // namespace stfm
