#include "fleet/worker.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include <csignal>
#include <unistd.h>

#include "common/logging.hh"
#include "fleet/fault.hh"
#include "fleet/protocol.hh"
#include "harness/experiment.hh"
#include "harness/spec.hh"

namespace stfm
{
namespace fleet
{

namespace
{

/**
 * Emits one heartbeat frame per period while a shard runs. Frame
 * writes share @p write_mutex with the result write so a heartbeat
 * can never interleave mid-frame with a result.
 */
class HeartbeatThread
{
  public:
    HeartbeatThread(int fd, std::mutex &write_mutex, unsigned shard,
                    unsigned period_ms)
        : fd_(fd), writeMutex_(write_mutex), shard_(shard),
          periodMs_(period_ms > 0 ? period_ms : 250)
    {
        thread_ = std::thread([this] { loop(); });
    }

    ~HeartbeatThread() { stop(); }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> guard(mutex_);
            if (stopped_)
                return;
            stopped_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            cv_.wait_for(lock,
                         std::chrono::milliseconds(periodMs_),
                         [this] { return stopped_; });
            if (stopped_)
                return;
            lock.unlock();
            {
                std::lock_guard<std::mutex> guard(writeMutex_);
                // A failed write means the supervisor is gone; the
                // result write will notice and end the worker.
                (void)writeFrame(fd_, heartbeatMessage(shard_));
            }
            lock.lock();
        }
    }

    int fd_;
    std::mutex &writeMutex_;
    unsigned shard_;
    unsigned periodMs_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopped_ = false;
};

/** Act out the process-level faults (never returns). */
[[noreturn]] void
performProcessFault(FaultPlan::Kind kind, int out_fd)
{
    switch (kind) {
    case FaultPlan::Kind::Crash:
        std::_Exit(kCrashExitCode);
    case FaultPlan::Kind::Abort:
        std::abort();
    case FaultPlan::Kind::Hang:
        // Silent forever: no result, no heartbeats. The supervisor's
        // liveness deadline is the only way out.
        for (;;)
            ::pause();
    case FaultPlan::Kind::Garbage: {
        const char junk[] =
            "not a frame: deadbeef deadbeef deadbeef deadbeef\n";
        (void)!::write(out_fd, junk, sizeof(junk) - 1);
        std::_Exit(0);
    }
    case FaultPlan::Kind::Sigkill:
        // Die exactly the way the OOM killer kills: uncatchable, no
        // exit handlers, no unwinding.
        ::kill(::getpid(), SIGKILL);
        for (;;) // The signal cannot be outrun, but be explicit.
            ::pause();
    default:
        STFM_PANIC("not a process-level fault kind");
    }
}

} // namespace

ShardResult
executeWorkUnit(const WorkUnit &unit)
{
    const ExperimentSpec spec = specFromJson(unit.spec);
    const ExperimentPlan plan = planExperiment(spec);
    if (unit.beginJob > unit.endJob ||
        unit.endJob > plan.jobs.size()) {
        throw SimError(formatMessage(
            "work unit job range [%zu, %zu) exceeds the spec's grid "
            "(%zu jobs)",
            unit.beginJob, unit.endJob, plan.jobs.size()));
    }

    ExperimentRunner runner(plan.base);
    configureRunner(runner, plan);
    for (const auto &[key, baseline] : unit.alone)
        runner.seedAloneBaseline(key, baseline);

    const FaultPlan fault = faultPlanFromEnv();
    if (fault.armedFor(unit.shard, unit.attempt) &&
        fault.kind == FaultPlan::Kind::SimFail) {
        // Fail every first run attempt in the shard: the runner's
        // reseeded-retry machinery (spec "attempts") must recover it
        // with the documented salt rule, base + attempt - 1.
        runner.setAttemptHook([](const Workload &, unsigned attempt) {
            if (attempt == 1) {
                throw SimError(
                    "injected simulation fault (STFM_FAULT=simfail)");
            }
        });
    }

    const std::vector<RunJob> slice(
        plan.jobs.begin() +
            static_cast<std::ptrdiff_t>(unit.beginJob),
        plan.jobs.begin() + static_cast<std::ptrdiff_t>(unit.endJob));
    // Sequential on purpose: worker processes are the fleet's
    // parallelism unit, and one thread per worker keeps a shard's
    // CPU footprint predictable for the supervisor's sizing.
    ShardResult result;
    result.shard = unit.shard;
    result.outcomes = runner.runMany(slice, 1);
    for (const auto &[key, baseline] : runner.aloneSnapshot()) {
        if (unit.alone.find(key) == unit.alone.end())
            result.alone[key] = baseline;
    }
    return result;
}

int
workerLoop(int in_fd, int out_fd)
{
    FaultPlan fault;
    try {
        fault = faultPlanFromEnv();
    } catch (const SimError &e) {
        std::fprintf(stderr, "stfm worker: %s\n", e.what());
        return 64;
    }

    std::mutex write_mutex;
    for (;;) {
        Json message;
        std::string error;
        if (!readFrame(in_fd, message, &error)) {
            if (error.empty())
                return 0; // Clean EOF: the supervisor is done with us.
            std::fprintf(stderr, "stfm worker: bad input stream: %s\n",
                         error.c_str());
            return 65;
        }

        WorkUnit unit;
        try {
            unit = workUnitFromWire(message);
        } catch (const SimError &e) {
            std::fprintf(stderr, "stfm worker: bad work unit: %s\n",
                         e.what());
            return 65;
        }

        if (fault.armedFor(unit.shard, unit.attempt)) {
            switch (fault.kind) {
            case FaultPlan::Kind::Crash:
            case FaultPlan::Kind::Abort:
            case FaultPlan::Kind::Hang:
            case FaultPlan::Kind::Garbage:
            case FaultPlan::Kind::Sigkill:
                performProcessFault(fault.kind, out_fd);
            default:
                break; // Slow/SimFail act inside the shard execution.
            }
        }

        HeartbeatThread heartbeat(out_fd, write_mutex, unit.shard,
                                  unit.heartbeatMs);

        if (fault.armedFor(unit.shard, unit.attempt) &&
            fault.kind == FaultPlan::Kind::Slow) {
            // Stall well past the liveness window while heartbeats
            // keep flowing: the supervisor must NOT call this a hang.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(8 * unit.heartbeatMs));
        }

        ShardResult result;
        try {
            result = executeWorkUnit(unit);
        } catch (const SimError &e) {
            heartbeat.stop();
            std::fprintf(stderr,
                         "stfm worker: shard %u unit rejected: %s\n",
                         unit.shard, e.what());
            return 66;
        }
        heartbeat.stop();

        std::lock_guard<std::mutex> guard(write_mutex);
        if (!writeFrame(out_fd, toWire(result)))
            return 67; // Supervisor went away mid-result.
    }
}

int
workerMain()
{
    // An orphaned worker must die on its own terms (result write
    // failure), not from an async SIGPIPE mid-simulation.
    std::signal(SIGPIPE, SIG_IGN);
    return workerLoop(STDIN_FILENO, STDOUT_FILENO);
}

} // namespace fleet
} // namespace stfm
