/**
 * @file
 * The DRAM scheduling-policy interface.
 *
 * The controller implements the two-level structure from Section 2.3 of
 * the paper: per-bank schedulers each select the highest-priority *ready*
 * command for their bank, and the across-bank channel scheduler selects
 * the highest-priority command among those. Readiness (timing
 * constraints, bus conflicts) is the controller's business; policies
 * only define a priority order over ready (request, command) candidates
 * and observe scheduling events to maintain their internal state.
 *
 * One policy instance serves all channels of a memory system, so
 * thread-level state (slowdowns, virtual finish times) is naturally
 * global while per-bank state is indexed by global bank number.
 */

#ifndef STFM_SCHED_POLICY_HH
#define STFM_SCHED_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/timing.hh"
#include "mem/occupancy.hh"
#include "mem/request.hh"
#include "obs/taps.hh"

namespace stfm
{

class TelemetryRegistry;

/** Read-only view of the system state passed to policy hooks. */
struct SchedContext
{
    Cycles cpuNow = 0;
    DramCycles dramNow = 0;
    /** Channel whose scheduler is consulting the policy. */
    ChannelId channel = 0;
    unsigned numThreads = 0;
    unsigned banksPerChannel = 0;
    /** CPU cycles per DRAM cycle, derived from the configured clock
     *  pair (baseline 4 GHz / DDR2-800 = 10). */
    Cycles cpuPerDram = kBaselineCoreMHz / kBaselineDramMHz;
    const DramTiming *timing = nullptr;
    const ThreadBankOccupancy *occupancy = nullptr;
    /**
     * Cumulative per-thread memory stall cycles (the Tshared counters
     * the cores communicate to the controller). May be null in unit
     * tests that exercise policies without cores.
     */
    const std::vector<Cycles> *stallCycles = nullptr;

    /** Global bank number of @p b within the consulting channel. */
    unsigned globalBank(BankId b) const
    {
        return channel * banksPerChannel + b;
    }
};

/** Notification for a non-column (activate/precharge) command issue. */
struct RowIssueEvent
{
    const Request *req = nullptr; ///< Request the command was issued for.
    DramCommand cmd = DramCommand::Activate;
    BankId bank = 0;
};

/** Notification for a column (read/write) command issue. */
struct ColumnIssueEvent
{
    const Request *req = nullptr;
    /** Row-buffer category the request experienced end to end. */
    RowBufferState serviceState = RowBufferState::Hit;
    /**
     * Bank service latency of the request in DRAM cycles, including any
     * precharge/activate it needed (tCL / tRCD+tCL / tRP+tRCD+tCL).
     */
    DramCycles bankLatency = 0;
    /** DRAM cycle at which the request's data burst leaves the bus. */
    DramCycles busBusyUntil = 0;
    /**
     * Bitmask of threads that currently have at least one waiting
     * column-ready (row-hit) read or write in this channel. Used for
     * STFM's DRAM-bus interference term.
     */
    std::uint32_t readyColumnThreads = 0;
    /**
     * Bitmask of threads that had a *ready* command to the same bank
     * this cycle (it lost arbitration to this request). These are the
     * threads STFM charges bank interference to — a thread whose
     * commands were not ready (e.g. queued behind its own accesses)
     * would not have been serviced any sooner running alone.
     */
    std::uint32_t readyBankThreads = 0;
    /**
     * True if at least one older request wanting a row command to the
     * same bank was bypassed by this column access (FR-FCFS+Cap input).
     */
    bool bypassedOlderRowAccess = false;
};

/** Abstract scheduling policy. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Human-readable policy name (used in reports). */
    virtual std::string name() const = 0;

    /**
     * Called once per DRAM cycle for the whole memory system, before any
     * channel makes a scheduling decision. STFM uses this to recompute
     * slowdowns and the unfairness mode from the previous cycle's state.
     */
    virtual void beginCycle(const SchedContext &) {}

    /**
     * True when beginCycle() performs per-cycle accounting whose result
     * depends on being invoked every DRAM cycle (STFM's interference
     * integration). When false (the default no-op beginCycle), the
     * simulation loop may fast-forward the DRAM clock across quiescent
     * cycles without calling beginCycle for each one.
     */
    virtual bool perCycleAccounting() const { return false; }

    /**
     * True when higherPriority()'s verdict for a fixed candidate pair
     * can change from one DRAM cycle to the next with no intervening
     * scheduler event (enqueue, command issue, completion) — e.g.
     * NFQ's wait-threshold boost expiring or STFM's per-cycle slowdown
     * trip. The controller's quiet-window memo consults this where a
     * priority comparison (row protection) suppressed an issue: a
     * time-varying ordering caps the window at the next cycle, an
     * event-driven ordering cannot flip the outcome until an event
     * invalidates the memo anyway.
     */
    virtual bool timeVaryingPriority() const { return false; }

    /**
     * Strict priority order: true iff @p a must be scheduled in
     * preference to @p b. Both candidates are ready. Must be a strict
     * weak ordering for any fixed cycle.
     */
    virtual bool higherPriority(const Candidate &a, const Candidate &b,
                                const SchedContext &ctx) const = 0;

    /** An activate/precharge command was issued. */
    virtual void onRowCommand(const RowIssueEvent &, const SchedContext &)
    {}

    /** A read/write command was issued (the request enters service). */
    virtual void onColumnCommand(const ColumnIssueEvent &,
                                 const SchedContext &)
    {}

    /** A request's data burst finished. */
    virtual void onRequestCompleted(const Request &, const SchedContext &)
    {}

    /**
     * A core failed to enqueue a blocking read this CPU cycle because
     * the channel's request buffer was full. @p foreign_fraction is the
     * share of buffered reads belonging to other threads — the degree
     * to which the blockage is interference rather than self-inflicted.
     */
    virtual void onEnqueueBlocked(ThreadId, double foreign_fraction,
                                  const SchedContext &)
    {
        (void)foreign_fraction;
    }

    /**
     * Register this policy's observable state (slowdown estimates,
     * mode flags, decision counters) into the telemetry registry.
     * Called once at system construction when observability is on;
     * the default policy exposes nothing.
     */
    virtual void registerTelemetry(TelemetryRegistry &) {}

    /**
     * Attach the fairness-mode span tap (trace exporter). Null by
     * default and only ever consulted on mode *transitions*, so the
     * disabled configuration costs nothing on the decision path.
     */
    void setFairnessTap(FairnessModeTap *tap) { fairnessTap_ = tap; }

  protected:
    FairnessModeTap *fairnessTap_ = nullptr;
};

/** Which scheduling algorithm to instantiate. */
enum class PolicyKind
{
    FrFcfs,    ///< Baseline throughput-oriented FR-FCFS.
    Fcfs,      ///< Plain first-come first-serve over ready commands.
    FrFcfsCap, ///< FR-FCFS with a cap on column-over-row reordering.
    Nfq,       ///< Network-fair-queueing (Nesbit et al. FQ-VFTF).
    Stfm,      ///< The paper's stall-time fair memory scheduler.
};

const char *toString(PolicyKind kind);

/** Policy parameters (union of all algorithms' knobs). */
struct SchedulerConfig
{
    PolicyKind kind = PolicyKind::FrFcfs;

    // --- STFM ---
    /** Maximum tolerable unfairness threshold (paper: 1.10). */
    double alpha = 1.10;
    /** Register-reset interval in CPU cycles (paper: 2^24). */
    Cycles intervalLength = 1ULL << 24;
    /** Bank-parallelism scaling factor (paper: 1/2). */
    double gamma = 0.5;
    /** Store slowdowns in the 8-bit fixed-point register format. */
    bool quantizeSlowdowns = true;
    /** Include the paper's per-event DRAM-bus interference term (tbus
     *  charged to ready-column losers). Off by default: the per-cycle
     *  estimator already attributes bus-occupancy delay, so the event
     *  charge double-counts (see bench/ablation_stfm). */
    bool busInterference = false;
    /** Use the request-level Tinterference estimator (ablation; the
     *  default per-cycle estimator is more robust under saturation). */
    bool requestLevelEstimator = false;
    /** Per-thread weights (empty = all 1). */
    std::vector<double> weights;

    // --- FR-FCFS+Cap ---
    /** Younger column accesses allowed past an older row access. */
    unsigned cap = 4;

    // --- NFQ ---
    /** Per-thread bandwidth shares (empty = equal). */
    std::vector<double> shares;
    /**
     * Priority-inversion-prevention threshold in DRAM cycles; 0 means
     * "use tRAS" (the value used in the paper and in Nesbit et al.).
     */
    DramCycles inversionThreshold = 0;
};

/**
 * Instantiate a policy. @p num_threads sizes the per-thread state,
 * @p total_banks the per-bank state (banks summed over channels).
 */
std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const SchedulerConfig &config, unsigned num_threads,
                     unsigned total_banks);

} // namespace stfm

#endif // STFM_SCHED_POLICY_HH
