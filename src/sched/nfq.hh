/**
 * @file
 * Network-fair-queueing memory scheduler (Nesbit et al., MICRO-39),
 * the FQ-VFTF variant the paper compares against in Section 4.
 *
 * Each thread maintains a virtual finish time (a "virtual deadline")
 * per bank. When a request of thread i is serviced in bank b, the
 * thread's deadline in that bank advances by the request's access
 * latency divided by the thread's bandwidth share (equal shares: times
 * the number of threads). Ready commands are prioritized earliest-
 * deadline-first, with a first-ready (row-hit-first) rule on top,
 * limited by the priority-inversion-prevention threshold (tRAS): a
 * younger column access may not bypass an older row access that has
 * already waited longer than the threshold.
 *
 * Deadlines deliberately do NOT synchronize with real time while a
 * thread is idle — that is the source of the idleness problem the
 * paper analyzes (Figure 3), and reproducing it faithfully matters.
 */

#ifndef STFM_SCHED_NFQ_HH
#define STFM_SCHED_NFQ_HH

#include <vector>

#include "sched/policy.hh"

namespace stfm
{

class NfqPolicy : public SchedulingPolicy
{
  public:
    /**
     * @param shares    Per-thread bandwidth shares; empty = equal.
     *                  Shares are normalized internally.
     * @param threshold Priority-inversion-prevention threshold in DRAM
     *                  cycles; 0 = use tRAS from the context's timing.
     */
    NfqPolicy(unsigned num_threads, unsigned total_banks,
              std::vector<double> shares, DramCycles threshold);

    std::string name() const override { return "NFQ"; }

    bool higherPriority(const Candidate &a, const Candidate &b,
                        const SchedContext &ctx) const override;

    /** The first-ready boost expires as a row access's wait crosses
     *  the threshold, so the ordering shifts with the clock alone. */
    bool timeVaryingPriority() const override { return true; }

    void onColumnCommand(const ColumnIssueEvent &ev,
                         const SchedContext &ctx) override;

    /** Virtual finish time of (thread, global bank), for tests. */
    double virtualFinishTime(ThreadId t, unsigned global_bank) const
    {
        return vft_[idx(t, global_bank)];
    }

  private:
    std::size_t idx(ThreadId t, unsigned global_bank) const
    {
        return static_cast<std::size_t>(t) * banks_ + global_bank;
    }

    DramCycles threshold(const SchedContext &ctx) const;

    unsigned threads_;
    unsigned banks_;
    /** Normalized so that an equal-share thread has factor numThreads. */
    std::vector<double> latencyFactor_;
    std::vector<double> vft_;
    DramCycles threshold_;
};

} // namespace stfm

#endif // STFM_SCHED_NFQ_HH
