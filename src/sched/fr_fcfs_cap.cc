#include "sched/fr_fcfs_cap.hh"

#include "sched/fr_fcfs.hh"

namespace stfm
{

FrFcfsCapPolicy::FrFcfsCapPolicy(unsigned cap, unsigned total_banks)
    : cap_(cap), bypass_(total_banks, 0)
{}

bool
FrFcfsCapPolicy::higherPriority(const Candidate &a, const Candidate &b,
                                const SchedContext &ctx) const
{
    const unsigned bank_a = ctx.globalBank(a.req->coords.bank);
    const unsigned bank_b = ctx.globalBank(b.req->coords.bank);
    // The cap is a per-bank property: once a bank has burned its bypass
    // budget, requests inside it are ordered FCFS. Across banks the
    // baseline rule applies (row accesses in other banks do not block).
    if (bank_a == bank_b && bypass_[bank_a] >= cap_)
        return a.req->seq < b.req->seq;
    return FrFcfsPolicy::frFcfsBefore(a, b);
}

void
FrFcfsCapPolicy::onRowCommand(const RowIssueEvent &ev,
                              const SchedContext &ctx)
{
    // A row access was finally serviced in this bank; the reordering
    // budget resets.
    if (ev.cmd == DramCommand::Activate)
        bypass_[ctx.globalBank(ev.bank)] = 0;
}

void
FrFcfsCapPolicy::onColumnCommand(const ColumnIssueEvent &ev,
                                 const SchedContext &ctx)
{
    if (ev.bypassedOlderRowAccess)
        ++bypass_[ctx.globalBank(ev.req->coords.bank)];
}

} // namespace stfm
