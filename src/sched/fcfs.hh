/**
 * @file
 * FCFS: plain first-come-first-serve over ready DRAM commands
 * (Section 4 of the paper). Ignores row-buffer state entirely, which
 * removes the locality-exploitation unfairness of FR-FCFS but degrades
 * DRAM throughput and still favors memory-intensive threads.
 */

#ifndef STFM_SCHED_FCFS_HH
#define STFM_SCHED_FCFS_HH

#include "sched/policy.hh"

namespace stfm
{

class FcfsPolicy : public SchedulingPolicy
{
  public:
    std::string name() const override { return "FCFS"; }

    bool
    higherPriority(const Candidate &a, const Candidate &b,
                   const SchedContext &) const override
    {
        return a.req->seq < b.req->seq;
    }
};

} // namespace stfm

#endif // STFM_SCHED_FCFS_HH
