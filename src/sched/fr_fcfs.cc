#include "sched/fr_fcfs.hh"

namespace stfm
{

bool
FrFcfsPolicy::frFcfsBefore(const Candidate &a, const Candidate &b)
{
    const bool col_a = isColumnCommand(a.cmd);
    const bool col_b = isColumnCommand(b.cmd);
    if (col_a != col_b)
        return col_a;
    return a.req->seq < b.req->seq;
}

bool
FrFcfsPolicy::higherPriority(const Candidate &a, const Candidate &b,
                             const SchedContext &) const
{
    return frFcfsBefore(a, b);
}

} // namespace stfm
