#include "sched/policy.hh"

#include "core/stfm.hh"
#include "sched/fcfs.hh"
#include "sched/fr_fcfs.hh"
#include "sched/fr_fcfs_cap.hh"
#include "sched/nfq.hh"

namespace stfm
{

const char *
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::FrFcfs: return "FR-FCFS";
      case PolicyKind::Fcfs: return "FCFS";
      case PolicyKind::FrFcfsCap: return "FRFCFS+Cap";
      case PolicyKind::Nfq: return "NFQ";
      case PolicyKind::Stfm: return "STFM";
    }
    return "?";
}

std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const SchedulerConfig &config, unsigned num_threads,
                     unsigned total_banks)
{
    switch (config.kind) {
      case PolicyKind::FrFcfs:
        return std::make_unique<FrFcfsPolicy>();
      case PolicyKind::Fcfs:
        return std::make_unique<FcfsPolicy>();
      case PolicyKind::FrFcfsCap:
        return std::make_unique<FrFcfsCapPolicy>(config.cap, total_banks);
      case PolicyKind::Nfq:
        return std::make_unique<NfqPolicy>(num_threads, total_banks,
                                           config.shares,
                                           config.inversionThreshold);
      case PolicyKind::Stfm: {
        StfmParams params;
        params.alpha = config.alpha;
        params.intervalLength = config.intervalLength;
        params.gamma = config.gamma;
        params.quantize = config.quantizeSlowdowns;
        params.busInterference = config.busInterference;
        params.requestLevelEstimator = config.requestLevelEstimator;
        params.weights = config.weights;
        return std::make_unique<StfmPolicy>(params, num_threads,
                                            total_banks);
      }
    }
    return nullptr;
}

} // namespace stfm
