/**
 * @file
 * FR-FCFS: first-ready, first-come-first-serve scheduling (Rixner et
 * al.), the throughput-oriented baseline of the paper (Section 2.4).
 *
 * Priority rules over ready commands:
 *   1. Column-first: ready column accesses (read/write) over ready row
 *      accesses (activate/precharge).
 *   2. Oldest-first: earlier-arrived requests over later ones.
 */

#ifndef STFM_SCHED_FR_FCFS_HH
#define STFM_SCHED_FR_FCFS_HH

#include "sched/policy.hh"

namespace stfm
{

class FrFcfsPolicy : public SchedulingPolicy
{
  public:
    std::string name() const override { return "FR-FCFS"; }

    bool higherPriority(const Candidate &a, const Candidate &b,
                        const SchedContext &ctx) const override;

    /** The shared rank function, reused by other policies' tie-breaks. */
    static bool frFcfsBefore(const Candidate &a, const Candidate &b);
};

} // namespace stfm

#endif // STFM_SCHED_FR_FCFS_HH
