#include "sched/nfq.hh"

#include <numeric>

#include "common/logging.hh"

namespace stfm
{

NfqPolicy::NfqPolicy(unsigned num_threads, unsigned total_banks,
                     std::vector<double> shares, DramCycles threshold)
    : threads_(num_threads), banks_(total_banks),
      latencyFactor_(num_threads, static_cast<double>(num_threads)),
      vft_(static_cast<std::size_t>(num_threads) * total_banks, 0.0),
      threshold_(threshold)
{
    if (!shares.empty()) {
        STFM_ASSERT(shares.size() == num_threads,
                    "NFQ shares must cover every thread");
        const double total =
            std::accumulate(shares.begin(), shares.end(), 0.0);
        STFM_ASSERT(total > 0.0, "NFQ shares must be positive");
        // A thread with share phi_i of the bandwidth may be slowed by
        // 1/phi_i, so its deadline advances by latency/phi_i.
        for (unsigned t = 0; t < num_threads; ++t) {
            STFM_ASSERT(shares[t] > 0.0, "NFQ share must be positive");
            latencyFactor_[t] = total / shares[t];
        }
    }
}

DramCycles
NfqPolicy::threshold(const SchedContext &ctx) const
{
    if (threshold_ != 0)
        return threshold_;
    return ctx.timing ? ctx.timing->tRAS : 18;
}

bool
NfqPolicy::higherPriority(const Candidate &a, const Candidate &b,
                          const SchedContext &ctx) const
{
    const bool col_a = isColumnCommand(a.cmd);
    const bool col_b = isColumnCommand(b.cmd);
    if (col_a != col_b) {
        // First-ready rule, limited by priority inversion prevention:
        // a column access loses its boost once the competing row access
        // has waited longer than the threshold.
        const Candidate &row_cand = col_a ? b : a;
        const DramCycles waited =
            ctx.dramNow - row_cand.req->arrivalDram;
        if (waited <= threshold(ctx))
            return col_a;
        // Fall through to deadline comparison.
    }
    const double vft_a =
        vft_[idx(a.req->thread, ctx.globalBank(a.req->coords.bank))];
    const double vft_b =
        vft_[idx(b.req->thread, ctx.globalBank(b.req->coords.bank))];
    if (vft_a != vft_b)
        return vft_a < vft_b;
    return a.req->seq < b.req->seq;
}

void
NfqPolicy::onColumnCommand(const ColumnIssueEvent &ev,
                           const SchedContext &ctx)
{
    const unsigned bank = ctx.globalBank(ev.req->coords.bank);
    const double latency = static_cast<double>(
        ev.bankLatency + (ctx.timing ? ctx.timing->burst : 0));
    vft_[idx(ev.req->thread, bank)] +=
        latency * latencyFactor_[ev.req->thread];
}

} // namespace stfm
