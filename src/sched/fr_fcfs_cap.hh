/**
 * @file
 * FR-FCFS+Cap: the new comparison algorithm introduced in Section 4 of
 * the paper. It behaves like FR-FCFS, but at most `cap` younger column
 * (row-hit) accesses may be serviced before an older row access to the
 * same bank; once the cap is reached, scheduling within that bank falls
 * back to FCFS until a row access is serviced there.
 */

#ifndef STFM_SCHED_FR_FCFS_CAP_HH
#define STFM_SCHED_FR_FCFS_CAP_HH

#include <vector>

#include "sched/policy.hh"

namespace stfm
{

class FrFcfsCapPolicy : public SchedulingPolicy
{
  public:
    FrFcfsCapPolicy(unsigned cap, unsigned total_banks);

    std::string name() const override { return "FR-FCFS+Cap"; }

    bool higherPriority(const Candidate &a, const Candidate &b,
                        const SchedContext &ctx) const override;

    void onRowCommand(const RowIssueEvent &ev,
                      const SchedContext &ctx) override;
    void onColumnCommand(const ColumnIssueEvent &ev,
                         const SchedContext &ctx) override;

    /** Current bypass count of a global bank (for tests). */
    unsigned bypassCount(unsigned global_bank) const
    {
        return bypass_[global_bank];
    }

  private:
    unsigned cap_;
    /** Consecutive column bypasses of an older row access, per bank. */
    std::vector<unsigned> bypass_;
};

} // namespace stfm

#endif // STFM_SCHED_FR_FCFS_CAP_HH
