/**
 * @file
 * Fundamental scalar types and identifiers shared by every subsystem.
 *
 * The simulator uses a single master clock expressed in CPU cycles
 * (Cycles). DRAM-domain quantities are expressed in DRAM bus cycles
 * (DramCycles); the conversion ratio lives in sim::Config. Keeping the two
 * domains as distinct typedefs makes unit mistakes greppable even though
 * the compiler does not enforce them.
 */

#ifndef STFM_COMMON_TYPES_HH
#define STFM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace stfm
{

/** Time in CPU clock cycles (4 GHz in the baseline configuration). */
using Cycles = std::uint64_t;

/** Time in DRAM bus clock cycles (400 MHz for DDR2-800). */
using DramCycles = std::uint64_t;

/** Byte-granularity physical address. */
using Addr = std::uint64_t;

/** Hardware thread / core identifier. */
using ThreadId = std::uint32_t;

/** DRAM geometry coordinates. */
using ChannelId = std::uint32_t;
using BankId = std::uint32_t;
using RowId = std::uint32_t;
using ColumnId = std::uint32_t;

/** Sentinel for "no thread". */
inline constexpr ThreadId kInvalidThread =
    std::numeric_limits<ThreadId>::max();

/** Sentinel for "no row is open / unknown row". */
inline constexpr RowId kInvalidRow = std::numeric_limits<RowId>::max();

/** Sentinel timestamp meaning "never". */
inline constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

/**
 * The paper's Table 2 clock domains: 4 GHz cores on a DDR2-800 bus
 * (400 MHz command clock). Every CPU-per-DRAM-cycle ratio in the
 * simulator derives from these two frequencies (MemoryConfig carries
 * the configurable pair; SchedContext's default mirrors the baseline).
 */
inline constexpr unsigned kBaselineCoreMHz = 4000;
inline constexpr unsigned kBaselineDramMHz = 400;

} // namespace stfm

#endif // STFM_COMMON_TYPES_HH
