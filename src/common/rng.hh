/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (synthetic trace generation,
 * workload sampling) draws from explicitly seeded Rng instances so that a
 * given (benchmark, seed, config) triple always reproduces bit-identical
 * streams. This property is load-bearing: the experiment harness memoizes
 * alone-run results, which is only sound if re-generating a trace yields
 * the same access stream.
 */

#ifndef STFM_COMMON_RNG_HH
#define STFM_COMMON_RNG_HH

#include <cstdint>

namespace stfm
{

/**
 * xoshiro256** generator seeded via splitmix64.
 *
 * Small, fast, and statistically strong enough for workload synthesis.
 * Not suitable for cryptography (irrelevant here).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p (clamped to at least 1e-9). Mean (1-p)/p.
     */
    std::uint64_t nextGeometric(double p);

  private:
    std::uint64_t s_[4];
};

/** splitmix64 step, exposed for deriving per-stream sub-seeds. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless hash of two seeds into one (for naming sub-streams). */
std::uint64_t combineSeeds(std::uint64_t a, std::uint64_t b);

} // namespace stfm

#endif // STFM_COMMON_RNG_HH
