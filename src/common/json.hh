/**
 * @file
 * Minimal dependency-free JSON reader/writer.
 *
 * The declarative experiment layer (sim/config_io, harness/spec) needs
 * to parse spec files and emit machine-readable results without pulling
 * in an external library. This is a small, strict JSON implementation:
 *
 *  - values are null / bool / number / string / array / object;
 *  - objects preserve insertion order (serialization is stable, so a
 *    config can round-trip byte-for-byte);
 *  - integers that fit in 64 bits are kept exact (cycle counts and
 *    instruction budgets exceed double's 2^53 integer range);
 *  - parse errors throw SimError with line/column context so a bad
 *    spec file is a recoverable, diagnosable failure — not an abort.
 *
 * No streaming, no comments, no NaN/Inf: specs and results are small
 * and strict JSON keeps them interoperable (python -m json.tool, jq).
 */

#ifndef STFM_COMMON_JSON_HH
#define STFM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stfm
{

class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Int,    ///< Exact 64-bit integer (no '.', 'e' in the literal).
        Double, ///< Any other number.
        String,
        Array,
        Object,
    };

    using Array = std::vector<Json>;
    /** Insertion-ordered key/value pairs; keys are unique. */
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::int64_t i) : type_(Type::Int), int_(i) {}
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    Json(unsigned u) : Json(static_cast<std::int64_t>(u)) {}
    Json(std::uint64_t u);
    Json(double d) : type_(Type::Double), double_(d) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(const char *s) : Json(std::string(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }
    bool isInt() const { return type_ == Type::Int; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /**
     * Typed accessors. @p context names the value in SimError messages
     * ("spec.memory.channels"), so callers get actionable diagnostics.
     * All throw SimError on a type (or range) mismatch.
     */
    bool asBool(const std::string &context = "value") const;
    std::int64_t asInt(const std::string &context = "value") const;
    std::uint64_t asUint(const std::string &context = "value") const;
    double asDouble(const std::string &context = "value") const;
    const std::string &asString(const std::string &context = "value") const;
    const Array &asArray(const std::string &context = "value") const;
    const Object &asObject(const std::string &context = "value") const;

    // Array building / access ----------------------------------------
    void push(Json value);
    std::size_t size() const;
    const Json &at(std::size_t index) const;

    // Object building / access ---------------------------------------
    /** Insert or overwrite @p key (insertion order kept on insert). */
    void set(const std::string &key, Json value);
    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key) != nullptr; }
    /** Member lookup that throws SimError when the key is missing. */
    const Json &at(const std::string &key,
                   const std::string &context = "object") const;

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

    /**
     * Serialize. @p indent < 0 emits compact one-line JSON; >= 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Parse strict JSON. @throws SimError with line:column context. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/**
 * Write @p json pretty-printed (2-space indent, trailing newline) to
 * @p path — the one writer behind every machine-readable artifact
 * (results files, BENCH_perf.json). @throws SimError on I/O failure.
 */
void writeJsonFile(const Json &json, const std::string &path);

} // namespace stfm

#endif // STFM_COMMON_JSON_HH
