#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace stfm
{

Json::Json(std::uint64_t u)
{
    if (u <= static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
        type_ = Type::Int;
        int_ = static_cast<std::int64_t>(u);
    } else {
        type_ = Type::Double;
        double_ = static_cast<double>(u);
    }
}

namespace
{

const char *
typeName(Json::Type type)
{
    switch (type) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "bool";
    case Json::Type::Int: return "integer";
    case Json::Type::Double: return "number";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
typeError(const std::string &context, const char *wanted, Json::Type got)
{
    throw SimError(formatMessage("%s: expected %s, got %s",
                                 context.c_str(), wanted, typeName(got)));
}

} // namespace

bool
Json::asBool(const std::string &context) const
{
    if (type_ != Type::Bool)
        typeError(context, "bool", type_);
    return bool_;
}

std::int64_t
Json::asInt(const std::string &context) const
{
    if (type_ == Type::Int)
        return int_;
    typeError(context, "integer", type_);
}

std::uint64_t
Json::asUint(const std::string &context) const
{
    if (type_ != Type::Int)
        typeError(context, "non-negative integer", type_);
    if (int_ < 0) {
        throw SimError(formatMessage("%s: expected non-negative value, "
                                     "got %lld",
                                     context.c_str(),
                                     static_cast<long long>(int_)));
    }
    return static_cast<std::uint64_t>(int_);
}

double
Json::asDouble(const std::string &context) const
{
    if (type_ == Type::Int)
        return static_cast<double>(int_);
    if (type_ == Type::Double)
        return double_;
    typeError(context, "number", type_);
}

const std::string &
Json::asString(const std::string &context) const
{
    if (type_ != Type::String)
        typeError(context, "string", type_);
    return string_;
}

const Json::Array &
Json::asArray(const std::string &context) const
{
    if (type_ != Type::Array)
        typeError(context, "array", type_);
    return array_;
}

const Json::Object &
Json::asObject(const std::string &context) const
{
    if (type_ != Type::Object)
        typeError(context, "object", type_);
    return object_;
}

void
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    STFM_ASSERT(type_ == Type::Array, "push on a non-array Json value");
    array_.push_back(std::move(value));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    return 0;
}

const Json &
Json::at(std::size_t index) const
{
    STFM_ASSERT(type_ == Type::Array && index < array_.size(),
                "Json array index %zu out of range", index);
    return array_[index];
}

void
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    STFM_ASSERT(type_ == Type::Object, "set on a non-object Json value");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &member : object_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key, const std::string &context) const
{
    if (type_ != Type::Object)
        typeError(context, "object", type_);
    if (const Json *member = find(key))
        return *member;
    throw SimError(formatMessage("%s: missing required key '%s'",
                                 context.c_str(), key.c_str()));
}

bool
Json::operator==(const Json &other) const
{
    // Int and Double compare across representations when numerically
    // equal, so a round trip through double-formatted output still
    // matches the original where the value is preserved.
    if (isNumber() && other.isNumber())
        return asDouble() == other.asDouble() &&
               (type_ != Type::Int || other.type_ != Type::Int ||
                int_ == other.int_);
    if (type_ != other.type_)
        return false;
    switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Int: return int_ == other.int_;
    case Type::Double: return double_ == other.double_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
    }
    return false;
}

// --------------------------------------------------------------------
// Serialization.

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent >= 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
    case Type::Null:
        out += "null";
        return;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        return;
    case Type::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
        out += buf;
        return;
    }
    case Type::Double: {
        STFM_ASSERT(std::isfinite(double_),
                    "cannot serialize non-finite number");
        char buf[40];
        // Shortest representation that round-trips a double.
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        double reparsed = 0.0;
        std::sscanf(buf, "%lf", &reparsed);
        for (int precision = 1; precision < 17; ++precision) {
            char shorter[40];
            std::snprintf(shorter, sizeof(shorter), "%.*g", precision,
                          double_);
            std::sscanf(shorter, "%lf", &reparsed);
            if (reparsed == double_) {
                std::snprintf(buf, sizeof(buf), "%.*g", precision,
                              double_);
                break;
            }
        }
        out += buf;
        // Keep a fraction marker so the value reparses as Double.
        if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
            std::string::npos)
            out += ".0";
        return;
    }
    case Type::String:
        escapeString(out, string_);
        return;
    case Type::Array: {
        if (array_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            appendIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        appendIndent(out, indent, depth);
        out += ']';
        return;
    }
    case Type::Object: {
        if (object_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            appendIndent(out, indent, depth + 1);
            escapeString(out, object_[i].first);
            out += indent >= 0 ? ": " : ":";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        appendIndent(out, indent, depth);
        out += '}';
        return;
    }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// --------------------------------------------------------------------
// Parsing.

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json value = parseValue();
        skipWhitespace();
        if (pos_ < text_.size())
            fail("trailing content after JSON value");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        // Derive line:column from the byte offset for the message.
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw SimError(formatMessage("JSON parse error at %zu:%zu: %s",
                                     line, col, what.c_str()));
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(formatMessage("expected '%c'", c));
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectLiteral(const char *literal)
    {
        for (const char *p = literal; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(formatMessage("invalid literal (expected '%s')",
                                   literal));
            ++pos_;
        }
    }

    Json
    parseValue()
    {
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return Json(parseString());
        case 't': expectLiteral("true"); return Json(true);
        case 'f': expectLiteral("false"); return Json(false);
        case 'n': expectLiteral("null"); return Json(nullptr);
        default: return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point (specs are ASCII in
                // practice; surrogate pairs are rejected as unsupported).
                if (code >= 0xD800 && code <= 0xDFFF)
                    fail("surrogate pairs are not supported");
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("invalid escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consumeIfRaw('-')) {}
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            fail("invalid number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        bool is_int = true;
        if (consumeIfRaw('.')) {
            is_int = false;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("digit expected after decimal point");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (consumeIfRaw('e') || consumeIfRaw('E')) {
            is_int = false;
            if (!consumeIfRaw('+'))
                consumeIfRaw('-');
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("digit expected in exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string_view token(text_.data() + start, pos_ - start);
        if (is_int) {
            std::int64_t value = 0;
            const auto [ptr, ec] = std::from_chars(
                token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && ptr == token.data() + token.size())
                return Json(value);
            // Out of int64 range: fall through to double.
        }
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(
            token.data(), token.data() + token.size(), value);
        if (ec != std::errc() || ptr != token.data() + token.size())
            fail("invalid number");
        return Json(value);
    }

    bool
    consumeIfRaw(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Json
    parseArray()
    {
        expect('[');
        Json out = Json::array();
        if (consumeIf(']'))
            return out;
        while (true) {
            out.push(parseValue());
            if (consumeIf(']'))
                return out;
            expect(',');
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json out = Json::object();
        if (consumeIf('}'))
            return out;
        while (true) {
            skipWhitespace();
            const std::string key = parseString();
            if (out.has(key))
                fail(formatMessage("duplicate key '%s'", key.c_str()));
            expect(':');
            out.set(key, parseValue());
            if (consumeIf('}'))
                return out;
            expect(',');
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

void
writeJsonFile(const Json &json, const std::string &path)
{
    const std::string text = json.dump(2) + "\n";
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file) {
        throw SimError(formatMessage("cannot open '%s' for writing",
                                     path.c_str()));
    }
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), file);
    const int close_error = std::fclose(file);
    if (written != text.size() || close_error != 0)
        throw SimError(formatMessage("short write to '%s'", path.c_str()));
}

} // namespace stfm
