#include "common/rng.hh"

#include <cmath>

namespace stfm
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
combineSeeds(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) +
                               (a >> 2));
    return splitmix64(state);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the four xoshiro words from splitmix64 as its author
    // recommends; this avoids the all-zero state.
    std::uint64_t state = seed;
    for (auto &word : s_)
        word = splitmix64(state);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Lemire-style multiply-shift reduction; the tiny modulo bias is
    // irrelevant for workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p >= 1.0)
        return 0;
    if (p < 1e-9)
        p = 1e-9;
    const double u = nextDouble();
    return static_cast<std::uint64_t>(
        std::floor(std::log1p(-u) / std::log1p(-p)));
}

} // namespace stfm
