/**
 * @file
 * Fatal/panic helpers plus the structured recoverable-error path used
 * by the integrity layer (src/check/).
 *
 * Three severities, three behaviors:
 *   - panic() flags simulator bugs (invariant violations) and aborts;
 *   - fatal() flags user/configuration errors and exits cleanly;
 *   - SimError / CheckFailure are *recoverable* diagnostics: library
 *     code throws them so a harness can isolate one bad run, record
 *     the failure, and keep sweeping instead of dying (see
 *     harness/runner.cc).
 *
 * All entry points accept printf-style formatted messages so call
 * sites can attach cycle/channel/bank/request context.
 */

#ifndef STFM_COMMON_LOGGING_HH
#define STFM_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace stfm
{

/** vsnprintf into a std::string (for exception messages). */
inline std::string
vformatMessage(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed <= 0)
        return std::string(fmt);
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

/** printf-style formatting into a std::string. */
__attribute__((format(printf, 1, 2))) inline std::string
formatMessage(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformatMessage(fmt, args);
    va_end(args);
    return out;
}

[[noreturn]] __attribute__((format(printf, 3, 4))) inline void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
    std::abort();
}

[[noreturn]] __attribute__((format(printf, 3, 4))) inline void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
    std::exit(1);
}

/**
 * Recoverable simulation error (bad configuration, unusable workload,
 * cycle-limit overrun). Harness code catches these per run.
 */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what) {}
};

/**
 * A runtime integrity-check violation with full diagnostic context:
 * which constraint failed, at which DRAM cycle, on which channel/bank,
 * and for which request/thread (sentinels when not attributable, e.g.
 * maintenance commands).
 */
class CheckFailure : public SimError
{
  public:
    /** Sentinel request id meaning "no request context". */
    static constexpr std::uint64_t kNoRequest =
        static_cast<std::uint64_t>(-1);

    CheckFailure(std::string constraint_name, DramCycles at_cycle,
                 ChannelId on_channel, BankId on_bank,
                 std::uint64_t request_id, ThreadId thread_id,
                 const std::string &detail)
        : SimError(formatMessage(
              "check failure [%s] cycle=%llu channel=%u bank=%u "
              "request=%lld thread=%d: %s",
              constraint_name.c_str(),
              static_cast<unsigned long long>(at_cycle), on_channel,
              on_bank,
              request_id == kNoRequest
                  ? -1LL
                  : static_cast<long long>(request_id),
              thread_id == kInvalidThread ? -1
                                          : static_cast<int>(thread_id),
              detail.c_str())),
          constraint(std::move(constraint_name)), cycle(at_cycle),
          channel(on_channel), bank(on_bank), requestId(request_id),
          thread(thread_id)
    {}

    std::string constraint; ///< Constraint or invariant that failed.
    DramCycles cycle;       ///< DRAM cycle of the violation.
    ChannelId channel;      ///< Channel the violation occurred on.
    BankId bank;            ///< Bank involved (0 if channel-wide).
    std::uint64_t requestId; ///< Offending request, or kNoRequest.
    ThreadId thread;         ///< Owning thread, or kInvalidThread.
};

} // namespace stfm

#define STFM_PANIC(...) ::stfm::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define STFM_FATAL(...) ::stfm::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Simulator-bug assertion: active in all build types. */
#define STFM_ASSERT(cond, ...)                                             \
    do {                                                                   \
        if (!(cond))                                                       \
            STFM_PANIC(__VA_ARGS__);                                       \
    } while (0)

#endif // STFM_COMMON_LOGGING_HH
