/**
 * @file
 * Minimal fatal/panic helpers in the gem5 spirit.
 *
 * panic() flags simulator bugs (invariant violations) and aborts;
 * fatal() flags user/configuration errors and exits cleanly.
 */

#ifndef STFM_COMMON_LOGGING_HH
#define STFM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace stfm
{

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace stfm

#define STFM_PANIC(msg) ::stfm::panicImpl(__FILE__, __LINE__, (msg))
#define STFM_FATAL(msg) ::stfm::fatalImpl(__FILE__, __LINE__, (msg))

/** Simulator-bug assertion: active in all build types. */
#define STFM_ASSERT(cond, msg)                                             \
    do {                                                                   \
        if (!(cond))                                                       \
            STFM_PANIC(msg);                                               \
    } while (0)

#endif // STFM_COMMON_LOGGING_HH
