/**
 * @file
 * Fixed-point arithmetic mimicking STFM's hardware slowdown registers.
 *
 * Table 1 of the paper budgets 8 bits of fixed point for each thread's
 * Slowdown register and for the Alpha register, and notes that the update
 * logic is built from adders, muxes, and shifters that *approximate*
 * fixed-point division. This header provides a small Q-format value type
 * so the STFM implementation can be run either with exact double
 * arithmetic or with hardware-faithful quantization (the evaluation
 * default matches the paper: quantization on for the stored slowdowns).
 */

#ifndef STFM_COMMON_FIXED_POINT_HH
#define STFM_COMMON_FIXED_POINT_HH

#include <algorithm>
#include <cstdint>

namespace stfm
{

/**
 * Unsigned fixed-point value with IntBits integer and FracBits fractional
 * bits. Saturating on overflow, which matches what a bounded hardware
 * register would do (a saturated slowdown still identifies the most
 * slowed-down thread).
 */
template <unsigned IntBits, unsigned FracBits>
class FixedPoint
{
    static_assert(IntBits + FracBits <= 32, "register too wide");

  public:
    static constexpr std::uint64_t kOne = 1ULL << FracBits;
    static constexpr std::uint64_t kMaxRaw =
        (1ULL << (IntBits + FracBits)) - 1;

    constexpr FixedPoint() = default;

    /** Quantize a real value (rounding to nearest, saturating). */
    static constexpr FixedPoint
    fromDouble(double v)
    {
        if (v <= 0.0)
            return fromRaw(0);
        const double scaled = v * static_cast<double>(kOne) + 0.5;
        if (scaled >= static_cast<double>(kMaxRaw))
            return fromRaw(kMaxRaw);
        return fromRaw(static_cast<std::uint64_t>(scaled));
    }

    static constexpr FixedPoint
    fromRaw(std::uint64_t raw)
    {
        FixedPoint fp;
        fp.raw_ = std::min(raw, kMaxRaw);
        return fp;
    }

    constexpr double
    toDouble() const
    {
        return static_cast<double>(raw_) / static_cast<double>(kOne);
    }

    constexpr std::uint64_t raw() const { return raw_; }

    constexpr bool
    operator==(const FixedPoint &other) const = default;

    constexpr auto
    operator<=>(const FixedPoint &other) const = default;

  private:
    std::uint64_t raw_ = 0;
};

/**
 * The paper's 8-bit slowdown register: 5 integer bits (slowdowns up to
 * ~32x, beyond which saturation is harmless) and 3 fractional bits.
 */
using SlowdownReg = FixedPoint<5, 3>;

/** Quantize a slowdown ratio the way the 8-bit register would store it. */
inline double
quantizeSlowdown(double s)
{
    return SlowdownReg::fromDouble(s).toDouble();
}

} // namespace stfm

#endif // STFM_COMMON_FIXED_POINT_HH
