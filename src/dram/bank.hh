/**
 * @file
 * Per-bank DRAM state machine.
 *
 * Each bank tracks its open row and the earliest DRAM cycle at which each
 * command class may legally issue, derived from the DDR2 timing
 * constraints. The channel (dram/channel.hh) layers bus-level and
 * cross-bank constraints on top.
 */

#ifndef STFM_DRAM_BANK_HH
#define STFM_DRAM_BANK_HH

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace stfm
{

/** One DRAM bank: row-buffer state plus timing bookkeeping. */
class Bank
{
  public:
    Bank() = default;

    /** Currently open row, or kInvalidRow if the bank is precharged. */
    RowId openRow() const { return openRow_; }

    /** Row-buffer category a request for @p row would encounter now. */
    RowBufferState rowState(RowId row) const;

    /** Earliest cycle an ACTIVATE may issue (bank-local constraints). */
    DramCycles actAllowedAt() const { return actAllowedAt_; }
    /** Earliest cycle a PRECHARGE may issue. */
    DramCycles preAllowedAt() const { return preAllowedAt_; }
    /** Earliest cycle a READ may issue. */
    DramCycles readAllowedAt() const { return readAllowedAt_; }
    /** Earliest cycle a WRITE may issue. */
    DramCycles writeAllowedAt() const { return writeAllowedAt_; }

    /**
     * Check bank-local legality of @p cmd targeting @p row at cycle
     * @p now. Does not consider bus or cross-bank constraints.
     */
    bool canIssue(DramCommand cmd, RowId row, DramCycles now) const;

    /**
     * Apply the state update for issuing @p cmd at cycle @p now.
     * Precondition: canIssue() returned true.
     */
    void issue(DramCommand cmd, RowId row, DramCycles now,
               const DramTiming &timing);

    /** Number of ACT commands issued (row openings). */
    std::uint64_t activations() const { return activations_; }

    /** Block the (precharged) bank until @p until (refresh). */
    void blockUntil(DramCycles until);

  private:
    RowId openRow_ = kInvalidRow;
    DramCycles actAllowedAt_ = 0;
    DramCycles preAllowedAt_ = 0;
    DramCycles readAllowedAt_ = 0;
    DramCycles writeAllowedAt_ = 0;
    std::uint64_t activations_ = 0;
};

} // namespace stfm

#endif // STFM_DRAM_BANK_HH
