/**
 * @file
 * One DRAM channel: a set of banks plus the shared command and data
 * buses and the cross-bank timing constraints (tRRD, tFAW, bus
 * turnaround).
 *
 * The channel answers two questions for the controller:
 *   - canIssue(cmd, bank, row, now): is this command legal right now,
 *     considering bank state, bus occupancy, and cross-bank windows?
 *     (This is exactly the paper's notion of a "ready" DRAM command.)
 *   - issue(...): commit the command, returning when its data burst
 *     finishes (for column commands).
 */

#ifndef STFM_DRAM_CHANNEL_HH
#define STFM_DRAM_CHANNEL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace stfm
{

/**
 * Observer of a channel's issued command stream. The integrity layer's
 * shadow protocol checker attaches here so that *every* command the
 * device model admits — scheduler-driven and maintenance alike — is
 * independently validated. Observers must not mutate channel state.
 */
class DramCommandObserver
{
  public:
    virtual ~DramCommandObserver() = default;
    /** A command was issued to (bank, row) at DRAM cycle @p now. */
    virtual void onCommand(DramCommand cmd, BankId bank, RowId row,
                           DramCycles now) = 0;
    /** An all-bank auto-refresh was issued at DRAM cycle @p now. */
    virtual void onRefresh(DramCycles now) = 0;
};

/** Statistics exported by a channel. */
struct ChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t dataBusBusyCycles = 0;
    /** Activates whose issue time was bound by the tFAW window. */
    std::uint64_t fawLimitedActs = 0;
};

/** A single-rank DRAM channel with @p num_banks banks. */
class DramChannel
{
  public:
    /**
     * @param num_banks    Banks on the channel.
     * @param timing       Constraint table (must be valid()).
     * @param bank_groups  Bank groups (DDR4-generation devices).
     *                     With 1 group the channel runs the legacy
     *                     scalar constraint path (tRRD/tWTR channel
     *                     wide, tCCD bank-local) — bit-identical to the
     *                     pre-bank-group model. With more, activates,
     *                     column commands and write-to-read turnaround
     *                     track per-group windows using the long
     *                     (same-group) vs short (cross-group) values.
     */
    DramChannel(unsigned num_banks, const DramTiming &timing,
                unsigned bank_groups = 1);

    /** Bank accessors. */
    unsigned numBanks() const { return static_cast<unsigned>(banks_.size()); }
    const Bank &bank(BankId b) const { return banks_[b]; }

    /** Bank groups on the channel (1 = no bank-group architecture). */
    unsigned bankGroups() const { return bankGroups_; }
    /** Bank group of a bank index (round-robin interleave). */
    unsigned groupOf(BankId b) const { return b % bankGroups_; }

    /** Row-buffer category a request for (bank, row) sees right now. */
    RowBufferState rowState(BankId b, RowId row) const;

    /**
     * Full readiness check for issuing @p cmd to (bank, row) at @p now:
     * bank-local constraints plus data-bus availability for column
     * commands, plus tRRD/tFAW for activates. The command bus itself
     * admits one command per cycle; the controller enforces that by
     * issuing at most once per tick.
     */
    bool canIssue(DramCommand cmd, BankId b, RowId row,
                  DramCycles now) const;

    /**
     * Earliest cycle at which @p cmd could issue to bank @p b, assuming
     * the bank's row-buffer state already admits the command class.
     * Exact, not a bound: canIssue(cmd, b, row, t) holds iff the state
     * admits (cmd, row) and t >= earliestIssue(cmd, b). Valid until the
     * next command issues on the channel (all constraints only move
     * forward when commands issue), which is what lets the controller
     * maintain per-bank readiness tables incrementally instead of
     * re-evaluating the full DDR2 constraint set per query.
     */
    DramCycles earliestIssue(DramCommand cmd, BankId b) const;

    /**
     * Issue @p cmd. For READ/WRITE returns the cycle at which the last
     * data beat leaves the bus; for ACT/PRE returns the cycle the bank
     * becomes usable for the following command class.
     */
    DramCycles issue(DramCommand cmd, BankId b, RowId row, DramCycles now);

    /** First cycle the data bus is free. */
    DramCycles dataBusFreeAt() const { return dataBusFreeAt_; }

    /** True when every bank is precharged (refresh precondition). */
    bool allBanksClosed() const;

    /**
     * Issue an all-bank auto-refresh at @p now: every bank becomes
     * unavailable for tRFC. Precondition: allBanksClosed().
     * @return the cycle the rank is usable again.
     */
    DramCycles refreshAll(DramCycles now);

    const DramTiming &timing() const { return timing_; }
    const ChannelStats &stats() const { return stats_; }

    /**
     * Attach the sole observer of the issued command stream (may be
     * null), replacing any previously attached set. The historical
     * single-slot entry point; the protocol checker uses it.
     */
    void setObserver(DramCommandObserver *observer)
    {
        numObservers_ = 0;
        if (observer)
            observers_[numObservers_++] = observer;
    }

    /**
     * Attach an additional observer alongside any existing ones, so
     * the trace exporter composes with the protocol checker. At most
     * kMaxObservers observers; extras beyond that are ignored (there
     * are exactly two producers today).
     */
    void addObserver(DramCommandObserver *observer)
    {
        if (observer && numObservers_ < observers_.size())
            observers_[numObservers_++] = observer;
    }

  private:
    /** Push every group's column window forward after a column command
     *  to group @p g (tCCD_L same group, tCCD_S across groups). */
    void bumpColumnWindows(unsigned g, DramCycles now);

    DramTiming timing_;
    std::vector<Bank> banks_;
    unsigned bankGroups_ = 1;

    DramCycles dataBusFreeAt_ = 0;
    /** Earliest cycle a READ may issue channel-wide (tWTR turnaround). */
    DramCycles readAllowedAt_ = 0;
    /** Earliest cycle an ACT may issue channel-wide (tRRD). */
    DramCycles actAllowedAt_ = 0;
    /**
     * Per-bank-group constraint windows; sized bankGroups_ and only
     * consulted when bankGroups_ > 1 (the single-group path keeps the
     * scalars above, untouched). Entry g is the earliest cycle the
     * command class may issue to a bank in group g; an issue to group
     * g' pushes entry g forward by the long value when g == g' and the
     * short value otherwise.
     */
    std::vector<DramCycles> actGroupAllowedAt_;
    std::vector<DramCycles> colGroupAllowedAt_;
    std::vector<DramCycles> wtrReadAllowedAt_;
    /** Issue times of the last four activates, for tFAW. */
    std::array<DramCycles, 4> actWindow_{};
    unsigned actWindowIdx_ = 0;
    std::uint64_t actCount_ = 0;

    static constexpr unsigned kMaxObservers = 2;
    std::array<DramCommandObserver *, kMaxObservers> observers_{};
    unsigned numObservers_ = 0;

    ChannelStats stats_;
};

} // namespace stfm

#endif // STFM_DRAM_CHANNEL_HH
