/**
 * @file
 * Declarative DRAM device specifications.
 *
 * A DeviceSpec is the single source of truth for one memory part:
 * geometry (banks, bank groups, row size, rows per bank), the bus
 * clock period in nanoseconds, the full cycle-domain timing table
 * (dram/timing.hh, including the DDR4-generation split constraints),
 * and the refresh parameters — which JEDEC specifies in nanoseconds,
 * so they are stored in nanoseconds here and converted to cycles per
 * device instead of assuming the DDR2-800 2.5 ns clock.
 *
 * Both the device model (dram/channel.hh) and the shadow protocol
 * checker (check/protocol_checker.hh) derive their rules from the same
 * spec; there is no second constant table to drift out of sync.
 *
 * Built-in presets cover DDR2-800 (the paper's validated baseline,
 * bit-identical to the historical hard-wired defaults), DDR3-1600,
 * DDR4-2400 (16 banks in 4 bank groups) and LPDDR4-3200. The same
 * structure loads from JSON files under specs/devices/ via
 * sim/device_io.hh.
 */

#ifndef STFM_DRAM_DEVICE_SPEC_HH
#define STFM_DRAM_DEVICE_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/timing.hh"

namespace stfm
{

struct DeviceSpec
{
    /** Catalog name, e.g. "DDR4-2400". */
    std::string name = "DDR2-800";
    /** Standard family, e.g. "DDR2" (documentation/reporting only). */
    std::string standard = "DDR2";

    /** Bus clock period in nanoseconds (DDR2-800: 2.5 ns). */
    double tCKns = 2.5;

    /** Banks per channel (rank). */
    unsigned banks = 8;
    /** Bank groups per rank; 1 = no bank-group architecture. */
    unsigned bankGroups = 1;
    /** Effective row-buffer bytes across the DIMM's chips. */
    std::uint64_t rowBytes = 16 * 1024;
    /** Rows per bank. */
    std::uint64_t rowsPerBank = 16 * 1024;

    /**
     * Core clock the device pairs with by default. Only applied when
     * the configured core clock would produce a non-integer CPU:DRAM
     * ratio (the simulator ticks the DRAM domain on whole CPU cycles);
     * a core clock that already divides evenly is left alone.
     */
    unsigned defaultCoreMHz = 4000;

    /**
     * Cycle-domain timing table. The tREFI/tRFC members of this table
     * are *derived* from the nanosecond fields below when the spec is
     * applied — a spec never sets them directly.
     */
    DramTiming timing;

    /** Average refresh interval in nanoseconds (JEDEC: 7800 ns). */
    double tREFIns = 7800.0;
    /** Refresh cycle time in nanoseconds. */
    double tRFCns = 127.5;

    /** DRAM bus command-clock in MHz, derived from tCKns. */
    unsigned busMHz() const;
    /** tREFI in bus cycles for this device's clock. */
    DramCycles refiCycles() const;
    /** tRFC in bus cycles for this device's clock. */
    DramCycles rfcCycles() const;

    /**
     * Consistency problems with this spec (empty = valid): clock and
     * geometry sanity, bank-group divisibility, the DramTiming::valid
     * rules spelled out per field, and refresh-parameter ordering.
     */
    std::vector<std::string> validate() const;
};

/** The built-in device presets, catalog order. */
const std::vector<DeviceSpec> &builtinDevices();

/** Built-in preset by (case-sensitive) name, or nullptr. */
const DeviceSpec *findBuiltinDevice(const std::string &name);

/** The DDR2-800 baseline preset (the historical defaults). */
DeviceSpec ddr2_800();
/** DDR3-1600: same geometry generation, 1.25 ns clock. */
DeviceSpec ddr3_1600();
/** DDR4-2400: 16 banks in 4 bank groups, split tCCD/tRRD/tWTR. */
DeviceSpec ddr4_2400();
/** LPDDR4-3200: 0.625 ns clock, BL16, narrow 2 KB rows. */
DeviceSpec lpddr4_3200();

} // namespace stfm

#endif // STFM_DRAM_DEVICE_SPEC_HH
