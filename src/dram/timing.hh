/**
 * @file
 * DDR2 SDRAM timing parameters.
 *
 * All values are in DRAM bus cycles (tCK = 2.5 ns for DDR2-800). The
 * defaults reproduce the Micron MT47H128M8HQ-25 values the paper's
 * Table 2 uses: tCL = tRCD = tRP = 15 ns (6 cycles) and a burst of
 * BL/2 = 10 ns (4 cycles) on the data bus.
 */

#ifndef STFM_DRAM_TIMING_HH
#define STFM_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace stfm
{

/** Timing constraint set for one DRAM channel (single rank). */
struct DramTiming
{
    /** CAS (read) latency: column command to first data beat. */
    DramCycles tCL = 6;
    /** RAS-to-CAS delay: activate to column command. */
    DramCycles tRCD = 6;
    /** Row precharge time: precharge to activate. */
    DramCycles tRP = 6;
    /** Row active time: activate to precharge (minimum). */
    DramCycles tRAS = 18;
    /** Row cycle time: activate to activate, same bank. */
    DramCycles tRC = 24;
    /** Write recovery: end of write data to precharge. */
    DramCycles tWR = 6;
    /** Write-to-read turnaround: end of write data to read command. */
    DramCycles tWTR = 3;
    /** Read-to-precharge delay. */
    DramCycles tRTP = 3;
    /** Column-to-column delay (back-to-back CAS commands). */
    DramCycles tCCD = 2;
    /** Activate-to-activate delay, different banks. */
    DramCycles tRRD = 3;
    /** Four-activate window. */
    DramCycles tFAW = 18;
    /** Write latency: write command to first data beat (tCL - 1). */
    DramCycles tWL = 5;
    /** Data burst length on the bus in cycles (BL/2 for DDR). */
    DramCycles burst = 4;
    /** Average refresh interval (7.8 us at 2.5 ns/cycle). */
    DramCycles tREFI = 3120;
    /** Refresh cycle time (127.5 ns for a 1 Gb DDR2 device). */
    DramCycles tRFC = 51;

    /** Bank latency of a row-hit column access (no data transfer). */
    DramCycles rowHitLatency() const { return tCL; }
    /** Bank latency of an access to a closed (precharged) bank. */
    DramCycles rowClosedLatency() const { return tRCD + tCL; }
    /** Bank latency of a row-conflict access. */
    DramCycles rowConflictLatency() const { return tRP + tRCD + tCL; }

    /** Validate internal consistency; returns false on nonsense. */
    bool valid() const;
};

} // namespace stfm

#endif // STFM_DRAM_TIMING_HH
