/**
 * @file
 * DRAM timing parameters, declaratively driven per device.
 *
 * All values are in DRAM bus cycles. The defaults reproduce the
 * DDR2-800 Micron MT47H128M8HQ-25 values the paper's Table 2 uses
 * (tCK = 2.5 ns): tCL = tRCD = tRP = 15 ns (6 cycles) and a burst of
 * BL/2 = 10 ns (4 cycles) on the data bus. Other standards load their
 * tables through DeviceSpec (dram/device_spec.hh), which also converts
 * the nanosecond-specified refresh parameters to cycles per device.
 *
 * DDR4-generation devices split three cross-bank constraints by bank
 * group: the unsuffixed tCCD/tRRD/tWTR fields hold the *long*
 * (same-bank-group) values, and the _S fields hold the *short*
 * (different-bank-group) values. Pre-DDR4 standards have no bank
 * groups; their _S fields equal the long values and are never
 * consulted (the channel takes the scalar fast path when the device
 * has a single bank group).
 */

#ifndef STFM_DRAM_TIMING_HH
#define STFM_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace stfm
{

/** Timing constraint set for one DRAM channel (single rank). */
struct DramTiming
{
    /** CAS (read) latency: column command to first data beat. */
    DramCycles tCL = 6;
    /** RAS-to-CAS delay: activate to column command. */
    DramCycles tRCD = 6;
    /** Row precharge time: precharge to activate. */
    DramCycles tRP = 6;
    /** Row active time: activate to precharge (minimum). */
    DramCycles tRAS = 18;
    /** Row cycle time: activate to activate, same bank. */
    DramCycles tRC = 24;
    /** Write recovery: end of write data to precharge. */
    DramCycles tWR = 6;
    /** Write-to-read turnaround: end of write data to read command. */
    DramCycles tWTR = 3;
    /** Read-to-precharge delay. */
    DramCycles tRTP = 3;
    /** Column-to-column delay (same bank group; the long value). */
    DramCycles tCCD = 2;
    /** Activate-to-activate delay (same bank group; the long value). */
    DramCycles tRRD = 3;
    /** Four-activate window. */
    DramCycles tFAW = 18;
    /** Column-to-column delay across bank groups (tCCD_S). Equals
     *  tCCD on devices without bank groups. */
    DramCycles tCCD_S = 2;
    /** Activate-to-activate delay across bank groups (tRRD_S). */
    DramCycles tRRD_S = 3;
    /** Write-to-read turnaround across bank groups (tWTR_S). */
    DramCycles tWTR_S = 3;
    /** Write latency: write command to first data beat (tCL - 1). */
    DramCycles tWL = 5;
    /** Data burst length on the bus in cycles (BL/2 for DDR). */
    DramCycles burst = 4;
    /** Average refresh interval (7.8 us at 2.5 ns/cycle). */
    DramCycles tREFI = 3120;
    /** Refresh cycle time (127.5 ns for a 1 Gb DDR2 device). */
    DramCycles tRFC = 51;

    /** Bank latency of a row-hit column access (no data transfer). */
    DramCycles rowHitLatency() const { return tCL; }
    /** Bank latency of an access to a closed (precharged) bank. */
    DramCycles rowClosedLatency() const { return tRCD + tCL; }
    /** Bank latency of a row-conflict access. */
    DramCycles rowConflictLatency() const { return tRP + tRCD + tCL; }

    /** Validate internal consistency; returns false on nonsense. */
    bool valid() const;
};

} // namespace stfm

#endif // STFM_DRAM_TIMING_HH
