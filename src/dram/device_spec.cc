#include "dram/device_spec.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace stfm
{

namespace
{

/**
 * Nanoseconds to whole bus cycles. JEDEC nanosecond parameters are
 * exact multiples of the clock for the matched speed grade, but the
 * division can land epsilon off an integer (e.g. 7800 / 0.833333 =
 * 9360.004); rounding to nearest recovers the intended count where a
 * ceil would overshoot by one.
 */
DramCycles
nsToCycles(double ns, double tck_ns)
{
    return static_cast<DramCycles>(std::llround(ns / tck_ns));
}

bool
powerOfTwo(std::uint64_t v)
{
    return v != 0 && std::has_single_bit(v);
}

} // namespace

unsigned
DeviceSpec::busMHz() const
{
    return static_cast<unsigned>(std::llround(1000.0 / tCKns));
}

DramCycles
DeviceSpec::refiCycles() const
{
    return nsToCycles(tREFIns, tCKns);
}

DramCycles
DeviceSpec::rfcCycles() const
{
    return nsToCycles(tRFCns, tCKns);
}

std::vector<std::string>
DeviceSpec::validate() const
{
    std::vector<std::string> problems;
    const auto require = [&](bool ok, std::string message) {
        if (!ok)
            problems.push_back(std::move(message));
    };
    const DramTiming &t = timing;

    require(!name.empty(), "device: name must not be empty");
    require(tCKns > 0.0, "device: tCKns must be positive");
    require(powerOfTwo(banks),
            formatMessage("device: banks (%u) must be a power of two",
                          banks));
    require(powerOfTwo(bankGroups),
            formatMessage(
                "device: bankGroups (%u) must be a power of two",
                bankGroups));
    require(bankGroups >= 1 && bankGroups <= banks &&
                (bankGroups == 0 || banks % bankGroups == 0),
            formatMessage("device: bankGroups (%u) must divide the bank "
                          "count (%u)",
                          bankGroups, banks));
    require(powerOfTwo(rowBytes),
            "device: rowBytes must be a power of two");
    require(powerOfTwo(rowsPerBank),
            "device: rowsPerBank must be a power of two");
    require(defaultCoreMHz > 0, "device: defaultCoreMHz must be positive");
    if (tCKns > 0.0) {
        require(defaultCoreMHz % busMHz() == 0,
                formatMessage(
                    "device: defaultCoreMHz (%u) is not an integer "
                    "multiple of the bus clock (%u MHz)",
                    defaultCoreMHz, busMHz()));
    }

    // The DramTiming::valid() rules, spelled out per field so a bad
    // spec file names its actual problem.
    require(t.tCL > 0 && t.tRCD > 0 && t.tRP > 0 && t.burst > 0,
            "device.timing: tCL, tRCD, tRP and burst must be positive");
    require(t.tRC >= t.tRAS + t.tRP,
            formatMessage("device.timing: tRC (%llu) below tRAS + tRP "
                          "(%llu): the row cycle must cover the row "
                          "active time plus the precharge",
                          static_cast<unsigned long long>(t.tRC),
                          static_cast<unsigned long long>(t.tRAS + t.tRP)));
    require(t.tWL <= t.tCL,
            formatMessage("device.timing: tWL (%llu) above tCL (%llu)",
                          static_cast<unsigned long long>(t.tWL),
                          static_cast<unsigned long long>(t.tCL)));
    require(t.tFAW >= t.tRRD,
            formatMessage("device.timing: tFAW (%llu) below tRRD (%llu)",
                          static_cast<unsigned long long>(t.tFAW),
                          static_cast<unsigned long long>(t.tRRD)));
    require(t.tRTP > 0 && t.tWR > 0 && t.tWTR > 0 && t.tCCD > 0 &&
                t.tRRD > 0,
            "device.timing: tRTP, tWR, tWTR, tCCD and tRRD must be "
            "positive");
    require(t.tCCD_S > 0 && t.tCCD_S <= t.tCCD,
            formatMessage("device.timing: tCCD_S (%llu) must be in "
                          "[1, tCCD=%llu]",
                          static_cast<unsigned long long>(t.tCCD_S),
                          static_cast<unsigned long long>(t.tCCD)));
    require(t.tRRD_S > 0 && t.tRRD_S <= t.tRRD,
            formatMessage("device.timing: tRRD_S (%llu) must be in "
                          "[1, tRRD=%llu]",
                          static_cast<unsigned long long>(t.tRRD_S),
                          static_cast<unsigned long long>(t.tRRD)));
    require(t.tWTR_S > 0 && t.tWTR_S <= t.tWTR,
            formatMessage("device.timing: tWTR_S (%llu) must be in "
                          "[1, tWTR=%llu]",
                          static_cast<unsigned long long>(t.tWTR_S),
                          static_cast<unsigned long long>(t.tWTR)));

    require(tREFIns > 0.0 && tRFCns > 0.0,
            "device: tREFIns and tRFCns must be positive");
    require(tREFIns > tRFCns,
            formatMessage("device: tREFIns (%.1f) must exceed tRFCns "
                          "(%.1f)",
                          tREFIns, tRFCns));
    return problems;
}

DeviceSpec
ddr2_800()
{
    // The historical hard-wired defaults: DramTiming's own field
    // defaults ARE this device, so the struct default suffices — the
    // regression suite pins the equivalence.
    DeviceSpec spec;
    spec.name = "DDR2-800";
    spec.standard = "DDR2";
    return spec;
}

DeviceSpec
ddr3_1600()
{
    DeviceSpec spec;
    spec.name = "DDR3-1600";
    spec.standard = "DDR3";
    spec.tCKns = 1.25;
    spec.banks = 8;
    spec.bankGroups = 1;
    spec.rowBytes = 16 * 1024;
    spec.rowsPerBank = 32 * 1024;
    spec.defaultCoreMHz = 4000; // 4000 / 800 = 5.
    DramTiming &t = spec.timing;
    // DDR3-1600K (11-11-11), 2 Gb parts: 13.75 ns CAS/RCD/RP.
    t.tCL = 11;
    t.tRCD = 11;
    t.tRP = 11;
    t.tRAS = 28; // 35 ns.
    t.tRC = 39;  // 48.75 ns.
    t.tWR = 12;  // 15 ns.
    t.tWTR = 6;  // 7.5 ns.
    t.tRTP = 6;  // 7.5 ns.
    t.tCCD = 4;  // 4 nCK.
    t.tRRD = 5;  // 6.25 ns (2 KB pages).
    t.tFAW = 24; // 30 ns.
    t.tWL = 8;   // CWL for DDR3-1600.
    t.burst = 4; // BL8 on a DDR bus.
    t.tCCD_S = t.tCCD; // No bank groups before DDR4.
    t.tRRD_S = t.tRRD;
    t.tWTR_S = t.tWTR;
    spec.tREFIns = 7800.0;
    spec.tRFCns = 160.0; // 2 Gb.
    return spec;
}

DeviceSpec
ddr4_2400()
{
    DeviceSpec spec;
    spec.name = "DDR4-2400";
    spec.standard = "DDR4";
    spec.tCKns = 0.833333; // 1200 MHz bus.
    spec.banks = 16;
    spec.bankGroups = 4;
    spec.rowBytes = 8 * 1024; // 1 KB pages x 8 chips.
    spec.rowsPerBank = 64 * 1024;
    spec.defaultCoreMHz = 4800; // 4800 / 1200 = 4.
    DramTiming &t = spec.timing;
    // DDR4-2400R (16-16-16), 8 Gb x8 parts.
    t.tCL = 16;   // 13.32 ns.
    t.tRCD = 16;
    t.tRP = 16;
    t.tRAS = 39;  // 32 ns.
    t.tRC = 55;   // 45.32 ns.
    t.tWR = 18;   // 15 ns.
    t.tWTR = 9;   // tWTR_L, 7.5 ns.
    t.tRTP = 9;   // 7.5 ns.
    t.tCCD = 6;   // tCCD_L.
    t.tRRD = 6;   // tRRD_L (1 KB pages).
    t.tFAW = 26;  // 21 ns.
    t.tWL = 12;   // CWL for 2400.
    t.burst = 4;  // BL8.
    t.tCCD_S = 4; // 4 nCK across bank groups.
    t.tRRD_S = 4; // 3.3 ns.
    t.tWTR_S = 3; // 2.5 ns.
    spec.tREFIns = 7800.0;
    spec.tRFCns = 350.0; // 8 Gb.
    return spec;
}

DeviceSpec
lpddr4_3200()
{
    DeviceSpec spec;
    spec.name = "LPDDR4-3200";
    spec.standard = "LPDDR4";
    spec.tCKns = 0.625; // 1600 MHz bus.
    spec.banks = 8;
    spec.bankGroups = 1;
    spec.rowBytes = 2 * 1024; // 2 KB pages, x16 channel.
    spec.rowsPerBank = 64 * 1024;
    spec.defaultCoreMHz = 4800; // 4800 / 1600 = 3.
    DramTiming &t = spec.timing;
    t.tCL = 28;   // RL 17.5 ns.
    t.tRCD = 29;  // 18 ns.
    t.tRP = 29;   // 18 ns (tRPpb).
    t.tRAS = 68;  // 42 ns.
    t.tRC = 97;   // tRAS + tRPpb.
    t.tWR = 29;   // 18 ns.
    t.tWTR = 16;  // 10 ns.
    t.tRTP = 12;  // 7.5 ns.
    t.tCCD = 8;   // BL16: 8 nCK.
    t.tRRD = 16;  // 10 ns.
    t.tFAW = 64;  // 40 ns.
    t.tWL = 14;   // WL Set A.
    t.burst = 8;  // BL16 on a DDR bus.
    t.tCCD_S = t.tCCD; // Single bank group.
    t.tRRD_S = t.tRRD;
    t.tWTR_S = t.tWTR;
    spec.tREFIns = 3904.0; // 8 Gb: tREFI = 3.904 us (per-bank avg x8).
    spec.tRFCns = 280.0;   // tRFCab, 8 Gb.
    return spec;
}

const std::vector<DeviceSpec> &
builtinDevices()
{
    static const std::vector<DeviceSpec> catalog = {
        ddr2_800(), ddr3_1600(), ddr4_2400(), lpddr4_3200()};
    return catalog;
}

const DeviceSpec *
findBuiltinDevice(const std::string &name)
{
    for (const DeviceSpec &spec : builtinDevices()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

} // namespace stfm
