#include "dram/timing.hh"

namespace stfm
{

bool
DramTiming::valid() const
{
    if (tCL == 0 || tRCD == 0 || tRP == 0 || burst == 0)
        return false;
    if (tRC < tRAS)
        return false;
    if (tWL > tCL)
        return false;
    return true;
}

} // namespace stfm
