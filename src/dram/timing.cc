#include "dram/timing.hh"

namespace stfm
{

bool
DramTiming::valid() const
{
    if (tCL == 0 || tRCD == 0 || tRP == 0 || burst == 0)
        return false;
    // The row cycle must cover a full open-close sequence: the row
    // active time plus the precharge that follows it.
    if (tRC < tRAS + tRP)
        return false;
    if (tWL > tCL)
        return false;
    // The four-activate window cannot be shorter than a single
    // activate-to-activate gap.
    if (tFAW < tRRD)
        return false;
    // Recovery/turnaround constraints are at least one cycle; a zero
    // here would let column commands alias their own bursts.
    if (tRTP == 0 || tWR == 0 || tWTR == 0 || tCCD == 0 || tRRD == 0)
        return false;
    // Short (cross-bank-group) constraints never exceed the long
    // (same-group) ones, and stay positive.
    if (tCCD_S == 0 || tCCD_S > tCCD)
        return false;
    if (tRRD_S == 0 || tRRD_S > tRRD)
        return false;
    if (tWTR_S == 0 || tWTR_S > tWTR)
        return false;
    return true;
}

} // namespace stfm
