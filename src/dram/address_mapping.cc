#include "dram/address_mapping.hh"

#include <bit>

#include "common/logging.hh"

namespace stfm
{

namespace
{

unsigned
log2Exact(std::uint64_t v, const char *what)
{
    STFM_ASSERT(v != 0 && std::has_single_bit(v), what);
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

AddressMapping::AddressMapping(unsigned channels, unsigned banks,
                               std::uint64_t row_bytes,
                               std::uint64_t line_bytes, std::uint64_t rows,
                               bool xor_banks, unsigned bank_groups)
    : channels_(channels), banks_(banks), bankGroups_(bank_groups),
      rowBytes_(row_bytes), lineBytes_(line_bytes), rows_(rows),
      linesPerRow_(row_bytes / line_bytes), xorBanks_(xor_banks)
{
    STFM_ASSERT(row_bytes % line_bytes == 0,
                "row size must be a multiple of the line size");
    log2Exact(bank_groups, "bank group count must be a power of two");
    STFM_ASSERT(bank_groups <= banks && banks % bank_groups == 0,
                "bank group count must divide the bank count");
    const unsigned line_bits = log2Exact(line_bytes, "line size");
    const unsigned channel_bits =
        log2Exact(channels, "channel count must be a power of two");
    const unsigned column_bits =
        log2Exact(linesPerRow_, "lines per row must be a power of two");
    const unsigned bank_bits =
        log2Exact(banks, "bank count must be a power of two");
    log2Exact(rows, "row count must be a power of two");

    channelShift_ = line_bits;
    columnShift_ = channelShift_ + channel_bits;
    bankShift_ = columnShift_ + column_bits;
    rowShift_ = bankShift_ + bank_bits;

    channelMask_ = channels_ - 1;
    columnMask_ = linesPerRow_ - 1;
    bankMask_ = banks_ - 1;
    rowMask_ = rows_ - 1;
}

AddrDecode
AddressMapping::decode(Addr addr) const
{
    AddrDecode out;
    out.channel = static_cast<ChannelId>((addr >> channelShift_) &
                                         channelMask_);
    out.column = static_cast<ColumnId>((addr >> columnShift_) &
                                       columnMask_);
    out.row = static_cast<RowId>((addr >> rowShift_) & rowMask_);
    std::uint64_t bank = (addr >> bankShift_) & bankMask_;
    if (xorBanks_)
        bank ^= out.row & bankMask_;
    out.bank = static_cast<BankId>(bank);
    return out;
}

Addr
AddressMapping::compose(const AddrDecode &coords) const
{
    STFM_ASSERT(coords.channel < channels_, "channel out of range");
    STFM_ASSERT(coords.bank < banks_, "bank out of range");
    STFM_ASSERT(coords.row < rows_, "row out of range");
    STFM_ASSERT(coords.column < linesPerRow_, "column out of range");
    std::uint64_t bank = coords.bank;
    if (xorBanks_)
        bank ^= coords.row & bankMask_; // XOR is its own inverse.
    Addr addr = 0;
    addr |= static_cast<Addr>(coords.channel) << channelShift_;
    addr |= static_cast<Addr>(coords.column) << columnShift_;
    addr |= static_cast<Addr>(bank) << bankShift_;
    addr |= static_cast<Addr>(coords.row) << rowShift_;
    return addr;
}

std::uint64_t
AddressMapping::capacityBytes() const
{
    return static_cast<std::uint64_t>(channels_) * banks_ * rows_ *
           rowBytes_;
}

} // namespace stfm
