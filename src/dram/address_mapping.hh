/**
 * @file
 * Physical address to DRAM coordinate mapping.
 *
 * Bit layout, from least significant:
 *
 *   | line offset | channel | column | bank | row |
 *
 * Cache-line interleaving across channels keeps per-thread bandwidth
 * scaling with channel count (the paper scales channels with cores).
 * Within a channel, column bits come below bank bits so that a
 * consecutive-line stream stays inside one row (open-page friendly).
 *
 * Bank index can optionally be permuted with the low row bits
 * (XOR-based mapping, Frailong et al. / Zhang et al., the scheme the
 * paper's baseline controller uses) to spread row-conflicting strides
 * across banks.
 *
 * compose() is the exact inverse of decode(); the synthetic workload
 * generator uses it to build address streams that target specific
 * (bank, row) coordinates regardless of the mapping scheme.
 */

#ifndef STFM_DRAM_ADDRESS_MAPPING_HH
#define STFM_DRAM_ADDRESS_MAPPING_HH

#include <cstdint>

#include "common/types.hh"

namespace stfm
{

/** Decoded DRAM coordinates of a physical address. */
struct AddrDecode
{
    ChannelId channel = 0;
    BankId bank = 0;
    RowId row = 0;
    ColumnId column = 0;

    bool operator==(const AddrDecode &other) const = default;
};

/** Geometry + mapping scheme for one memory system. */
class AddressMapping
{
  public:
    /**
     * @param channels     Number of independent channels (power of two).
     * @param banks        Banks per channel (power of two).
     * @param row_bytes    Effective row-buffer size across the DIMM's
     *                     chips (paper baseline: 2 KB/chip x 8 = 16 KB).
     * @param line_bytes   Cache line size (64 B).
     * @param rows         Rows per bank (power of two).
     * @param xor_banks    Enable XOR-based bank index permutation.
     * @param bank_groups  Bank groups per rank (power of two dividing
     *                     the bank count; 1 = no bank-group split).
     */
    AddressMapping(unsigned channels, unsigned banks,
                   std::uint64_t row_bytes, std::uint64_t line_bytes,
                   std::uint64_t rows, bool xor_banks,
                   unsigned bank_groups = 1);

    /** Decode a physical address into DRAM coordinates. */
    AddrDecode decode(Addr addr) const;

    /** Inverse of decode(); returns the line-aligned address. */
    Addr compose(const AddrDecode &coords) const;

    unsigned channels() const { return channels_; }
    unsigned banksPerChannel() const { return banks_; }
    unsigned bankGroups() const { return bankGroups_; }
    /** Bank group of a bank index. Banks interleave round-robin
     *  across groups so consecutive bank indices land in different
     *  groups (the DDR4-friendly ordering: back-to-back streams pay
     *  the short cross-group constraints, not the long ones). */
    unsigned groupOf(BankId bank) const { return bank % bankGroups_; }
    std::uint64_t rowsPerBank() const { return rows_; }
    std::uint64_t linesPerRow() const { return linesPerRow_; }
    std::uint64_t lineBytes() const { return lineBytes_; }
    std::uint64_t rowBytes() const { return rowBytes_; }

    /** Total bytes addressable before coordinates wrap. */
    std::uint64_t capacityBytes() const;

  private:
    unsigned channels_;
    unsigned banks_;
    unsigned bankGroups_;
    std::uint64_t rowBytes_;
    std::uint64_t lineBytes_;
    std::uint64_t rows_;
    std::uint64_t linesPerRow_;
    bool xorBanks_;

    unsigned channelShift_, columnShift_, bankShift_, rowShift_;
    std::uint64_t channelMask_, columnMask_, bankMask_, rowMask_;
};

} // namespace stfm

#endif // STFM_DRAM_ADDRESS_MAPPING_HH
