#include "dram/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

DramChannel::DramChannel(unsigned num_banks, const DramTiming &timing)
    : timing_(timing), banks_(num_banks)
{
    STFM_ASSERT(num_banks > 0, "channel needs at least one bank");
    STFM_ASSERT(timing.valid(), "inconsistent DRAM timing parameters");
    actWindow_.fill(0);
}

RowBufferState
DramChannel::rowState(BankId b, RowId row) const
{
    return banks_[b].rowState(row);
}

bool
DramChannel::allBanksClosed() const
{
    for (const Bank &bank : banks_) {
        if (bank.openRow() != kInvalidRow)
            return false;
    }
    return true;
}

DramCycles
DramChannel::refreshAll(DramCycles now)
{
    STFM_ASSERT(allBanksClosed(),
                "refresh requires precharged banks (cycle %llu)",
                static_cast<unsigned long long>(now));
    if (observer_)
        observer_->onRefresh(now);
    const DramCycles done = now + timing_.tRFC;
    for (Bank &bank : banks_)
        bank.blockUntil(done);
    ++stats_.refreshes;
    return done;
}

bool
DramChannel::canIssue(DramCommand cmd, BankId b, RowId row,
                      DramCycles now) const
{
    if (!banks_[b].canIssue(cmd, row, now))
        return false;

    switch (cmd) {
      case DramCommand::Activate: {
        if (now < actAllowedAt_)
            return false;
        // tFAW: the fourth-oldest activate must be at least tFAW ago.
        if (actCount_ < actWindow_.size())
            return true;
        return now >= actWindow_[actWindowIdx_] + timing_.tFAW;
      }
      case DramCommand::Precharge:
        return true;
      case DramCommand::Read:
        if (now < readAllowedAt_)
            return false;
        return now + timing_.tCL >= dataBusFreeAt_;
      case DramCommand::Write:
        return now + timing_.tWL >= dataBusFreeAt_;
    }
    return false;
}

DramCycles
DramChannel::issue(DramCommand cmd, BankId b, RowId row, DramCycles now)
{
    STFM_ASSERT(canIssue(cmd, b, row, now),
                "channel: illegal %s issue to bank %u row %u at cycle "
                "%llu",
                toString(cmd), b, row,
                static_cast<unsigned long long>(now));
    if (observer_)
        observer_->onCommand(cmd, b, row, now);
    banks_[b].issue(cmd, row, now, timing_);

    switch (cmd) {
      case DramCommand::Activate:
        ++stats_.activates;
        actAllowedAt_ = now + timing_.tRRD;
        actWindow_[actWindowIdx_] = now;
        actWindowIdx_ = (actWindowIdx_ + 1) % actWindow_.size();
        ++actCount_;
        return now + timing_.tRCD;
      case DramCommand::Precharge:
        ++stats_.precharges;
        return now + timing_.tRP;
      case DramCommand::Read: {
        ++stats_.reads;
        const DramCycles data_end = now + timing_.tCL + timing_.burst;
        dataBusFreeAt_ = data_end;
        stats_.dataBusBusyCycles += timing_.burst;
        return data_end;
      }
      case DramCommand::Write: {
        ++stats_.writes;
        const DramCycles data_end = now + timing_.tWL + timing_.burst;
        dataBusFreeAt_ = data_end;
        // tWTR applies from the end of write data to the next read.
        readAllowedAt_ = std::max(readAllowedAt_, data_end + timing_.tWTR);
        stats_.dataBusBusyCycles += timing_.burst;
        return data_end;
      }
    }
    STFM_PANIC("unreachable");
}

} // namespace stfm
