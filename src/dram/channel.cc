#include "dram/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

DramChannel::DramChannel(unsigned num_banks, const DramTiming &timing,
                         unsigned bank_groups)
    : timing_(timing), banks_(num_banks), bankGroups_(bank_groups)
{
    STFM_ASSERT(num_banks > 0, "channel needs at least one bank");
    STFM_ASSERT(timing.valid(), "inconsistent DRAM timing parameters");
    STFM_ASSERT(bank_groups >= 1 && num_banks % bank_groups == 0,
                "bank group count must divide the bank count");
    actWindow_.fill(0);
    if (bankGroups_ > 1) {
        actGroupAllowedAt_.assign(bankGroups_, 0);
        colGroupAllowedAt_.assign(bankGroups_, 0);
        wtrReadAllowedAt_.assign(bankGroups_, 0);
    }
}

RowBufferState
DramChannel::rowState(BankId b, RowId row) const
{
    return banks_[b].rowState(row);
}

bool
DramChannel::allBanksClosed() const
{
    for (const Bank &bank : banks_) {
        if (bank.openRow() != kInvalidRow)
            return false;
    }
    return true;
}

DramCycles
DramChannel::refreshAll(DramCycles now)
{
    STFM_ASSERT(allBanksClosed(),
                "refresh requires precharged banks (cycle %llu)",
                static_cast<unsigned long long>(now));
    for (unsigned i = 0; i < numObservers_; ++i)
        observers_[i]->onRefresh(now);
    const DramCycles done = now + timing_.tRFC;
    for (Bank &bank : banks_)
        bank.blockUntil(done);
    ++stats_.refreshes;
    return done;
}

namespace
{

/** max(a - b, 0) on the unsigned cycle domain. */
DramCycles
cyclesBefore(DramCycles at, DramCycles lead)
{
    return at > lead ? at - lead : 0;
}

} // namespace

DramCycles
DramChannel::earliestIssue(DramCommand cmd, BankId b) const
{
    const Bank &bank = banks_[b];
    const bool grouped = bankGroups_ > 1;
    const unsigned g = grouped ? groupOf(b) : 0;
    switch (cmd) {
      case DramCommand::Activate: {
        DramCycles at = std::max(bank.actAllowedAt(),
                                 grouped ? actGroupAllowedAt_[g]
                                         : actAllowedAt_);
        // tFAW: the fourth-oldest activate must be at least tFAW ago.
        if (actCount_ >= actWindow_.size())
            at = std::max(at, actWindow_[actWindowIdx_] + timing_.tFAW);
        return at;
      }
      case DramCommand::Precharge:
        return bank.preAllowedAt();
      case DramCommand::Read: {
        // The data burst starts tCL after the command; it may not
        // overlap the bus, so the command may go tCL early at most.
        DramCycles at = std::max(bank.readAllowedAt(),
                                 grouped ? wtrReadAllowedAt_[g]
                                         : readAllowedAt_);
        if (grouped)
            at = std::max(at, colGroupAllowedAt_[g]);
        return std::max(at, cyclesBefore(dataBusFreeAt_, timing_.tCL));
      }
      case DramCommand::Write: {
        DramCycles at = bank.writeAllowedAt();
        if (grouped)
            at = std::max(at, colGroupAllowedAt_[g]);
        return std::max(at, cyclesBefore(dataBusFreeAt_, timing_.tWL));
      }
    }
    STFM_PANIC("unreachable");
}

bool
DramChannel::canIssue(DramCommand cmd, BankId b, RowId row,
                      DramCycles now) const
{
    // Row-buffer state admissibility; the timing side is delegated to
    // earliestIssue() so the two can never disagree.
    const RowId open = banks_[b].openRow();
    switch (cmd) {
      case DramCommand::Activate:
        if (open != kInvalidRow)
            return false;
        break;
      case DramCommand::Precharge:
        if (open == kInvalidRow)
            return false;
        break;
      case DramCommand::Read:
      case DramCommand::Write:
        if (open != row)
            return false;
        break;
    }
    return now >= earliestIssue(cmd, b);
}

void
DramChannel::bumpColumnWindows(unsigned g, DramCycles now)
{
    for (unsigned h = 0; h < bankGroups_; ++h) {
        const DramCycles gap = h == g ? timing_.tCCD : timing_.tCCD_S;
        colGroupAllowedAt_[h] = std::max(colGroupAllowedAt_[h], now + gap);
    }
}

DramCycles
DramChannel::issue(DramCommand cmd, BankId b, RowId row, DramCycles now)
{
    STFM_ASSERT(canIssue(cmd, b, row, now),
                "channel: illegal %s issue to bank %u row %u at cycle "
                "%llu",
                toString(cmd), b, row,
                static_cast<unsigned long long>(now));
    for (unsigned i = 0; i < numObservers_; ++i)
        observers_[i]->onCommand(cmd, b, row, now);

    const bool grouped = bankGroups_ > 1;
    const unsigned g = grouped ? groupOf(b) : 0;

    // tFAW accounting: the activate counts as FAW-limited when the
    // four-activate window was its binding constraint, i.e. the window
    // bound exceeds every other lower bound on its issue time. Read
    // before the bank issue below advances the bank's own bounds.
    if (cmd == DramCommand::Activate && actCount_ >= actWindow_.size()) {
        const DramCycles faw_bound =
            actWindow_[actWindowIdx_] + timing_.tFAW;
        const DramCycles other_bound =
            std::max(banks_[b].actAllowedAt(),
                     grouped ? actGroupAllowedAt_[g] : actAllowedAt_);
        if (faw_bound > other_bound)
            ++stats_.fawLimitedActs;
    }

    banks_[b].issue(cmd, row, now, timing_);

    switch (cmd) {
      case DramCommand::Activate:
        ++stats_.activates;
        if (grouped) {
            for (unsigned h = 0; h < bankGroups_; ++h) {
                const DramCycles gap =
                    h == g ? timing_.tRRD : timing_.tRRD_S;
                actGroupAllowedAt_[h] =
                    std::max(actGroupAllowedAt_[h], now + gap);
            }
        } else {
            actAllowedAt_ = now + timing_.tRRD;
        }
        actWindow_[actWindowIdx_] = now;
        actWindowIdx_ = (actWindowIdx_ + 1) % actWindow_.size();
        ++actCount_;
        return now + timing_.tRCD;
      case DramCommand::Precharge:
        ++stats_.precharges;
        return now + timing_.tRP;
      case DramCommand::Read: {
        ++stats_.reads;
        const DramCycles data_end = now + timing_.tCL + timing_.burst;
        dataBusFreeAt_ = data_end;
        if (grouped)
            bumpColumnWindows(g, now);
        stats_.dataBusBusyCycles += timing_.burst;
        return data_end;
      }
      case DramCommand::Write: {
        ++stats_.writes;
        const DramCycles data_end = now + timing_.tWL + timing_.burst;
        dataBusFreeAt_ = data_end;
        // tWTR applies from the end of write data to the next read.
        if (grouped) {
            bumpColumnWindows(g, now);
            for (unsigned h = 0; h < bankGroups_; ++h) {
                const DramCycles gap =
                    h == g ? timing_.tWTR : timing_.tWTR_S;
                wtrReadAllowedAt_[h] =
                    std::max(wtrReadAllowedAt_[h], data_end + gap);
            }
        } else {
            readAllowedAt_ =
                std::max(readAllowedAt_, data_end + timing_.tWTR);
        }
        stats_.dataBusBusyCycles += timing_.burst;
        return data_end;
      }
    }
    STFM_PANIC("unreachable");
}

} // namespace stfm
