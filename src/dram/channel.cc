#include "dram/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

DramChannel::DramChannel(unsigned num_banks, const DramTiming &timing)
    : timing_(timing), banks_(num_banks)
{
    STFM_ASSERT(num_banks > 0, "channel needs at least one bank");
    STFM_ASSERT(timing.valid(), "inconsistent DRAM timing parameters");
    actWindow_.fill(0);
}

RowBufferState
DramChannel::rowState(BankId b, RowId row) const
{
    return banks_[b].rowState(row);
}

bool
DramChannel::allBanksClosed() const
{
    for (const Bank &bank : banks_) {
        if (bank.openRow() != kInvalidRow)
            return false;
    }
    return true;
}

DramCycles
DramChannel::refreshAll(DramCycles now)
{
    STFM_ASSERT(allBanksClosed(),
                "refresh requires precharged banks (cycle %llu)",
                static_cast<unsigned long long>(now));
    for (unsigned i = 0; i < numObservers_; ++i)
        observers_[i]->onRefresh(now);
    const DramCycles done = now + timing_.tRFC;
    for (Bank &bank : banks_)
        bank.blockUntil(done);
    ++stats_.refreshes;
    return done;
}

namespace
{

/** max(a - b, 0) on the unsigned cycle domain. */
DramCycles
cyclesBefore(DramCycles at, DramCycles lead)
{
    return at > lead ? at - lead : 0;
}

} // namespace

DramCycles
DramChannel::earliestIssue(DramCommand cmd, BankId b) const
{
    const Bank &bank = banks_[b];
    switch (cmd) {
      case DramCommand::Activate: {
        DramCycles at = std::max(bank.actAllowedAt(), actAllowedAt_);
        // tFAW: the fourth-oldest activate must be at least tFAW ago.
        if (actCount_ >= actWindow_.size())
            at = std::max(at, actWindow_[actWindowIdx_] + timing_.tFAW);
        return at;
      }
      case DramCommand::Precharge:
        return bank.preAllowedAt();
      case DramCommand::Read: {
        // The data burst starts tCL after the command; it may not
        // overlap the bus, so the command may go tCL early at most.
        DramCycles at = std::max(bank.readAllowedAt(), readAllowedAt_);
        return std::max(at, cyclesBefore(dataBusFreeAt_, timing_.tCL));
      }
      case DramCommand::Write:
        return std::max(bank.writeAllowedAt(),
                        cyclesBefore(dataBusFreeAt_, timing_.tWL));
    }
    STFM_PANIC("unreachable");
}

bool
DramChannel::canIssue(DramCommand cmd, BankId b, RowId row,
                      DramCycles now) const
{
    // Row-buffer state admissibility; the timing side is delegated to
    // earliestIssue() so the two can never disagree.
    const RowId open = banks_[b].openRow();
    switch (cmd) {
      case DramCommand::Activate:
        if (open != kInvalidRow)
            return false;
        break;
      case DramCommand::Precharge:
        if (open == kInvalidRow)
            return false;
        break;
      case DramCommand::Read:
      case DramCommand::Write:
        if (open != row)
            return false;
        break;
    }
    return now >= earliestIssue(cmd, b);
}

DramCycles
DramChannel::issue(DramCommand cmd, BankId b, RowId row, DramCycles now)
{
    STFM_ASSERT(canIssue(cmd, b, row, now),
                "channel: illegal %s issue to bank %u row %u at cycle "
                "%llu",
                toString(cmd), b, row,
                static_cast<unsigned long long>(now));
    for (unsigned i = 0; i < numObservers_; ++i)
        observers_[i]->onCommand(cmd, b, row, now);

    // tFAW accounting: the activate counts as FAW-limited when the
    // four-activate window was its binding constraint, i.e. the window
    // bound exceeds every other lower bound on its issue time. Read
    // before the bank issue below advances the bank's own bounds.
    if (cmd == DramCommand::Activate && actCount_ >= actWindow_.size()) {
        const DramCycles faw_bound =
            actWindow_[actWindowIdx_] + timing_.tFAW;
        if (faw_bound > std::max(banks_[b].actAllowedAt(), actAllowedAt_))
            ++stats_.fawLimitedActs;
    }

    banks_[b].issue(cmd, row, now, timing_);

    switch (cmd) {
      case DramCommand::Activate:
        ++stats_.activates;
        actAllowedAt_ = now + timing_.tRRD;
        actWindow_[actWindowIdx_] = now;
        actWindowIdx_ = (actWindowIdx_ + 1) % actWindow_.size();
        ++actCount_;
        return now + timing_.tRCD;
      case DramCommand::Precharge:
        ++stats_.precharges;
        return now + timing_.tRP;
      case DramCommand::Read: {
        ++stats_.reads;
        const DramCycles data_end = now + timing_.tCL + timing_.burst;
        dataBusFreeAt_ = data_end;
        stats_.dataBusBusyCycles += timing_.burst;
        return data_end;
      }
      case DramCommand::Write: {
        ++stats_.writes;
        const DramCycles data_end = now + timing_.tWL + timing_.burst;
        dataBusFreeAt_ = data_end;
        // tWTR applies from the end of write data to the next read.
        readAllowedAt_ = std::max(readAllowedAt_, data_end + timing_.tWTR);
        stats_.dataBusBusyCycles += timing_.burst;
        return data_end;
      }
    }
    STFM_PANIC("unreachable");
}

} // namespace stfm
