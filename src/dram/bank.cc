#include "dram/bank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stfm
{

RowBufferState
Bank::rowState(RowId row) const
{
    if (openRow_ == kInvalidRow)
        return RowBufferState::Closed;
    return openRow_ == row ? RowBufferState::Hit : RowBufferState::Conflict;
}

bool
Bank::canIssue(DramCommand cmd, RowId row, DramCycles now) const
{
    switch (cmd) {
      case DramCommand::Activate:
        return openRow_ == kInvalidRow && now >= actAllowedAt_;
      case DramCommand::Precharge:
        return openRow_ != kInvalidRow && now >= preAllowedAt_;
      case DramCommand::Read:
        return openRow_ == row && now >= readAllowedAt_;
      case DramCommand::Write:
        return openRow_ == row && now >= writeAllowedAt_;
    }
    return false;
}

void
Bank::blockUntil(DramCycles until)
{
    STFM_ASSERT(openRow_ == kInvalidRow,
                "refreshing a bank with row %u open", openRow_);
    actAllowedAt_ = std::max(actAllowedAt_, until);
}

void
Bank::issue(DramCommand cmd, RowId row, DramCycles now,
            const DramTiming &timing)
{
    STFM_ASSERT(canIssue(cmd, row, now),
                "illegal %s issue to row %u at cycle %llu (open row %u)",
                toString(cmd), row,
                static_cast<unsigned long long>(now), openRow_);
    switch (cmd) {
      case DramCommand::Activate:
        openRow_ = row;
        ++activations_;
        readAllowedAt_ = std::max(readAllowedAt_, now + timing.tRCD);
        writeAllowedAt_ = std::max(writeAllowedAt_, now + timing.tRCD);
        preAllowedAt_ = std::max(preAllowedAt_, now + timing.tRAS);
        actAllowedAt_ = std::max(actAllowedAt_, now + timing.tRC);
        break;
      case DramCommand::Precharge:
        openRow_ = kInvalidRow;
        actAllowedAt_ = std::max(actAllowedAt_, now + timing.tRP);
        break;
      case DramCommand::Read:
        // Read-to-precharge spacing: the burst must clear the sense amps.
        preAllowedAt_ =
            std::max(preAllowedAt_, now + timing.burst + timing.tRTP);
        readAllowedAt_ = std::max(readAllowedAt_, now + timing.tCCD);
        writeAllowedAt_ = std::max(writeAllowedAt_, now + timing.tCCD);
        break;
      case DramCommand::Write:
        // Write recovery: data must be restored before precharge.
        preAllowedAt_ = std::max(
            preAllowedAt_, now + timing.tWL + timing.burst + timing.tWR);
        readAllowedAt_ = std::max(
            readAllowedAt_, now + timing.tWL + timing.burst + timing.tWTR);
        writeAllowedAt_ = std::max(writeAllowedAt_, now + timing.tCCD);
        break;
    }
}

} // namespace stfm
