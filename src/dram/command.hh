/**
 * @file
 * DRAM command vocabulary.
 *
 * The controller translates each memory request into a sequence of these
 * commands depending on the target bank's row-buffer state:
 *   row hit      -> READ/WRITE
 *   row closed   -> ACTIVATE, READ/WRITE
 *   row conflict -> PRECHARGE, ACTIVATE, READ/WRITE
 */

#ifndef STFM_DRAM_COMMAND_HH
#define STFM_DRAM_COMMAND_HH

#include "common/types.hh"

namespace stfm
{

/** The four page-mode DRAM commands the controller issues. */
enum class DramCommand
{
    Activate,  ///< Open a row into the bank's row buffer.
    Precharge, ///< Write the row buffer back; close the bank.
    Read,      ///< Column read from the open row.
    Write,     ///< Column write into the open row.
};

/** True for the column-access (CAS) commands. */
inline bool
isColumnCommand(DramCommand cmd)
{
    return cmd == DramCommand::Read || cmd == DramCommand::Write;
}

/** True for the row-access commands (activate/precharge). */
inline bool
isRowCommand(DramCommand cmd)
{
    return !isColumnCommand(cmd);
}

/** Row-buffer state categories a request can encounter (Section 2.1). */
enum class RowBufferState
{
    Hit,      ///< Requested row is open in the row buffer.
    Closed,   ///< No row is open.
    Conflict, ///< A different row is open.
};

const char *toString(DramCommand cmd);
const char *toString(RowBufferState state);

} // namespace stfm

#endif // STFM_DRAM_COMMAND_HH
