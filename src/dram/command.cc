#include "dram/command.hh"

namespace stfm
{

const char *
toString(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::Activate: return "ACT";
      case DramCommand::Precharge: return "PRE";
      case DramCommand::Read: return "RD";
      case DramCommand::Write: return "WR";
    }
    return "?";
}

const char *
toString(RowBufferState state)
{
    switch (state) {
      case RowBufferState::Hit: return "hit";
      case RowBufferState::Closed: return "closed";
      case RowBufferState::Conflict: return "conflict";
    }
    return "?";
}

} // namespace stfm
