/**
 * @file
 * Memory performance attack demo (the scenario of Moscibroda & Mutlu's
 * USENIX Security '07 paper, which motivates STFM): a deliberately
 * crafted "memory hog" — a high-intensity streaming kernel with perfect
 * row-buffer locality — denies DRAM service to ordinary applications
 * under the throughput-oriented FR-FCFS scheduler. STFM defuses the
 * attack by bounding the victims' slowdown.
 *
 * The hog is an inline benchmark in the spec's "benchmarks" section —
 * a raw TraceProfile registered under a name, showing how custom
 * workloads plug into the declarative layer (slowdowns are still
 * measured against each thread's own alone run).
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"

int
main()
{
    using namespace stfm;

    // The attacker: saturating, perfectly row-local, store-heavy, with
    // streams covering every bank. mpki 120 is far beyond any SPEC
    // benchmark.
    const ExperimentSpec spec = specFromText(R"({
        "name": "malicious_dos",
        "title": "Memory performance attack: a streaming hog vs three ordinary applications",
        "benchmarks": {
            "hog": {"mpki": 120, "rowBufferHitRate": 0.99,
                    "burstDuty": 1.0, "burstLength": 128,
                    "streamCount": 8, "storeFraction": 0.5,
                    "dependentFraction": 0.0, "hitAccessesPer1k": 0.0}
        },
        "workloads": [["hog", "omnetpp", "hmmer", "h264ref"]],
        "schedulers": ["FR-FCFS", "STFM"],
        "budget": 40000
    })");

    const ExperimentResult result = runExperiment(spec);
    printExperiment(result, std::cout, ReportStyle::CaseStudy);

    // The per-thread detail: how much DRAM service the hog extracted.
    for (std::size_t s = 0; s < result.schedulers.size(); ++s) {
        const RunOutcome &o = result.outcome(0, s);
        std::printf("\n%s: hog IPC %.3f (%llu DRAM reads), omnetpp "
                    "slowdown %.2fx\n",
                    result.schedulers[s].label.c_str(),
                    o.shared.threads[0].ipc(),
                    static_cast<unsigned long long>(
                        o.shared.threads[0].dramReads),
                    o.metrics.slowdowns[1]);
    }
    std::printf("\nSTFM bounds the victims' slowdown without any OS "
                "involvement; FR-FCFS lets the hog monopolize the "
                "row buffers.\n");
    return 0;
}
