/**
 * @file
 * Memory performance attack demo (the scenario of Moscibroda & Mutlu's
 * USENIX Security '07 paper, which motivates STFM): a deliberately
 * crafted "memory hog" — a high-intensity streaming kernel with perfect
 * row-buffer locality — denies DRAM service to ordinary applications
 * under the throughput-oriented FR-FCFS scheduler. STFM defuses the
 * attack by bounding the victims' slowdown.
 *
 * The hog is built directly from a TraceProfile (not the SPEC catalog)
 * to show how custom workloads plug into the simulator.
 */

#include <cstdio>
#include <memory>

#include "sim/system.hh"
#include "trace/catalog.hh"
#include "trace/generator.hh"

using namespace stfm;

namespace
{

/** The attacker: saturating, perfectly row-local, store-heavy. */
TraceProfile
hogProfile()
{
    TraceProfile hog;
    hog.mpki = 120.0;           // Far beyond any SPEC benchmark.
    hog.rowBufferHitRate = 0.99;
    hog.burstDuty = 1.0;        // Never pauses.
    hog.burstLength = 128;
    hog.streamCount = 8;        // Covers every bank.
    hog.storeFraction = 0.5;
    hog.dependentFraction = 0.0;
    hog.hitAccessesPer1k = 0.0;
    return hog;
}

SimResult
runAttack(PolicyKind kind, double &victim_alone_mcpi)
{
    SimConfig config = SimConfig::baseline(4);
    config.instructionBudget = 40000;
    config.scheduler.kind = kind;

    AddressMapping mapping(config.memory.channels,
                           config.memory.banksPerChannel,
                           config.memory.rowBytes, config.memory.lineBytes,
                           config.memory.rowsPerBank,
                           config.memory.xorBankMapping);

    // One attacker, three ordinary victims from the catalog.
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(std::make_unique<SyntheticTraceGenerator>(
        hogProfile(), mapping, 0, 4, /*seed=*/0xbadf00d));
    const char *victims[] = {"omnetpp", "hmmer", "h264ref"};
    for (unsigned t = 0; t < 3; ++t) {
        traces.push_back(makeBenchmarkTrace(findBenchmark(victims[t]),
                                            mapping, t + 1, 4));
    }

    // Victim baseline (alone, FR-FCFS) for slowdown reporting.
    {
        SimConfig alone = config;
        alone.cores = 1;
        alone.scheduler = SchedulerConfig{};
        std::vector<std::unique_ptr<TraceSource>> solo;
        solo.push_back(makeBenchmarkTrace(findBenchmark("omnetpp"),
                                          mapping, 0, 1));
        CmpSystem system(alone, std::move(solo));
        victim_alone_mcpi = system.run().threads[0].mcpi();
    }

    CmpSystem system(config, std::move(traces));
    return system.run();
}

} // namespace

int
main()
{
    std::printf("Memory performance attack: a streaming hog vs three "
                "ordinary applications\n\n");
    for (const PolicyKind kind : {PolicyKind::FrFcfs, PolicyKind::Stfm}) {
        double omnetpp_alone = 0.0;
        const SimResult result = runAttack(kind, omnetpp_alone);
        const char *name =
            kind == PolicyKind::FrFcfs ? "FR-FCFS" : "STFM";
        std::printf("%s:\n", name);
        std::printf("  hog      IPC %.3f (%.0f DRAM reads serviced)\n",
                    result.threads[0].ipc(),
                    static_cast<double>(result.threads[0].dramReads));
        const char *victims[] = {"omnetpp", "hmmer", "h264ref"};
        for (unsigned t = 1; t < 4; ++t) {
            std::printf("  %-8s IPC %.3f, MCPI %.2f%s\n", victims[t - 1],
                        result.threads[t].ipc(), result.threads[t].mcpi(),
                        t == 1 ? " (see slowdown below)" : "");
        }
        std::printf("  omnetpp slowdown vs running alone: %.2fx\n\n",
                    result.threads[1].mcpi() / omnetpp_alone);
    }
    std::printf("STFM bounds the victims' slowdown without any OS "
                "involvement; FR-FCFS lets the hog monopolize the "
                "row buffers.\n");
    return 0;
}
