/**
 * @file
 * System-software QoS control (Section 3.3 of the paper): the OS
 * assigns thread weights through STFM's privileged interface, and the
 * scheduler enforces them — a foreground thread with weight 8 keeps
 * near-alone performance while equal-weight background threads share
 * the leftover bandwidth evenly. Also demonstrates the alpha knob:
 * with a huge alpha the hardware fairness rule is effectively off.
 */

#include <cstdio>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace stfm;

namespace
{

void
report(ExperimentRunner &runner, const Workload &workload,
       const SchedulerConfig &sched, const std::string &label,
       TextTable &table)
{
    const RunOutcome o = runner.run(workload, sched);
    std::vector<std::string> row{label};
    for (const double s : o.metrics.slowdowns)
        row.push_back(fmt(s));
    row.push_back(fmt(o.metrics.weightedSpeedup));
    table.addRow(std::move(row));
}

} // namespace

int
main()
{
    SimConfig base = SimConfig::baseline(4);
    base.instructionBudget = 50000;
    ExperimentRunner runner(base);

    // xalancbmk is the latency-sensitive foreground task; the other
    // three are background batch jobs.
    const Workload workload = {"xalancbmk", "mcf", "lbm", "GemsFDTD"};
    std::printf("QoS scenario: foreground %s vs three background "
                "jobs\n\n",
                workload[0].c_str());

    TextTable table({"configuration", workload[0] + " (fg)", workload[1],
                     workload[2], workload[3], "weighted-speedup"});

    SchedulerConfig fr_fcfs;
    report(runner, workload, fr_fcfs, "FR-FCFS (no QoS)", table);

    SchedulerConfig equal;
    equal.kind = PolicyKind::Stfm;
    report(runner, workload, equal, "STFM, equal weights", table);

    SchedulerConfig weighted;
    weighted.kind = PolicyKind::Stfm;
    weighted.weights = {8.0, 1.0, 1.0, 1.0};
    report(runner, workload, weighted, "STFM, fg weight 8", table);

    SchedulerConfig off;
    off.kind = PolicyKind::Stfm;
    off.alpha = 1000.0; // OS opts out of hardware fairness.
    report(runner, workload, off, "STFM, alpha=1000 (off)", table);

    table.print(std::cout);
    std::printf("\nWith weight 8 the foreground thread's slowdown "
                "drops toward 1x while the three weight-1 jobs remain "
                "mutually fair; alpha=1000 reproduces FR-FCFS "
                "behavior, as the paper's Figure 15 shows.\n");
    return 0;
}
