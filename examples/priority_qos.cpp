/**
 * @file
 * System-software QoS control (Section 3.3 of the paper): the OS
 * assigns thread weights through STFM's privileged interface, and the
 * scheduler enforces them — a foreground thread with weight 8 keeps
 * near-alone performance while equal-weight background threads share
 * the leftover bandwidth evenly. Also demonstrates the alpha knob:
 * with a huge alpha the hardware fairness rule is effectively off.
 *
 * The four configurations are one declarative spec: a scheduler list
 * with per-policy parameters and labels.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"

int
main()
{
    using namespace stfm;

    // xalancbmk is the latency-sensitive foreground task; the other
    // three are background batch jobs.
    const ExperimentSpec spec = specFromText(R"json({
        "name": "priority_qos",
        "title": "QoS scenario: foreground xalancbmk vs three background jobs",
        "workloads": [["xalancbmk", "mcf", "lbm", "GemsFDTD"]],
        "schedulers": [
            {"label": "FR-FCFS (no QoS)", "policy": "FR-FCFS"},
            {"label": "STFM, equal weights", "policy": "STFM"},
            {"label": "STFM, fg weight 8", "policy": "STFM",
             "weights": [8, 1, 1, 1]},
            {"label": "STFM, alpha=1000 (off)", "policy": "STFM",
             "alpha": 1000}
        ],
        "budget": 50000
    })json");

    printExperiment(runExperiment(spec), std::cout,
                    ReportStyle::CaseStudy);
    std::printf("\nWith weight 8 the foreground thread's slowdown "
                "drops toward 1x while the three weight-1 jobs remain "
                "mutually fair; alpha=1000 reproduces FR-FCFS "
                "behavior, as the paper's Figure 15 shows.\n");
    return 0;
}
