/**
 * @file
 * Quickstart: describe an experiment declaratively, run it, and read
 * both the human report and the machine-readable results.
 *
 * This is the 60-second tour of the experiment layer:
 *   1. Write an ExperimentSpec (here: inline JSON — the same schema
 *      `stfm run spec.json` accepts; see specs/ for checked-in files).
 *   2. runExperiment resolves baseline(cores) + overrides, handles
 *      alone-run baselines, and fans runs over a worker pool.
 *   3. printExperiment renders the classic report; resultsJson holds
 *      every metric plus the fully resolved configuration.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"

int
main()
{
    using namespace stfm;

    // mcf (memory hog) vs three lighter threads, FR-FCFS vs STFM, on
    // a 4-core CMP with the paper's Table 2 memory system.
    const ExperimentSpec spec = specFromText(R"({
        "name": "quickstart",
        "title": "Quickstart: mcf vs three lighter threads",
        "workloads": [["mcf", "libquantum", "h264ref", "omnetpp"]],
        "schedulers": ["FR-FCFS",
                       {"policy": "STFM", "alpha": 1.1}],
        "budget": 60000
    })");

    const ExperimentResult result = runExperiment(spec);
    printExperiment(result);

    // The same run as structured data: per-run metrics, per-thread
    // stats, and the resolved SimConfig echo.
    const Json results = resultsJson(result);
    std::printf("\nresults document: %zu runs, schema %s\n",
                results.at("runs", "results").size(),
                results.at("schema", "results")
                    .asString("schema")
                    .c_str());
    const Json &first = results.at("runs", "results").at(0);
    std::printf("first run: %s under %s, unfairness %.2f\n",
                spec.workloads.front().front().c_str(),
                first.at("scheduler", "run").asString("run").c_str(),
                first.at("metrics", "run")
                    .at("unfairness", "metrics")
                    .asDouble("unfairness"));
    return 0;
}
