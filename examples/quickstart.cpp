/**
 * @file
 * Quickstart: run one 4-core workload under FR-FCFS and STFM and print
 * each thread's memory slowdown and the system throughput metrics.
 *
 * This is the 60-second tour of the library:
 *   1. Build a baseline system config (SimConfig::baseline).
 *   2. Pick a workload (one benchmark per core, from the catalog).
 *   3. Let the ExperimentRunner handle alone-run baselines and metrics.
 */

#include <cstdio>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main()
{
    using namespace stfm;

    // A 4-core CMP with the paper's Table 2 memory system.
    SimConfig base = SimConfig::baseline(4);
    base.instructionBudget = 60000;
    ExperimentRunner runner(base);

    // mcf (memory hog) vs three lighter threads.
    const Workload workload = {"mcf", "libquantum", "h264ref", "omnetpp"};

    SchedulerConfig fr_fcfs;
    fr_fcfs.kind = PolicyKind::FrFcfs;
    SchedulerConfig stfm_cfg;
    stfm_cfg.kind = PolicyKind::Stfm;
    stfm_cfg.alpha = 1.10;

    std::printf("Workload: %s\n\n", workloadLabel(workload).c_str());

    TextTable table({"scheduler", "thread", "benchmark", "slowdown",
                     "IPC", "MCPI", "rowhit%", "lat p50/p99 (DRAM cyc)"});
    for (const auto &sched : {fr_fcfs, stfm_cfg}) {
        const RunOutcome outcome = runner.run(workload, sched);
        for (unsigned t = 0; t < workload.size(); ++t) {
            const ThreadResult &r = outcome.shared.threads[t];
            table.addRow({outcome.policyName, std::to_string(t),
                          workload[t], fmt(outcome.metrics.slowdowns[t]),
                          fmt(r.ipc()), fmt(r.mcpi()),
                          fmt(100.0 * r.rowHitRate(), 1),
                          std::to_string(r.readLatencyP50) + " / " +
                              std::to_string(r.readLatencyP99)});
        }
        std::printf("%s: unfairness %.2f, weighted speedup %.2f, "
                    "hmean speedup %.3f\n",
                    outcome.policyName.c_str(),
                    outcome.metrics.unfairness,
                    outcome.metrics.weightedSpeedup,
                    outcome.metrics.hmeanSpeedup);
    }
    std::printf("\n");
    table.print(std::cout);
    return 0;
}
