/**
 * @file
 * Scheduler face-off: run one workload (default: the paper's
 * mixed-behavior case study; or pass benchmark names on the command
 * line) under all five schedulers and print a compact comparison —
 * a handy way to explore the catalog interactively, e.g.:
 *
 *   scheduler_faceoff mcf libquantum omnetpp dealII
 */

#include <iostream>

#include "harness/experiment.hh"
#include "trace/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace stfm;

    Workload workload;
    for (int i = 1; i < argc; ++i)
        workload.push_back(argv[i]);
    if (workload.empty())
        workload = workloads::caseMixed();
    for (const auto &name : workload)
        findBenchmark(name); // Fail fast on typos (fatal with message).

    // An empty scheduler list means the paper's five policies.
    ExperimentSpec spec;
    spec.name = "Scheduler face-off";
    spec.workloads = {workload};
    spec.budget = 50000;
    printExperiment(runExperiment(spec), std::cout,
                    ReportStyle::CaseStudy);

    std::cout << "\nBenchmarks available:";
    for (const auto &profile : benchmarkCatalog())
        std::cout << ' ' << profile.name;
    for (const auto &profile : desktopCatalog())
        std::cout << ' ' << profile.name;
    std::cout << '\n';
    return 0;
}
