file(REMOVE_RECURSE
  "CMakeFiles/malicious_dos.dir/malicious_dos.cpp.o"
  "CMakeFiles/malicious_dos.dir/malicious_dos.cpp.o.d"
  "malicious_dos"
  "malicious_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
