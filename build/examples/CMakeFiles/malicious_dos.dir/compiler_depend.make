# Empty compiler generated dependencies file for malicious_dos.
# This may be replaced when dependencies are built.
