file(REMOVE_RECURSE
  "CMakeFiles/priority_qos.dir/priority_qos.cpp.o"
  "CMakeFiles/priority_qos.dir/priority_qos.cpp.o.d"
  "priority_qos"
  "priority_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
