# Empty dependencies file for priority_qos.
# This may be replaced when dependencies are built.
