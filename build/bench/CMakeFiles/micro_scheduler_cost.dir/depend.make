# Empty dependencies file for micro_scheduler_cost.
# This may be replaced when dependencies are built.
