# Empty dependencies file for fig14_thread_weights.
# This may be replaced when dependencies are built.
