file(REMOVE_RECURSE
  "CMakeFiles/fig14_thread_weights.dir/fig14_thread_weights.cc.o"
  "CMakeFiles/fig14_thread_weights.dir/fig14_thread_weights.cc.o.d"
  "fig14_thread_weights"
  "fig14_thread_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_thread_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
