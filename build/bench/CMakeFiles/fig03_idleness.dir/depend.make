# Empty dependencies file for fig03_idleness.
# This may be replaced when dependencies are built.
