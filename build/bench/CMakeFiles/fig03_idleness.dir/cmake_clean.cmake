file(REMOVE_RECURSE
  "CMakeFiles/fig03_idleness.dir/fig03_idleness.cc.o"
  "CMakeFiles/fig03_idleness.dir/fig03_idleness.cc.o.d"
  "fig03_idleness"
  "fig03_idleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_idleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
