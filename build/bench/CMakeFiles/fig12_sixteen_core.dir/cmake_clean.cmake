file(REMOVE_RECURSE
  "CMakeFiles/fig12_sixteen_core.dir/fig12_sixteen_core.cc.o"
  "CMakeFiles/fig12_sixteen_core.dir/fig12_sixteen_core.cc.o.d"
  "fig12_sixteen_core"
  "fig12_sixteen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sixteen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
