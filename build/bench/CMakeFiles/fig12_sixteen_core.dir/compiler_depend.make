# Empty compiler generated dependencies file for fig12_sixteen_core.
# This may be replaced when dependencies are built.
