file(REMOVE_RECURSE
  "CMakeFiles/fig13_desktop.dir/fig13_desktop.cc.o"
  "CMakeFiles/fig13_desktop.dir/fig13_desktop.cc.o.d"
  "fig13_desktop"
  "fig13_desktop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_desktop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
