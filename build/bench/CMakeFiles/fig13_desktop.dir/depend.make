# Empty dependencies file for fig13_desktop.
# This may be replaced when dependencies are built.
