# Empty compiler generated dependencies file for fig07_case_mixed.
# This may be replaced when dependencies are built.
