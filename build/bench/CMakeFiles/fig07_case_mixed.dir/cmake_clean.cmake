file(REMOVE_RECURSE
  "CMakeFiles/fig07_case_mixed.dir/fig07_case_mixed.cc.o"
  "CMakeFiles/fig07_case_mixed.dir/fig07_case_mixed.cc.o.d"
  "fig07_case_mixed"
  "fig07_case_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_case_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
