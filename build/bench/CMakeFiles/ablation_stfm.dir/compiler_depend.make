# Empty compiler generated dependencies file for ablation_stfm.
# This may be replaced when dependencies are built.
