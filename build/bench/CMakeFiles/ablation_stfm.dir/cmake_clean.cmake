file(REMOVE_RECURSE
  "CMakeFiles/ablation_stfm.dir/ablation_stfm.cc.o"
  "CMakeFiles/ablation_stfm.dir/ablation_stfm.cc.o.d"
  "ablation_stfm"
  "ablation_stfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
