file(REMOVE_RECURSE
  "CMakeFiles/table5_sensitivity.dir/table5_sensitivity.cc.o"
  "CMakeFiles/table5_sensitivity.dir/table5_sensitivity.cc.o.d"
  "table5_sensitivity"
  "table5_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
