# Empty compiler generated dependencies file for fig08_case_nonintensive.
# This may be replaced when dependencies are built.
