file(REMOVE_RECURSE
  "CMakeFiles/fig08_case_nonintensive.dir/fig08_case_nonintensive.cc.o"
  "CMakeFiles/fig08_case_nonintensive.dir/fig08_case_nonintensive.cc.o.d"
  "fig08_case_nonintensive"
  "fig08_case_nonintensive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_case_nonintensive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
