file(REMOVE_RECURSE
  "CMakeFiles/fig15_alpha_sweep.dir/fig15_alpha_sweep.cc.o"
  "CMakeFiles/fig15_alpha_sweep.dir/fig15_alpha_sweep.cc.o.d"
  "fig15_alpha_sweep"
  "fig15_alpha_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_alpha_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
