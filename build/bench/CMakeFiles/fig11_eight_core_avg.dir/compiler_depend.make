# Empty compiler generated dependencies file for fig11_eight_core_avg.
# This may be replaced when dependencies are built.
