file(REMOVE_RECURSE
  "CMakeFiles/fig11_eight_core_avg.dir/fig11_eight_core_avg.cc.o"
  "CMakeFiles/fig11_eight_core_avg.dir/fig11_eight_core_avg.cc.o.d"
  "fig11_eight_core_avg"
  "fig11_eight_core_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_eight_core_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
