file(REMOVE_RECURSE
  "CMakeFiles/fig09_four_core_avg.dir/fig09_four_core_avg.cc.o"
  "CMakeFiles/fig09_four_core_avg.dir/fig09_four_core_avg.cc.o.d"
  "fig09_four_core_avg"
  "fig09_four_core_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_four_core_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
