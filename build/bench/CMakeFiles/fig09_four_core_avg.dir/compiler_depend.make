# Empty compiler generated dependencies file for fig09_four_core_avg.
# This may be replaced when dependencies are built.
