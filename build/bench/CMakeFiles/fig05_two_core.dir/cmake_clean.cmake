file(REMOVE_RECURSE
  "CMakeFiles/fig05_two_core.dir/fig05_two_core.cc.o"
  "CMakeFiles/fig05_two_core.dir/fig05_two_core.cc.o.d"
  "fig05_two_core"
  "fig05_two_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_two_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
