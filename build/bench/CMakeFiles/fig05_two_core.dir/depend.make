# Empty dependencies file for fig05_two_core.
# This may be replaced when dependencies are built.
