file(REMOVE_RECURSE
  "CMakeFiles/fig06_case_intensive.dir/fig06_case_intensive.cc.o"
  "CMakeFiles/fig06_case_intensive.dir/fig06_case_intensive.cc.o.d"
  "fig06_case_intensive"
  "fig06_case_intensive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_case_intensive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
