# Empty compiler generated dependencies file for fig06_case_intensive.
# This may be replaced when dependencies are built.
