# Empty compiler generated dependencies file for fig10_eight_core_case.
# This may be replaced when dependencies are built.
