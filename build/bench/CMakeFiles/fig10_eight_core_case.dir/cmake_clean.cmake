file(REMOVE_RECURSE
  "CMakeFiles/fig10_eight_core_case.dir/fig10_eight_core_case.cc.o"
  "CMakeFiles/fig10_eight_core_case.dir/fig10_eight_core_case.cc.o.d"
  "fig10_eight_core_case"
  "fig10_eight_core_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_eight_core_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
