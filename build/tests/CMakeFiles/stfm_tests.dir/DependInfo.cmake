
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_mapping.cc" "tests/CMakeFiles/stfm_tests.dir/test_address_mapping.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_address_mapping.cc.o.d"
  "/root/repo/tests/test_bank.cc" "tests/CMakeFiles/stfm_tests.dir/test_bank.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_bank.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/stfm_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_catalog.cc" "tests/CMakeFiles/stfm_tests.dir/test_catalog.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_catalog.cc.o.d"
  "/root/repo/tests/test_channel.cc" "tests/CMakeFiles/stfm_tests.dir/test_channel.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_channel.cc.o.d"
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/stfm_tests.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_controller.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/stfm_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_fixed_point.cc" "tests/CMakeFiles/stfm_tests.dir/test_fixed_point.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_fixed_point.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/stfm_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_histogram.cc" "tests/CMakeFiles/stfm_tests.dir/test_histogram.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_histogram.cc.o.d"
  "/root/repo/tests/test_memory_system.cc" "tests/CMakeFiles/stfm_tests.dir/test_memory_system.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_memory_system.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/stfm_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_mshr.cc" "tests/CMakeFiles/stfm_tests.dir/test_mshr.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_mshr.cc.o.d"
  "/root/repo/tests/test_nfq.cc" "tests/CMakeFiles/stfm_tests.dir/test_nfq.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_nfq.cc.o.d"
  "/root/repo/tests/test_occupancy.cc" "tests/CMakeFiles/stfm_tests.dir/test_occupancy.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_occupancy.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/stfm_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/stfm_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_recorded.cc" "tests/CMakeFiles/stfm_tests.dir/test_recorded.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_recorded.cc.o.d"
  "/root/repo/tests/test_refresh.cc" "tests/CMakeFiles/stfm_tests.dir/test_refresh.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_refresh.cc.o.d"
  "/root/repo/tests/test_request_buffer.cc" "tests/CMakeFiles/stfm_tests.dir/test_request_buffer.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_request_buffer.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/stfm_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/stfm_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_slowdown_tracker.cc" "tests/CMakeFiles/stfm_tests.dir/test_slowdown_tracker.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_slowdown_tracker.cc.o.d"
  "/root/repo/tests/test_soak.cc" "tests/CMakeFiles/stfm_tests.dir/test_soak.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_soak.cc.o.d"
  "/root/repo/tests/test_stfm.cc" "tests/CMakeFiles/stfm_tests.dir/test_stfm.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_stfm.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/stfm_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/stfm_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/stfm_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_workloads.cc.o.d"
  "/root/repo/tests/test_write_buffer.cc" "tests/CMakeFiles/stfm_tests.dir/test_write_buffer.cc.o" "gcc" "tests/CMakeFiles/stfm_tests.dir/test_write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stfm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
