# Empty dependencies file for stfm_tests.
# This may be replaced when dependencies are built.
