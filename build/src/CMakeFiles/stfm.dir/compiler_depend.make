# Empty compiler generated dependencies file for stfm.
# This may be replaced when dependencies are built.
