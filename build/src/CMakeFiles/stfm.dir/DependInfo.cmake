
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/stfm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/stfm.dir/common/rng.cc.o.d"
  "/root/repo/src/core/slowdown_tracker.cc" "src/CMakeFiles/stfm.dir/core/slowdown_tracker.cc.o" "gcc" "src/CMakeFiles/stfm.dir/core/slowdown_tracker.cc.o.d"
  "/root/repo/src/core/stfm.cc" "src/CMakeFiles/stfm.dir/core/stfm.cc.o" "gcc" "src/CMakeFiles/stfm.dir/core/stfm.cc.o.d"
  "/root/repo/src/cpu/cache.cc" "src/CMakeFiles/stfm.dir/cpu/cache.cc.o" "gcc" "src/CMakeFiles/stfm.dir/cpu/cache.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/stfm.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/stfm.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/mshr.cc" "src/CMakeFiles/stfm.dir/cpu/mshr.cc.o" "gcc" "src/CMakeFiles/stfm.dir/cpu/mshr.cc.o.d"
  "/root/repo/src/dram/address_mapping.cc" "src/CMakeFiles/stfm.dir/dram/address_mapping.cc.o" "gcc" "src/CMakeFiles/stfm.dir/dram/address_mapping.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/stfm.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/stfm.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/CMakeFiles/stfm.dir/dram/channel.cc.o" "gcc" "src/CMakeFiles/stfm.dir/dram/channel.cc.o.d"
  "/root/repo/src/dram/command.cc" "src/CMakeFiles/stfm.dir/dram/command.cc.o" "gcc" "src/CMakeFiles/stfm.dir/dram/command.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/stfm.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/stfm.dir/dram/timing.cc.o.d"
  "/root/repo/src/harness/case_study.cc" "src/CMakeFiles/stfm.dir/harness/case_study.cc.o" "gcc" "src/CMakeFiles/stfm.dir/harness/case_study.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/stfm.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/stfm.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/sweep.cc" "src/CMakeFiles/stfm.dir/harness/sweep.cc.o" "gcc" "src/CMakeFiles/stfm.dir/harness/sweep.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/stfm.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/stfm.dir/harness/table.cc.o.d"
  "/root/repo/src/harness/workloads.cc" "src/CMakeFiles/stfm.dir/harness/workloads.cc.o" "gcc" "src/CMakeFiles/stfm.dir/harness/workloads.cc.o.d"
  "/root/repo/src/mem/controller.cc" "src/CMakeFiles/stfm.dir/mem/controller.cc.o" "gcc" "src/CMakeFiles/stfm.dir/mem/controller.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/stfm.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/stfm.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/request_buffer.cc" "src/CMakeFiles/stfm.dir/mem/request_buffer.cc.o" "gcc" "src/CMakeFiles/stfm.dir/mem/request_buffer.cc.o.d"
  "/root/repo/src/mem/write_buffer.cc" "src/CMakeFiles/stfm.dir/mem/write_buffer.cc.o" "gcc" "src/CMakeFiles/stfm.dir/mem/write_buffer.cc.o.d"
  "/root/repo/src/sched/fr_fcfs.cc" "src/CMakeFiles/stfm.dir/sched/fr_fcfs.cc.o" "gcc" "src/CMakeFiles/stfm.dir/sched/fr_fcfs.cc.o.d"
  "/root/repo/src/sched/fr_fcfs_cap.cc" "src/CMakeFiles/stfm.dir/sched/fr_fcfs_cap.cc.o" "gcc" "src/CMakeFiles/stfm.dir/sched/fr_fcfs_cap.cc.o.d"
  "/root/repo/src/sched/nfq.cc" "src/CMakeFiles/stfm.dir/sched/nfq.cc.o" "gcc" "src/CMakeFiles/stfm.dir/sched/nfq.cc.o.d"
  "/root/repo/src/sched/policy.cc" "src/CMakeFiles/stfm.dir/sched/policy.cc.o" "gcc" "src/CMakeFiles/stfm.dir/sched/policy.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/stfm.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/stfm.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/stfm.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/stfm.dir/sim/system.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/stfm.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/stfm.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "src/CMakeFiles/stfm.dir/stats/metrics.cc.o" "gcc" "src/CMakeFiles/stfm.dir/stats/metrics.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/stfm.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/stfm.dir/stats/summary.cc.o.d"
  "/root/repo/src/trace/catalog.cc" "src/CMakeFiles/stfm.dir/trace/catalog.cc.o" "gcc" "src/CMakeFiles/stfm.dir/trace/catalog.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/CMakeFiles/stfm.dir/trace/generator.cc.o" "gcc" "src/CMakeFiles/stfm.dir/trace/generator.cc.o.d"
  "/root/repo/src/trace/recorded.cc" "src/CMakeFiles/stfm.dir/trace/recorded.cc.o" "gcc" "src/CMakeFiles/stfm.dir/trace/recorded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
