file(REMOVE_RECURSE
  "libstfm.a"
)
