/**
 * @file
 * Unit tests for the STFM policy: mode switching, Tmax prioritization,
 * weighted slowdowns and the interference hooks.
 */

#include <gtest/gtest.h>

#include "core/stfm.hh"
#include "mem/occupancy.hh"

namespace stfm
{
namespace
{

Request
makeRequest(ThreadId thread, std::uint64_t seq, BankId bank = 0)
{
    Request req;
    req.thread = thread;
    req.seq = seq;
    req.coords.bank = bank;
    return req;
}

class StfmTest : public ::testing::Test
{
  protected:
    StfmTest() : occupancy_(4, 8)
    {
        StfmParams params;
        params.alpha = 1.10;
        params.quantize = false;
        policy_ = std::make_unique<StfmPolicy>(params, 4, 8);
        stall_.assign(4, 0);
    }

    SchedContext
    context(DramCycles now = 1)
    {
        SchedContext ctx;
        ctx.numThreads = 4;
        ctx.banksPerChannel = 8;
        ctx.timing = &timing_;
        ctx.occupancy = &occupancy_;
        ctx.stallCycles = &stall_;
        ctx.dramNow = now;
        ctx.cpuNow = now * 10;
        return ctx;
    }

    DramTiming timing_;
    ThreadBankOccupancy occupancy_;
    std::vector<Cycles> stall_;
    std::unique_ptr<StfmPolicy> policy_;
};

TEST_F(StfmTest, FrFcfsModeWhenFair)
{
    occupancy_.onArrive(0, 0, true);
    occupancy_.onArrive(1, 1, true);
    stall_ = {1000, 1000, 0, 0};
    policy_->beginCycle(context());
    EXPECT_FALSE(policy_->fairnessMode());
    EXPECT_NEAR(policy_->unfairness(), 1.0, 1e-9);

    // FR-FCFS rules apply: column beats row regardless of thread.
    const Request a = makeRequest(0, 1);
    const Request b = makeRequest(1, 9);
    const Candidate row{&a, DramCommand::Activate};
    const Candidate col{&b, DramCommand::Read};
    EXPECT_TRUE(policy_->higherPriority(col, row, context()));
}

TEST_F(StfmTest, FairnessModePrioritizesMostSlowedThread)
{
    occupancy_.onArrive(0, 0, true);
    occupancy_.onArrive(1, 1, true);
    stall_ = {1000, 1000, 0, 0};
    // Thread 1 suffered heavy interference: slowdown 2x.
    for (int i = 0; i < 50; ++i)
        ; // (interference injected below via the tracker path)
    // Inject via enqueue-blocked charges (1 CPU cycle each).
    for (int i = 0; i < 5000; ++i)
        policy_->onEnqueueBlocked(1, 0.1, context());
    policy_->beginCycle(context());
    ASSERT_TRUE(policy_->fairnessMode());
    EXPECT_EQ(policy_->hotThread(), 1u);

    // Tmax-first: even a row command from the hot thread beats a
    // column command from another.
    const Request cold = makeRequest(0, 1);
    const Request hot = makeRequest(1, 9);
    const Candidate col_cold{&cold, DramCommand::Read};
    const Candidate row_hot{&hot, DramCommand::Precharge};
    EXPECT_TRUE(policy_->higherPriority(row_hot, col_cold, context()));
}

TEST_F(StfmTest, ThreadsWithoutRequestsExcludedFromUnfairness)
{
    // Only thread 0 has outstanding requests; even with a huge
    // estimated slowdown there is no pair to be unfair to.
    occupancy_.onArrive(0, 0, true);
    stall_ = {10000, 0, 0, 0};
    for (int i = 0; i < 5000; ++i)
        policy_->onEnqueueBlocked(0, 1.0, context());
    policy_->beginCycle(context());
    EXPECT_FALSE(policy_->fairnessMode());
}

TEST_F(StfmTest, BusInterferenceChargedToReadyColumnLosers)
{
    // The per-event bus term is an ablation (off by default).
    StfmParams params;
    params.busInterference = true;
    params.quantize = false;
    StfmPolicy with_bus(params, 4, 8);

    const Request req = makeRequest(0, 1, 2);
    ColumnIssueEvent ev;
    ev.req = &req;
    ev.serviceState = RowBufferState::Hit;
    ev.bankLatency = timing_.tCL;
    ev.readyColumnThreads = 0b0110; // Threads 1 and 2 lost the bus.
    with_bus.onColumnCommand(ev, context());
    const double tbus_cpu = timing_.burst * 10.0;
    EXPECT_DOUBLE_EQ(with_bus.tracker().interferenceCycles(1), tbus_cpu);
    EXPECT_DOUBLE_EQ(with_bus.tracker().interferenceCycles(2), tbus_cpu);
    EXPECT_DOUBLE_EQ(with_bus.tracker().interferenceCycles(3), 0.0);
    EXPECT_DOUBLE_EQ(with_bus.tracker().interferenceCycles(0), 0.0);

    // Default configuration: no per-event bus charge.
    policy_->onColumnCommand(ev, context());
    EXPECT_DOUBLE_EQ(policy_->tracker().interferenceCycles(1), 0.0);
}

TEST_F(StfmTest, PerCycleChargeWhenForeignOccupiesBank)
{
    // Thread 1 waits (blocking) in bank 0 while thread 0 is in service
    // there, and thread 1 accrued 10 stall cycles this DRAM cycle.
    occupancy_.onArrive(0, 0, true);
    occupancy_.onColumnIssue(0, 0, true);
    occupancy_.onArrive(1, 0, true);
    stall_[1] = 10;
    policy_->beginCycle(context());
    // One DRAM cycle = 10 CPU cycles; blocked/bwp = 1/1.
    EXPECT_DOUBLE_EQ(policy_->tracker().interferenceCycles(1), 10.0);
    EXPECT_EQ(policy_->chargedCycles(1), 1u);
    // The servicing thread itself is not charged.
    EXPECT_DOUBLE_EQ(policy_->tracker().interferenceCycles(0), 0.0);
}

TEST_F(StfmTest, NoChargeBehindOwnAccess)
{
    occupancy_.onArrive(0, 0, true);
    occupancy_.onColumnIssue(0, 0, true); // Own request in service,
    occupancy_.onArrive(0, 0, true);      // another waiting behind it.
    policy_->beginCycle(context());
    EXPECT_DOUBLE_EQ(policy_->tracker().interferenceCycles(0), 0.0);
}

TEST_F(StfmTest, BusOccupancyCountsAsInterference)
{
    // Thread 0's burst occupies the channel bus until cycle 20.
    const Request req = makeRequest(0, 1, 5);
    ColumnIssueEvent ev;
    ev.req = &req;
    ev.serviceState = RowBufferState::Hit;
    ev.bankLatency = timing_.tCL;
    ev.busBusyUntil = 20;
    policy_->onColumnCommand(ev, context(10));
    occupancy_.onArrive(1, 3, true); // Waiting in an idle bank...
    stall_[1] = 10;                  // ...and actually stalling.
    policy_->beginCycle(context(15));
    // ...but the shared bus is busy with thread 0: charged.
    EXPECT_GT(policy_->tracker().interferenceCycles(1), 0.0);
}

TEST_F(StfmTest, WeightsBiasPrioritization)
{
    StfmParams params;
    params.alpha = 1.10;
    params.quantize = false;
    params.weights = {1.0, 8.0, 1.0, 1.0};
    StfmPolicy weighted(params, 4, 8);

    occupancy_.onArrive(0, 0, true);
    occupancy_.onArrive(1, 1, true);
    stall_ = {1000, 1000, 0, 0};
    // Equal raw interference, but thread 1's weight amplifies it.
    for (int i = 0; i < 100; ++i) {
        weighted.onEnqueueBlocked(0, 1.0, context());
        weighted.onEnqueueBlocked(1, 1.0, context());
    }
    weighted.beginCycle(context());
    ASSERT_TRUE(weighted.fairnessMode());
    EXPECT_EQ(weighted.hotThread(), 1u);
}

TEST_F(StfmTest, AlphaGovernsModeSwitch)
{
    StfmParams params;
    params.alpha = 100.0; // Effectively disables the fairness rule.
    params.quantize = false;
    StfmPolicy lenient(params, 4, 8);
    occupancy_.onArrive(0, 0, true);
    occupancy_.onArrive(1, 1, true);
    stall_ = {1000, 1000, 0, 0};
    for (int i = 0; i < 5000; ++i)
        lenient.onEnqueueBlocked(1, 1.0, context());
    lenient.beginCycle(context());
    EXPECT_GT(lenient.unfairness(), 1.5);
    EXPECT_FALSE(lenient.fairnessMode()); // alpha too large to trigger.
}

} // namespace
} // namespace stfm
