/**
 * @file
 * Tests for DRAM auto-refresh (tREFI/tRFC) at the channel and
 * controller levels.
 */

#include <gtest/gtest.h>

#include "dram/address_mapping.hh"
#include "mem/controller.hh"
#include "sched/fr_fcfs.hh"

namespace stfm
{
namespace
{

TEST(Refresh, ChannelRefreshBlocksActivates)
{
    DramChannel ch(4, DramTiming{});
    const DramTiming &t = ch.timing();
    EXPECT_TRUE(ch.allBanksClosed());
    const DramCycles done = ch.refreshAll(100);
    EXPECT_EQ(done, 100 + t.tRFC);
    for (BankId b = 0; b < 4; ++b) {
        EXPECT_FALSE(ch.canIssue(DramCommand::Activate, b, 1, done - 1));
        EXPECT_TRUE(ch.canIssue(DramCommand::Activate, b, 1, done));
    }
    EXPECT_EQ(ch.stats().refreshes, 1u);
}

TEST(Refresh, OpenBankBlocksRefreshPrecondition)
{
    DramChannel ch(4, DramTiming{});
    ch.issue(DramCommand::Activate, 2, 7, 0);
    EXPECT_FALSE(ch.allBanksClosed());
}

TEST(Refresh, ControllerRefreshesPeriodicallyAndStillServes)
{
    DramTiming timing;
    ControllerParams params;
    params.refreshEnabled = true;
    FrFcfsPolicy policy;
    ThreadBankOccupancy occupancy(1, 8);
    MemoryController controller(0, 8, timing, params, policy, occupancy,
                                1);
    unsigned completed = 0;
    controller.setReadCallback([&](const Request &) { ++completed; });
    AddressMapping mapping(1, 8, 16 * 1024, 64, 16 * 1024, true);

    SchedContext ctx;
    ctx.numThreads = 1;
    ctx.banksPerChannel = 8;
    ctx.timing = &timing;
    ctx.occupancy = &occupancy;

    // Run past two refresh intervals with a steady trickle of reads.
    unsigned enqueued = 0;
    for (DramCycles now = 1; now <= 2 * timing.tREFI + 200; ++now) {
        ctx.dramNow = now;
        ctx.cpuNow = now * 10;
        if (now % 50 == 0 && controller.canAcceptRead()) {
            AddrDecode coords;
            coords.bank = static_cast<BankId>(enqueued % 8);
            coords.row = static_cast<RowId>(enqueued * 3);
            controller.enqueueRead(mapping.compose(coords), coords, 0,
                                   true, ctx.cpuNow, now);
            ++enqueued;
        }
        controller.tick(ctx);
    }
    EXPECT_GE(controller.channel().stats().refreshes, 2u);
    // All reads still complete despite the refresh windows.
    EXPECT_EQ(completed, enqueued);
}

TEST(Refresh, DisabledByDefault)
{
    DramTiming timing;
    ControllerParams params; // refreshEnabled defaults to false.
    FrFcfsPolicy policy;
    ThreadBankOccupancy occupancy(1, 8);
    MemoryController controller(0, 8, timing, params, policy, occupancy,
                                1);
    SchedContext ctx;
    ctx.numThreads = 1;
    ctx.banksPerChannel = 8;
    ctx.timing = &timing;
    ctx.occupancy = &occupancy;
    for (DramCycles now = 1; now <= timing.tREFI + 100; ++now) {
        ctx.dramNow = now;
        controller.tick(ctx);
    }
    EXPECT_EQ(controller.channel().stats().refreshes, 0u);
}

} // namespace
} // namespace stfm
