/**
 * @file
 * Cross-device integrity tests: for every built-in device preset
 * (DDR2-800 through LPDDR4-3200) the full integrity layer must be
 * observation-only — checker on and off produce bit-identical results
 * — and a randomized multi-seed soak must complete with the shadow
 * protocol checker in throw mode, i.e. zero violations across clocks,
 * geometries, and the DDR4 bank-group constraint split.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/integrity.hh"
#include "dram/device_spec.hh"
#include "sim/device_io.hh"
#include "sim/system.hh"
#include "trace/generator.hh"

namespace stfm
{
namespace
{

/** Two-thread shared run on @p device with @p integrity layered in. */
SimResult
runOnDevice(const std::string &device, const IntegrityConfig &integrity,
            std::uint64_t seed)
{
    SimConfig config = SimConfig::baseline(2);
    config.instructionBudget = 5000;
    config.warmupInstructions = 1000;
    config.scheduler.kind = PolicyKind::Stfm;
    config.memory.controller.refreshEnabled = true;
    config.memory.controller.integrity = integrity;
    applyDevice(config.memory, device);

    AddressMapping mapping(config.memory.channels,
                           config.memory.banksPerChannel,
                           config.memory.rowBytes, config.memory.lineBytes,
                           config.memory.rowsPerBank,
                           config.memory.xorBankMapping,
                           config.memory.bankGroups);
    TraceProfile heavy;
    heavy.mpki = 60;
    heavy.rowBufferHitRate = 0.9;
    TraceProfile light;
    light.mpki = 8;
    light.rowBufferHitRate = 0.3;
    light.dependentFraction = 1.0;

    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(std::make_unique<SyntheticTraceGenerator>(
        heavy, mapping, 0, 2, 91 + seed));
    traces.push_back(std::make_unique<SyntheticTraceGenerator>(
        light, mapping, 1, 2, 92 + seed));
    CmpSystem system(config, std::move(traces));
    return system.run();
}

class DeviceIntegrity
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(DeviceIntegrity, CheckerOnOffResultsAreBitIdentical)
{
    const std::string device = GetParam();
    const SimResult off = runOnDevice(device, IntegrityConfig{}, 0);
    const SimResult on =
        runOnDevice(device, IntegrityConfig::full(), 0);

    EXPECT_EQ(off.totalCycles, on.totalCycles);
    EXPECT_EQ(off.hitCycleLimit, on.hitCycleLimit);
    ASSERT_EQ(off.threads.size(), on.threads.size());
    for (std::size_t t = 0; t < off.threads.size(); ++t) {
        const ThreadResult &a = off.threads[t];
        const ThreadResult &b = on.threads[t];
        EXPECT_EQ(a.instructions, b.instructions) << "thread " << t;
        EXPECT_EQ(a.cycles, b.cycles) << "thread " << t;
        EXPECT_EQ(a.memStallCycles, b.memStallCycles) << "thread " << t;
        EXPECT_EQ(a.dramReads, b.dramReads) << "thread " << t;
        EXPECT_EQ(a.dramWrites, b.dramWrites) << "thread " << t;
        EXPECT_EQ(a.rowHits, b.rowHits) << "thread " << t;
        EXPECT_EQ(a.rowConflicts, b.rowConflicts) << "thread " << t;
        EXPECT_EQ(a.readLatencyMean, b.readLatencyMean)
            << "thread " << t;
        EXPECT_EQ(a.readLatencyMax, b.readLatencyMax) << "thread " << t;
    }
}

TEST_P(DeviceIntegrity, MultiSeedSoakPassesTheCheckerInThrowMode)
{
    // CmpSystem surfaces CheckFailure from the shadow checker and the
    // watchdogs as exceptions, so merely completing each run proves
    // the device model issued only legal commands for this device's
    // constraint set — including the bank-group split on DDR4.
    const std::string device = GetParam();
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        SimResult result;
        ASSERT_NO_THROW(result = runOnDevice(
                            device, IntegrityConfig::full(), seed))
            << device << " seed " << seed;
        EXPECT_FALSE(result.hitCycleLimit)
            << device << " seed " << seed;
        EXPECT_GT(result.threads[0].dramReads, 0u)
            << device << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceIntegrity,
                         ::testing::Values("DDR2-800", "DDR3-1600",
                                           "DDR4-2400", "LPDDR4-3200"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace stfm
