/**
 * @file
 * Integration tests for the memory controller: request flow, FR-FCFS
 * ordering, row protection, write drains and forwarding.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/address_mapping.hh"
#include "mem/controller.hh"
#include "sched/fcfs.hh"
#include "sched/fr_fcfs.hh"

namespace stfm
{
namespace
{

/** Small controller test fixture with a pluggable policy. */
class ControllerTest : public ::testing::Test
{
  protected:
    static constexpr unsigned kBanks = 8;
    static constexpr unsigned kThreads = 4;

    ControllerTest()
        : mapping_(1, kBanks, 16 * 1024, 64, 16 * 1024, true),
          occupancy_(kThreads, kBanks)
    {}

    void
    build(SchedulingPolicy &policy)
    {
        controller_ = std::make_unique<MemoryController>(
            0, kBanks, timing_, params_, policy, occupancy_, kThreads);
        controller_->setReadCallback(
            [this](const Request &req) { completed_.push_back(req); });
    }

    void
    enqueueRead(BankId bank, RowId row, ColumnId col, ThreadId thread)
    {
        AddrDecode coords;
        coords.bank = bank;
        coords.row = row;
        coords.column = col;
        controller_->enqueueRead(mapping_.compose(coords), coords, thread,
                                 true, dram_ * 10, dram_);
    }

    void
    enqueueWrite(BankId bank, RowId row, ColumnId col, ThreadId thread)
    {
        AddrDecode coords;
        coords.bank = bank;
        coords.row = row;
        coords.column = col;
        controller_->enqueueWrite(mapping_.compose(coords), coords,
                                  thread, dram_ * 10, dram_);
    }

    void
    run(unsigned cycles)
    {
        SchedContext ctx;
        ctx.numThreads = kThreads;
        ctx.banksPerChannel = kBanks;
        ctx.timing = &timing_;
        ctx.occupancy = &occupancy_;
        for (unsigned i = 0; i < cycles; ++i) {
            ctx.dramNow = ++dram_;
            ctx.cpuNow = dram_ * 10;
            controller_->tick(ctx);
        }
    }

    DramTiming timing_;
    ControllerParams params_;
    AddressMapping mapping_;
    ThreadBankOccupancy occupancy_;
    std::unique_ptr<MemoryController> controller_;
    std::vector<Request> completed_;
    DramCycles dram_ = 0;
};

TEST_F(ControllerTest, SingleReadCompletes)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueRead(0, 5, 0, 0);
    run(40);
    ASSERT_EQ(completed_.size(), 1u);
    EXPECT_EQ(completed_[0].serviceState, RowBufferState::Closed);
    EXPECT_TRUE(controller_->idle());
}

TEST_F(ControllerTest, RowHitChainsServiceInOrder)
{
    FrFcfsPolicy policy;
    build(policy);
    for (ColumnId c = 0; c < 4; ++c)
        enqueueRead(0, 5, c, 0);
    run(60);
    ASSERT_EQ(completed_.size(), 4u);
    // First access opens the row; the rest are hits.
    EXPECT_EQ(completed_[0].serviceState, RowBufferState::Closed);
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(completed_[i].serviceState, RowBufferState::Hit);
}

TEST_F(ControllerTest, FrFcfsPrefersRowHitOverOlderConflict)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueRead(0, 1, 0, 0);
    run(20); // Row 1 is now open; the request completed.
    completed_.clear();
    enqueueRead(0, 2, 0, 1); // Older, conflicts.
    enqueueRead(0, 1, 1, 2); // Younger, row hit.
    run(60);
    ASSERT_EQ(completed_.size(), 2u);
    EXPECT_EQ(completed_[0].thread, 2u); // The hit won.
    EXPECT_EQ(completed_[1].thread, 1u);
}

TEST_F(ControllerTest, FcfsServicesOldestFirstRegardlessOfRow)
{
    FcfsPolicy policy;
    build(policy);
    enqueueRead(0, 1, 0, 0);
    run(20);
    completed_.clear();
    enqueueRead(0, 2, 0, 1); // Older conflict.
    enqueueRead(0, 1, 1, 2); // Younger hit.
    run(80);
    ASSERT_EQ(completed_.size(), 2u);
    EXPECT_EQ(completed_[0].thread, 1u); // Oldest first.
}

TEST_F(ControllerTest, RowProtectionStarvesConflictBehindHitStream)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueRead(0, 1, 0, 0);
    run(20);
    completed_.clear();
    // Thread 1 wants a different row; thread 0 keeps feeding hits.
    enqueueRead(0, 9, 0, 1);
    for (ColumnId c = 1; c < 12; ++c)
        enqueueRead(0, 1, c, 0);
    run(11 * 4 + 8); // Enough for all hits but little more.
    // The conflicting request must be serviced last.
    ASSERT_GE(completed_.size(), 2u);
    for (std::size_t i = 0; i + 1 < completed_.size(); ++i)
        EXPECT_EQ(completed_[i].thread, 0u);
}

TEST_F(ControllerTest, WriteForwardingServesReadFromWriteBuffer)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueWrite(3, 7, 5, 0);
    enqueueRead(3, 7, 5, 1); // Same line: forwarded, no DRAM access.
    run(5);
    ASSERT_EQ(completed_.size(), 1u);
    EXPECT_EQ(completed_[0].thread, 1u);
    EXPECT_EQ(controller_->channel().stats().reads, 0u);
}

TEST_F(ControllerTest, WriteCoalescingDropsDuplicates)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueWrite(2, 4, 1, 0);
    enqueueWrite(2, 4, 1, 0); // Same line: coalesced.
    EXPECT_EQ(controller_->buffer().writeCount(), 1u);
}

TEST_F(ControllerTest, WritesDrainOnFreeBandwidth)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueWrite(1, 3, 0, 0);
    run(40); // No reads anywhere: the write drains.
    EXPECT_EQ(controller_->channel().stats().writes, 1u);
    EXPECT_TRUE(controller_->idle());
}

TEST_F(ControllerTest, ReadsPrioritizedOverWritesBelowWatermark)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueWrite(0, 9, 0, 0);
    enqueueRead(0, 5, 0, 1);
    run(30);
    // The read completed; the write is still queued (reads pending
    // until now kept the drain from starting... after the read's done,
    // free bandwidth lets the write go).
    ASSERT_EQ(completed_.size(), 1u);
    run(60);
    EXPECT_EQ(controller_->channel().stats().writes, 1u);
}

TEST_F(ControllerTest, BankParallelismOverlapsActivates)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueRead(0, 1, 0, 0);
    enqueueRead(1, 2, 0, 1);
    run(30);
    EXPECT_EQ(completed_.size(), 2u);
    // Both banks opened rows; total service took far less than twice
    // the single-request latency thanks to bank-level parallelism.
}

TEST_F(ControllerTest, OccupancyReflectsLifecycle)
{
    FrFcfsPolicy policy;
    build(policy);
    enqueueRead(4, 1, 0, 2);
    EXPECT_EQ(occupancy_.waiting(2, 4), 1u);
    run(40);
    EXPECT_EQ(occupancy_.waiting(2, 4), 0u);
    EXPECT_EQ(occupancy_.inService(2, 4), 0u);
}

} // namespace
} // namespace stfm
