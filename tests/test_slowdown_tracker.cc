/**
 * @file
 * Unit tests for STFM's slowdown-estimation state.
 */

#include <gtest/gtest.h>

#include "core/slowdown_tracker.hh"

namespace stfm
{
namespace
{

SlowdownTrackerParams
params(unsigned threads = 2, bool quantize = false)
{
    SlowdownTrackerParams p;
    p.numThreads = threads;
    p.totalBanks = 8;
    p.quantize = quantize;
    return p;
}

TEST(SlowdownTracker, NoInterferenceMeansSlowdownOne)
{
    SlowdownTracker tracker(params());
    std::vector<Cycles> stall{1000, 500};
    tracker.updateSlowdowns(stall, 10000);
    EXPECT_DOUBLE_EQ(tracker.slowdown(0), 1.0);
    EXPECT_DOUBLE_EQ(tracker.slowdown(1), 1.0);
}

TEST(SlowdownTracker, SlowdownIsSharedOverAlone)
{
    SlowdownTracker tracker(params());
    std::vector<Cycles> stall{1000, 1000};
    tracker.addStallInterference(0, 500.0); // Talone = 500.
    tracker.updateSlowdowns(stall, 10000);
    EXPECT_DOUBLE_EQ(tracker.rawSlowdown(0), 2.0);
    EXPECT_DOUBLE_EQ(tracker.rawSlowdown(1), 1.0);
}

TEST(SlowdownTracker, SaturatesWhenInterferenceSwallowsStall)
{
    SlowdownTracker tracker(params());
    std::vector<Cycles> stall{1000, 1000};
    tracker.addStallInterference(0, 2000.0); // Talone would be negative.
    tracker.updateSlowdowns(stall, 10000);
    EXPECT_DOUBLE_EQ(tracker.rawSlowdown(0), 32.0); // Register cap.
}

TEST(SlowdownTracker, BankInterferenceUsesGammaScaling)
{
    SlowdownTracker tracker(params());
    // gamma = 0.5: latency / (0.5 * BWP).
    tracker.addBankInterference(0, 100.0, 4);
    EXPECT_DOUBLE_EQ(tracker.interferenceCycles(0), 50.0);
    tracker.addBankInterference(1, 100.0, 0); // BWP clamped to 1.
    EXPECT_DOUBLE_EQ(tracker.interferenceCycles(1), 200.0);
}

TEST(SlowdownTracker, OwnServiceChargesLostRowHits)
{
    SlowdownTracker tracker(params());
    const DramTiming timing;
    // First access to a bank: no history, no charge.
    EXPECT_DOUBLE_EQ(tracker.noteOwnService(0, 3, 7,
                                            RowBufferState::Conflict, 1,
                                            timing, 10),
                     0.0);
    // Same row again but serviced as a conflict: alone it would have
    // hit. ExtraLatency = tRP + tRCD = 12 DRAM cycles = 120 CPU cycles.
    const double charged = tracker.noteOwnService(
        0, 3, 7, RowBufferState::Conflict, 1, timing, 10);
    EXPECT_DOUBLE_EQ(charged, 120.0);
    EXPECT_DOUBLE_EQ(tracker.interferenceCycles(0), 120.0);
}

TEST(SlowdownTracker, OwnServiceNegativeWhenSharingHelped)
{
    SlowdownTracker tracker(params());
    const DramTiming timing;
    tracker.noteOwnService(0, 2, 5, RowBufferState::Conflict, 1, timing,
                           10);
    // Different row, serviced as a HIT (another thread opened it):
    // alone it would have been a conflict -> negative ExtraLatency.
    const double charged = tracker.noteOwnService(
        0, 2, 9, RowBufferState::Hit, 1, timing, 10);
    EXPECT_DOUBLE_EQ(charged, -120.0);
}

TEST(SlowdownTracker, OwnServiceAmortizedByBankParallelism)
{
    SlowdownTracker tracker(params());
    const DramTiming timing;
    tracker.noteOwnService(0, 1, 4, RowBufferState::Hit, 1, timing, 10);
    const double charged = tracker.noteOwnService(
        0, 1, 4, RowBufferState::Conflict, 4, timing, 10);
    EXPECT_DOUBLE_EQ(charged, 30.0); // 120 / BAP(4).
}

TEST(SlowdownTracker, WeightsScaleSlowdowns)
{
    SlowdownTrackerParams p = params();
    p.weights = {10.0, 1.0};
    SlowdownTracker tracker(p);
    std::vector<Cycles> stall{1000, 1000};
    tracker.addStallInterference(0, 100.0); // raw S = 1.111
    tracker.addStallInterference(1, 100.0);
    tracker.updateSlowdowns(stall, 10000);
    // S' = 1 + (S-1)*W: thread 0 ~ 2.11, thread 1 ~ 1.11.
    EXPECT_NEAR(tracker.slowdown(0), 2.11, 0.01);
    EXPECT_NEAR(tracker.slowdown(1), 1.11, 0.01);
}

TEST(SlowdownTracker, IntervalResetClearsState)
{
    SlowdownTrackerParams p = params();
    p.intervalLength = 1000;
    SlowdownTracker tracker(p);
    std::vector<Cycles> stall{500, 0};
    tracker.addStallInterference(0, 250.0);
    tracker.updateSlowdowns(stall, 100);
    EXPECT_DOUBLE_EQ(tracker.rawSlowdown(0), 2.0);

    // Past the interval: registers reset; Tshared restarts from the
    // latched cumulative value.
    stall[0] = 600;
    tracker.updateSlowdowns(stall, 1200);
    EXPECT_DOUBLE_EQ(tracker.rawSlowdown(0), 1.0);
    EXPECT_DOUBLE_EQ(tracker.interferenceCycles(0), 0.0);

    // New stall within the new interval counts from the reset point.
    tracker.addStallInterference(0, 100.0);
    stall[0] = 800; // 200 new stall cycles.
    tracker.updateSlowdowns(stall, 1300);
    EXPECT_DOUBLE_EQ(tracker.rawSlowdown(0), 2.0);
}

TEST(SlowdownTracker, QuantizedModeUsesRegisterSteps)
{
    SlowdownTracker tracker(params(2, /*quantize=*/true));
    std::vector<Cycles> stall{1000, 1000};
    tracker.addStallInterference(0, 300.0); // raw 1.4286
    tracker.updateSlowdowns(stall, 10000);
    EXPECT_DOUBLE_EQ(tracker.slowdown(0), 1.375); // Nearest 1/8 step.
}

TEST(SlowdownTracker, LastRowTracking)
{
    SlowdownTracker tracker(params());
    const DramTiming timing;
    EXPECT_EQ(tracker.lastRow(0, 5), kInvalidRow);
    tracker.noteOwnService(0, 5, 77, RowBufferState::Closed, 1, timing,
                           10);
    EXPECT_EQ(tracker.lastRow(0, 5), 77u);
    EXPECT_EQ(tracker.lastRow(1, 5), kInvalidRow); // Per-thread.
}

} // namespace
} // namespace stfm
