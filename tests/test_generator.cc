/**
 * @file
 * Unit and property tests for the synthetic trace generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generator.hh"

namespace stfm
{
namespace
{

AddressMapping
mapping(unsigned channels = 1, unsigned banks = 8)
{
    return AddressMapping(channels, banks, 16 * 1024, 64, 16 * 1024,
                          true);
}

TraceProfile
profile()
{
    TraceProfile p;
    p.mpki = 50;
    p.rowBufferHitRate = 0.9;
    p.burstDuty = 1.0;
    p.burstLength = 64;
    p.streamCount = 4;
    p.storeFraction = 0.0;
    p.hitAccessesPer1k = 0.0;
    return p;
}

TEST(Generator, Deterministic)
{
    const AddressMapping m = mapping();
    SyntheticTraceGenerator a(profile(), m, 0, 4, 42);
    SyntheticTraceGenerator b(profile(), m, 0, 4, 42);
    for (int i = 0; i < 2000; ++i) {
        const TraceOp oa = a.next(), ob = b.next();
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.aluBefore, ob.aluBefore);
        EXPECT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind));
    }
}

TEST(Generator, DifferentThreadsDifferentStreams)
{
    const AddressMapping m = mapping();
    SyntheticTraceGenerator a(profile(), m, 0, 4, 42);
    SyntheticTraceGenerator b(profile(), m, 1, 4, 42);
    std::set<Addr> a_addrs, b_addrs;
    for (int i = 0; i < 500; ++i) {
        a_addrs.insert(a.next().addr);
        b_addrs.insert(b.next().addr);
    }
    for (const Addr addr : a_addrs)
        EXPECT_EQ(b_addrs.count(addr), 0u) << "address overlap";
}

TEST(Generator, MpkiApproximatelyMet)
{
    const AddressMapping m = mapping();
    TraceProfile p = profile();
    p.mpki = 20;
    SyntheticTraceGenerator gen(p, m, 0, 4, 7);
    std::uint64_t instructions = 0, misses = 0;
    while (misses < 2000) {
        const TraceOp op = gen.next();
        instructions += op.aluBefore;
        if (op.kind != TraceOp::Kind::None) {
            ++instructions;
            ++misses;
        }
    }
    const double mpki = 1000.0 * misses / instructions;
    EXPECT_NEAR(mpki, 20.0, 3.0);
}

TEST(Generator, BurstDutyCreatesIdlePhases)
{
    TraceProfile p = profile();
    p.burstDuty = 0.3;
    const AddressMapping m = mapping();
    SyntheticTraceGenerator gen(p, m, 0, 4, 7);
    bool saw_idle = false;
    for (int i = 0; i < 500; ++i) {
        const TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::None && op.aluBefore > 100)
            saw_idle = true;
    }
    EXPECT_TRUE(saw_idle);
    EXPECT_GT(gen.idleInstructionsPerBurst(), 0u);
}

TEST(Generator, FullDutyNeverIdles)
{
    const AddressMapping m = mapping();
    SyntheticTraceGenerator gen(profile(), m, 0, 4, 7);
    for (int i = 0; i < 2000; ++i)
        EXPECT_NE(static_cast<int>(gen.next().kind),
                  static_cast<int>(TraceOp::Kind::None));
}

TEST(Generator, BankSpreadRespected)
{
    TraceProfile p = profile();
    p.bankSpread = 2;
    const AddressMapping m = mapping();
    SyntheticTraceGenerator gen(p, m, 0, 4, 99);
    std::set<BankId> banks;
    for (int i = 0; i < 2000; ++i) {
        const TraceOp op = gen.next();
        if (op.kind != TraceOp::Kind::None)
            banks.insert(m.decode(op.addr).bank);
    }
    EXPECT_LE(banks.size(), 2u);
}

TEST(Generator, BankSubsetStableAcrossCores)
{
    // The bank subset is derived from the benchmark seed, not the
    // thread id, so a benchmark keeps its signature banks wherever it
    // is scheduled.
    TraceProfile p = profile();
    p.bankSpread = 2;
    const AddressMapping m = mapping();
    SyntheticTraceGenerator a(p, m, 0, 4, 1234);
    SyntheticTraceGenerator b(p, m, 3, 4, 1234);
    std::set<unsigned> banks_a, banks_b;
    for (int i = 0; i < 1000; ++i) {
        const TraceOp oa = a.next(), ob = b.next();
        if (oa.kind != TraceOp::Kind::None)
            banks_a.insert(m.decode(oa.addr).bank);
        if (ob.kind != TraceOp::Kind::None)
            banks_b.insert(m.decode(ob.addr).bank);
    }
    EXPECT_EQ(banks_a, banks_b);
}

TEST(Generator, RowRunLengthTracksHitRateTarget)
{
    // Within one bank, consecutive misses should form runs whose mean
    // length approximates 1 / (1 - target hit rate).
    TraceProfile p = profile();
    p.rowBufferHitRate = 0.875; // Mean run of 8.
    p.storeFraction = 0.0;      // No compensation distortion.
    const AddressMapping m = mapping();
    SyntheticTraceGenerator gen(p, m, 0, 4, 5);

    std::map<BankId, RowId> last_row;
    std::map<BankId, unsigned> run;
    std::vector<unsigned> runs;
    for (int i = 0; i < 20000; ++i) {
        const TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::None)
            continue;
        const AddrDecode d = m.decode(op.addr);
        const auto it = last_row.find(d.bank);
        if (it != last_row.end() && it->second == d.row) {
            ++run[d.bank];
        } else {
            if (it != last_row.end())
                runs.push_back(run[d.bank] + 1);
            run[d.bank] = 0;
        }
        last_row[d.bank] = d.row;
    }
    double mean = 0.0;
    for (const unsigned r : runs)
        mean += r;
    mean /= static_cast<double>(runs.size());
    EXPECT_NEAR(mean, 8.0, 1.5);
}

TEST(Generator, StreamingStoresFollowLoads)
{
    TraceProfile p = profile();
    p.storeFraction = 1.0;
    p.streamingStores = true;
    const AddressMapping m = mapping();
    SyntheticTraceGenerator gen(p, m, 0, 4, 3);
    Addr last_load = 0;
    unsigned pairs = 0;
    for (int i = 0; i < 200; ++i) {
        const TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::Load)
            last_load = op.addr;
        if (op.kind == TraceOp::Kind::Store) {
            EXPECT_TRUE(op.nonTemporal);
            EXPECT_EQ(op.addr, last_load);
            ++pairs;
        }
    }
    EXPECT_GT(pairs, 50u);
}

TEST(Generator, WarmupFootprintInThreadRegionAndRowSequential)
{
    const AddressMapping m = mapping();
    SyntheticTraceGenerator gen(profile(), m, 2, 4, 11);
    std::vector<WarmLine> warm;
    gen.warmupFootprint(4096, warm);
    EXPECT_EQ(warm.size(), 4096u);
    // Row-sequential layout: consecutive entries of the same bank walk
    // consecutive columns.
    const AddrDecode first = m.decode(warm[0].addr);
    const AddrDecode second = m.decode(warm[1].addr);
    (void)first;
    (void)second;
    // And none of the warm lines reappear in the near-term miss stream.
    std::set<Addr> warm_set;
    for (const WarmLine &line : warm)
        warm_set.insert(line.addr);
    for (int i = 0; i < 5000; ++i) {
        const TraceOp op = gen.next();
        if (op.kind != TraceOp::Kind::None) {
            EXPECT_EQ(warm_set.count(op.addr & ~Addr{63}), 0u);
        }
    }
}

class GeneratorGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(GeneratorGeometry, AddressesStayInBounds)
{
    const auto [channels, banks] = GetParam();
    const AddressMapping m = mapping(channels, banks);
    TraceProfile p = profile();
    p.streamCount = 8;
    SyntheticTraceGenerator gen(p, m, 1, 8, 77);
    for (int i = 0; i < 3000; ++i) {
        const TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::None)
            continue;
        EXPECT_LT(op.addr, m.capacityBytes());
        const AddrDecode d = m.decode(op.addr);
        EXPECT_LT(d.channel, channels);
        EXPECT_LT(d.bank, banks);
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeneratorGeometry,
                         ::testing::Values(std::pair{1u, 8u},
                                           std::pair{2u, 8u},
                                           std::pair{4u, 8u},
                                           std::pair{1u, 4u},
                                           std::pair{1u, 16u}));

} // namespace
} // namespace stfm
