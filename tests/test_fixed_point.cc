/**
 * @file
 * Unit tests for the fixed-point slowdown-register arithmetic.
 */

#include <gtest/gtest.h>

#include "common/fixed_point.hh"

namespace stfm
{
namespace
{

TEST(FixedPoint, OneRoundTripsExactly)
{
    const auto one = SlowdownReg::fromDouble(1.0);
    EXPECT_DOUBLE_EQ(one.toDouble(), 1.0);
}

TEST(FixedPoint, QuantizationStep)
{
    // SlowdownReg has 3 fractional bits: resolution 0.125.
    EXPECT_DOUBLE_EQ(quantizeSlowdown(1.0625), 1.125); // rounds to nearest
    EXPECT_DOUBLE_EQ(quantizeSlowdown(1.05), 1.0);
    EXPECT_DOUBLE_EQ(quantizeSlowdown(2.49), 2.5);
}

TEST(FixedPoint, SaturatesAtRegisterMax)
{
    const double max = SlowdownReg::fromRaw(SlowdownReg::kMaxRaw).toDouble();
    EXPECT_DOUBLE_EQ(quantizeSlowdown(1000.0), max);
    EXPECT_NEAR(max, 31.875, 1e-9); // 5 integer bits, 3 fractional.
}

TEST(FixedPoint, NegativeClampsToZero)
{
    EXPECT_DOUBLE_EQ(quantizeSlowdown(-3.0), 0.0);
}

TEST(FixedPoint, OrderingPreserved)
{
    const auto a = SlowdownReg::fromDouble(1.5);
    const auto b = SlowdownReg::fromDouble(2.75);
    EXPECT_LT(a, b);
    EXPECT_EQ(a, SlowdownReg::fromDouble(1.5));
}

TEST(FixedPoint, DistinctSlowdownsStayDistinctAboveResolution)
{
    // Two slowdowns more than one quantization step apart must remain
    // ordered after quantization (the STFM comparator depends on this).
    for (double s = 1.0; s < 30.0; s += 0.5) {
        EXPECT_LT(quantizeSlowdown(s), quantizeSlowdown(s + 0.25))
            << "at s=" << s;
    }
}

TEST(FixedPoint, WiderFormatIsMorePrecise)
{
    using Wide = FixedPoint<8, 8>;
    EXPECT_NEAR(Wide::fromDouble(1.0625).toDouble(), 1.0625, 1.0 / 256);
}

} // namespace
} // namespace stfm
